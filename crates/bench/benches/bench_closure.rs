//! B1 — closure computation scaling (Theorem 3's linear-time claim):
//! the counter-based p-/c-closure versus the paper's quadratic
//! Algorithms 1–2, over growing chain-shaped constraint sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlnf_core::closure::{c_closure, c_closure_naive, p_closure, p_closure_naive};
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Fd, Modality};

/// A chain a0 → a1 → … → a(n−1), alternating modalities, with every
/// odd attribute NOT NULL so the chain actually propagates. The FD list
/// is *reversed*: the naive Algorithms 1–2 then fire only one FD per
/// pass and degrade to Θ(n²) FD scans, which is exactly the behaviour
/// the counter-based linear variant (Theorem 3) avoids.
fn chain(n: usize) -> (Vec<Fd>, AttrSet) {
    let mut fds: Vec<Fd> = (0..n - 1)
        .map(|i| Fd {
            lhs: AttrSet::from_indices([i]),
            rhs: AttrSet::from_indices([i + 1]),
            modality: if i % 2 == 0 {
                Modality::Certain
            } else {
                Modality::Possible
            },
        })
        .collect();
    fds.reverse();
    let nfs = AttrSet::from_indices((0..n).filter(|i| i % 2 == 1));
    (fds, nfs)
}

fn bench_closures(c: &mut Criterion) {
    let mut group = c.benchmark_group("closure");
    for &n in &[8usize, 32, 64, 128] {
        let (fds, nfs) = chain(n);
        let x = AttrSet::from_indices([0]);
        group.bench_with_input(BenchmarkId::new("p_linear", n), &n, |b, _| {
            b.iter(|| p_closure(&fds, nfs, x))
        });
        group.bench_with_input(BenchmarkId::new("p_naive", n), &n, |b, _| {
            b.iter(|| p_closure_naive(&fds, nfs, x))
        });
        group.bench_with_input(BenchmarkId::new("c_linear", n), &n, |b, _| {
            b.iter(|| c_closure(&fds, nfs, x))
        });
        group.bench_with_input(BenchmarkId::new("c_naive", n), &n, |b, _| {
            b.iter(|| c_closure_naive(&fds, nfs, x))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closures);
criterion_main!(benches);
