//! B4 — VRNF decomposition (Algorithm 3) scaling: schema-level
//! normalization with a growing number of independent total FDs, and
//! the instance-level split of Theorem 11 over growing tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlnf_core::decompose::{decompose_instance_by_cfd, vrnf_decompose};
use sqlnf_datagen::contractor::{contractor, contractor_sigma};
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Fd, Sigma};
use sqlnf_model::prelude::*;

/// k independent total FDs a_{2i} →_w a_{2i} a_{2i+1} over 2k+1 attrs.
fn independent_sigma(k: usize) -> (AttrSet, Sigma) {
    let t = AttrSet::first_n(2 * k + 1);
    let mut sigma = Sigma::new();
    for i in 0..k {
        let lhs = AttrSet::from_indices([2 * i]);
        sigma.add(Fd::certain(lhs, lhs | AttrSet::from_indices([2 * i + 1])));
    }
    (t, sigma)
}

fn bench_schema_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("vrnf_decompose");
    for &k in &[2usize, 4, 6] {
        let (t, sigma) = independent_sigma(k);
        group.bench_with_input(BenchmarkId::new("independent_fds", k), &k, |b, _| {
            b.iter(|| vrnf_decompose(t, t, &sigma).unwrap())
        });
    }
    // The contractor schema (3 interacting FDs over 22 attributes).
    let table = contractor(1);
    let sigma = contractor_sigma(table.schema());
    let (t, nfs) = (table.schema().attrs(), table.schema().nfs());
    group.bench_function("contractor_schema", |b| {
        b.iter(|| vrnf_decompose(t, nfs, &sigma).unwrap())
    });
    group.finish();
}

fn bench_instance_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("instance_split");
    for &n in &[1_000usize, 10_000, 100_000] {
        // n rows over (k, g, v): g,v determined by k-groups of ~10.
        let mut t = Table::new(TableSchema::new("r", ["k", "g", "v"], &["k", "g", "v"]));
        for i in 0..n {
            let grp = (i / 10) as i64;
            t.push(tuple![grp, (grp % 97), ((grp * 31) % 101)]);
        }
        let s = t.schema().clone();
        let fd = Fd::certain(s.set(&["k"]), s.set(&["k", "g", "v"]));
        group.bench_with_input(BenchmarkId::new("thm11_split", n), &n, |b, _| {
            b.iter(|| decompose_instance_by_cfd(&t, &fd))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schema_decomposition,
    bench_instance_decomposition
);
criterion_main!(benches);
