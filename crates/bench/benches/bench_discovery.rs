//! B6 — FD discovery scaling: the level-wise miner under all four
//! semantics over growing row counts and LHS caps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlnf_datagen::naumann::breast_cancer_like;
use sqlnf_discovery::check::Semantics;
use sqlnf_discovery::mine::{mine_fds, MinerConfig};
use sqlnf_model::prelude::*;

fn truncate(table: &Table, rows: usize) -> Table {
    Table::from_rows(
        table.schema().clone(),
        table.rows().iter().take(rows).cloned().collect::<Vec<_>>(),
    )
}

fn bench_discovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("discovery");
    group.sample_size(10);
    let base = breast_cancer_like(5);
    for &rows in &[100usize, 300, 699] {
        let t = truncate(&base, rows);
        for sem in Semantics::ALL {
            group.bench_with_input(BenchmarkId::new(format!("{sem:?}"), rows), &rows, |b, _| {
                b.iter(|| mine_fds(&t, MinerConfig::new(sem).with_max_lhs(3)))
            });
        }
    }
    for &cap in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("lhs_cap", cap), &cap, |b, _| {
            b.iter(|| {
                mine_fds(
                    &base,
                    MinerConfig::new(Semantics::Certain).with_max_lhs(cap),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
