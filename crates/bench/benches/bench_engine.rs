//! B7 — engine bulk-load scaling: the incremental constraint indexes
//! (amortized O(1) admission per row) versus full revalidation per
//! insert (O(n), giving O(n²) loads).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlnf_model::prelude::*;

fn rows(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            let g = (i / 4) as i64;
            Tuple::new(vec![
                Value::Int(i as i64),
                Value::Int(g),
                Value::Int(g * 7 % 101),
            ])
        })
        .collect()
}

fn schema_and_sigma() -> (TableSchema, Sigma) {
    let schema = TableSchema::new("t", ["id", "grp", "val"], &["id", "grp", "val"]);
    let sigma = Sigma::new()
        .with(Key::certain(schema.set(&["id"])))
        .with(Fd::certain(schema.set(&["grp"]), schema.set(&["val"])));
    (schema, sigma)
}

fn bench_bulk_load(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_bulk_load");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000, 20_000] {
        let data = rows(n);
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter(|| {
                let (schema, sigma) = schema_and_sigma();
                let mut db = Database::new();
                db.create_table(schema, sigma).unwrap();
                for r in &data {
                    db.insert("t", r.clone()).unwrap();
                }
                std::hint::black_box(db);
            })
        });
        if n <= 5_000 {
            // The quadratic baseline becomes impractical beyond this —
            // which is the point of the comparison.
            group.bench_with_input(BenchmarkId::new("full_revalidation", n), &n, |b, _| {
                b.iter(|| {
                    let (schema, sigma) = schema_and_sigma();
                    let mut table = Table::new(schema);
                    for r in &data {
                        table.push(r.clone());
                        assert!(satisfies_all(&table, &sigma));
                    }
                    std::hint::black_box(table);
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_load);
criterion_main!(benches);
