//! B2 — implication-problem scaling (Theorem 5): FD and key queries
//! against random constraint sets of growing size, plus the exponential
//! baseline (the axiom-saturation engine) on small inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf_core::axioms::DerivationEngine;
use sqlnf_core::implication::Reasoner;
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Constraint, Fd, Key, Modality, Sigma};

fn random_sigma(rng: &mut StdRng, attrs: usize, constraints: usize) -> Sigma {
    let mut sigma = Sigma::new();
    for _ in 0..constraints {
        let lhs = AttrSet::from_indices((0..attrs).filter(|_| rng.gen_bool(2.5 / attrs as f64)));
        let rhs = AttrSet::from_indices((0..attrs).filter(|_| rng.gen_bool(2.0 / attrs as f64)));
        let modality = if rng.gen_bool(0.5) {
            Modality::Certain
        } else {
            Modality::Possible
        };
        if rng.gen_bool(0.8) {
            sigma.add(Fd { lhs, rhs, modality });
        } else {
            sigma.add(Key {
                attrs: lhs | AttrSet::from_indices([rng.gen_range(0..attrs)]),
                modality,
            });
        }
    }
    sigma
}

fn bench_implication(c: &mut Criterion) {
    let mut group = c.benchmark_group("implication");
    let mut rng = StdRng::seed_from_u64(7);
    for &m in &[10usize, 50, 200] {
        let attrs = 32;
        let t = AttrSet::first_n(attrs);
        let nfs = AttrSet::from_indices((0..attrs).filter(|i| i % 2 == 0));
        let sigma = random_sigma(&mut rng, attrs, m);
        let query_fd = Constraint::Fd(Fd::certain(
            AttrSet::from_indices([0, 1, 2]),
            AttrSet::from_indices([5, 6]),
        ));
        let query_key = Constraint::Key(Key::possible(AttrSet::from_indices([0, 1, 2, 3])));
        group.bench_with_input(BenchmarkId::new("fd_query", m), &m, |b, _| {
            b.iter(|| {
                let r = Reasoner::new(t, nfs, &sigma);
                r.implies(&query_fd)
            })
        });
        group.bench_with_input(BenchmarkId::new("key_query", m), &m, |b, _| {
            b.iter(|| {
                let r = Reasoner::new(t, nfs, &sigma);
                r.implies(&query_key)
            })
        });
    }
    // Exponential baseline: saturation under the axioms on 4 attributes.
    let t4 = AttrSet::first_n(4);
    let sigma4 = Sigma::new()
        .with(Fd::possible(
            AttrSet::from_indices([0]),
            AttrSet::from_indices([1]),
        ))
        .with(Fd::certain(
            AttrSet::from_indices([1]),
            AttrSet::from_indices([2]),
        ))
        .with(Key::possible(AttrSet::from_indices([0, 3])));
    group.bench_function("axiom_saturation_4attrs", |b| {
        b.iter(|| DerivationEngine::saturate(t4, AttrSet::from_indices([1, 3]), &sigma4))
    });
    group.finish();
}

criterion_group!(benches, bench_implication);
criterion_main!(benches);
