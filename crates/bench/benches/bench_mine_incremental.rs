//! B9 — amortized incremental mining: `IncrementalMiner` re-mining
//! after a small delta vs a from-scratch mine of the grown table,
//! across delta sizes {1, 32, 1000} on adult-scale data. Emits
//! `BENCH_mine_incremental.json` with wall-clock medians for both
//! paths plus the `discovery.partition.rows_scanned` work counters
//! (zero without `--features obs`) and the resulting speedups.
//!
//! Both paths mine the same report surface — Possible FDs, Certain
//! FDs, and possible/certain keys — and the bench asserts their
//! results are identical before recording a single number, so the
//! speedup is never bought with a weaker answer.

use sqlnf_bench::{banner, fmt_duration, measure, render_table, write_bench_json, BenchRecord};
use sqlnf_datagen::naumann::adult_like;
use sqlnf_discovery::prelude::{
    mine_fds, mine_keys_budgeted, IncrementalMiner, MinedFd, MinedKeys, MinerConfig, Semantics,
    DEFAULT_CACHE_BUDGET,
};
use sqlnf_model::prelude::*;
use sqlnf_obs::json::JsonValue;
use std::time::Instant;

/// LHS/key-size cap — matches the serve `MINE` verb and the WATCH
/// plane.
const MAX_LHS: usize = 3;

/// Rows of the base table the deltas land on. The adult generator's
/// full 48 842 rows make the from-scratch legs dominate the bench's
/// wall clock; a 16k prefix keeps the same schema and value mix.
const BASE_ROWS: usize = 16_384;

/// Measured runs per configuration (median taken).
const RUNS: usize = 3;

/// The mined surface both paths must agree on byte-for-byte.
#[derive(PartialEq)]
struct Mined {
    pfds: Vec<MinedFd>,
    cfds: Vec<MinedFd>,
    keys: MinedKeys,
}

fn mine_scratch(table: &Table) -> Mined {
    Mined {
        pfds: mine_fds(
            table,
            MinerConfig::new(Semantics::Possible).with_max_lhs(MAX_LHS),
        )
        .fds,
        cfds: mine_fds(
            table,
            MinerConfig::new(Semantics::Certain).with_max_lhs(MAX_LHS),
        )
        .fds,
        keys: mine_keys_budgeted(table, MAX_LHS, DEFAULT_CACHE_BUDGET),
    }
}

fn mine_incremental(m: &mut IncrementalMiner) -> Mined {
    Mined {
        pfds: m.mine_fds(Semantics::Possible, MAX_LHS, DEFAULT_CACHE_BUDGET),
        cfds: m.mine_fds(Semantics::Certain, MAX_LHS, DEFAULT_CACHE_BUDGET),
        keys: m.mine_keys(MAX_LHS, DEFAULT_CACHE_BUDGET),
    }
}

/// Reads the partition work counter (0 when obs is compiled out).
fn rows_scanned() -> u64 {
    sqlnf_obs::report()
        .counter("discovery.partition.rows_scanned")
        .unwrap_or(0)
}

fn main() {
    banner("B9 — incremental MINE vs full re-mine (amortized delta cost, adult-scale)");
    let full = adult_like(1);
    let base = Table::from_rows(
        full.schema().clone(),
        full.rows().iter().take(BASE_ROWS).cloned(),
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rows_out = Vec::new();
    for &delta in &[1usize, 32, 1000] {
        let delta_rows: Vec<Tuple> = full
            .rows()
            .iter()
            .skip(BASE_ROWS)
            .take(delta)
            .cloned()
            .collect();
        assert_eq!(delta_rows.len(), delta, "generator is large enough");
        let grown = {
            let mut rows: Vec<Tuple> = base.rows().to_vec();
            rows.extend(delta_rows.iter().cloned());
            Table::from_rows(base.schema().clone(), rows)
        };

        // From-scratch leg: mine the grown table whole, as `MINE`
        // would after the delta committed.
        let scratch_record = measure(&format!("mine_scratch_d{delta}"), RUNS, || {
            let _ = mine_scratch(&grown);
        });
        let scratch_scanned = scratch_record
            .obs
            .counter("discovery.partition.rows_scanned")
            .unwrap_or(0)
            / RUNS as u64;

        // Incremental leg: the miner is already warm on the base table
        // (seeded and mined once, untimed — that cost was paid long
        // ago in the amortized story); timed work is applying the
        // delta and re-mining.
        let mut timings = Vec::with_capacity(RUNS);
        let mut incr_scanned = 0u64;
        let mut incr_result = None;
        for run in 0..RUNS {
            let mut m = IncrementalMiner::from_table(&base);
            let _ = mine_incremental(&mut m);
            sqlnf_obs::reset();
            let before = rows_scanned();
            let t0 = Instant::now();
            for r in &delta_rows {
                m.insert(r.clone());
            }
            let mined = mine_incremental(&mut m);
            timings.push(t0.elapsed());
            if run == 0 {
                incr_scanned = rows_scanned() - before;
                incr_result = Some(mined);
            }
        }
        timings.sort();
        let incr_median = timings[RUNS / 2];

        // The determinism contract: the cheap path answers exactly
        // what the expensive one does.
        assert!(
            incr_result.expect("ran at least once") == mine_scratch(&grown),
            "incremental mine diverged from scratch at delta {delta}"
        );

        let wall_speedup =
            scratch_record.median.as_secs_f64() / incr_median.as_secs_f64().max(1e-12);
        let scan_speedup = if incr_scanned > 0 {
            scratch_scanned as f64 / incr_scanned as f64
        } else {
            0.0
        };
        let mut record = BenchRecord {
            id: format!("mine_incremental_d{delta}"),
            median: incr_median,
            obs: sqlnf_obs::report(),
            extra: Vec::new(),
        };
        record.extra.push((
            "scratch_median_ns".to_owned(),
            JsonValue::Int(scratch_record.median.as_nanos() as i128),
        ));
        record.extra.push((
            "rows_scanned_scratch".to_owned(),
            JsonValue::Int(scratch_scanned as i128),
        ));
        record.extra.push((
            "rows_scanned_incremental".to_owned(),
            JsonValue::Int(incr_scanned as i128),
        ));
        record
            .extra
            .push(("wall_speedup".to_owned(), JsonValue::Float(wall_speedup)));
        record
            .extra
            .push(("scan_speedup".to_owned(), JsonValue::Float(scan_speedup)));
        rows_out.push(vec![
            format!("delta {delta}"),
            fmt_duration(scratch_record.median),
            fmt_duration(incr_median),
            format!("{wall_speedup:.1}x"),
            format!("{scratch_scanned}"),
            format!("{incr_scanned}"),
            if incr_scanned > 0 {
                format!("{scan_speedup:.1}x")
            } else {
                "-".to_owned()
            },
        ]);
        records.push(scratch_record);
        records.push(record);
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "scratch",
                "incremental",
                "speedup",
                "rows scanned (scratch)",
                "rows scanned (incr)",
                "scan speedup"
            ],
            &rows_out
        )
    );
    match write_bench_json("mine_incremental", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_mine_incremental.json: {e}"),
    }
}
