//! B3 — normal-form checking (Theorems 7, 10, 14): BCNF and SQL-BCNF
//! verdicts over constraint sets of growing size, demonstrating the
//! quadratic upper bound in practice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlnf_core::normal_forms::{is_bcnf, is_sql_bcnf};
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Fd, Key, Sigma};

/// m total FDs over 64 attributes, half of them backed by keys (so the
/// checks exercise both verdict branches).
fn star_sigma(m: usize) -> Sigma {
    let mut sigma = Sigma::new();
    for i in 0..m {
        let hub = AttrSet::from_indices([i % 32, (i + 7) % 32]);
        let rhs = hub | AttrSet::from_indices([32 + (i % 32)]);
        sigma.add(Fd::certain(hub, rhs));
        if i % 2 == 0 {
            sigma.add(Key::certain(hub));
        }
    }
    sigma
}

fn bench_normal_forms(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_forms");
    let t = AttrSet::first_n(64);
    let nfs = AttrSet::first_n(32);
    for &m in &[8usize, 32, 128] {
        let sigma = star_sigma(m);
        group.bench_with_input(BenchmarkId::new("bcnf", m), &m, |b, _| {
            b.iter(|| is_bcnf(t, nfs, &sigma))
        });
        group.bench_with_input(BenchmarkId::new("sql_bcnf", m), &m, |b, _| {
            b.iter(|| is_sql_bcnf(t, nfs, &sigma).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_normal_forms);
criterion_main!(benches);
