//! B5 — constraint satisfaction checking on instances: c-FD, p-FD,
//! c-key and p-key validation over growing row counts and null rates
//! (the operation behind the paper's 122 ms / 15 ms comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf_model::prelude::*;

fn workload(rows: usize, null_permille: u32, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(TableSchema::new("w", ["a", "b", "y", "z"], &[]));
    for i in 0..rows {
        let g = (i / 8) as i64;
        let a = if rng.gen_ratio(null_permille, 1000) {
            Value::Null
        } else {
            Value::Int(g)
        };
        t.push(Tuple::new(vec![
            a,
            Value::Int(i as i64), // near-unique disambiguator
            Value::Int(g % 13),
            Value::Int(rng.gen_range(0..1000)),
        ]));
    }
    t
}

fn bench_satisfy(c: &mut Criterion) {
    let mut group = c.benchmark_group("satisfy");
    for &rows in &[1_000usize, 10_000, 100_000] {
        for &nulls in &[0u32, 20] {
            let t = workload(rows, nulls, 99);
            let s = t.schema().clone();
            let ab = s.set(&["a", "b"]);
            let y = s.set(&["y"]);
            let label = format!("{rows}r_{nulls}pm");
            group.bench_with_input(BenchmarkId::new("cfd", &label), &rows, |bch, _| {
                bch.iter(|| satisfies_fd(&t, &Fd::certain(ab, y)))
            });
            group.bench_with_input(BenchmarkId::new("pfd", &label), &rows, |bch, _| {
                bch.iter(|| satisfies_fd(&t, &Fd::possible(ab, y)))
            });
            group.bench_with_input(BenchmarkId::new("ckey", &label), &rows, |bch, _| {
                bch.iter(|| satisfies_key(&t, &Key::certain(ab)))
            });
            group.bench_with_input(BenchmarkId::new("pkey", &label), &rows, |bch, _| {
                bch.iter(|| satisfies_key(&t, &Key::possible(ab)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_satisfy);
criterion_main!(benches);
