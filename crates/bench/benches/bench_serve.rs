//! B8 — server write-path throughput: concurrent sessions streaming
//! pipelined `INSERT` bursts through the wire protocol into
//! constraint-guarded tables, with and without WAL durability, across
//! a worker-count × WAL-shard sweep. Emits `BENCH_serve.json` with the
//! sustained statements/sec of each configuration (plus the `serve.*`
//! obs counters when built with `--features obs`).
//!
//! Clients pipeline with [`Client::send_batch`] — each burst is one
//! socket write and one reply read-off — so the server's group commit
//! sees real multi-frame batches instead of lock-step round trips, and
//! the sweep measures the write path, not the network ping-pong.

use sqlnf_bench::{banner, fmt_duration, measure, render_table, write_bench_json};
use sqlnf_obs::json::JsonValue;
use sqlnf_serve::{Client, ServeConfig, Server};
use std::path::PathBuf;

/// Tables the load spreads across — with `--wal-shards > 1` their
/// hashes land in different shard logs, so the shard sweep exercises
/// parallel committers instead of one hot file.
const TABLES: usize = 4;

/// Statements per pipelined burst.
const PIPELINE_CHUNK: usize = 32;

fn ddl(table: usize) -> String {
    format!(
        "CREATE TABLE load{table} (
    id  INT NOT NULL,
    grp INT NOT NULL,
    val INT NOT NULL,
    CONSTRAINT pk CERTAIN KEY (id),
    CONSTRAINT fd CERTAIN FD (grp) -> (val)
);"
    )
}

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlnf_bench_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `clients` concurrent sessions, each inserting
/// `stmts_per_client` unique rows into its table (round-robin over
/// [`TABLES`]) in pipelined bursts; returns when all sessions are done
/// and the server has shut down.
fn run_load(clients: usize, stmts_per_client: usize, wal: Option<&PathBuf>, shards: usize) {
    let config = ServeConfig {
        workers: clients.min(8),
        wal_dir: wal.cloned(),
        wal_shards: shards,
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr).expect("connect");
        for t in 0..TABLES {
            c.expect_ok(&ddl(t)).expect("ddl");
        }
        c.quit().expect("quit");
    }
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let table = k % TABLES;
                let stmts: Vec<String> = (0..stmts_per_client)
                    .map(|i| {
                        let id = (k * stmts_per_client + i) as i64;
                        let g = id / 4;
                        format!(
                            "INSERT INTO load{table} VALUES ({id}, {g}, {});",
                            g * 7 % 101
                        )
                    })
                    .collect();
                for chunk in stmts.chunks(PIPELINE_CHUNK) {
                    for reply in c.send_batch(chunk).expect("burst") {
                        assert!(reply.ok, "insert refused: {}", reply.message);
                    }
                }
                c.quit().expect("quit");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown().expect("shutdown");
}

fn main() {
    banner("B8 — serve throughput (pipelined wire protocol, worker × WAL-shard sweep)");
    // (clients, stmts/client, durable, wal shards). Worker count tracks
    // client count; the shard axis shows whether the committer file
    // mutex is the bottleneck once group commit amortizes the fsyncs.
    let mut configs: Vec<(usize, usize, bool, usize)> =
        vec![(1, 500, false, 1), (4, 500, false, 1)];
    for &shards in &[1usize, 4] {
        for &clients in &[1usize, 2, 4, 8] {
            configs.push((clients, 500, true, shards));
        }
    }
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &(clients, per_client, durable, shards) in &configs {
        let id = if durable {
            format!("serve_{clients}x{per_client}_wal_s{shards}")
        } else {
            format!("serve_{clients}x{per_client}")
        };
        let dir = wal_dir(&id);
        let wal = durable.then(|| dir.clone());
        let record = measure(&id, 3, || {
            if let Some(d) = &wal {
                let _ = std::fs::remove_dir_all(d);
            }
            run_load(clients, per_client, wal.as_ref(), shards);
        });
        let total = (clients * per_client) as f64;
        let per_sec = total / record.median.as_secs_f64();

        // Per-verb latency percentiles, per-lock-tier wait shares, and
        // the group-commit batch profile come straight from the span
        // histograms the runs accumulated (all zero when built without
        // `--features obs`).
        let timer = |name: &str| record.obs.timers.iter().find(|t| t.name == name);
        let (sql_p50, sql_p99) = timer("serve.verb.sql")
            .map(|t| (t.p50_ns(), t.p99_ns()))
            .unwrap_or((0, 0));
        let dispatch_ns = timer("serve.dispatch").map_or(0, |t| t.total_ns).max(1) as f64;
        let share = |name: &str| timer(name).map_or(0, |t| t.total_ns) as f64 / dispatch_ns;
        let shares: Vec<(String, f64)> = ["snapshot", "registry", "table", "wal"]
            .iter()
            .map(|tier| {
                (
                    format!("lock_share_{tier}"),
                    share(&format!("serve.lock_wait.{tier}")),
                )
            })
            .chain([
                ("wal_append_share".to_owned(), share("serve.wal.append")),
                ("wal_fsync_share".to_owned(), share("serve.wal.fsync")),
            ])
            .collect();
        let wal_lock_share = share("serve.lock_wait.wal");
        // The batch-size histogram abuses the span plumbing: its "ns"
        // percentiles are frame counts per commit batch.
        let (batch_p50, batch_p99) = timer("serve.commit.batch_size")
            .map(|t| (t.p50_ns(), t.p99_ns()))
            .unwrap_or((0, 0));

        let mut record = record;
        record
            .extra
            .push(("stmts_per_sec".to_owned(), JsonValue::Float(per_sec)));
        record
            .extra
            .push(("sql_p50_ns".to_owned(), JsonValue::Int(sql_p50 as i128)));
        record
            .extra
            .push(("sql_p99_ns".to_owned(), JsonValue::Int(sql_p99 as i128)));
        record
            .extra
            .push(("batch_p50".to_owned(), JsonValue::Int(batch_p50 as i128)));
        record
            .extra
            .push(("batch_p99".to_owned(), JsonValue::Int(batch_p99 as i128)));
        for (name, value) in shares {
            record.extra.push((name, JsonValue::Float(value)));
        }
        rows.push(vec![
            id.clone(),
            fmt_duration(record.median),
            format!("{per_sec:.0}"),
            fmt_duration(std::time::Duration::from_nanos(sql_p50)),
            fmt_duration(std::time::Duration::from_nanos(sql_p99)),
            format!("{batch_p50}/{batch_p99}"),
            format!("{:.1}%", wal_lock_share * 100.0),
        ]);
        records.push(record);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "median",
                "stmts/sec",
                "sql p50",
                "sql p99",
                "batch p50/p99",
                "wal-lock share"
            ],
            &rows
        )
    );
    match write_bench_json("serve", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}
