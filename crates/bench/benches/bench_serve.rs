//! B8 — server throughput: concurrent sessions streaming `INSERT`s
//! through the wire protocol into one constraint-guarded table, with
//! and without WAL durability. Emits `BENCH_serve.json` with the
//! sustained statements/sec of each configuration (plus the `serve.*`
//! obs counters when built with `--features obs`).

use sqlnf_bench::{banner, fmt_duration, measure, render_table, write_bench_json};
use sqlnf_obs::json::JsonValue;
use sqlnf_serve::{Client, ServeConfig, Server};
use std::path::PathBuf;

const DDL: &str = "CREATE TABLE load (
    id  INT NOT NULL,
    grp INT NOT NULL,
    val INT NOT NULL,
    CONSTRAINT pk CERTAIN KEY (id),
    CONSTRAINT fd CERTAIN FD (grp) -> (val)
);";

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlnf_bench_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `clients` concurrent sessions, each inserting
/// `stmts_per_client` unique rows; returns when all sessions are done
/// and the server has shut down.
fn run_load(clients: usize, stmts_per_client: usize, wal: Option<&PathBuf>) {
    let config = ServeConfig {
        workers: clients.min(8),
        wal_dir: wal.cloned(),
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr).expect("connect");
        c.expect_ok(DDL).expect("ddl");
        c.quit().expect("quit");
    }
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for i in 0..stmts_per_client {
                    let id = (k * stmts_per_client + i) as i64;
                    let g = id / 4;
                    let stmt = format!("INSERT INTO load VALUES ({id}, {g}, {});", g * 7 % 101);
                    c.expect_ok(&stmt).expect("insert admitted");
                }
                c.quit().expect("quit");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown().expect("shutdown");
}

fn main() {
    banner("B8 — serve throughput (wire protocol, concurrent sessions)");
    let configs: &[(usize, usize, bool)] = &[(1, 500, false), (4, 500, false), (4, 500, true)];
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &(clients, per_client, durable) in configs {
        let id = format!(
            "serve_{clients}x{per_client}{}",
            if durable { "_wal" } else { "" }
        );
        let dir = wal_dir(&id);
        let wal = durable.then(|| dir.clone());
        let mut record = measure(&id, 3, || {
            if let Some(d) = &wal {
                let _ = std::fs::remove_dir_all(d);
            }
            run_load(clients, per_client, wal.as_ref());
        });
        let total = (clients * per_client) as f64;
        let per_sec = total / record.median.as_secs_f64();
        record
            .extra
            .push(("stmts_per_sec".to_owned(), JsonValue::Float(per_sec)));
        rows.push(vec![
            id.clone(),
            fmt_duration(record.median),
            format!("{per_sec:.0}"),
        ]);
        records.push(record);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "{}",
        render_table(&["config", "median", "stmts/sec"], &rows)
    );
    match write_bench_json("serve", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}
