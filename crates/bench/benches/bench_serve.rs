//! B8 — server throughput: concurrent sessions streaming `INSERT`s
//! through the wire protocol into one constraint-guarded table, with
//! and without WAL durability. Emits `BENCH_serve.json` with the
//! sustained statements/sec of each configuration (plus the `serve.*`
//! obs counters when built with `--features obs`).

use sqlnf_bench::{banner, fmt_duration, measure, render_table, write_bench_json};
use sqlnf_obs::json::JsonValue;
use sqlnf_serve::{Client, ServeConfig, Server};
use std::path::PathBuf;

const DDL: &str = "CREATE TABLE load (
    id  INT NOT NULL,
    grp INT NOT NULL,
    val INT NOT NULL,
    CONSTRAINT pk CERTAIN KEY (id),
    CONSTRAINT fd CERTAIN FD (grp) -> (val)
);";

fn wal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqlnf_bench_serve_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `clients` concurrent sessions, each inserting
/// `stmts_per_client` unique rows; returns when all sessions are done
/// and the server has shut down.
fn run_load(clients: usize, stmts_per_client: usize, wal: Option<&PathBuf>) {
    let config = ServeConfig {
        workers: clients.min(8),
        wal_dir: wal.cloned(),
        ..ServeConfig::default()
    };
    let server = Server::start(config).expect("bind");
    let addr = server.local_addr();
    {
        let mut c = Client::connect(addr).expect("connect");
        c.expect_ok(DDL).expect("ddl");
        c.quit().expect("quit");
    }
    let handles: Vec<_> = (0..clients)
        .map(|k| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                for i in 0..stmts_per_client {
                    let id = (k * stmts_per_client + i) as i64;
                    let g = id / 4;
                    let stmt = format!("INSERT INTO load VALUES ({id}, {g}, {});", g * 7 % 101);
                    c.expect_ok(&stmt).expect("insert admitted");
                }
                c.quit().expect("quit");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    server.shutdown().expect("shutdown");
}

fn main() {
    banner("B8 — serve throughput (wire protocol, worker-count sweep)");
    // Worker count tracks client count, so the sweep shows how the
    // lock tiers behave as concurrency grows under WAL durability.
    let configs: &[(usize, usize, bool)] = &[
        (1, 500, false),
        (4, 500, false),
        (1, 500, true),
        (2, 500, true),
        (4, 500, true),
        (8, 500, true),
    ];
    let mut records = Vec::new();
    let mut rows = Vec::new();
    for &(clients, per_client, durable) in configs {
        let id = format!(
            "serve_{clients}x{per_client}{}",
            if durable { "_wal" } else { "" }
        );
        let dir = wal_dir(&id);
        let wal = durable.then(|| dir.clone());
        let record = measure(&id, 3, || {
            if let Some(d) = &wal {
                let _ = std::fs::remove_dir_all(d);
            }
            run_load(clients, per_client, wal.as_ref());
        });
        let total = (clients * per_client) as f64;
        let per_sec = total / record.median.as_secs_f64();

        // Per-verb latency percentiles and per-lock-tier wait shares
        // come straight from the span histograms the runs accumulated
        // (all zero when built without `--features obs`).
        let timer = |name: &str| record.obs.timers.iter().find(|t| t.name == name);
        let (sql_p50, sql_p99) = timer("serve.verb.sql")
            .map(|t| (t.p50_ns(), t.p99_ns()))
            .unwrap_or((0, 0));
        let dispatch_ns = timer("serve.dispatch").map_or(0, |t| t.total_ns).max(1) as f64;
        let share = |name: &str| timer(name).map_or(0, |t| t.total_ns) as f64 / dispatch_ns;
        let shares: Vec<(String, f64)> = ["snapshot", "registry", "table", "wal"]
            .iter()
            .map(|tier| {
                (
                    format!("lock_share_{tier}"),
                    share(&format!("serve.lock_wait.{tier}")),
                )
            })
            .chain([
                ("wal_append_share".to_owned(), share("serve.wal.append")),
                ("wal_fsync_share".to_owned(), share("serve.wal.fsync")),
            ])
            .collect();
        let wal_lock_share = share("serve.lock_wait.wal");

        let mut record = record;
        record
            .extra
            .push(("stmts_per_sec".to_owned(), JsonValue::Float(per_sec)));
        record
            .extra
            .push(("sql_p50_ns".to_owned(), JsonValue::Int(sql_p50 as i128)));
        record
            .extra
            .push(("sql_p99_ns".to_owned(), JsonValue::Int(sql_p99 as i128)));
        for (name, value) in shares {
            record.extra.push((name, JsonValue::Float(value)));
        }
        rows.push(vec![
            id.clone(),
            fmt_duration(record.median),
            format!("{per_sec:.0}"),
            fmt_duration(std::time::Duration::from_nanos(sql_p50)),
            fmt_duration(std::time::Duration::from_nanos(sql_p99)),
            format!("{:.1}%", wal_lock_share * 100.0),
        ]);
        records.push(record);
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "{}",
        render_table(
            &[
                "config",
                "median",
                "stmts/sec",
                "sql p50",
                "sql p99",
                "wal-lock share"
            ],
            &rows
        )
    );
    match write_bench_json("serve", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write BENCH_serve.json: {e}"),
    }
}
