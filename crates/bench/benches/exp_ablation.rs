//! A1 — ablations of the two implementation choices DESIGN.md calls
//! out, plus the update-anomaly accounting on the contractor workload.
//!
//! 1. **Null-row probing in c-FD checks**: pattern-indexed probe
//!    (shipped) versus the naive all-rows scan, on an adult-sized
//!    slice. The index is what keeps c-FD discovery within the same
//!    order of magnitude as classical discovery.
//! 2. **Violation pick order in Algorithm 3**: deferring violations
//!    whose new attributes feed other LHSs (shipped) versus naive
//!    first-found order. On the contractor schema the naive order
//!    inflates an LHS and produces a larger schema (3896 vs 3720
//!    cells).
//! 3. **Update anomalies**: bound positions before vs after VRNF
//!    normalization of contractor.

use sqlnf_bench::{banner, fmt_duration, render_table, timed};
use sqlnf_core::anomaly::anomaly_score;
use sqlnf_core::decompose::vrnf_decompose;
use sqlnf_datagen::contractor::{contractor, contractor_sigma};
use sqlnf_datagen::naumann::adult_like;
use sqlnf_discovery::partition::Encoded;
use sqlnf_model::prelude::*;

/// Naive reference for the weak-pair probe: scan every row per
/// null-bearing row.
fn naive_cfd_holds(enc: &Encoded, rows: usize, x: AttrSet, a: Attr) -> bool {
    use sqlnf_discovery::check::{fd_targets_holding, partition_for, Semantics};
    // Partition part is shared; re-do the null probing naively.
    let p = partition_for(enc, x, Semantics::Possible);
    let within = fd_targets_holding(enc, x, &p, AttrSet::single(a), Semantics::Possible);
    if within.is_empty() {
        return false;
    }
    for r in 0..rows {
        if enc.is_total_on(r, x) {
            continue;
        }
        for s in 0..rows {
            if s != r && enc.weakly_similar(r, s, x) && enc.code(r, a) != enc.code(s, a) {
                return false;
            }
        }
    }
    true
}

fn main() {
    banner("A1.1: c-FD null probing — pattern index vs naive scan");
    let adult = {
        // A 12k-row slice keeps the naive side affordable.
        let full = adult_like(7);
        Table::from_rows(
            full.schema().clone(),
            full.rows().iter().take(12_000).cloned().collect::<Vec<_>>(),
        )
    };
    let enc = Encoded::new(&adult);
    let s = adult.schema().clone();
    // A c-FD that actually holds with nulls in the LHS is the worst
    // case (no early exit): education determines education_num, and
    // workclass (nullable) is padding in the LHS.
    let x = s.set(&["education", "workclass"]);
    let target = s.a("education_num");

    let (indexed_result, t_indexed) = timed(|| {
        sqlnf_discovery::check::fd_holds(
            &enc,
            x,
            target,
            sqlnf_discovery::check::Semantics::Certain,
        )
    });
    let (naive_result, t_naive) = timed(|| naive_cfd_holds(&enc, adult.len(), x, target));
    assert_eq!(indexed_result, naive_result);
    print!(
        "{}",
        render_table(
            &["probe", "verdict", "time"],
            &[
                vec![
                    "pattern index (shipped)".into(),
                    indexed_result.to_string(),
                    fmt_duration(t_indexed)
                ],
                vec![
                    "naive full scan".into(),
                    naive_result.to_string(),
                    fmt_duration(t_naive)
                ],
            ]
        )
    );
    assert!(
        t_naive > t_indexed,
        "index must beat the scan on a holding c-FD with frequent nulls"
    );

    banner("A1.2: Algorithm 3 pick order — deferred vs naive (contractor)");
    let table = contractor(20_160_626);
    let sigma = contractor_sigma(table.schema());
    let (t, nfs) = (table.schema().attrs(), table.schema().nfs());
    // Shipped heuristic.
    let d = vrnf_decompose(t, nfs, &sigma).unwrap();
    let cells: usize = d.apply(&table).iter().map(Table::cell_count).sum();
    // Naive order simulation: decompose by FD3 first (the url-producing
    // FD), then continue with the shipped algorithm on the remainder —
    // this replays the inflated run observed before the heuristic.
    let fd3 = sigma.fds[2];
    let (rest_attrs, xy_attrs) = sqlnf_core::decompose::split_by_fd(t, &fd3);
    let rest_sigma = Sigma {
        fds: vec![sigma.fds[0]],
        keys: vec![],
    };
    // FD2's LHS lost `url`; its surviving consequence has the FD3 LHS
    // substituted in, which is what a naive order must decompose by.
    let inflated_lhs = (sigma.fds[1].lhs - xy_attrs) | fd3.lhs;
    let inflated = Fd::certain(
        inflated_lhs,
        inflated_lhs | (sigma.fds[1].rhs - sigma.fds[1].lhs),
    );
    let rest_sigma = rest_sigma.with(inflated);
    let d_rest = vrnf_decompose(rest_attrs, nfs & rest_attrs, &rest_sigma).unwrap();
    // d_rest's components carry original attribute ids, so they apply
    // to the original table directly (projections compose).
    let mut naive_cells = sqlnf_model::project::project_set(&table, xy_attrs, "xy").cell_count();
    for part in d_rest.apply(&table) {
        naive_cells += part.cell_count();
    }
    print!(
        "{}",
        render_table(
            &["pick order", "total cells"],
            &[
                vec![
                    "defer attribute-consuming FDs (shipped)".into(),
                    cells.to_string()
                ],
                vec!["naive first-found".into(), naive_cells.to_string()],
            ]
        )
    );
    assert_eq!(cells, 3720);
    assert!(naive_cells > cells, "heuristic must not be worse");

    banner("A1.3: update anomalies before/after normalization (contractor)");
    let before = anomaly_score(&table, &sigma);
    let parts = d.apply(&table);
    let mut after = 0usize;
    for (comp, part) in d.components.iter().zip(&parts) {
        // Translate the component's sigma into the part's indices.
        let translate = |set: AttrSet| table.schema().translate_into_projection(comp.attrs, set);
        let mut local = Sigma::new();
        for fd in &comp.sigma.fds {
            local.add(Fd {
                lhs: translate(fd.lhs),
                rhs: translate(fd.rhs),
                modality: fd.modality,
            });
        }
        for k in &comp.sigma.keys {
            local.add(Key {
                attrs: translate(k.attrs),
                modality: k.modality,
            });
        }
        after += anomaly_score(part, &local);
    }
    print!(
        "{}",
        render_table(
            &["schema", "bound positions (update anomalies)"],
            &[
                vec!["contractor (1 table)".into(), before.to_string()],
                vec!["normalized (4 tables)".into(), after.to_string()],
            ]
        )
    );
    assert_eq!(after, 0, "VRNF output must be anomaly-free");
    assert!(
        before >= 448,
        "anomalies cover at least the redundant values"
    );
    println!("\nablations confirm the shipped choices ✓");
}
