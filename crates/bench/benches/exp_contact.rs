//! E3 — the `contact_draft_lookup` qualitative experiment
//! (Figures 7–8 and the surrounding Section 7 text).
//!
//! Reproduced claims:
//! * the snippet satisfies σ: first,last,city →_w …,state and the
//!   accidental (first,city) / (last,city) variants, but not
//!   first,last → state (people move);
//! * city →_w state already fails on the snippet;
//! * the snippet's VRNF decomposition is Figure 8: a 10-row set
//!   projection and the 14-row multiset remainder, lossless;
//! * on the full table (124 rows), decomposing by σ keeps 105 distinct
//!   projected rows — 19 sources of potential inconsistency removed —
//!   and the c-key c⟨first,last,city⟩ holds on the projection.

use sqlnf_bench::banner;
use sqlnf_datagen::contact::{contact_full, contact_sigma_fd, fig7_snippet};
use sqlnf_model::prelude::*;

fn main() {
    banner("E3: contact_draft_lookup (Figures 7 and 8)");

    // --- Snippet (Figure 7) ---
    let snip = fig7_snippet();
    let s = snip.schema().clone();
    println!("snippet I ({} rows):\n{snip}", snip.len());

    let flc = s.set(&["first_name", "last_name", "city"]);
    let full_rhs = s.set(&["first_name", "last_name", "city", "state_id"]);
    let sigma_fd = Fd::certain(flc, full_rhs);
    assert!(satisfies_fd(&snip, &sigma_fd));
    println!("σ: first,last,city ->w first,last,city,state   holds ✓");
    for lhs in [
        s.set(&["first_name", "city"]),
        s.set(&["last_name", "city"]),
    ] {
        let fd = Fd::certain(lhs, full_rhs);
        assert!(satisfies_fd(&snip, &fd));
    }
    println!("accidental variants (first,city) / (last,city)  hold ✓ (as the paper notes)");
    let move_fd = Fd::possible(s.set(&["first_name", "last_name"]), s.set(&["state_id"]));
    assert!(!satisfies_fd(&snip, &move_fd));
    println!("first,last -> state                             fails ✓ (Stacey Brennan moved)");
    assert!(!satisfies_fd(
        &snip,
        &Fd::certain(s.set(&["city"]), s.set(&["state_id"]))
    ));
    println!("city ->w state                                  fails ✓ (NULL city rows)");

    // --- Figure 8: the decomposition of the snippet ---
    let (rest, proj) = sqlnf_core::decompose::decompose_instance_by_cfd(&snip, &sigma_fd);
    println!("\nVRNF decomposition of the snippet (Figure 8):");
    println!(
        "set projection [f,l,city,state] ({} rows):\n{proj}",
        proj.len()
    );
    println!("multiset remainder [[id,f,l,city]] ({} rows)", rest.len());
    assert_eq!(proj.len(), 10);
    assert_eq!(rest.len(), 14);
    let joined = join(&rest, &proj, "rejoined");
    let reordered = reorder_columns(&joined, s.column_names());
    assert!(snip.multiset_eq(&reordered));
    println!("join of the components = I (lossless) ✓");
    let ps = proj.schema().clone();
    assert!(satisfies_key(
        &proj,
        &Key::certain(ps.set(&["first_name", "last_name", "city"]))
    ));
    println!("c<first,last,city> holds on the projection ✓");

    // --- Full table (124 × 14) ---
    banner("full contact_draft_lookup (generated, 124 rows × 14 columns)");
    let full = contact_full(20_160_626);
    let fs = full.schema().clone();
    let fd = contact_sigma_fd(&fs);
    assert!(satisfies_fd(&full, &fd));
    let (rest_f, proj_f) = sqlnf_core::decompose::decompose_instance_by_cfd(&full, &fd);
    println!(
        "rows: base {}  set-projection {}  multiset remainder {}",
        full.len(),
        proj_f.len(),
        rest_f.len()
    );
    println!(
        "eliminated sources of potential inconsistency: {} (paper: 19, 124 → 105 rows)",
        full.len() - proj_f.len()
    );
    assert_eq!(full.len(), 124);
    assert_eq!(proj_f.len(), 105);
    let pfs = proj_f.schema().clone();
    assert!(satisfies_key(
        &proj_f,
        &Key::certain(pfs.set(&["first_name", "last_name", "city"]))
    ));
    println!("c<first,last,city> holds on the 105-row projection ✓");
    let joined_f = join(&rest_f, &proj_f, "rejoined");
    let reordered_f = reorder_columns(&joined_f, fs.column_names());
    assert!(full.multiset_eq(&reordered_f));
    println!("lossless ✓");
}
