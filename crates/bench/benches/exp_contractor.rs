//! E4 — the `contractor` normalization experiment (Section 7).
//!
//! Runs Algorithm 3 on the 173 × 22 contractor table with the three
//! λ-FDs and reproduces the paper's numbers exactly:
//!
//! * four tables of 4/5/4/17 attributes with 38/67/73/173 rows;
//! * 448 redundant data values eliminated
//!   (1 dmerc_rgn + 135 status + 106 contractor_version +
//!   106 status_flag + 100 url), plus 134 redundant dmerc_rgn nulls;
//! * total cells 3806 → 3720;
//! * the decomposition is lossless.

use sqlnf_bench::{banner, render_table};
use sqlnf_core::decompose::vrnf_decompose;
use sqlnf_datagen::contractor::{contractor, contractor_sigma};
use sqlnf_model::prelude::*;
use std::collections::HashMap;

fn main() {
    banner("E4: VRNF normalization of contractor (Section 7)");
    let table = contractor(20_160_626);
    let schema = table.schema().clone();
    let sigma = contractor_sigma(&schema);
    println!(
        "input: {} rows × {} columns = {} cells",
        table.len(),
        schema.arity(),
        table.cell_count()
    );
    println!("Σ = {}", sigma.display(&schema));
    assert!(satisfies_all(&table, &sigma));

    let decomposition = vrnf_decompose(schema.attrs(), schema.nfs(), &sigma)
        .expect("total FDs in, decomposition out");
    let parts = decomposition.apply(&table);

    // Report the components.
    let mut rows_out = Vec::new();
    for (comp, part) in decomposition.components.iter().zip(&parts) {
        rows_out.push(vec![
            schema.display_set(comp.attrs),
            if comp.multiset { "multiset" } else { "set" }.to_string(),
            comp.attrs.len().to_string(),
            part.len().to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(&["component", "kind", "attrs", "rows"], &rows_out)
    );

    // Check the paper's component shapes: (attrs, rows) multiset-exact.
    let mut shape: Vec<(usize, usize)> = decomposition
        .components
        .iter()
        .zip(&parts)
        .map(|(c, p)| (c.attrs.len(), p.len()))
        .collect();
    shape.sort();
    assert_eq!(shape, vec![(4, 38), (4, 73), (5, 67), (17, 173)]);

    // Cells.
    let cells: usize = parts.iter().map(Table::cell_count).sum();
    println!(
        "\ncells: {} → {} (paper: 3806 → 3720)",
        table.cell_count(),
        cells
    );
    assert_eq!(table.cell_count(), 3806);
    assert_eq!(cells, 3720);

    // Redundant value eliminations per RHS column: occurrences removed
    // by replacing the base column with one row per group.
    let mut value_elims: HashMap<&str, usize> = HashMap::new();
    let mut null_elims: HashMap<&str, usize> = HashMap::new();
    for fd in &sigma.fds {
        let groups = sqlnf_model::project::project_set(&table, fd.lhs, "g").len();
        let _ = groups;
        for a in fd.rhs - fd.lhs {
            // Group rows by LHS value and count per-group extras.
            let mut seen: HashMap<Vec<Value>, (Value, usize)> = HashMap::new();
            for t in table.rows() {
                let key: Vec<Value> = fd.lhs.iter().map(|x| t.get(x).clone()).collect();
                let e = seen.entry(key).or_insert_with(|| (t.get(a).clone(), 0));
                e.1 += 1;
            }
            let col = schema.column_name(a);
            for (v, count) in seen.values() {
                let extras = count - 1;
                if v.is_null() {
                    *null_elims.entry(col).or_insert(0) += extras;
                } else {
                    *value_elims.entry(col).or_insert(0) += extras;
                }
            }
        }
    }
    let mut elim_rows: Vec<Vec<String>> = Vec::new();
    let mut total_values = 0usize;
    for col in [
        "dmerc_rgn",
        "status",
        "contractor_version",
        "status_flag",
        "url",
    ] {
        let v = value_elims.get(col).copied().unwrap_or(0);
        let n = null_elims.get(col).copied().unwrap_or(0);
        total_values += v;
        elim_rows.push(vec![col.to_string(), v.to_string(), n.to_string()]);
    }
    println!();
    print!(
        "{}",
        render_table(
            &[
                "column",
                "redundant values removed",
                "redundant nulls removed"
            ],
            &elim_rows
        )
    );
    println!("\ntotal redundant data values eliminated: {total_values} (paper: 448)");
    assert_eq!(total_values, 448);
    assert_eq!(value_elims["dmerc_rgn"], 1);
    assert_eq!(value_elims["status"], 135);
    assert_eq!(value_elims["contractor_version"], 106);
    assert_eq!(value_elims["status_flag"], 106);
    assert_eq!(value_elims["url"], 100);
    assert_eq!(null_elims.get("dmerc_rgn").copied().unwrap_or(0), 134);
    println!("per-column breakdown matches the paper (1/135/106/106/100 + 134 nulls) ✓");

    // Losslessness.
    assert!(decomposition.is_lossless_on(&table));
    println!("join of all four components reproduces the 173-row table (lossless) ✓");
}
