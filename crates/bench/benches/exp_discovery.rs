//! E6 — the discovery comparison table of Section 7 ("Discovering
//! c-FDs"): classical FD discovery (nulls as values, the convention of
//! the Papenbrock et al. study) versus our c-FD discovery, on the three
//! Naumann-style data sets:
//!
//! ```text
//! data set       cols  rows    FDs   time   c-FDs  time
//! breast-cancer    11    699    46   0.5s      54   0.1s
//! adult            14  48842    78   5.9s      78  10.4s
//! hepatitis        20    155  8250   0.8s     264   1.2s
//! ```
//!
//! Shapes under test: counts of classical FDs and c-FDs are
//! *incomparable* (either can be larger); the wide-short `hepatitis`
//! regime explodes with accidental classical FDs while c-FDs stay
//! moderate; c-FD discovery stays within the same order of magnitude
//! of runtime as classical discovery. Absolute counts and times differ
//! (synthetic data, different hardware, LHS size capped at 4).
//!
//! Beyond the paper's two columns, each data set is also mined under
//! the weak (some-possible-world) semantics (`weak_<name>` entries in
//! the JSON): its check runs on the same stripped partitions as
//! classical/possible with no probe-index tail, so on probe-dominated
//! shapes it lands between classical and certain.
//!
//! Every measurement goes through `measure()`/`write_bench_json`, so a
//! run leaves a counter-annotated `BENCH_discovery.json` behind (build
//! with `--features obs` for the counters; see `bench-baselines/` for
//! the committed before/after pair of the columnar-storage work).

use sqlnf_bench::{banner, fmt_duration, measure, render_table, write_bench_json, BenchRecord};
use sqlnf_datagen::naumann::{adult_like, breast_cancer_like, hepatitis_like, million_like};
use sqlnf_discovery::check::Semantics;
use sqlnf_discovery::mine::{mine_fds, MinerConfig, MiningResult};
use sqlnf_model::table::Table;

fn run(name: &str, table: &Table, max_lhs: usize, records: &mut Vec<BenchRecord>) -> Vec<String> {
    // One timing pass for the big table, a median of three for the
    // small ones (same policy for baseline and optimized runs).
    let runs = if table.len() > 10_000 { 1 } else { 3 };
    let mut classical: Option<MiningResult> = None;
    let r_classical = measure(&format!("classical_{name}"), runs, || {
        classical = Some(mine_fds(
            table,
            MinerConfig::new(Semantics::Classical).with_max_lhs(max_lhs),
        ));
    });
    let mut certain: Option<MiningResult> = None;
    let r_certain = measure(&format!("certain_{name}"), runs, || {
        certain = Some(mine_fds(
            table,
            MinerConfig::new(Semantics::Certain).with_max_lhs(max_lhs),
        ));
    });
    let mut weak: Option<MiningResult> = None;
    let r_weak = measure(&format!("weak_{name}"), runs, || {
        weak = Some(mine_fds(
            table,
            MinerConfig::new(Semantics::Weak).with_max_lhs(max_lhs),
        ));
    });
    let row = vec![
        name.to_string(),
        table.schema().arity().to_string(),
        table.len().to_string(),
        classical.expect("measured").fd_count_attrwise().to_string(),
        fmt_duration(r_classical.median),
        certain.expect("measured").fd_count_attrwise().to_string(),
        fmt_duration(r_certain.median),
        weak.expect("measured").fd_count_attrwise().to_string(),
        fmt_duration(r_weak.median),
    ];
    records.push(r_classical);
    records.push(r_certain);
    records.push(r_weak);
    row
}

fn main() {
    banner("E6: classical FD discovery vs c-FD discovery (Section 7 table)");
    println!("(synthetic data sets with the paper's dimensions; LHS capped at 4 attributes)\n");

    let bc = breast_cancer_like(20_160_626);
    let hep = hepatitis_like(20_160_626);
    let adult = adult_like(20_160_626);

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut rows = vec![
        run("breast-cancer", &bc, 4, &mut records),
        run("adult", &adult, 4, &mut records),
        run("hepatitis", &hep, 4, &mut records),
    ];

    // Beyond the paper's table: the million-row telemetry regime the
    // columnar dictionary-code storage targets (8 low-cardinality
    // columns, planted site→region and device_class→firmware FDs).
    // LHS capped at 3 — at this scale the interesting comparison is
    // rows/second, not lattice depth. Built after the paper tables are
    // measured so its ~350 MB of row storage doesn't sit on the heap
    // (and in the allocator's free lists) during their timings.
    let million = million_like(20_160_626);
    rows.push(run("million", &million, 3, &mut records));
    drop(million);

    print!(
        "{}",
        render_table(
            &["data set", "cols", "rows", "FDs", "time", "c-FDs", "time", "w-FDs", "time",],
            &rows
        )
    );
    println!(
        "\npaper:         cols  rows    FDs  time   c-FDs  time\n\
         breast-cancer    11   699     46  0.5s      54  0.1s\n\
         adult            14 48842     78  5.9s      78 10.4s\n\
         hepatitis        20   155   8250  0.8s     264  1.2s"
    );

    // Bonus row: parallel c-FD mining on adult — not part of the
    // paper's table (its miner is single-threaded), shown for the
    // engineering headroom. Meaningful only on multi-core boxes; the
    // level-parallel miner is exact regardless (see
    // `mine::tests::parallel_equals_serial`).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut par: Option<MiningResult> = None;
    let r_par = measure("certain_adult_parallel", 1, || {
        par = Some(mine_fds(
            &adult,
            MinerConfig::new(Semantics::Certain)
                .with_max_lhs(4)
                .with_threads(0),
        ));
    });
    println!(
        "\nc-FDs on adult with {cores} core(s): {} FDs in {} (serial above: {})",
        par.expect("measured").fd_count_attrwise(),
        fmt_duration(r_par.median),
        rows[1][6]
    );
    records.push(r_par);

    // Thread sweep: c-FD mining on adult at fixed thread counts, one
    // timing pass each (`certain_adult_t1` … `t8`). The cost-balanced
    // work queue makes the extra threads count wherever the hardware
    // has the cores; the sweep records what this box actually does.
    banner("thread sweep: certain_adult at 1/2/4/8 threads");
    for threads in [1usize, 2, 4, 8] {
        let r = measure(&format!("certain_adult_t{threads}"), 1, || {
            std::hint::black_box(mine_fds(
                &adult,
                MinerConfig::new(Semantics::Certain)
                    .with_max_lhs(4)
                    .with_threads(threads),
            ));
        });
        println!("  {} threads: {}", threads, fmt_duration(r.median));
        records.push(r);
    }

    match write_bench_json("discovery", &records) {
        Ok(path) => println!("bench json: {}", path.display()),
        Err(e) => eprintln!("bench json not written: {e}"),
    }

    // Shape assertions.
    let fd_counts: Vec<usize> = rows.iter().map(|r| r[3].parse().unwrap()).collect();
    let cfd_counts: Vec<usize> = rows.iter().map(|r| r[5].parse().unwrap()).collect();
    // hepatitis (row 2) explodes classically but not certainly.
    assert!(
        fd_counts[2] > 5 * cfd_counts[2],
        "wide-short regime must favour classical-FD explosion: {} vs {}",
        fd_counts[2],
        cfd_counts[2]
    );
    assert!(
        fd_counts[2] > fd_counts[0] && fd_counts[2] > fd_counts[1],
        "hepatitis must dominate the classical counts"
    );
    println!("\nshape check: hepatitis explodes classically, c-FD counts stay moderate ✓");
}
