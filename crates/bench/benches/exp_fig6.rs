//! E2 — Figure 6: the distribution of relative projection sizes for
//! λ-FDs (and for nn-FDs with non-key LHSs).
//!
//! The paper's λ-FD distribution is *bimodal*: no relative projection
//! size falls between 52 % and 78 % — the low population is genuine
//! compression, the high population is "should really be a key but the
//! data is dirty". The nn-FD distribution shows no such gap. This bench
//! mines the corpus, prints both distributions as text histograms, and
//! checks the gap.

use sqlnf_bench::{banner, histogram01, timed};
use sqlnf_datagen::corpus::corpus;
use sqlnf_discovery::approx::key_error_of_table;
use sqlnf_discovery::classify::classify_table;

fn main() {
    banner("E2: Figure 6 — relative sizes of projections on λ-FDs");
    let tables = corpus(20_160_626);
    // (ratio, c-key g3 error of the LHS) per λ-FD.
    let ((lambda_points, nn_ratios), elapsed) = timed(|| {
        let mut lambda = Vec::new();
        let mut nn = Vec::new();
        for ct in &tables {
            let cls = classify_table(&ct.table, 3);
            for l in &cls.lambda_fds {
                let key_err = key_error_of_table(&ct.table, l.lhs, true);
                lambda.push((l.relative_projection_size, key_err));
            }
            nn.extend(cls.nn_nonkey_ratios.iter().copied());
        }
        (lambda, nn)
    });
    let lambda_ratios: Vec<f64> = lambda_points.iter().map(|(r, _)| *r).collect();
    println!(
        "classified corpus in {}",
        sqlnf_bench::fmt_duration(elapsed)
    );

    println!("\nλ-FDs ({} total; paper: 83):", lambda_ratios.len());
    print!("{}", histogram01(&lambda_ratios, 10));
    println!(
        "\nnn-FDs with non-key LHS ({} total; paper: 620):",
        nn_ratios.len()
    );
    print!("{}", histogram01(&nn_ratios, 10));

    // The paper's observed gap: no λ ratio in (52 %, 78 %).
    let in_gap = lambda_ratios
        .iter()
        .filter(|&&r| r > 0.52 && r < 0.78)
        .count();
    let low = lambda_ratios.iter().filter(|&&r| r <= 0.52).count();
    let high = lambda_ratios.iter().filter(|&&r| r >= 0.78).count();
    println!("\nλ ratios ≤52%: {low}   in gap (52–78%): {in_gap}   ≥78%: {high}");
    assert!(low > 0, "low (genuinely compressing) population missing");
    assert!(high > 0, "high (dirty almost-key) population missing");
    assert!(
        in_gap * 10 <= lambda_ratios.len(),
        "gap is not sparse: {in_gap}/{} λ-FDs inside (52%,78%)",
        lambda_ratios.len()
    );
    println!("shape check: bimodal λ distribution with a sparse 52–78% band ✓");

    // The paper's manual diagnosis of the high population — "the LHSs
    // should really be certain keys, but are not due to dirty data" —
    // made quantitative: g₃ key error of the LHS per population.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let high_errs: Vec<f64> = lambda_points
        .iter()
        .filter(|(r, _)| *r >= 0.78)
        .map(|(_, e)| *e)
        .collect();
    let low_errs: Vec<f64> = lambda_points
        .iter()
        .filter(|(r, _)| *r <= 0.52)
        .map(|(_, e)| *e)
        .collect();
    println!(
        "\nmean c-key g3 error of the λ-LHS: high population {:.1}% (almost keys), \
         low population {:.1}% (genuine compression)",
        mean(&high_errs) * 100.0,
        mean(&low_errs) * 100.0
    );
    assert!(
        mean(&high_errs) < mean(&low_errs),
        "the high-ratio population must be nearer to key-ness"
    );
    println!("shape check: high-ratio λ-LHSs are nearly keys (small g3), low-ratio ones are not ✓");
}
