//! E0 — a mechanized walkthrough of the paper's running examples:
//! Figures 1–5, Examples 1–3, the Section 4 worked derivations, and
//! the Section 5/6 normal-form verdicts. Every claim printed here is
//! asserted.

use sqlnf_bench::banner;
use sqlnf_core::axioms::DerivationEngine;
use sqlnf_core::decompose::decompose_instance_by_cfd;
use sqlnf_core::implication::Reasoner;
use sqlnf_core::normal_forms::{is_bcnf, is_sql_bcnf};
use sqlnf_core::redundancy::{redundant_positions, value_redundant_positions};
use sqlnf_datagen::paper;
use sqlnf_model::prelude::*;

fn main() {
    banner("E0: Figures 1–5 and Examples 1–3, mechanized");

    // --- Figure 1 + Figure 2 ---
    let fig1 = paper::purchase_fig1();
    let s = fig1.schema().clone();
    let ic = s.set(&["item", "catalog"]);
    let price = s.set(&["price"]);
    assert!(satisfies_fd(&fig1, &Fd::certain(ic, price)));
    assert!(!satisfies_key(&fig1, &Key::possible(ic)));
    let sigma1 = Sigma::new().with(Fd::certain(ic, price));
    let red = redundant_positions(&fig1, &sigma1);
    assert_eq!(red.len(), 2, "the two Fitbit/Amazon 240s are redundant");
    println!("Fig 1: item,catalog -> price holds, {{item,catalog}} is no key, 2 redundant 240s ✓");

    let (rest, xy) = decompose_instance_by_cfd(&fig1, &Fd::certain(ic, price));
    assert_eq!((rest.len(), xy.len()), (4, 3));
    let joined = join(&rest, &xy, "j");
    assert!(fig1.multiset_eq(&reorder_columns(&joined, s.column_names())));
    assert!(satisfies_key(
        &xy,
        &Key::certain(xy.schema().set(&["item", "catalog"]))
    ));
    println!(
        "Fig 2: lossless decomposition into purchase[oic] (4 rows) and purchase[icp] (3 rows) ✓"
    );

    // --- Figure 3 ---
    let fig3 = paper::fig3_duplicates();
    let all3 = fig3.schema().attrs();
    for x in all3.subsets() {
        assert!(!satisfies_key(&fig3, &Key::possible(x)));
        for y in all3.subsets() {
            assert!(satisfies_fd(&fig3, &Fd::possible(x, y)));
            assert!(satisfies_fd(&fig3, &Fd::certain(x, y)));
        }
    }
    println!("Fig 3: duplicates satisfy every FD and violate every key ✓");

    // --- Figure 4: lossy p-FD decomposition ---
    let fig4 = paper::purchase_fig4();
    let s4 = fig4.schema().clone();
    let ic4 = s4.set(&["item", "catalog"]);
    let p4 = s4.set(&["price"]);
    assert!(satisfies_fd(&fig4, &Fd::possible(ic4, p4)));
    let (rest4, xy4) = decompose_instance_by_cfd(&fig4, &Fd::certain(ic4, p4));
    let joined4 = join(&rest4, &xy4, "j");
    assert_eq!(joined4.len(), 4, "2 rows × 2 matching projections");
    assert!(!fig4.multiset_eq(&reorder_columns(&joined4, s4.column_names())));
    println!("Fig 4: decomposition by the (merely) possible FD is lossy ✓");

    // --- Figure 5: lossless c-FD decomposition, residual redundancy ---
    let fig5 = paper::purchase_fig5();
    let s5 = fig5.schema().clone();
    let cfd = Fd::certain(s5.set(&["item", "catalog"]), s5.set(&["price"]));
    assert!(satisfies_fd(&fig5, &cfd));
    let (rest5, xy5) = decompose_instance_by_cfd(&fig5, &cfd);
    let joined5 = join(&rest5, &xy5, "j");
    assert!(fig5.multiset_eq(&reorder_columns(&joined5, s5.column_names())));
    let sigma5 = Sigma::new().with(Fd::certain(
        xy5.schema().set(&["item", "catalog"]),
        xy5.schema().set(&["price"]),
    ));
    let resid = redundant_positions(&xy5, &sigma5);
    assert_eq!(resid.len(), 2, "both 240s in I[icp] stay redundant");
    assert!(satisfies_key(
        &xy5,
        &Key::possible(xy5.schema().set(&["item", "catalog"]))
    ));
    assert!(!satisfies_key(
        &xy5,
        &Key::certain(xy5.schema().set(&["item", "catalog"]))
    ));
    println!("Fig 5: c-FD decomposition lossless; I[icp] keeps 2 redundant 240s; p-key holds, c-key fails ✓");

    // --- Example 1 ---
    let e1 = paper::example1_employees();
    let es = e1.schema().clone();
    assert!(!satisfies_fd(
        &e1,
        &Fd::certain(es.set(&["name", "dob"]), es.set(&["dob"]))
    ));
    println!("Ex 1: the c-FD nd ->w d rejects the dob-less John Smith ✓");

    // --- Example 2 (spot checks; the full matrix is a unit test) ---
    let e2 = paper::example2_relation();
    let e2s = e2.schema().clone();
    assert!(satisfies_fd(
        &e2,
        &Fd::possible(e2s.set(&["dept"]), e2s.set(&["dept"]))
    ));
    assert!(!satisfies_fd(
        &e2,
        &Fd::certain(e2s.set(&["dept"]), e2s.set(&["dept"]))
    ));
    println!("Ex 2: d ->s d holds while d ->w d fails (⊥ vs CS) ✓");

    // --- Section 4: derivations and closures ---
    banner("Section 4: reasoning");
    let t = AttrSet::first_n(4);
    let schema = paper::purchase_schema(&["order_id", "catalog", "price"]);
    let nfs = schema.nfs();
    let sigma = paper::section4_sigma(&schema);
    let eng = DerivationEngine::saturate(t, nfs, &sigma);
    let goal = Constraint::Fd(Fd::possible(
        schema.set(&["order_id", "item"]),
        schema.set(&["price"]),
    ));
    assert!(eng.derives(&goal));
    println!("derivation of oi ->s p from {{oi ->s c, ic ->w p}}:");
    print!("{}", eng.render_proof(&goal, &schema).unwrap());
    let r = Reasoner::new(t, nfs, &sigma);
    assert_eq!(r.p_closure(schema.set(&["order_id", "item"])), t);
    assert_eq!(
        r.c_closure(schema.set(&["order_id", "item"])),
        schema.set(&["order_id"])
    );
    println!("closures: oi*p = oicp, oi*c = o ✓ (so oi ->w p is not implied)");
    let cx = paper::section4_counterexample();
    assert!(satisfies_all(&cx, &sigma));
    assert!(!satisfies_fd(
        &cx,
        &Fd::certain(schema.set(&["order_id", "item"]), schema.set(&["price"]))
    ));
    println!("…witnessed by the Section 4 counterexample instance ✓");

    // --- Section 5/6: normal-form verdicts ---
    banner("Sections 5–6: normal forms");
    let oip = schema.set(&["order_id", "item", "price"]);
    let sigma_nf = Sigma::new().with(Fd::certain(ic, price));
    assert!(!is_bcnf(t, oip, &sigma_nf));
    println!("(oicp, oip, {{ic ->w p}}) is not in BCNF / RFNF ✓");
    let sigma_ok = Sigma::new()
        .with(Fd::certain(s.set(&["order_id", "item", "catalog"]), price))
        .with(Key::certain(t));
    assert!(is_bcnf(t, AttrSet::EMPTY, &sigma_ok));
    println!("(oicp, ∅, {{oic ->w p, c<oicp>}}) is in BCNF / RFNF ✓");
    let ex3 = Sigma::new().with(Fd::certain(s.set(&["order_id", "item", "catalog"]), t));
    assert_eq!(is_sql_bcnf(t, oip, &ex3), Ok(false));
    println!("Example 3's schema is not in SQL-BCNF / VRNF ✓");

    // Section 6.2's instance: only null positions are redundant.
    let oic_inst = paper::section62_oic_instance();
    let os = oic_inst.schema().clone();
    let sigma62 = Sigma::new().with(Fd::certain(
        os.set(&["order_id", "item", "catalog"]),
        os.set(&["catalog"]),
    ));
    let red62 = redundant_positions(&oic_inst, &sigma62);
    let vred62 = value_redundant_positions(&oic_inst, &sigma62);
    assert_eq!(red62.len(), 2);
    assert!(vred62.is_empty());
    println!("Section 6.2: exactly the two ⊥ positions are redundant — value-redundancy-free ✓");

    println!("\nall figure/example claims verified ✓");
}
