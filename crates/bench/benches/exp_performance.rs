//! E5 — the query/update performance comparison of Section 7.
//!
//! The paper scales `contractor` by a cross product with a `new` column
//! of 1..=1000 (173 000 rows) and measures:
//!
//! * validating the c-FD `new, city, url →_w dmerc_rgn, status` on the
//!   non-normalized table: **122 ms**, versus validating the c-key
//!   `c⟨new, city, url⟩` on the normalized 38 000-row table: **15 ms**
//!   — consistency maintenance is roughly an order of magnitude
//!   cheaper after normalization;
//! * selecting all tuples from the non-normalized table: **2 957 ms**,
//!   versus the join of all normalized tables: **3 150 ms** — a few
//!   percent of query overhead.
//!
//! Absolute numbers differ from the paper's 2014-era hardware and
//! engine; the claims under test are the ratios.

use sqlnf_bench::{banner, fmt_duration, measure, render_table, write_bench_json};
use sqlnf_core::decompose::vrnf_decompose;
use sqlnf_datagen::contractor::{contractor, contractor_sigma};
use sqlnf_model::prelude::*;

/// Cross product with a `new` column of 1..=n.
fn scale(table: &Table, n: i64) -> Table {
    let mut numbers = Table::new(TableSchema::new("numbers", ["new"], &["new"]));
    for i in 1..=n {
        numbers.push(tuple![i]);
    }
    join(&numbers, table, format!("{}_x{n}", table.schema().name()))
}

fn main() {
    banner("E5: validation and query performance, normalized vs not (Section 7)");
    let base = contractor(20_160_626);
    let sigma = contractor_sigma(base.schema());

    // Normalize first (at base scale), then scale both representations.
    let decomposition = vrnf_decompose(base.schema().attrs(), base.schema().nfs(), &sigma)
        .expect("contractor Σ is total FDs");
    let parts = decomposition.apply(&base);

    let scaled = scale(&base, 1000);
    let scaled_parts: Vec<Table> = parts.iter().map(|p| scale(p, 1000)).collect();
    println!(
        "non-normalized: {} rows; normalized: {} tables of {} rows",
        scaled.len(),
        scaled_parts.len(),
        scaled_parts
            .iter()
            .map(|t| t.len().to_string())
            .collect::<Vec<_>>()
            .join("/")
    );

    // --- Consistency validation ---
    let ss = scaled.schema().clone();
    let cfd = Fd::certain(
        ss.set(&["new", "city", "url"]),
        ss.set(&["dmerc_rgn", "status"]),
    );
    let r_cfd = measure("validate_cfd_nonnormalized", 5, || {
        assert!(satisfies_fd(&scaled, &cfd));
    });
    let t_cfd = r_cfd.median;

    // The normalized component carrying (city, url, dmerc_rgn, status).
    let table1 = scaled_parts
        .iter()
        .find(|t| t.schema().attr("dmerc_rgn").is_some() && t.schema().arity() == 5)
        .expect("FD1 component (plus the new column)");
    let t1s = table1.schema().clone();
    let ckey = Key::certain(t1s.set(&["new", "city", "url"]));
    let r_key = measure("validate_ckey_normalized", 5, || {
        assert!(satisfies_key(table1, &ckey));
    });
    let t_key = r_key.median;

    // --- Query: select all vs join of components ---
    // "Select all" materializes a result set (as the paper's DBMS
    // does); the normalized variant materializes the same result via
    // the equality join of all four components.
    let r_select = measure("select_all_nonnormalized", 5, || {
        let result = Table::from_rows(scaled.schema().clone(), scaled.rows().to_vec());
        assert_eq!(result.len(), scaled.len());
        std::hint::black_box(&result);
    });
    let t_select = r_select.median;
    let r_join = measure("select_all_join_normalized", 5, || {
        let joined = join_all(scaled_parts.iter(), "joined");
        assert_eq!(joined.len(), scaled.len());
        std::hint::black_box(&joined);
    });
    let t_join = r_join.median;

    match write_bench_json("performance", &[r_cfd, r_key, r_select, r_join]) {
        Ok(path) => println!("bench report: {}", path.display()),
        Err(e) => println!("bench report not written: {e}"),
    }

    println!();
    print!(
        "{}",
        render_table(
            &["operation", "this run", "paper"],
            &[
                vec![
                    "validate c-FD on non-normalized".into(),
                    fmt_duration(t_cfd),
                    "122ms".into()
                ],
                vec![
                    "validate c-key on normalized".into(),
                    fmt_duration(t_key),
                    "15ms".into()
                ],
                vec![
                    "select all from non-normalized".into(),
                    fmt_duration(t_select),
                    "2957ms".into()
                ],
                vec![
                    "select all from join of normalized".into(),
                    fmt_duration(t_join),
                    "3150ms".into()
                ],
            ]
        )
    );

    let validation_gain = t_cfd.as_secs_f64() / t_key.as_secs_f64().max(1e-9);
    let query_cost = t_join.as_secs_f64() / t_select.as_secs_f64().max(1e-9);
    println!("\nvalidation speedup (paper ≈ 8.1×): {validation_gain:.1}×");
    println!("query slowdown from joining (paper ≈ 1.07×): {query_cost:.2}×");
    println!(
        "(the paper's 1.07× is measured inside a DBMS whose scan path dominates both\n\
         queries; our in-memory engine has no such constant factor, so the join's\n\
         relative overhead is larger — the claim under test is that it stays a small\n\
         constant, not an asymptotic blowup)"
    );
    assert!(
        validation_gain > 2.0,
        "validation on the normalized schema must be substantially cheaper"
    );
    assert!(
        query_cost < 40.0,
        "join overhead must stay a modest constant factor, got {query_cost:.1}×"
    );
    println!("shape check: normalization makes consistency validation much cheaper, querying a little slower ✓");
}
