//! E1 — the "Quantitative Insights" count table of Section 7.
//!
//! Mines the 130-table corpus and reports the number of minimal FDs per
//! category, one per LHS, next to the paper's values:
//!
//! ```text
//! nn-FDs  p-FDs  c-FDs  t-FDs  λ-FDs
//!    847    557    419    205     83        (paper, real data sets)
//! ```
//!
//! The corpus is synthetic (see DESIGN.md "Substitutions"), so the
//! absolute values differ; the qualitative claims under test are the
//! containment chain p ≥ c ≥ t ≥ λ, a λ count that is a small fraction
//! of c, and nn-FDs dominating (most mined LHSs are null-free).

use sqlnf_bench::{banner, render_table, timed};
use sqlnf_datagen::corpus::{corpus, CORPUS_TABLES};
use sqlnf_discovery::classify::{classify_table, Counts};

fn main() {
    banner("E1: frequency of FD classes over the corpus (Section 7 count table)");
    let tables = corpus(20_160_626);
    let ((counts, mined_tables), elapsed) = timed(|| {
        let mut counts = Counts::default();
        let mut mined = 0usize;
        for ct in &tables {
            let cls = classify_table(&ct.table, 3);
            counts.add(&cls);
            mined += 1;
        }
        (counts, mined)
    });

    println!(
        "mined {mined_tables} tables (of {CORPUS_TABLES}) in {}",
        sqlnf_bench::fmt_duration(elapsed)
    );
    println!();
    let rows = vec![
        vec![
            "this run (synthetic corpus)".to_string(),
            counts.nn.to_string(),
            counts.p.to_string(),
            counts.c.to_string(),
            counts.t.to_string(),
            counts.lambda.to_string(),
        ],
        vec![
            "paper (130 mined tables)".to_string(),
            "847".to_string(),
            "557".to_string(),
            "419".to_string(),
            "205".to_string(),
            "83".to_string(),
        ],
    ];
    print!(
        "{}",
        render_table(
            &["source", "nn-FDs", "p-FDs", "c-FDs", "t-FDs", "λ-FDs"],
            &rows
        )
    );

    // Shape assertions: fail loudly if the qualitative claims break.
    assert!(counts.p >= counts.c, "p-FDs must dominate c-FDs");
    assert!(counts.c >= counts.t, "c-FDs must dominate t-FDs");
    assert!(counts.t >= counts.lambda, "t-FDs must dominate λ-FDs");
    assert!(counts.lambda > 0, "corpus must exhibit λ-FDs");
    assert!(counts.nn > counts.p, "null-free LHSs dominate in practice");
    println!("\nshape check: nn > p ≥ c ≥ t ≥ λ > 0 ✓");
}
