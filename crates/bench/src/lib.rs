//! # sqlnf-bench
//!
//! Shared helpers for the benchmark and experiment harness. Each bench
//! target under `benches/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for recorded results); this crate provides the
//! text-table rendering and timing utilities they share.

#![warn(missing_docs)]

use sqlnf_obs::json::JsonValue;
use sqlnf_obs::ObsReport;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Renders an aligned text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            line.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&headers_owned, &widths));
    out.push('\n');
    out.push_str(
        &widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  "),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Runs `f` once and returns its wall-clock duration with the result.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `n` times and returns the median duration (coarse but
/// stable enough for the experiment tables; Criterion handles the
/// micro-benches).
pub fn median_time(n: usize, mut f: impl FnMut()) -> Duration {
    assert!(n >= 1);
    let mut times: Vec<Duration> = (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

/// Formats a duration in engineering style (µs / ms / s).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_micros();
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

/// One measurement annotated with the observability counters that
/// accumulated while it ran. With the `obs` feature of `sqlnf-obs`
/// compiled out (the default for standalone bench runs), the report is
/// empty and only the timing is recorded.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Measurement identifier, e.g. `validate_cfd_nonnormalized`.
    pub id: String,
    /// Median wall-clock time over the measured runs.
    pub median: Duration,
    /// Counter/timer snapshot of the *last* measured run sequence
    /// (reset before measuring, captured after).
    pub obs: ObsReport,
    /// Extra bench-specific fields serialized into the JSON entry
    /// (e.g. a throughput figure).
    pub extra: Vec<(String, JsonValue)>,
}

impl BenchRecord {
    /// The median in nanoseconds, saturating.
    pub fn median_ns(&self) -> u64 {
        self.median.as_nanos().min(u64::MAX as u128) as u64
    }
}

/// Measures `f` (median over `n` runs) and snapshots the observability
/// counters the runs produced, for [`write_bench_json`].
pub fn measure(id: &str, n: usize, f: impl FnMut()) -> BenchRecord {
    sqlnf_obs::reset();
    let median = median_time(n, f);
    BenchRecord {
        id: id.to_owned(),
        median,
        obs: sqlnf_obs::report(),
        extra: Vec::new(),
    }
}

/// Where [`write_bench_json`] puts its files: `$SQLNF_BENCH_DIR`, or
/// `target/bench-reports` relative to the working directory.
pub fn bench_report_dir() -> PathBuf {
    std::env::var_os("SQLNF_BENCH_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new("target").join("bench-reports"))
}

/// Writes records as `BENCH_<name>.json` inside `dir` and returns the
/// file path. Each entry carries its timing plus the counters/timers
/// snapshot taken by [`measure`].
pub fn write_bench_json_in(
    dir: &Path,
    name: &str,
    records: &[BenchRecord],
) -> std::io::Result<PathBuf> {
    let entries = JsonValue::Array(
        records
            .iter()
            .map(|r| {
                let mut fields = vec![
                    ("id".to_string(), JsonValue::Str(r.id.clone())),
                    (
                        "median_ns".to_string(),
                        JsonValue::Int(r.median_ns() as i128),
                    ),
                ];
                fields.extend(r.extra.iter().cloned());
                if let JsonValue::Object(obs_fields) = r.obs.to_json_value() {
                    fields.extend(obs_fields);
                }
                JsonValue::Object(fields)
            })
            .collect(),
    );
    let doc = JsonValue::Object(vec![
        ("bench".to_string(), JsonValue::Str(name.to_owned())),
        (
            "obs_enabled".to_string(),
            JsonValue::Bool(sqlnf_obs::ENABLED),
        ),
        ("entries".to_string(), entries),
    ]);
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, doc.to_json())?;
    Ok(path)
}

/// [`write_bench_json_in`] into the default [`bench_report_dir`].
pub fn write_bench_json(name: &str, records: &[BenchRecord]) -> std::io::Result<PathBuf> {
    write_bench_json_in(&bench_report_dir(), name, records)
}

/// Prints a banner separating experiment sections.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// A simple text histogram over [0, 1] with `buckets` buckets, used to
/// render Figure 6's distribution in the terminal.
pub fn histogram01(values: &[f64], buckets: usize) -> String {
    let mut counts = vec![0usize; buckets];
    for &v in values {
        let b = ((v * buckets as f64) as usize).min(buckets - 1);
        counts[b] += 1;
    }
    let max = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = i as f64 / buckets as f64;
        let hi = (i + 1) as f64 / buckets as f64;
        let bar = "#".repeat(c * 40 / max);
        out.push_str(&format!(
            "{:>3.0}%–{:>3.0}%  {:>4}  {bar}\n",
            lo * 100.0,
            hi * 100.0,
            c
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns() {
        let s = render_table(
            &["data set", "FDs", "time"],
            &[
                vec!["adult".into(), "78".into(), "5.9".into()],
                vec!["breast-cancer".into(), "46".into(), "0.5".into()],
            ],
        );
        assert!(s.contains("data set"));
        assert!(s.contains("breast-cancer"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
        let m = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(m.as_nanos() > 0);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(3)), "3.00s");
    }

    #[test]
    fn measure_and_write_bench_json() {
        let rec = measure("toy", 3, || {
            sqlnf_obs::count!("bench.test.toy_work");
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert_eq!(rec.id, "toy");
        assert!(rec.median_ns() > 0);

        let dir = std::env::temp_dir().join("sqlnf_bench_json_test");
        let path = write_bench_json_in(&dir, "unit", &[rec]).unwrap();
        assert!(path.ends_with("BENCH_unit.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = sqlnf_obs::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("bench").and_then(|v| v.as_str()), Some("unit"));
        let entries = doc.get("entries").and_then(|v| v.as_array()).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(
            entries[0]
                .get("median_ns")
                .and_then(|v| v.as_u64())
                .unwrap()
                > 0
        );
        // When instrumentation is compiled in, the entry is annotated
        // with the counters the run produced.
        if sqlnf_obs::ENABLED {
            assert!(
                entries[0]
                    .get("counters")
                    .and_then(|c| c.get("bench.test.toy_work"))
                    .and_then(|v| v.as_u64())
                    .unwrap_or(0)
                    >= 3
            );
        }
    }

    #[test]
    fn histogram_shapes() {
        let h = histogram01(&[0.1, 0.1, 0.9], 10);
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[1].contains('2'));
        assert!(lines[9].contains('1'));
    }
}
