//! Update-anomaly accounting.
//!
//! Section 1 motivates normalization by update cost: "all occurrences
//! of a redundant data value must be modified consistently". This
//! module quantifies that cost on instances — the paper's future-work
//! item (ii) asks what the normal forms achieve in terms of update
//! anomalies, and the *fan-out* below is the natural measure: how many
//! positions must change in lockstep when one cell is modified.
//!
//! For a position `p = (row, col)`, two rows are *co-bound on `col`*
//! when some FD `X → Y ∈ Σ` with `col ∈ Y − X` makes them (strongly or
//! weakly, per the FD's modality) similar on `X`: the FD then forces
//! their `col`-values to stay equal — and because `col` lies outside
//! `X`, editing the cell cannot escape by breaking the `X`-agreement.
//! Equality must hold along chains of such pairs, so the **update
//! fan-out** of `p` is the size of `p`'s connected component in the
//! co-binding graph. Fan-out 1 means the cell can be edited alone (no
//! anomaly); the schema-level theorems say VRNF schemata admit only
//! fan-out-1 non-null positions. (Positions bound through *internal*
//! FD parts — `col ∈ X ∩ Y` — can always deflect an update by breaking
//! the similarity, except via null markers; that residue is what the
//! redundancy module's Definition-4 analysis accounts for.)

use sqlnf_model::attrs::Attr;
use sqlnf_model::constraint::{Modality, Sigma};
use sqlnf_model::similarity::{strongly_similar, weakly_similar};
use sqlnf_model::table::Table;

/// Union-find over row indices.
struct Dsu(Vec<u32>);

impl Dsu {
    fn new(n: usize) -> Dsu {
        Dsu((0..n as u32).collect())
    }
    fn find(&mut self, x: u32) -> u32 {
        if self.0[x as usize] != x {
            let root = self.find(self.0[x as usize]);
            self.0[x as usize] = root;
            root
        } else {
            x
        }
    }
    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra as usize] = rb;
        }
    }
}

/// The update fan-out of every row for column `col`: `fanout[r]` is the
/// number of rows whose `col`-value is transitively bound to row `r`'s.
pub fn update_fanout_column(table: &Table, sigma: &Sigma, col: Attr) -> Vec<usize> {
    let n = table.len();
    let mut dsu = Dsu::new(n);
    for fd in &sigma.fds {
        if !(fd.rhs - fd.lhs).contains(col) {
            continue;
        }
        for i in 0..n {
            for j in i + 1..n {
                let (t, u) = (&table.rows()[i], &table.rows()[j]);
                let bound = match fd.modality {
                    Modality::Possible => strongly_similar(t, u, fd.lhs),
                    Modality::Certain => weakly_similar(t, u, fd.lhs),
                };
                if bound {
                    dsu.union(i as u32, j as u32);
                }
            }
        }
    }
    let mut sizes = vec![0usize; n];
    let roots: Vec<u32> = (0..n as u32).map(|r| dsu.find(r)).collect();
    for &r in &roots {
        sizes[r as usize] += 1;
    }
    roots.iter().map(|&r| sizes[r as usize]).collect()
}

/// Aggregate update-cost statistics for one column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnUpdateCost {
    /// Column measured.
    pub col: Attr,
    /// Largest lock-step group.
    pub max_fanout: usize,
    /// Mean fan-out over rows (1.0 = anomaly-free).
    pub mean_fanout: f64,
    /// Number of positions with fan-out > 1 (each is an update
    /// anomaly waiting to happen).
    pub bound_positions: usize,
}

/// Update-cost statistics for every column of the instance.
pub fn update_cost_report(table: &Table, sigma: &Sigma) -> Vec<ColumnUpdateCost> {
    let mut out = Vec::new();
    for col in table.schema().attrs() {
        let fanout = update_fanout_column(table, sigma, col);
        let n = fanout.len().max(1);
        out.push(ColumnUpdateCost {
            col,
            max_fanout: fanout.iter().copied().max().unwrap_or(1),
            mean_fanout: fanout.iter().sum::<usize>() as f64 / n as f64,
            bound_positions: fanout.iter().filter(|&&f| f > 1).count(),
        });
    }
    out
}

/// Total number of bound (fan-out > 1) positions across all columns —
/// a one-number update-anomaly score for an instance under Σ.
pub fn anomaly_score(table: &Table, sigma: &Sigma) -> usize {
    update_cost_report(table, sigma)
        .iter()
        .map(|c| c.bound_positions)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    /// Figure 1 with ic →_w p: the three Fitbit-240s form one bound
    /// group (rows 0–1 via Amazon/Brookstone? no — via item,catalog
    /// agreement: rows 0 and 2 share (Fitbit, Amazon); row 1 differs on
    /// catalog), so fan-out is 2 for rows 0 and 2.
    #[test]
    fn figure1_price_fanout() {
        let t = TableBuilder::new("p", ["o", "i", "c", "pr"], &[])
            .row(tuple![1i64, "FS", "Amazon", 240i64])
            .row(tuple![1i64, "FS", "Brookstone", 240i64])
            .row(tuple![2i64, "FS", "Amazon", 240i64])
            .row(tuple![2i64, "DD", "Kingtoys", 25i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["i", "c"]), s.set(&["pr"])));
        let fanout = update_fanout_column(&t, &sigma, s.a("pr"));
        assert_eq!(fanout, vec![2, 1, 2, 1]);
        let score = anomaly_score(&t, &sigma);
        assert_eq!(score, 2);
    }

    /// Weak similarity chains: NULL catalog links the Amazon and
    /// Brookstone groups transitively, binding all three 240s.
    #[test]
    fn weak_chains_extend_fanout() {
        let t = TableBuilder::new("p", ["o", "i", "c", "pr"], &[])
            .row(tuple![1i64, "FS", "Amazon", 240i64])
            .row(tuple![1i64, "FS", null, 240i64])
            .row(tuple![2i64, "FS", "Brookstone", 240i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["i", "c"]), s.set(&["pr"])));
        let fanout = update_fanout_column(&t, &sigma, s.a("pr"));
        assert_eq!(fanout, vec![3, 3, 3]);
        // Under the possible FD, the NULL row binds to nothing.
        let sigma_p = Sigma::new().with(Fd::possible(s.set(&["i", "c"]), s.set(&["pr"])));
        let fanout_p = update_fanout_column(&t, &sigma_p, s.a("pr"));
        assert_eq!(fanout_p, vec![1, 1, 1]);
    }

    /// Normalization eliminates the anomaly: the set projection stores
    /// each bound group once, so every fan-out drops to 1.
    #[test]
    fn normalization_removes_anomalies() {
        let t = TableBuilder::new("p", ["o", "i", "c", "pr"], &["o", "i", "c", "pr"])
            .row(tuple![1i64, "FS", "Amazon", 240i64])
            .row(tuple![1i64, "FS", "Brookstone", 240i64])
            .row(tuple![2i64, "FS", "Amazon", 240i64])
            .build();
        let s = t.schema().clone();
        let fd = Fd::certain(s.set(&["i", "c"]), s.set(&["i", "c", "pr"]));
        let sigma = Sigma::new().with(fd);
        assert!(anomaly_score(&t, &sigma) > 0);
        let (_, xy) = crate::decompose::decompose_instance_by_cfd(&t, &fd);
        let xys = xy.schema().clone();
        let child_sigma = Sigma::new().with(Key::certain(xys.set(&["i", "c"])));
        assert_eq!(anomaly_score(&xy, &child_sigma), 0);
    }

    /// Unconstrained columns are always fan-out 1.
    #[test]
    fn unconstrained_columns_are_free() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 1i64])
            .row(tuple![1i64, 1i64])
            .build();
        let sigma = Sigma::new();
        for c in t.schema().attrs() {
            assert_eq!(update_fanout_column(&t, &sigma, c), vec![1, 1]);
        }
        assert_eq!(anomaly_score(&t, &sigma), 0);
    }

    #[test]
    fn report_covers_all_columns() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![7i64, 1i64])
            .row(tuple![7i64, 2i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["b"]), s.set(&["a"])));
        let report = update_cost_report(&t, &sigma);
        assert_eq!(report.len(), 2);
        let a = &report[0];
        assert_eq!(a.max_fanout, 1); // distinct b's bind nothing
        assert_eq!(a.bound_positions, 0);
    }
}
