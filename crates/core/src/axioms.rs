//! The axiomatization 𝔉 ∪ 𝔎 ∪ 𝔉𝔎 (Tables 1–3) as an executable
//! forward-chaining derivation engine.
//!
//! This module exists for two purposes: (1) to make the paper's proof
//! system a first-class, inspectable artifact — [`DerivationEngine`]
//! records which rule produced each derived constraint and can print a
//! proof; and (2) to mechanically validate Theorems 1 and 4: on small
//! schemata, the set of derivable constraints is compared against both
//! the model-theoretic oracle ([`crate::oracle`], completeness *and*
//! soundness) and the linear-time decision procedures
//! ([`crate::implication`]).
//!
//! Saturation is exponential in the number of attributes (the FD space
//! has `4^|T|` elements per modality); use the [`Reasoner`] for real
//! schemata.
//!
//! [`Reasoner`]: crate::implication::Reasoner

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::constraint::{Constraint, Fd, Key, Modality, Sigma};
use std::collections::HashMap;

/// The inference rules of Tables 1–3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Premise of Σ (not a rule application).
    Given,
    /// Reflexivity `⊢ X →_s X`.
    Reflexivity,
    /// L-Augmentation: `X → Y ⊢ XZ → Y`.
    LAugmentation,
    /// Strengthening: `X →_s Y ⊢ X →_w Y` when `X ⊆ T_S`.
    Strengthening,
    /// Union: `X → Y, X → Z ⊢ X → YZ`.
    Union,
    /// Decomposition: `X → YZ ⊢ X → Y`.
    Decomposition,
    /// Pseudo-Transitivity: `X → Y, XY →_w Z ⊢ X → Z`.
    PseudoTransitivity,
    /// Null-Transitivity: `X →_s Y, XY →_s Z ⊢ X →_s Z` when `Y ⊆ T_S`.
    NullTransitivity,
    /// key-Augmentation: `(p/c)⟨X⟩ ⊢ (p/c)⟨XY⟩`.
    KeyAugmentation,
    /// key-Strengthening: `p⟨X⟩ ⊢ c⟨X⟩` when `X ⊆ T_S`.
    KeyStrengthening,
    /// key-Weakening: `c⟨X⟩ ⊢ p⟨X⟩`.
    KeyWeakening,
    /// key-FD-Weakening: `(p/c)⟨X⟩ ⊢ X → Y`.
    KeyFdWeakening,
    /// key-Transitivity: `X → Y, c⟨XY⟩ ⊢ (p/c)⟨X⟩`.
    KeyTransitivity,
    /// key-Null-Transitivity: `X →_s Y, p⟨XY⟩ ⊢ p⟨X⟩` when `Y ⊆ T_S`.
    KeyNullTransitivity,
}

impl Rule {
    /// Short name as used in the paper's tables.
    pub fn short(self) -> &'static str {
        match self {
            Rule::Given => "Σ",
            Rule::Reflexivity => "R",
            Rule::LAugmentation => "A",
            Rule::Strengthening => "S",
            Rule::Union => "U",
            Rule::Decomposition => "D",
            Rule::PseudoTransitivity => "T",
            Rule::NullTransitivity => "NT",
            Rule::KeyAugmentation => "kA",
            Rule::KeyStrengthening => "kS",
            Rule::KeyWeakening => "kW",
            Rule::KeyFdWeakening => "kfW",
            Rule::KeyTransitivity => "kT",
            Rule::KeyNullTransitivity => "kNT",
        }
    }
}

/// A set of enabled inference rules, for studying the axiomatization
/// itself: `DerivationEngine::saturate_with` restricted to a rule
/// subset lets the test suite demonstrate that each rule is
/// *independent* — removing any one loses completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleSet(u16);

impl RuleSet {
    /// All rules of Tables 1–3.
    pub const ALL: RuleSet = RuleSet(u16::MAX);

    fn bit(rule: Rule) -> u16 {
        1 << match rule {
            Rule::Given => 0,
            Rule::Reflexivity => 1,
            Rule::LAugmentation => 2,
            Rule::Strengthening => 3,
            Rule::Union => 4,
            Rule::Decomposition => 5,
            Rule::PseudoTransitivity => 6,
            Rule::NullTransitivity => 7,
            Rule::KeyAugmentation => 8,
            Rule::KeyStrengthening => 9,
            Rule::KeyWeakening => 10,
            Rule::KeyFdWeakening => 11,
            Rule::KeyTransitivity => 12,
            Rule::KeyNullTransitivity => 13,
        }
    }

    /// All rules except `rule` (premises of Σ are always available).
    pub fn without(rule: Rule) -> RuleSet {
        RuleSet(!Self::bit(rule))
    }

    /// Whether applications of `rule` are permitted.
    pub fn contains(self, rule: Rule) -> bool {
        self.0 & Self::bit(rule) != 0
    }
}

/// How a constraint was derived: the rule and its premises.
#[derive(Debug, Clone)]
pub struct Justification {
    /// Rule applied.
    pub rule: Rule,
    /// Premises of the rule application.
    pub premises: Vec<Constraint>,
}

/// One line of a linearized proof.
#[derive(Debug, Clone)]
pub struct ProofStep {
    /// The derived constraint.
    pub constraint: Constraint,
    /// Its justification.
    pub justification: Justification,
}

/// Saturates Σ under the axiomatization and answers derivability
/// queries with proofs.
pub struct DerivationEngine {
    t: AttrSet,
    nfs: AttrSet,
    rules: RuleSet,
    derived: HashMap<Constraint, Justification>,
}

impl DerivationEngine {
    /// Saturates Σ over schema `(t, nfs)` under 𝔉 ∪ 𝔎 ∪ 𝔉𝔎.
    ///
    /// # Panics
    /// Panics when `t` has more than 6 attributes; the saturation space
    /// is `Θ(4^|T|)` and the engine is a verification tool, not a
    /// decision procedure.
    pub fn saturate(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> DerivationEngine {
        Self::saturate_with(t, nfs, sigma, RuleSet::ALL)
    }

    /// Saturates under a restricted rule set (for independence studies;
    /// with [`RuleSet::ALL`] this is [`DerivationEngine::saturate`]).
    pub fn saturate_with(
        t: AttrSet,
        nfs: AttrSet,
        sigma: &Sigma,
        rules: RuleSet,
    ) -> DerivationEngine {
        assert!(
            t.len() <= 6,
            "DerivationEngine saturates an exponential space; use Reasoner for schemas this large"
        );
        assert!(nfs.is_subset(t));
        let mut eng = DerivationEngine {
            t,
            nfs,
            rules,
            derived: HashMap::new(),
        };
        for c in sigma.iter() {
            eng.insert(
                c,
                Justification {
                    rule: Rule::Given,
                    premises: vec![],
                },
            );
        }
        // Reflexivity seeds: X →_s X for all X ⊆ T.
        if rules.contains(Rule::Reflexivity) {
            for x in t.subsets() {
                eng.insert(
                    Constraint::Fd(Fd::possible(x, x)),
                    Justification {
                        rule: Rule::Reflexivity,
                        premises: vec![],
                    },
                );
            }
        }
        eng.run_to_fixpoint();
        eng
    }

    fn insert(&mut self, c: Constraint, j: Justification) -> bool {
        if let std::collections::hash_map::Entry::Vacant(e) = self.derived.entry(c) {
            e.insert(j);
            true
        } else {
            false
        }
    }

    fn fds(&self) -> Vec<Fd> {
        self.derived
            .keys()
            .filter_map(|c| match c {
                Constraint::Fd(f) => Some(*f),
                _ => None,
            })
            .collect()
    }

    fn keys(&self) -> Vec<Key> {
        self.derived
            .keys()
            .filter_map(|c| match c {
                Constraint::Key(k) => Some(*k),
                _ => None,
            })
            .collect()
    }

    fn run_to_fixpoint(&mut self) {
        loop {
            let mut new: Vec<(Constraint, Justification)> = Vec::new();
            let fds = self.fds();
            let keys = self.keys();
            let attrs: Vec<Attr> = self.t.iter().collect();

            // Unary FD rules.
            for &f in &fds {
                // L-Augmentation, one attribute at a time.
                for &a in &attrs {
                    if !f.lhs.contains(a) {
                        let g = Fd {
                            lhs: f.lhs | AttrSet::single(a),
                            rhs: f.rhs,
                            modality: f.modality,
                        };
                        new.push((
                            Constraint::Fd(g),
                            Justification {
                                rule: Rule::LAugmentation,
                                premises: vec![Constraint::Fd(f)],
                            },
                        ));
                    }
                }
                // Strengthening.
                if f.modality == Modality::Possible && f.lhs.is_subset(self.nfs) {
                    new.push((
                        Constraint::Fd(Fd::certain(f.lhs, f.rhs)),
                        Justification {
                            rule: Rule::Strengthening,
                            premises: vec![Constraint::Fd(f)],
                        },
                    ));
                }
                // Decomposition, one attribute at a time.
                for a in f.rhs {
                    let g = Fd {
                        lhs: f.lhs,
                        rhs: f.rhs - AttrSet::single(a),
                        modality: f.modality,
                    };
                    new.push((
                        Constraint::Fd(g),
                        Justification {
                            rule: Rule::Decomposition,
                            premises: vec![Constraint::Fd(f)],
                        },
                    ));
                }
            }

            // Binary FD rules.
            for &f in &fds {
                for &g in &fds {
                    // Union: same LHS, same modality.
                    if f.lhs == g.lhs && f.modality == g.modality {
                        new.push((
                            Constraint::Fd(Fd {
                                lhs: f.lhs,
                                rhs: f.rhs | g.rhs,
                                modality: f.modality,
                            }),
                            Justification {
                                rule: Rule::Union,
                                premises: vec![Constraint::Fd(f), Constraint::Fd(g)],
                            },
                        ));
                    }
                    // Pseudo-Transitivity: X → Y, XY →_w Z ⊢ X → Z
                    // (the conclusion inherits the first premise's
                    // modality, the middle premise is certain).
                    if g.modality == Modality::Certain && g.lhs == f.lhs | f.rhs {
                        new.push((
                            Constraint::Fd(Fd {
                                lhs: f.lhs,
                                rhs: g.rhs,
                                modality: f.modality,
                            }),
                            Justification {
                                rule: Rule::PseudoTransitivity,
                                premises: vec![Constraint::Fd(f), Constraint::Fd(g)],
                            },
                        ));
                    }
                    // Null-Transitivity: X →_s Y, XY →_s Z, Y ⊆ T_S
                    // ⊢ X →_s Z.
                    if f.modality == Modality::Possible
                        && g.modality == Modality::Possible
                        && g.lhs == f.lhs | f.rhs
                        && f.rhs.is_subset(self.nfs)
                    {
                        new.push((
                            Constraint::Fd(Fd::possible(f.lhs, g.rhs)),
                            Justification {
                                rule: Rule::NullTransitivity,
                                premises: vec![Constraint::Fd(f), Constraint::Fd(g)],
                            },
                        ));
                    }
                }
            }

            // Key rules.
            for &k in &keys {
                for &a in &attrs {
                    if !k.attrs.contains(a) {
                        new.push((
                            Constraint::Key(Key {
                                attrs: k.attrs | AttrSet::single(a),
                                modality: k.modality,
                            }),
                            Justification {
                                rule: Rule::KeyAugmentation,
                                premises: vec![Constraint::Key(k)],
                            },
                        ));
                    }
                }
                match k.modality {
                    Modality::Possible => {
                        if k.attrs.is_subset(self.nfs) {
                            new.push((
                                Constraint::Key(Key::certain(k.attrs)),
                                Justification {
                                    rule: Rule::KeyStrengthening,
                                    premises: vec![Constraint::Key(k)],
                                },
                            ));
                        }
                    }
                    Modality::Certain => {
                        new.push((
                            Constraint::Key(Key::possible(k.attrs)),
                            Justification {
                                rule: Rule::KeyWeakening,
                                premises: vec![Constraint::Key(k)],
                            },
                        ));
                    }
                }
                // key-FD-Weakening: (p/c)⟨X⟩ ⊢ X → T (Decomposition
                // then yields every Y).
                let modality = k.modality;
                new.push((
                    Constraint::Fd(Fd {
                        lhs: k.attrs,
                        rhs: self.t,
                        modality,
                    }),
                    Justification {
                        rule: Rule::KeyFdWeakening,
                        premises: vec![Constraint::Key(k)],
                    },
                ));
            }

            // Interaction rules with FD premises.
            for &f in &fds {
                let xy = f.lhs | f.rhs;
                // key-Transitivity: X → Y, c⟨XY⟩ ⊢ (p/c)⟨X⟩, modality
                // uniform with the FD.
                let ckey = Constraint::Key(Key::certain(xy));
                if self.derived.contains_key(&ckey) {
                    new.push((
                        Constraint::Key(Key {
                            attrs: f.lhs,
                            modality: f.modality,
                        }),
                        Justification {
                            rule: Rule::KeyTransitivity,
                            premises: vec![Constraint::Fd(f), ckey],
                        },
                    ));
                }
                // key-Null-Transitivity: X →_s Y, p⟨XY⟩, Y ⊆ T_S ⊢ p⟨X⟩.
                let pkey = Constraint::Key(Key::possible(xy));
                if f.modality == Modality::Possible
                    && f.rhs.is_subset(self.nfs)
                    && self.derived.contains_key(&pkey)
                {
                    new.push((
                        Constraint::Key(Key::possible(f.lhs)),
                        Justification {
                            rule: Rule::KeyNullTransitivity,
                            premises: vec![Constraint::Fd(f), pkey],
                        },
                    ));
                }
            }

            let mut changed = false;
            for (c, j) in new {
                // Disabled rules (independence studies) contribute
                // nothing; their candidate conclusions are discarded.
                if !self.rules.contains(j.rule) {
                    continue;
                }
                if self.insert(c, j) {
                    changed = true;
                }
            }
            if !changed {
                return;
            }
        }
    }

    /// Whether `φ ∈ Σ⁺` under the axiomatization.
    pub fn derives(&self, phi: &Constraint) -> bool {
        self.derived.contains_key(phi)
    }

    /// Every derived constraint (the finite fragment of Σ⁺ over `T`).
    pub fn all_derived(&self) -> impl Iterator<Item = &Constraint> {
        self.derived.keys()
    }

    /// A linearized proof of `φ` from Σ (premises before conclusions),
    /// or `None` when `φ` is not derivable.
    pub fn proof(&self, phi: &Constraint) -> Option<Vec<ProofStep>> {
        if !self.derives(phi) {
            return None;
        }
        let mut steps: Vec<ProofStep> = Vec::new();
        let mut emitted: std::collections::HashSet<Constraint> = Default::default();
        let mut stack = vec![(*phi, false)];
        while let Some((c, expanded)) = stack.pop() {
            if emitted.contains(&c) {
                continue;
            }
            let j = &self.derived[&c];
            if expanded {
                emitted.insert(c);
                steps.push(ProofStep {
                    constraint: c,
                    justification: j.clone(),
                });
            } else {
                stack.push((c, true));
                for p in &j.premises {
                    stack.push((*p, false));
                }
            }
        }
        Some(steps)
    }

    /// Renders a proof with column names.
    pub fn render_proof(
        &self,
        phi: &Constraint,
        schema: &sqlnf_model::schema::TableSchema,
    ) -> Option<String> {
        let steps = self.proof(phi)?;
        let mut out = String::new();
        for (i, s) in steps.iter().enumerate() {
            let premises: Vec<String> = s
                .justification
                .premises
                .iter()
                .map(|p| p.display(schema))
                .collect();
            out.push_str(&format!(
                "{:>3}. {}   [{}{}{}]\n",
                i + 1,
                s.constraint.display(schema),
                s.justification.rule.short(),
                if premises.is_empty() { "" } else { ": " },
                premises.join(", ")
            ));
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::Reasoner;
    use crate::oracle::oracle_implies;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn section4_derivation_example() {
        // From Σ = {oi →_s c, ic →_w p}: L-augment ic →_w p to
        // oic →_w p, then pseudo-transitivity gives oi →_s p.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Fd::certain(s(&[1, 2]), s(&[3])));
        let eng = DerivationEngine::saturate(t, nfs, &sigma);
        let goal = Constraint::Fd(Fd::possible(s(&[0, 1]), s(&[3])));
        assert!(eng.derives(&goal));
        let proof = eng.proof(&goal).unwrap();
        assert_eq!(proof.last().unwrap().constraint, goal);
        // Premises precede conclusions.
        let mut seen = std::collections::HashSet::new();
        for step in &proof {
            for p in &step.justification.premises {
                assert!(seen.contains(p), "premise {p} used before derived");
            }
            seen.insert(step.constraint);
        }
        // And oi →_w p is *not* derivable.
        assert!(!eng.derives(&Constraint::Fd(Fd::certain(s(&[0, 1]), s(&[3])))));
    }

    #[test]
    fn key_null_transitivity_example() {
        // Σ = {oi →_s c, p⟨oic⟩}, c ∈ T_S ⊢ p⟨oi⟩ (Section 4.2).
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Key::possible(s(&[0, 1, 2])));
        let eng = DerivationEngine::saturate(t, nfs, &sigma);
        assert!(eng.derives(&Constraint::Key(Key::possible(s(&[0, 1])))));
    }

    #[test]
    fn proof_renders() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new().with(Fd::certain(s(&[0]), s(&[1])));
        let eng = DerivationEngine::saturate(t, t, &sigma);
        let schema = sqlnf_model::schema::TableSchema::total("r", ["a", "b", "c"]);
        let goal = Constraint::Fd(Fd::certain(s(&[0, 2]), s(&[1])));
        let rendered = eng.render_proof(&goal, &schema).unwrap();
        assert!(rendered.contains("[A:"));
        assert!(rendered.contains("{a,c} ->w {b}"));
        // Not derivable: no proof.
        assert!(eng
            .render_proof(&Constraint::Key(Key::possible(s(&[0]))), &schema)
            .is_none());
    }

    /// Independence of the axioms: for each rule there is an implied
    /// constraint that becomes underivable when that single rule is
    /// removed (while remaining derivable — and true, per the oracle —
    /// with all rules). The paper states soundness/completeness, not
    /// minimality — and indeed exactly one rule turns out to be
    /// redundant: key-Weakening follows from Reflexivity and
    /// key-Transitivity (`X →_s X` and `c⟨X⟩` give `p⟨X⟩` by kT's
    /// uniform-modality reading); see
    /// [`key_weakening_is_derivable`]. Every other rule is independent.
    #[test]
    fn each_rule_is_necessary() {
        use crate::oracle::oracle_implies;
        let a = || s(&[0]);
        let b = || s(&[1]);
        let c = || s(&[2]);
        let ab = || s(&[0, 1]);
        // (rule, Σ, T_S, φ) with Σ ⊨ φ but Σ ⊬ φ without the rule.
        let cases: Vec<(Rule, Sigma, AttrSet, Constraint)> = vec![
            (
                Rule::Reflexivity,
                Sigma::new(),
                AttrSet::EMPTY,
                Constraint::Fd(Fd::possible(a(), a())),
            ),
            (
                Rule::LAugmentation,
                Sigma::new().with(Fd::possible(a(), b())),
                AttrSet::EMPTY,
                Constraint::Fd(Fd::possible(s(&[0, 2]), b())),
            ),
            (
                Rule::Strengthening,
                Sigma::new().with(Fd::possible(a(), b())),
                a(),
                Constraint::Fd(Fd::certain(a(), b())),
            ),
            (
                Rule::Union,
                Sigma::new()
                    .with(Fd::possible(a(), b()))
                    .with(Fd::possible(a(), c())),
                AttrSet::EMPTY,
                Constraint::Fd(Fd::possible(a(), s(&[1, 2]))),
            ),
            (
                Rule::Decomposition,
                Sigma::new().with(Fd::possible(a(), s(&[1, 2]))),
                AttrSet::EMPTY,
                Constraint::Fd(Fd::possible(a(), b())),
            ),
            (
                Rule::PseudoTransitivity,
                Sigma::new()
                    .with(Fd::possible(a(), b()))
                    .with(Fd::certain(ab(), c())),
                AttrSet::EMPTY,
                Constraint::Fd(Fd::possible(a(), c())),
            ),
            (
                Rule::NullTransitivity,
                Sigma::new()
                    .with(Fd::possible(a(), b()))
                    .with(Fd::possible(ab(), c())),
                b(),
                Constraint::Fd(Fd::possible(a(), c())),
            ),
            (
                Rule::KeyAugmentation,
                Sigma::new().with(Key::possible(a())),
                AttrSet::EMPTY,
                Constraint::Key(Key::possible(ab())),
            ),
            (
                Rule::KeyStrengthening,
                Sigma::new().with(Key::possible(a())),
                a(),
                Constraint::Key(Key::certain(a())),
            ),
            (
                Rule::KeyFdWeakening,
                Sigma::new().with(Key::possible(a())),
                AttrSet::EMPTY,
                Constraint::Fd(Fd::possible(a(), b())),
            ),
            (
                Rule::KeyTransitivity,
                Sigma::new()
                    .with(Fd::certain(a(), b()))
                    .with(Key::certain(ab())),
                AttrSet::EMPTY,
                Constraint::Key(Key::certain(a())),
            ),
            (
                Rule::KeyNullTransitivity,
                Sigma::new()
                    .with(Fd::possible(a(), b()))
                    .with(Key::possible(ab())),
                b(),
                Constraint::Key(Key::possible(a())),
            ),
        ];
        let t = s(&[0, 1, 2]);
        for (rule, sigma, nfs, phi) in cases {
            // The constraint really is implied…
            assert!(
                oracle_implies(t, nfs, &sigma, &phi),
                "{rule:?}: test case is not semantically implied"
            );
            // …derivable with all rules…
            let full = DerivationEngine::saturate(t, nfs, &sigma);
            assert!(full.derives(&phi), "{rule:?}: not derivable with all rules");
            // …but not without this one.
            let crippled = DerivationEngine::saturate_with(t, nfs, &sigma, RuleSet::without(rule));
            assert!(
                !crippled.derives(&phi),
                "{rule:?} is redundant: {phi} derivable without it"
            );
        }
    }

    /// key-Weakening is the one redundant rule of Tables 2–3: `p⟨X⟩`
    /// follows from `c⟨X⟩` via Reflexivity (`X →_s X`) and
    /// key-Transitivity (`X →_s X, c⟨X⟩ ⊢ p⟨X⟩`). Removing kW alone
    /// loses nothing.
    #[test]
    fn key_weakening_is_derivable() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new().with(Key::certain(s(&[0])));
        let phi = Constraint::Key(Key::possible(s(&[0])));
        let crippled = DerivationEngine::saturate_with(
            t,
            AttrSet::EMPTY,
            &sigma,
            RuleSet::without(Rule::KeyWeakening),
        );
        assert!(crippled.derives(&phi));
        // But removing key-Transitivity as well does lose it.
        let doubly = {
            let mut rules = RuleSet::without(Rule::KeyWeakening);
            rules = RuleSet(rules.0 & RuleSet::without(Rule::KeyTransitivity).0);
            DerivationEngine::saturate_with(t, AttrSet::EMPTY, &sigma, rules)
        };
        assert!(!doubly.derives(&phi));
    }

    /// Soundness and completeness of the axiomatization (Theorems 1 and
    /// 4), mechanized: on 3-attribute schemata, derivability coincides
    /// exactly with model-theoretic implication and with the linear-time
    /// decision procedures, for a diverse pool of constraint sets.
    #[test]
    fn sound_and_complete_vs_oracle() {
        let t = s(&[0, 1, 2]);
        let pools: Vec<Sigma> = vec![
            Sigma::new(),
            Sigma::new().with(Fd::possible(s(&[0]), s(&[1]))),
            Sigma::new().with(Fd::certain(s(&[0]), s(&[1]))),
            Sigma::new()
                .with(Fd::possible(s(&[0]), s(&[1])))
                .with(Fd::certain(s(&[1]), s(&[2]))),
            Sigma::new()
                .with(Fd::certain(s(&[0]), s(&[1, 2])))
                .with(Key::possible(s(&[0, 1]))),
            Sigma::new().with(Key::certain(s(&[0]))),
            Sigma::new()
                .with(Key::possible(s(&[0])))
                .with(Fd::possible(s(&[1]), s(&[0]))),
            Sigma::new()
                .with(Fd::possible(s(&[0]), s(&[1])))
                .with(Key::possible(s(&[0, 1, 2]))),
        ];
        let subsets: Vec<AttrSet> = t.subsets().collect();
        for sigma in &pools {
            for &nfs in &subsets {
                let eng = DerivationEngine::saturate(t, nfs, sigma);
                let r = Reasoner::new(t, nfs, sigma);
                for &x in &subsets {
                    for m in [Modality::Possible, Modality::Certain] {
                        for &y in &subsets {
                            let phi = Constraint::Fd(Fd {
                                lhs: x,
                                rhs: y,
                                modality: m,
                            });
                            let derived = eng.derives(&phi);
                            let truth = oracle_implies(t, nfs, sigma, &phi);
                            assert_eq!(derived, truth, "fd {phi} sigma={sigma:?} nfs={nfs:?}");
                            assert_eq!(r.implies(&phi), truth);
                        }
                        let phi = Constraint::Key(Key {
                            attrs: x,
                            modality: m,
                        });
                        let derived = eng.derives(&phi);
                        let truth = oracle_implies(t, nfs, sigma, &phi);
                        assert_eq!(derived, truth, "key {phi} sigma={sigma:?} nfs={nfs:?}");
                        assert_eq!(r.implies(&phi), truth);
                    }
                }
            }
        }
    }
}
