//! p- and c-closures (Definition 2, Algorithms 1 and 2, Theorem 3).
//!
//! The *p-closure* `X*p` is the set of attributes `A` with
//! `Σ ⊨ X →_s A`; the *c-closure* `X*c` the set with `Σ ⊨ X →_w A`.
//! By Theorem 2 these decide FD implication. Unlike the relational
//! attribute closure, neither is a closure operator: `X*c` need not
//! contain `X`, and `(X*p)*p = X*p` can fail; Lemma 1's weaker
//! monotonicity properties do hold and are property-tested.
//!
//! Two implementations are provided for each closure:
//!
//! * `*_naive` transcribe the paper's Algorithms 1 and 2 verbatim
//!   (quadratic in `|Σ|`);
//! * the default entry points use the counter/watch-list technique of
//!   Beeri & Bernstein, giving the linear time bound of Theorem 3.
//!
//! All functions take Σ as a slice of FDs; callers with keys first apply
//! the FD-projection of Definition 3 ([`sqlnf_model::constraint::Sigma::fd_projection`]).

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::constraint::{Fd, Modality};

/// Algorithm 1 (p-Closure), verbatim.
///
/// ```text
/// C := X
/// repeat
///   for all Y →_w Z ∈ Σ with Y ⊆ C:              C := C ∪ Z
///   for all Y →_s Z ∈ Σ with Y ⊆ (C ∩ T_S) ∪ X:  C := C ∪ Z
/// until C unchanged
/// ```
pub fn p_closure_naive(fds: &[Fd], nfs: AttrSet, x: AttrSet) -> AttrSet {
    let mut c = x;
    loop {
        sqlnf_obs::count!("core.closure.naive_iterations");
        let old = c;
        for fd in fds {
            let fires = match fd.modality {
                Modality::Certain => fd.lhs.is_subset(c),
                Modality::Possible => fd.lhs.is_subset((c & nfs) | x),
            };
            if fires {
                c |= fd.rhs;
            }
        }
        if c == old {
            return c;
        }
        sqlnf_obs::count!("core.closure.expansions", (c - old).len());
    }
}

/// Algorithm 2 (c-Closure), verbatim.
///
/// ```text
/// C := X ∩ T_S
/// repeat
///   for all Y →_w Z ∈ Σ with Y ⊆ C ∪ X:    C := C ∪ Z
///   for all Y →_s Z ∈ Σ with Y ⊆ C ∩ T_S:  C := C ∪ Z
/// until C unchanged
/// ```
pub fn c_closure_naive(fds: &[Fd], nfs: AttrSet, x: AttrSet) -> AttrSet {
    let mut c = x & nfs;
    loop {
        sqlnf_obs::count!("core.closure.naive_iterations");
        let old = c;
        for fd in fds {
            let fires = match fd.modality {
                Modality::Certain => fd.lhs.is_subset(c | x),
                Modality::Possible => fd.lhs.is_subset(c & nfs),
            };
            if fires {
                c |= fd.rhs;
            }
        }
        if c == old {
            return c;
        }
        sqlnf_obs::count!("core.closure.expansions", (c - old).len());
    }
}

/// Which closure a [`ClosureEngine`] run computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    P,
    C,
}

/// Linear-time closure computation via per-FD counters and per-attribute
/// watch lists (the optimization of Beeri & Bernstein cited by the paper
/// for Theorem 3).
///
/// For each FD we precompute which LHS attributes are satisfied at
/// initialization, which can become satisfied when an attribute enters
/// `C`, and which can never be satisfied (making the FD dead):
///
/// * Algorithm 1, c-FD `Y →_w Z`: `A ∈ Y` satisfied iff `A ∈ C`.
/// * Algorithm 1, p-FD `Y →_s Z`: satisfied iff `A ∈ X` or
///   (`A ∈ C` and `A ∈ T_S`); attributes outside `X ∪ T_S` are dead.
/// * Algorithm 2, c-FD: satisfied iff `A ∈ X` or `A ∈ C`.
/// * Algorithm 2, p-FD: satisfied iff `A ∈ C ∩ T_S`; attributes outside
///   `T_S` are dead.
fn closure_linear(fds: &[Fd], nfs: AttrSet, x: AttrSet, kind: Kind) -> AttrSet {
    let mut c = match kind {
        Kind::P => x,
        Kind::C => x & nfs,
    };

    // watchers[a] = indices of FDs waiting on attribute a.
    let mut watchers: Vec<Vec<u32>> = vec![Vec::new(); 128];
    let mut counters: Vec<u32> = Vec::with_capacity(fds.len());
    let mut queue: Vec<Attr> = Vec::new();
    let mut fired: Vec<bool> = vec![false; fds.len()];

    let fire = |i: usize, c: &mut AttrSet, queue: &mut Vec<Attr>, fired: &mut Vec<bool>| {
        if fired[i] {
            return;
        }
        fired[i] = true;
        sqlnf_obs::count!("core.closure.fds_fired");
        let new = fds[i].rhs - *c;
        sqlnf_obs::count!("core.closure.expansions", new.len());
        *c |= fds[i].rhs;
        for a in new {
            queue.push(a);
        }
    };

    for (i, fd) in fds.iter().enumerate() {
        // Attributes of the LHS that are *not* satisfiable at all, those
        // satisfied initially, and those to watch.
        let (dead, watch) = match (kind, fd.modality) {
            (Kind::P, Modality::Certain) => (AttrSet::EMPTY, fd.lhs - c),
            (Kind::P, Modality::Possible) => (fd.lhs - x - nfs, (fd.lhs & nfs) - x - c),
            (Kind::C, Modality::Certain) => (AttrSet::EMPTY, fd.lhs - x - c),
            (Kind::C, Modality::Possible) => (fd.lhs - nfs, (fd.lhs & nfs) - c),
        };
        if !dead.is_empty() {
            counters.push(u32::MAX); // never fires
            continue;
        }
        counters.push(watch.len() as u32);
        for a in watch {
            watchers[a.index()].push(i as u32);
        }
        if watch.is_empty() {
            fire(i, &mut c, &mut queue, &mut fired);
        }
    }

    while let Some(a) = queue.pop() {
        // `a` was just added to `C`. A watcher counts it only if the
        // watch condition referred to membership in `C` (it did, by
        // construction of the watch sets above).
        let ws = std::mem::take(&mut watchers[a.index()]);
        for i in ws {
            let i = i as usize;
            if counters[i] == u32::MAX || fired[i] {
                continue;
            }
            counters[i] -= 1;
            if counters[i] == 0 {
                fire(i, &mut c, &mut queue, &mut fired);
            }
        }
    }
    c
}

/// Below this many FDs the verbatim algorithms beat the watch-list
/// machinery: a couple of quadratic passes over a handful of FDs is
/// cheaper than allocating watch lists and counters.
const NAIVE_CUTOFF: usize = 8;

/// The p-closure `X*p`.
///
/// Adaptive: tiny Σ goes through Algorithm 1 verbatim, larger Σ through
/// the linear-time counter/watch-list variant (Theorem 3). The choice
/// is observable via the `core.closure.variant.*` counters.
pub fn p_closure(fds: &[Fd], nfs: AttrSet, x: AttrSet) -> AttrSet {
    sqlnf_obs::count!("core.closure.p_calls");
    if fds.len() <= NAIVE_CUTOFF {
        sqlnf_obs::count!("core.closure.variant.naive");
        p_closure_naive(fds, nfs, x)
    } else {
        sqlnf_obs::count!("core.closure.variant.linear");
        closure_linear(fds, nfs, x, Kind::P)
    }
}

/// The c-closure `X*c`; adaptive exactly like [`p_closure`].
pub fn c_closure(fds: &[Fd], nfs: AttrSet, x: AttrSet) -> AttrSet {
    sqlnf_obs::count!("core.closure.c_calls");
    if fds.len() <= NAIVE_CUTOFF {
        sqlnf_obs::count!("core.closure.variant.naive");
        c_closure_naive(fds, nfs, x)
    } else {
        sqlnf_obs::count!("core.closure.variant.linear");
        closure_linear(fds, nfs, x, Kind::C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    /// PURCHASE = oicp (o=0,i=1,c=2,p=3), T_S = ocp,
    /// Σ = {oi →_s c, ic →_w p} — the worked example of Section 4.1.
    fn purchase() -> (Vec<Fd>, AttrSet) {
        let sigma = vec![
            Fd::possible(s(&[0, 1]), s(&[2])),
            Fd::certain(s(&[1, 2]), s(&[3])),
        ];
        (sigma, s(&[0, 2, 3]))
    }

    #[test]
    fn section4_worked_example() {
        let (sigma, nfs) = purchase();
        // oi*p = oicp: oi →_s c fires, then ic ⊆ (C∩T_S)∪X … via the
        // c-FD ic →_w p with ic ⊆ C.
        assert_eq!(p_closure(&sigma, nfs, s(&[0, 1])), s(&[0, 1, 2, 3]));
        assert_eq!(p_closure_naive(&sigma, nfs, s(&[0, 1])), s(&[0, 1, 2, 3]));
        // oi*c = o: C starts at oi ∩ ocp = o and nothing fires.
        assert_eq!(c_closure(&sigma, nfs, s(&[0, 1])), s(&[0]));
        assert_eq!(c_closure_naive(&sigma, nfs, s(&[0, 1])), s(&[0]));
    }

    #[test]
    fn key_projection_example() {
        // Σ = {oi →_s c, p⟨oic⟩} gives Σ|FD = {oi →_s c, oic →_s oicp};
        // oi*p = oicp.
        let nfs = s(&[0, 2, 3]);
        let fds = vec![
            Fd::possible(s(&[0, 1]), s(&[2])),
            Fd::possible(s(&[0, 1, 2]), s(&[0, 1, 2, 3])),
        ];
        assert_eq!(p_closure(&fds, nfs, s(&[0, 1])), s(&[0, 1, 2, 3]));
        // c-closure: oi∩T_S = o; p-FDs need LHS ⊆ C∩T_S — i ∉ T_S is
        // dead, so nothing fires.
        assert_eq!(c_closure(&fds, nfs, s(&[0, 1])), s(&[0]));
    }

    #[test]
    fn empty_sigma() {
        let nfs = s(&[0]);
        assert_eq!(p_closure(&[], nfs, s(&[0, 1])), s(&[0, 1]));
        assert_eq!(c_closure(&[], nfs, s(&[0, 1])), s(&[0]));
        assert_eq!(c_closure(&[], nfs, s(&[1])), AttrSet::EMPTY);
    }

    #[test]
    fn c_closure_need_not_contain_x() {
        // Remark after Definition 2: X*c need not contain X.
        let nfs = AttrSet::EMPTY;
        assert_eq!(c_closure(&[], nfs, s(&[0])), AttrSet::EMPTY);
    }

    #[test]
    fn cfd_on_nullable_lhs_fires_in_c_closure() {
        // c-FDs fire from C ∪ X, so a nullable LHS attribute in X works.
        let nfs = AttrSet::EMPTY;
        let fds = vec![Fd::certain(s(&[0]), s(&[1]))];
        assert_eq!(c_closure(&fds, nfs, s(&[0])), s(&[1]));
        // …and chains through attributes added to C.
        let fds2 = vec![Fd::certain(s(&[0]), s(&[1])), Fd::certain(s(&[1]), s(&[2]))];
        assert_eq!(c_closure(&fds2, nfs, s(&[0])), s(&[1, 2]));
    }

    #[test]
    fn pfd_needs_nfs_to_chain_in_p_closure() {
        // Algorithm 1: p-FDs fire when LHS ⊆ (C∩T_S) ∪ X. Chaining
        // through a derived attribute requires it to be NOT NULL.
        let fds = vec![
            Fd::possible(s(&[0]), s(&[1])),
            Fd::possible(s(&[1]), s(&[2])),
        ];
        // 1 ∉ T_S: the second FD never fires.
        assert_eq!(p_closure(&fds, AttrSet::EMPTY, s(&[0])), s(&[0, 1]));
        // 1 ∈ T_S: it chains.
        assert_eq!(p_closure(&fds, s(&[1]), s(&[0])), s(&[0, 1, 2]));
    }

    #[test]
    fn mixed_chain_certain_then_possible() {
        // c-FD adds an attribute to C; a p-FD can then use it only via
        // T_S in Algorithm 1.
        let fds = vec![
            Fd::certain(s(&[0]), s(&[1])),
            Fd::possible(s(&[1]), s(&[2])),
        ];
        assert_eq!(p_closure(&fds, s(&[1]), s(&[0])), s(&[0, 1, 2]));
        assert_eq!(p_closure(&fds, AttrSet::EMPTY, s(&[0])), s(&[0, 1]));
        // Algorithm 2: same Σ; c-FD fires from X, p-FD needs 1 ∈ C∩T_S.
        assert_eq!(c_closure(&fds, s(&[1]), s(&[0])), s(&[1, 2]));
        assert_eq!(c_closure(&fds, AttrSet::EMPTY, s(&[0])), s(&[1]));
    }

    #[test]
    fn lemma1_properties_hold_on_example() {
        let (sigma, nfs) = purchase();
        let t = s(&[0, 1, 2, 3]);
        for x in t.subsets() {
            let xp = p_closure(&sigma, nfs, x);
            let xc = c_closure(&sigma, nfs, x);
            // (ii) X, X*c ⊆ X*p
            assert!(x.is_subset(xp));
            assert!(xc.is_subset(xp));
            // (iii) (X*c)*c ⊆ X*c and (X*p)*c ⊆ X*p
            assert!(c_closure(&sigma, nfs, xc).is_subset(xc));
            assert!(c_closure(&sigma, nfs, xp).is_subset(xp));
            // (i) monotonicity
            for y in t.subsets() {
                if x.is_subset(y) {
                    assert!(xp.is_subset(p_closure(&sigma, nfs, y)));
                    assert!(xc.is_subset(c_closure(&sigma, nfs, y)));
                }
            }
        }
    }

    #[test]
    fn linear_matches_naive_exhaustively_small() {
        // All Σ with two FDs over 3 attributes, all NFS, all X.
        let t = s(&[0, 1, 2]);
        let subsets: Vec<AttrSet> = t.subsets().collect();
        for &l1 in &subsets {
            for &r1 in &subsets {
                for &l2 in &subsets {
                    for &r2 in &subsets {
                        for m1 in [Modality::Possible, Modality::Certain] {
                            let fds = vec![
                                Fd {
                                    lhs: l1,
                                    rhs: r1,
                                    modality: m1,
                                },
                                Fd {
                                    lhs: l2,
                                    rhs: r2,
                                    modality: Modality::Certain,
                                },
                            ];
                            for &nfs in &subsets {
                                for &x in &subsets {
                                    // Call the watch-list variant directly:
                                    // the adaptive entry points would route
                                    // a 2-FD Σ to the naive algorithms.
                                    assert_eq!(
                                        closure_linear(&fds, nfs, x, Kind::P),
                                        p_closure_naive(&fds, nfs, x),
                                        "p fds={fds:?} nfs={nfs:?} x={x:?}"
                                    );
                                    assert_eq!(
                                        closure_linear(&fds, nfs, x, Kind::C),
                                        c_closure_naive(&fds, nfs, x),
                                        "c fds={fds:?} nfs={nfs:?} x={x:?}"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
