//! Cover minimization: small, readable, equivalent representations of a
//! constraint set.
//!
//! The normal forms of Section 5 are invariant under equivalent
//! representations, so any cover works for deciding them; minimized
//! covers keep the exponential procedures (projection, decomposition)
//! small and make reported schemas legible.

use crate::implication::Reasoner;
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Fd, Key, Modality, Sigma};

/// LHS-minimizes one FD with respect to Σ: greedily drops LHS
/// attributes while the (unchanged) RHS stays implied.
pub fn minimize_lhs(t: AttrSet, nfs: AttrSet, sigma: &Sigma, fd: &Fd) -> Fd {
    let r = Reasoner::new(t, nfs, sigma);
    let mut lhs = fd.lhs;
    for a in fd.lhs {
        sqlnf_obs::count!("core.cover.lhs_candidates");
        let smaller = lhs - AttrSet::single(a);
        let candidate = Fd {
            lhs: smaller,
            rhs: fd.rhs,
            modality: fd.modality,
        };
        if r.implies_fd(&candidate) {
            lhs = smaller;
        }
    }
    Fd {
        lhs,
        rhs: fd.rhs,
        modality: fd.modality,
    }
}

/// Attribute-minimizes a key with respect to Σ.
pub fn minimize_key(t: AttrSet, nfs: AttrSet, sigma: &Sigma, key: &Key) -> Key {
    let r = Reasoner::new(t, nfs, sigma);
    let mut attrs = key.attrs;
    for a in key.attrs {
        sqlnf_obs::count!("core.cover.key_candidates");
        let smaller = attrs - AttrSet::single(a);
        let candidate = Key {
            attrs: smaller,
            modality: key.modality,
        };
        if r.implies_key(&candidate) {
            attrs = smaller;
        }
    }
    Key {
        attrs,
        modality: key.modality,
    }
}

/// Produces a minimized cover of Σ over `(T, T_S)`:
///
/// 1. drop trivial FDs;
/// 2. LHS-minimize every FD and attribute-minimize every key;
/// 3. drop constraints implied by the remaining ones (keys first, so
///    that FDs subsumed by keys disappear);
/// 4. deduplicate and order deterministically.
///
/// The result is equivalent to Σ (checked by the tests via
/// [`crate::implication::equivalent`]).
pub fn minimize_cover(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Sigma {
    let _span = sqlnf_obs::span!("minimize_cover");
    // Step 1 + 2.
    let mut fds: Vec<Fd> = sigma
        .fds
        .iter()
        .filter(|fd| !fd.is_trivial(nfs))
        .map(|fd| minimize_lhs(t, nfs, sigma, fd))
        .collect();
    let mut keys: Vec<Key> = sigma
        .keys
        .iter()
        .map(|k| minimize_key(t, nfs, sigma, k))
        .collect();

    // Deduplicate early.
    fds.sort();
    fds.dedup();
    keys.sort();
    keys.dedup();

    // Step 3: greedy redundancy elimination. Keys are kept in front so
    // that FDs weakened from keys are eliminated in their favour.
    let mut kept_keys: Vec<Key> = Vec::new();
    for i in 0..keys.len() {
        let mut probe = Sigma {
            fds: fds.clone(),
            keys: Vec::new(),
        };
        probe.keys.extend(kept_keys.iter().copied());
        probe.keys.extend(keys[i + 1..].iter().copied());
        let r = Reasoner::new(t, nfs, &probe);
        if !r.implies_key(&keys[i]) {
            kept_keys.push(keys[i]);
        }
    }
    let mut kept_fds: Vec<Fd> = Vec::new();
    for i in 0..fds.len() {
        let mut probe = Sigma {
            fds: Vec::new(),
            keys: kept_keys.clone(),
        };
        probe.fds.extend(kept_fds.iter().copied());
        probe.fds.extend(fds[i + 1..].iter().copied());
        let r = Reasoner::new(t, nfs, &probe);
        if !r.implies_fd(&fds[i]) {
            kept_fds.push(fds[i]);
        }
    }

    kept_fds.sort();
    kept_keys.sort();
    Sigma {
        fds: kept_fds,
        keys: kept_keys,
    }
}

/// Restricts a minimized cover's FDs to *certain* constraints, dropping
/// possible ones — used when handing a schema to SQL-BCNF/VRNF
/// machinery, which is defined on certain-only sets.
pub fn certain_fragment(sigma: &Sigma) -> Sigma {
    Sigma {
        fds: sigma
            .fds
            .iter()
            .filter(|f| f.modality == Modality::Certain)
            .copied()
            .collect(),
        keys: sigma
            .keys
            .iter()
            .filter(|k| k.modality == Modality::Certain)
            .copied()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::equivalent;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn lhs_minimization() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1])))
            .with(Fd::certain(s(&[0, 2]), s(&[1])));
        // 0,2 →_w 1 minimizes to 0 →_w 1.
        let m = minimize_lhs(t, t, &sigma, &sigma.fds[1]);
        assert_eq!(m, Fd::certain(s(&[0]), s(&[1])));
    }

    #[test]
    fn key_minimization() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new()
            .with(Key::certain(s(&[0])))
            .with(Key::certain(s(&[0, 1])));
        let m = minimize_key(t, t, &sigma, &sigma.keys[1]);
        assert_eq!(m, Key::certain(s(&[0])));
    }

    #[test]
    fn cover_removes_redundancy_and_stays_equivalent() {
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1])))
            .with(Fd::certain(s(&[0, 2]), s(&[1]))) // redundant
            .with(Fd::certain(s(&[0, 1]), s(&[1]))) // trivial? 1 ∉ nfs → kept? RHS ⊆ lhs∩nfs fails → non-trivial internal
            .with(Key::certain(s(&[0, 3])))
            .with(Key::certain(s(&[0, 1, 3]))) // redundant
            .with(Fd::certain(s(&[0, 3]), t)); // implied by the key
        let min = minimize_cover(t, nfs, &sigma);
        assert!(equivalent(t, nfs, &sigma, &min));
        assert!(min.len() < sigma.len());
        // The redundant key is gone.
        assert_eq!(min.keys, vec![Key::certain(s(&[0, 3]))]);
        // The FD subsumed by the key is gone.
        assert!(!min.fds.contains(&Fd::certain(s(&[0, 3]), t)));
    }

    #[test]
    fn trivial_fds_dropped() {
        let t = s(&[0, 1]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[1])))
            .with(Fd::certain(s(&[0]), s(&[0])));
        // First is trivial p-FD; second is trivial only if 0 ∈ T_S.
        let min_total = minimize_cover(t, t, &sigma);
        assert!(min_total.is_empty());
        let min_nullable = minimize_cover(t, AttrSet::EMPTY, &sigma);
        assert_eq!(min_nullable.fds.len(), 1);
        assert_eq!(min_nullable.fds[0].modality, Modality::Certain);
    }

    #[test]
    fn projection_cover_minimizes_to_paper_form() {
        // Example 3's oic component: the projected cover minimizes to
        // (an equivalent of) {oic →_w c}.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 1, 3]);
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[2, 3])));
        let oic = s(&[0, 1, 2]);
        let proj = crate::projection::project_sigma(t, nfs, &sigma, oic);
        let min = minimize_cover(oic, nfs & oic, &proj);
        let paper = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[2])));
        assert!(equivalent(oic, nfs & oic, &min, &paper), "{min:?}");
        assert!(min.keys.is_empty());
        assert_eq!(min.fds.len(), 1);
    }

    #[test]
    fn certain_fragment_filters() {
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0]), s(&[1])))
            .with(Fd::certain(s(&[0]), s(&[1])))
            .with(Key::possible(s(&[0])))
            .with(Key::certain(s(&[1])));
        let c = certain_fragment(&sigma);
        assert_eq!(c.fds.len(), 1);
        assert_eq!(c.keys.len(), 1);
        assert!(c.is_certain_only());
    }
}
