//! Lossless decomposition (Theorems 11–12) and VRNF decomposition
//! (Algorithm 3, Theorem 16).
//!
//! A certain FD `X →_w Y` over `T` yields the lossless split of any
//! instance into the multiset projection `I[[X(T−XY)]]` and the set
//! projection `I[XY]` under the equality join (Theorem 11). When the FD
//! is *total* (`X →_w XY`), the c-key `c⟨X⟩` holds on the `[XY]`
//! component (Theorem 12), eliminating its value redundancy.
//!
//! Algorithm 3 iterates this split on components that are not yet in
//! VRNF. Each output component carries its own schema: the projected
//! constraints `Σ[T_i]` (represented by a minimized cover) plus, for
//! `[XY]` components, the newly earned key `c⟨X⟩` — exactly as in the
//! paper's Example 3 output `(T₂ = oicp, Σ₂ = {c⟨oic⟩})`.

use crate::cover::minimize_cover;
use crate::implication::Reasoner;
use crate::projection::project_sigma;
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Fd, Key, Sigma};
use sqlnf_model::join::{join_all, reorder_columns};
use sqlnf_model::project::{project_multiset, project_set};
use sqlnf_model::table::Table;

/// One component of a schema decomposition (Definition 7). Attribute
/// indices refer to the *original* schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Component {
    /// The component's attributes (a subset of the original `T`).
    pub attrs: AttrSet,
    /// `true` for a multiset projection `[[…]]`, `false` for a set
    /// projection `[…]`.
    pub multiset: bool,
    /// The component's constraint set (over original attribute indices),
    /// a minimized cover of the projection plus any keys earned during
    /// decomposition.
    pub sigma: Sigma,
}

/// A schema decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Decomposition {
    /// The components; their attribute sets cover the original `T`.
    pub components: Vec<Component>,
}

impl Decomposition {
    /// Applies the decomposition to an instance, producing one projected
    /// table per component (named `<table>_<i>`).
    pub fn apply(&self, table: &Table) -> Vec<Table> {
        self.components
            .iter()
            .enumerate()
            .map(|(i, comp)| {
                let name = format!("{}_{}", table.schema().name(), i);
                if comp.multiset {
                    project_multiset(table, comp.attrs, name)
                } else {
                    project_set(table, comp.attrs, name)
                }
            })
            .collect()
    }

    /// Whether the decomposition is lossless *on this instance*: the
    /// equality join of the projected components equals the instance.
    pub fn is_lossless_on(&self, table: &Table) -> bool {
        let parts = self.apply(table);
        let joined = join_all(parts.iter(), "joined");
        if joined.schema().arity() != table.schema().arity() {
            return false;
        }
        let reordered = reorder_columns(&joined, table.schema().column_names());
        table.multiset_eq(&reordered)
    }
}

/// The attribute split of the decomposition step for `X →_w Y` over
/// component attributes `t`: returns `(X(T−XY), XY)`.
pub fn split_by_fd(t: AttrSet, fd: &Fd) -> (AttrSet, AttrSet) {
    let xy = fd.lhs | fd.rhs;
    (fd.lhs | (t - xy), xy & t)
}

/// Theorem 11 on an instance: splits `I` into `I[[X(T−XY)]]` and
/// `I[XY]` for a certain FD. The caller is responsible for the FD
/// actually holding (or being implied) — otherwise the result may be
/// lossy, as Figure 4 illustrates for p-FDs.
pub fn decompose_instance_by_cfd(table: &Table, fd: &Fd) -> (Table, Table) {
    let t = table.schema().attrs();
    let (left, right) = split_by_fd(t, fd);
    (
        project_multiset(table, left, format!("{}_rest", table.schema().name())),
        project_set(table, right, format!("{}_xy", table.schema().name())),
    )
}

/// Error cases of [`vrnf_decompose`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VrnfError {
    /// Algorithm 3 requires Σ to consist of certain keys and total FDs.
    InputNotTotalFdsAndCkeys,
}

impl std::fmt::Display for VrnfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VrnfError::InputNotTotalFdsAndCkeys => write!(
                f,
                "Algorithm 3 requires certain keys and total FDs (X ->w XY) as input"
            ),
        }
    }
}

impl std::error::Error for VrnfError {}

/// All LHS-minimal VRNF violations on a component: external total FDs
/// implied by the component's constraints whose LHS is not an implied
/// c-key.
fn minimal_violations(comp: &Component, nfs: AttrSet) -> Vec<Fd> {
    let local_nfs = nfs & comp.attrs;
    let r = Reasoner::new(comp.attrs, local_nfs, &comp.sigma);
    let relevant = comp.attrs & comp.sigma.attrs();
    // Ascending cardinality: LHS-minimal violations first, which the
    // preservation lemma behind Theorem 16 guarantees to be total.
    let mut subsets: Vec<AttrSet> = relevant.subsets().collect();
    subsets.sort_by_key(|s| (s.len(), s.0));
    let mut found: Vec<Fd> = Vec::new();
    for v in subsets {
        sqlnf_obs::count!("core.decompose.violation_candidates");
        if found.iter().any(|f| f.lhs.is_subset(v)) {
            continue; // a smaller violating LHS already covers this
        }
        let clo = r.c_closure(v) & comp.attrs;
        let y = clo - v;
        if y.is_empty() {
            continue;
        }
        if r.implies_key(&Key::certain(v)) {
            continue;
        }
        // Minimize the LHS for one target attribute to reach an
        // LHS-minimal — hence total — violating FD.
        let target = y.first().expect("nonempty");
        let mut lhs = v;
        for a in v {
            let smaller = lhs - AttrSet::single(a);
            if (r.c_closure(smaller) & comp.attrs).contains(target) {
                lhs = smaller;
            }
        }
        if r.implies_key(&Key::certain(lhs)) {
            // The minimized LHS became a key; keep scanning.
            continue;
        }
        let clo = r.c_closure(lhs) & comp.attrs;
        let rhs = lhs | clo;
        assert!(
            lhs.is_subset(clo),
            "non-total LHS-minimal violation {lhs:?} on {comp:?}; input breaks the \
             totality-preservation lemma of Theorem 16"
        );
        let fd = Fd::certain(lhs, rhs);
        if !found.contains(&fd) {
            found.push(fd);
        }
    }
    found
}

/// Picks the violation to decompose by. Algorithm 3 allows any choice;
/// like the paper's contractor run, we *defer* violations whose new
/// attributes (`RHS − LHS`) occur in another pending violation's LHS —
/// splitting those off first would remove an attribute another
/// decomposition step still needs, forcing it onto an inflated LHS and
/// a larger component (the contractor table grows from 3720 to 3896
/// cells under the naive order). Ties fall back to the smallest LHS.
fn find_violation(comp: &Component, nfs: AttrSet) -> Option<Fd> {
    let candidates = minimal_violations(comp, nfs);
    if candidates.is_empty() {
        return None;
    }
    let preferred = candidates.iter().position(|fd| {
        let new_attrs = fd.rhs - fd.lhs;
        candidates
            .iter()
            .filter(|other| other.lhs != fd.lhs)
            .all(|other| new_attrs.is_disjoint(other.lhs))
    });
    Some(candidates[preferred.unwrap_or(0)])
}

/// Algorithm 3: transforms `(T, T_S, Σ)` — Σ consisting of certain keys
/// and total FDs — into a lossless VRNF decomposition.
///
/// The classical BCNF decomposition is the special case `T_S = T` with
/// a key in Σ.
pub fn vrnf_decompose(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Result<Decomposition, VrnfError> {
    if !sigma.is_total_fds_and_ckeys() {
        return Err(VrnfError::InputNotTotalFdsAndCkeys);
    }
    let _span = sqlnf_obs::span!("vrnf_decompose");
    let mut work: Vec<Component> = vec![Component {
        attrs: t,
        multiset: true,
        sigma: minimize_cover(t, nfs, sigma),
    }];
    let mut done: Vec<Component> = Vec::new();

    while let Some(comp) = work.pop() {
        // The work list *is* the recursion of Algorithm 3; its high
        // water mark is the recursion depth of the split tree.
        sqlnf_obs::count_max!("core.decompose.work_list_depth", work.len() + 1);
        match find_violation(&comp, nfs) {
            None => done.push(comp),
            Some(fd) => {
                sqlnf_obs::count!("core.decompose.splits");
                sqlnf_obs::trace!("split {:?} by {:?} ->w {:?}", comp.attrs, fd.lhs, fd.rhs);
                let (rest, xy) = split_by_fd(comp.attrs, &fd);
                let local_nfs = nfs & comp.attrs;
                // Project the component's constraints onto each child.
                let rest_sigma = minimize_cover(
                    rest,
                    nfs & rest,
                    &project_sigma(comp.attrs, local_nfs, &comp.sigma, rest),
                );
                let mut xy_sigma = project_sigma(comp.attrs, local_nfs, &comp.sigma, xy);
                // The [XY] component earns the key c⟨X⟩ (Theorem 12).
                xy_sigma.add(Key::certain(fd.lhs));
                let xy_sigma = minimize_cover(xy, nfs & xy, &xy_sigma);
                work.push(Component {
                    attrs: rest,
                    multiset: comp.multiset,
                    sigma: rest_sigma,
                });
                work.push(Component {
                    attrs: xy,
                    multiset: false,
                    sigma: xy_sigma,
                });
            }
        }
    }
    // Deterministic order: by attribute set.
    done.sort_by_key(|c| (c.multiset, c.attrs.0));
    Ok(Decomposition { components: done })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal_forms::is_sql_bcnf;
    use sqlnf_model::prelude::*;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    /// Figure 5's instance and c-FD: the decomposition is lossless.
    #[test]
    fn theorem11_figure5() {
        let i = TableBuilder::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "item", "price"],
        )
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build();
        let schema = i.schema().clone();
        let fd = Fd::certain(schema.set(&["item", "catalog"]), schema.set(&["price"]));
        assert!(satisfies_fd(&i, &fd));
        let (rest, xy) = decompose_instance_by_cfd(&i, &fd);
        assert_eq!(
            rest.schema().column_names(),
            &["order_id", "item", "catalog"]
        );
        assert_eq!(xy.schema().column_names(), &["item", "catalog", "price"]);
        assert_eq!(rest.len(), 4);
        assert_eq!(xy.len(), 3);
        let joined = join(&rest, &xy, "j");
        let reordered = reorder_columns(&joined, schema.column_names());
        assert!(i.multiset_eq(&reordered));
    }

    /// Theorem 12: for a *total* FD, c⟨X⟩ holds on I[XY].
    #[test]
    fn theorem12_total_fd_gives_ckey() {
        // Fig. 7-style: first,last,city →_w first,last,city,state.
        let i = TableBuilder::new("c", ["f", "l", "ci", "st"], &["f", "l", "st"])
            .row(tuple!["Kathy", "Sheehan", "Columbia", 48i64])
            .row(tuple!["Kathy", "Sheehan", "Columbia", 48i64])
            .row(tuple!["Stacey", "Brennan", "Columbia", 48i64])
            .row(tuple!["Stacey", "Brennan", "Indianapolis", 20i64])
            .row(tuple!["Carol", "Richards", null, 36i64])
            .build();
        let schema = i.schema().clone();
        let flc = schema.set(&["f", "l", "ci"]);
        let total = Fd::certain(flc, schema.set(&["f", "l", "ci", "st"]));
        assert!(satisfies_fd(&i, &total));
        let (_, xy) = decompose_instance_by_cfd(&i, &total);
        let xs = xy.schema().clone();
        assert!(satisfies_key(&xy, &Key::certain(xs.set(&["f", "l", "ci"]))));
    }

    /// Example 3 / Section 6.3: Algorithm 3 on
    /// (oicp, oip, {oic →_w cp}) returns [[oic]] with {oic →_w c} and
    /// [oicp] with {c⟨oic⟩}.
    #[test]
    fn algorithm3_example3() {
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 1, 3]);
        // The paper's input FD oic →_w cp, written in total form
        // oic →_w oicp (same constraint up to equivalence).
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[0, 1, 2, 3])));
        let d = vrnf_decompose(t, nfs, &sigma).unwrap();
        assert_eq!(d.components.len(), 2);
        let set_comp = d.components.iter().find(|c| !c.multiset).unwrap();
        let multi_comp = d.components.iter().find(|c| c.multiset).unwrap();
        // [oicp] with c⟨oic⟩.
        assert_eq!(set_comp.attrs, t);
        assert_eq!(set_comp.sigma.keys, vec![Key::certain(s(&[0, 1, 2]))]);
        // [[oic]] with (an equivalent of) {oic →_w c}.
        assert_eq!(multi_comp.attrs, s(&[0, 1, 2]));
        let r = Reasoner::new(multi_comp.attrs, nfs & multi_comp.attrs, &multi_comp.sigma);
        assert!(r.implies_fd(&Fd::certain(s(&[0, 1, 2]), s(&[2]))));
        // Both components are in SQL-BCNF (VRNF).
        for c in &d.components {
            assert_eq!(
                is_sql_bcnf(c.attrs, nfs & c.attrs, &c.sigma),
                Ok(true),
                "{c:?}"
            );
        }
    }

    /// Algorithm 3 output is lossless on instances (Theorem 16),
    /// checked on the Example 3 instance shape.
    #[test]
    fn algorithm3_lossless_on_instance() {
        let i = TableBuilder::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "item", "price"],
        )
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build();
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 1, 3]);
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[0, 1, 2, 3])));
        // The instance satisfies Σ.
        assert!(satisfies_all(&i, &sigma));
        let d = vrnf_decompose(t, nfs, &sigma).unwrap();
        assert!(d.is_lossless_on(&i));
        // And the applied components: [[oic]] has 4 rows, [oicp] has 2.
        let parts = d.apply(&i);
        let sizes: Vec<(bool, usize)> = d
            .components
            .iter()
            .zip(&parts)
            .map(|(c, p)| (c.multiset, p.len()))
            .collect();
        assert!(sizes.contains(&(true, 4)));
        assert!(sizes.contains(&(false, 2)));
    }

    /// The classical special case: T_S = T, Σ = classical FDs (as total
    /// c-FDs) + a key. Algorithm 3 then is the classical BCNF
    /// decomposition.
    #[test]
    fn classical_special_case() {
        // R(a,b,c,d), a →_w ab (i.e. a → b), key c⟨acd⟩ — hmm, use the
        // textbook CSJDPQV-style shape in miniature: key c⟨a c⟩,
        // c → cd (total form of c → d).
        let t = s(&[0, 1, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[2]), s(&[2, 3])))
            .with(Key::certain(s(&[0, 2])));
        let d = vrnf_decompose(t, t, &sigma).unwrap();
        // Classical result: split off (c,d) with key c; remainder
        // (a,b,c) with key (a,c).
        assert_eq!(d.components.len(), 2);
        let cd = d.components.iter().find(|c| c.attrs == s(&[2, 3])).unwrap();
        assert!(!cd.multiset);
        assert_eq!(cd.sigma.keys, vec![Key::certain(s(&[2]))]);
        let abc = d
            .components
            .iter()
            .find(|c| c.attrs == s(&[0, 1, 2]))
            .unwrap();
        assert!(abc.multiset);
        let r = Reasoner::new(abc.attrs, abc.attrs, &abc.sigma);
        assert!(r.implies_key(&Key::certain(s(&[0, 2]))));
        for c in &d.components {
            assert_eq!(is_sql_bcnf(c.attrs, c.attrs, &c.sigma), Ok(true));
        }
    }

    /// A schema already in VRNF decomposes into itself.
    #[test]
    fn already_vrnf_is_identity() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new().with(Key::certain(s(&[0])));
        let d = vrnf_decompose(t, t, &sigma).unwrap();
        assert_eq!(d.components.len(), 1);
        assert_eq!(d.components[0].attrs, t);
        assert!(d.components[0].multiset);
    }

    #[test]
    fn input_class_enforced() {
        let t = s(&[0, 1]);
        let bad = Sigma::new().with(Fd::certain(s(&[0]), s(&[1])));
        assert_eq!(
            vrnf_decompose(t, t, &bad),
            Err(VrnfError::InputNotTotalFdsAndCkeys)
        );
        let bad2 = Sigma::new().with(Key::possible(s(&[0])));
        assert_eq!(
            vrnf_decompose(t, t, &bad2),
            Err(VrnfError::InputNotTotalFdsAndCkeys)
        );
    }

    #[test]
    fn split_by_fd_shapes() {
        let t = s(&[0, 1, 2, 3]);
        let fd = Fd::certain(s(&[1, 2]), s(&[1, 2, 3]));
        let (rest, xy) = split_by_fd(t, &fd);
        assert_eq!(rest, s(&[0, 1, 2]));
        assert_eq!(xy, s(&[1, 2, 3]));
    }

    /// Multi-step: two independent total FDs produce three components,
    /// all in VRNF, lossless on satisfying instances.
    #[test]
    fn two_step_decomposition() {
        let t = s(&[0, 1, 2, 3, 4]);
        let nfs = s(&[0, 1, 2, 3, 4]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[1]), s(&[1, 2])))
            .with(Fd::certain(s(&[3]), s(&[3, 4])));
        let d = vrnf_decompose(t, nfs, &sigma).unwrap();
        assert_eq!(d.components.len(), 3);
        for c in &d.components {
            assert_eq!(is_sql_bcnf(c.attrs, nfs & c.attrs, &c.sigma), Ok(true));
        }
        // Build a satisfying instance and check losslessness.
        let i = TableBuilder::new("r", ["a", "b", "c", "d", "e"], &["a", "b", "c", "d", "e"])
            .row(tuple![1i64, 1i64, 10i64, 1i64, 100i64])
            .row(tuple![2i64, 1i64, 10i64, 2i64, 200i64])
            .row(tuple![3i64, 2i64, 20i64, 1i64, 100i64])
            .row(tuple![3i64, 2i64, 20i64, 1i64, 100i64])
            .build();
        assert!(satisfies_all(&i, &sigma));
        assert!(d.is_lossless_on(&i));
    }
}
