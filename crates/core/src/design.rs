//! High-level API: a named schema design `(T, T_S, Σ)` with
//! normal-form checks and normalization, in terms of column names.
//!
//! This is the entry point a downstream user works with; the worked
//! examples of the paper read almost verbatim:
//!
//! ```
//! use sqlnf_core::design::SchemaDesign;
//! use sqlnf_model::prelude::*;
//!
//! let purchase = TableSchema::new(
//!     "purchase",
//!     ["order_id", "item", "catalog", "price"],
//!     &["order_id", "item", "price"],
//! );
//! let sigma = Sigma::new().with(Fd::certain(
//!     purchase.set(&["item", "catalog"]),
//!     purchase.set(&["price"]),
//! ));
//! let design = SchemaDesign::new(purchase, sigma);
//! assert!(!design.is_bcnf());          // redundant prices possible
//! assert!(!design.is_rfnf());          // … which is what RFNF means
//! ```

use crate::decompose::{vrnf_decompose, Component, VrnfError};
use crate::implication::Reasoner;
use crate::normal_forms::{
    bcnf_violations, is_bcnf, is_sql_bcnf, sql_bcnf_violations, NotCertainOnly,
};
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Constraint, Fd, Key, Sigma};
use sqlnf_model::schema::TableSchema;
use std::fmt;

/// A schema design `(T, T_S, Σ)`: a table schema (with its NOT NULL
/// columns) plus a constraint set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaDesign {
    schema: TableSchema,
    sigma: Sigma,
}

impl SchemaDesign {
    /// Bundles a schema and constraint set.
    ///
    /// # Panics
    /// Panics if a constraint mentions an attribute outside the schema.
    pub fn new(schema: TableSchema, sigma: Sigma) -> Self {
        let t = schema.attrs();
        for c in sigma.iter() {
            let attrs = match c {
                Constraint::Fd(fd) => fd.attrs(),
                Constraint::Key(k) => k.attrs,
            };
            assert!(
                attrs.is_subset(t),
                "constraint {c} mentions attributes outside {}",
                schema.name()
            );
        }
        SchemaDesign { schema, sigma }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The constraint set Σ.
    pub fn sigma(&self) -> &Sigma {
        &self.sigma
    }

    /// A reasoner over this design.
    pub fn reasoner(&self) -> Reasoner {
        Reasoner::new(self.schema.attrs(), self.schema.nfs(), &self.sigma)
    }

    /// Whether Σ implies the constraint.
    pub fn implies(&self, phi: impl Into<Constraint>) -> bool {
        self.reasoner().implies(&phi.into())
    }

    /// Whether the design is in BCNF (Definition 5).
    pub fn is_bcnf(&self) -> bool {
        is_bcnf(self.schema.attrs(), self.schema.nfs(), &self.sigma)
    }

    /// Whether the design is in Redundancy-free normal form — the same
    /// condition as BCNF by Theorem 9.
    pub fn is_rfnf(&self) -> bool {
        self.is_bcnf()
    }

    /// The FDs of Σ violating BCNF.
    pub fn bcnf_violations(&self) -> Vec<Fd> {
        bcnf_violations(self.schema.attrs(), self.schema.nfs(), &self.sigma)
    }

    /// Whether the design is in SQL-BCNF (Definition 12); requires Σ to
    /// be certain-only.
    pub fn is_sql_bcnf(&self) -> Result<bool, NotCertainOnly> {
        is_sql_bcnf(self.schema.attrs(), self.schema.nfs(), &self.sigma)
    }

    /// Whether the design is in VRNF — the same condition as SQL-BCNF
    /// by Theorem 15.
    pub fn is_vrnf(&self) -> Result<bool, NotCertainOnly> {
        self.is_sql_bcnf()
    }

    /// The FDs of Σ violating SQL-BCNF.
    pub fn sql_bcnf_violations(&self) -> Result<Vec<Fd>, NotCertainOnly> {
        sql_bcnf_violations(self.schema.attrs(), self.schema.nfs(), &self.sigma)
    }

    /// Normalizes the design into a lossless VRNF decomposition
    /// (Algorithm 3). Σ must consist of certain keys and total FDs.
    /// Returns the named child designs, each with its re-indexed schema
    /// and minimized constraint cover, along with the raw
    /// [`Decomposition`](crate::decompose::Decomposition) for applying
    /// to instances.
    pub fn normalize(&self) -> Result<NormalizedDesign, VrnfError> {
        let d = vrnf_decompose(self.schema.attrs(), self.schema.nfs(), &self.sigma)?;
        let children = d
            .components
            .iter()
            .enumerate()
            .map(|(i, comp)| self.child_design(comp, i))
            .collect();
        Ok(NormalizedDesign {
            decomposition: d,
            children,
        })
    }

    fn child_design(&self, comp: &Component, index: usize) -> SchemaDesign {
        let name = format!("{}_{}", self.schema.name(), index);
        let (child_schema, _) = self.schema.project(comp.attrs, name);
        let translate = |s: AttrSet| self.schema.translate_into_projection(comp.attrs, s);
        let mut sigma = Sigma::new();
        for fd in &comp.sigma.fds {
            sigma.add(Fd {
                lhs: translate(fd.lhs),
                rhs: translate(fd.rhs),
                modality: fd.modality,
            });
        }
        for k in &comp.sigma.keys {
            sigma.add(Key {
                attrs: translate(k.attrs),
                modality: k.modality,
            });
        }
        SchemaDesign::new(child_schema, sigma)
    }
}

impl fmt::Display for SchemaDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} with Σ = {}",
            self.schema,
            self.sigma.display(&self.schema)
        )
    }
}

/// The result of normalizing a design: the raw decomposition (original
/// attribute indices; applicable to instances) plus the named child
/// designs.
#[derive(Debug, Clone)]
pub struct NormalizedDesign {
    /// The attribute-level decomposition, for [`Decomposition::apply`]
    /// and losslessness checks.
    ///
    /// [`Decomposition::apply`]: crate::decompose::Decomposition::apply
    pub decomposition: crate::decompose::Decomposition,
    /// One schema design per component, re-indexed and named
    /// `<parent>_<i>`.
    pub children: Vec<SchemaDesign>,
}

impl NormalizedDesign {
    /// Dependency-preservation report of this decomposition against the
    /// parent design it was produced from.
    pub fn preservation(&self, parent: &SchemaDesign) -> crate::preservation::PreservationReport {
        crate::preservation::preservation_report(
            parent.schema().attrs(),
            parent.schema().nfs(),
            parent.sigma(),
            &self.decomposition,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn purchase_design() -> SchemaDesign {
        // Example 3's schema: (oicp, oip, {oic →_w oicp}).
        let schema = TableSchema::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "item", "price"],
        );
        let sigma = Sigma::new().with(Fd::certain(
            schema.set(&["order_id", "item", "catalog"]),
            schema.attrs(),
        ));
        SchemaDesign::new(schema, sigma)
    }

    #[test]
    fn normal_form_checks() {
        let d = purchase_design();
        assert!(!d.is_bcnf());
        assert!(!d.is_rfnf());
        assert_eq!(d.is_sql_bcnf(), Ok(false));
        assert_eq!(d.is_vrnf(), Ok(false));
        assert_eq!(d.bcnf_violations().len(), 1);
        assert_eq!(d.sql_bcnf_violations().unwrap().len(), 1);
    }

    #[test]
    fn implication_interface() {
        let d = purchase_design();
        let s = d.schema();
        assert!(d.implies(Fd::certain(
            s.set(&["order_id", "item", "catalog"]),
            s.set(&["price"])
        )));
        assert!(!d.implies(Key::certain(s.set(&["order_id"]))));
    }

    #[test]
    fn normalize_names_children_and_translates_constraints() {
        let d = purchase_design();
        let n = d.normalize().unwrap();
        assert_eq!(n.children.len(), 2);
        // Every child is in VRNF.
        for child in &n.children {
            assert_eq!(child.is_vrnf(), Ok(true), "{child}");
        }
        // The set component is oicp with key c<order_id,item,catalog>.
        let set_child = n.children.iter().find(|c| c.schema().arity() == 4).unwrap();
        let cs = set_child.schema();
        assert!(set_child.implies(Key::certain(cs.set(&["order_id", "item", "catalog"]))));
        // The multiset component is oic carrying the internal c-FD.
        let multi_child = n.children.iter().find(|c| c.schema().arity() == 3).unwrap();
        let ms = multi_child.schema();
        assert_eq!(ms.column_names(), &["order_id", "item", "catalog"]);
        assert!(multi_child.implies(Fd::certain(
            ms.set(&["order_id", "item", "catalog"]),
            ms.set(&["catalog"])
        )));
        // NFS carries over: order_id,item NOT NULL; catalog nullable.
        assert_eq!(ms.nfs(), ms.set(&["order_id", "item"]));
    }

    #[test]
    fn display_formats() {
        let d = purchase_design();
        let s = d.to_string();
        assert!(s.contains("purchase"));
        assert!(s.contains("->w"));
        assert!(s.contains("order_id NOT NULL"));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn constraints_outside_schema_rejected() {
        let schema = TableSchema::new("r", ["a"], &[]);
        let sigma = Sigma::new().with(Key::certain(AttrSet::from_indices([3])));
        let _ = SchemaDesign::new(schema, sigma);
    }
}
