//! The implication problem for the combined class of p-keys, c-keys,
//! p-FDs, c-FDs and NOT NULL constraints (Section 4, Theorems 2, 4, 5).
//!
//! FD implication reduces to closure membership (Theorem 2) after the
//! *FD-projection* of Definition 3 replaces each key `X` by the FD
//! `X → T` of the same modality. Key implication reduces to key-only
//! implication via closures:
//!
//! * `Σ ⊨ p⟨X⟩` iff `Σ|key ⊨ c⟨X*p⟩` or `Σ|key ⊨ p⟨X (X*p ∩ T_S)⟩`;
//! * `Σ ⊨ c⟨X⟩` iff `Σ|key ⊨ c⟨X X*c⟩`;
//!
//! where closures are taken with respect to `Σ|FD`, and key-only
//! implication is decided by the axioms 𝔎 (Table 2): a key follows from
//! a key on a subset of its attributes, with `p → c` strengthening
//! available on `T_S`-contained keys and `c → p` weakening always.
//!
//! Everything here is linear in the input (Theorem 5); the test modules
//! verify the procedures *exhaustively* against the model-theoretic
//! oracle of [`crate::oracle`] on small schemata.

use crate::closure::{c_closure, p_closure};
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Constraint, Fd, Key, Modality, Sigma};
use std::collections::HashMap;
use std::sync::Mutex;

/// A reasoning context for one schema `(T, T_S)` and constraint set Σ.
///
/// Construction precomputes the FD-projection `Σ|FD`; each query is then
/// one or two closure computations. Closures are memoized per LHS —
/// normal-form checks and decomposition probe the same LHSs over and
/// over (cache effectiveness is visible via the
/// `core.reasoner.cache_{hits,misses}` counters).
#[derive(Debug)]
pub struct Reasoner {
    t: AttrSet,
    nfs: AttrSet,
    keys: Vec<Key>,
    fds: Vec<Fd>,
    // Σ, T_S and T are frozen at construction, so a memoized closure
    // never goes stale. A Mutex (not RefCell) keeps the reasoner Sync
    // for the parallel miners.
    p_cache: Mutex<HashMap<AttrSet, AttrSet>>,
    c_cache: Mutex<HashMap<AttrSet, AttrSet>>,
}

impl Clone for Reasoner {
    fn clone(&self) -> Reasoner {
        Reasoner {
            t: self.t,
            nfs: self.nfs,
            keys: self.keys.clone(),
            fds: self.fds.clone(),
            p_cache: Mutex::new(self.p_cache.lock().expect("reasoner cache").clone()),
            c_cache: Mutex::new(self.c_cache.lock().expect("reasoner cache").clone()),
        }
    }
}

impl Reasoner {
    /// Creates a reasoner for schema attributes `t`, NFS `nfs ⊆ t` and
    /// constraint set Σ.
    pub fn new(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Reasoner {
        assert!(nfs.is_subset(t), "T_S must be a subset of T");
        Reasoner {
            t,
            nfs,
            keys: sigma.keys.clone(),
            fds: sigma.fd_projection(t),
            p_cache: Mutex::new(HashMap::new()),
            c_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The schema attribute set `T`.
    pub fn attrs(&self) -> AttrSet {
        self.t
    }

    /// The null-free subschema `T_S`.
    pub fn nfs(&self) -> AttrSet {
        self.nfs
    }

    /// The p-closure `X*p` with respect to `Σ|FD` (memoized per `X`).
    pub fn p_closure(&self, x: AttrSet) -> AttrSet {
        if let Some(&cached) = self.p_cache.lock().expect("reasoner cache").get(&x) {
            sqlnf_obs::count!("core.reasoner.cache_hits");
            return cached;
        }
        sqlnf_obs::count!("core.reasoner.cache_misses");
        let closure = p_closure(&self.fds, self.nfs, x);
        sqlnf_obs::trace!("p_closure({x:?}) = {closure:?}");
        self.p_cache
            .lock()
            .expect("reasoner cache")
            .insert(x, closure);
        closure
    }

    /// The c-closure `X*c` with respect to `Σ|FD` (memoized per `X`).
    pub fn c_closure(&self, x: AttrSet) -> AttrSet {
        if let Some(&cached) = self.c_cache.lock().expect("reasoner cache").get(&x) {
            sqlnf_obs::count!("core.reasoner.cache_hits");
            return cached;
        }
        sqlnf_obs::count!("core.reasoner.cache_misses");
        let closure = c_closure(&self.fds, self.nfs, x);
        sqlnf_obs::trace!("c_closure({x:?}) = {closure:?}");
        self.c_cache
            .lock()
            .expect("reasoner cache")
            .insert(x, closure);
        closure
    }

    /// Decides `Σ ⊨ X → Y` by Theorem 2: `Y ⊆ X*p` (possible) or
    /// `Y ⊆ X*c` (certain).
    pub fn implies_fd(&self, fd: &Fd) -> bool {
        let implied = match fd.modality {
            Modality::Possible => {
                sqlnf_obs::count!("core.reasoner.fd_queries.possible");
                fd.rhs.is_subset(self.p_closure(fd.lhs))
            }
            Modality::Certain => {
                sqlnf_obs::count!("core.reasoner.fd_queries.certain");
                fd.rhs.is_subset(self.c_closure(fd.lhs))
            }
        };
        sqlnf_obs::trace!("implies_fd({fd:?}) = {implied}");
        implied
    }

    /// Decides `Σ ⊨ X →_weak Y` — the *weak* (some-possible-world) FD
    /// of Levene/Loizou as the query, with Σ staying in the combined
    /// p/c class.
    ///
    /// Weak implication collapses onto possible implication: `Σ ⊨
    /// X →_weak Y` iff `Y ⊆ X*p` iff `Σ ⊨ X →_s Y`. Soundness is the
    /// pairwise chain (strong similarity plus syntactic equality on a
    /// 2-tuple model leaves every RHS agreement completable);
    /// completeness follows because the fixpoint computing `X*p` — seed
    /// `X`, fire `V → W` certain on `V ⊆ eq` and possible on `V ⊆ X ∪
    /// (eq ∩ T_S)` — is exactly the forced-equal set of the 2-tuple
    /// counter-model construction: every attribute outside it can be
    /// set `NeqNonNull`, which refutes the weak FD just as it refutes
    /// the possible one. The oracle test below checks the identity
    /// exhaustively.
    pub fn implies_weak_fd(&self, lhs: AttrSet, rhs: AttrSet) -> bool {
        sqlnf_obs::count!("core.reasoner.fd_queries.weak");
        let implied = rhs.is_subset(self.p_closure(lhs));
        sqlnf_obs::trace!("implies_weak_fd({lhs:?} -> {rhs:?}) = {implied}");
        implied
    }

    /// Decides `Σ|key ⊨ key` using only the keys of Σ (axioms 𝔎).
    pub fn keys_only_imply(&self, key: &Key) -> bool {
        match key.modality {
            // p⟨X⟩ follows from any key on a subset of X (kA, kW).
            Modality::Possible => self.keys.iter().any(|k| k.attrs.is_subset(key.attrs)),
            // c⟨X⟩ follows from a c-key on a subset of X, or a p-key on
            // a subset of X that lies within T_S (kA, kS).
            Modality::Certain => self.keys.iter().any(|k| {
                k.attrs.is_subset(key.attrs)
                    && (k.modality == Modality::Certain || k.attrs.is_subset(self.nfs))
            }),
        }
    }

    /// Decides `Σ ⊨ key` via the reduction of Section 4.2.
    pub fn implies_key(&self, key: &Key) -> bool {
        let x = key.attrs;
        let implied = match key.modality {
            Modality::Possible => {
                sqlnf_obs::count!("core.reasoner.key_queries.possible");
                let xp = self.p_closure(x);
                self.keys_only_imply(&Key::certain(xp))
                    || self.keys_only_imply(&Key::possible(x | (xp & self.nfs)))
            }
            Modality::Certain => {
                sqlnf_obs::count!("core.reasoner.key_queries.certain");
                let xc = self.c_closure(x);
                self.keys_only_imply(&Key::certain(x | xc))
            }
        };
        sqlnf_obs::trace!("implies_key({key:?}) = {implied}");
        implied
    }

    /// Decides `Σ ⊨ φ` for any constraint of the combined class.
    pub fn implies(&self, phi: &Constraint) -> bool {
        match phi {
            Constraint::Fd(fd) => self.implies_fd(fd),
            Constraint::Key(k) => self.implies_key(k),
        }
    }

    /// Whether Σ implies every constraint of `other`.
    pub fn implies_all(&self, other: &Sigma) -> bool {
        other.iter().all(|c| self.implies(&c))
    }
}

/// Whether two constraint sets over the same `(T, T_S)` are equivalent,
/// i.e. have the same instances (equivalently, the same syntactic
/// closure Σ⁺ — the invariance property used by Definition 5).
pub fn equivalent(t: AttrSet, nfs: AttrSet, sigma1: &Sigma, sigma2: &Sigma) -> bool {
    let r1 = Reasoner::new(t, nfs, sigma1);
    let r2 = Reasoner::new(t, nfs, sigma2);
    r1.implies_all(sigma2) && r2.implies_all(sigma1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::oracle_implies;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn purchase_worked_examples() {
        // PURCHASE = oicp, T_S = ocp, Σ = {oi →_s c, ic →_w p}.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Fd::certain(s(&[1, 2]), s(&[3])));
        let r = Reasoner::new(t, nfs, &sigma);
        assert!(r.implies_fd(&Fd::possible(s(&[0, 1]), s(&[3]))));
        assert!(!r.implies_fd(&Fd::certain(s(&[0, 1]), s(&[3]))));

        // Σ = {oi →_s c, p⟨oic⟩} implies p⟨oi⟩ (Section 4.2).
        let sigma2 = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Key::possible(s(&[0, 1, 2])));
        let r2 = Reasoner::new(t, nfs, &sigma2);
        assert!(r2.implies_key(&Key::possible(s(&[0, 1]))));
        assert!(!r2.implies_fd(&Fd::certain(s(&[0, 1]), s(&[3]))));
        assert!(!r2.implies_key(&Key::certain(s(&[0, 1]))));
    }

    #[test]
    fn keys_only_rules() {
        let t = s(&[0, 1, 2]);
        let nfs = s(&[0]);
        let sigma = Sigma::new()
            .with(Key::possible(s(&[0])))
            .with(Key::certain(s(&[1])));
        let r = Reasoner::new(t, nfs, &sigma);
        // Augmentation.
        assert!(r.keys_only_imply(&Key::possible(s(&[0, 2]))));
        assert!(r.keys_only_imply(&Key::certain(s(&[1, 2]))));
        // Weakening c → p.
        assert!(r.keys_only_imply(&Key::possible(s(&[1]))));
        // Strengthening p → c only within T_S.
        assert!(r.keys_only_imply(&Key::certain(s(&[0]))));
        let r2 = Reasoner::new(t, AttrSet::EMPTY, &sigma);
        assert!(!r2.keys_only_imply(&Key::certain(s(&[0]))));
        // No key on a subset: not implied.
        assert!(!r.keys_only_imply(&Key::possible(s(&[2]))));
    }

    /// Exhaustive check of the decision procedure against the 2-tuple
    /// oracle: all Σ built from a pool of constraints over 3 attributes,
    /// all NFS, all queries. This is the mechanized counterpart of
    /// Theorems 2, 4 and 5.
    #[test]
    fn matches_oracle_exhaustively() {
        let t = s(&[0, 1, 2]);
        let pool: Vec<Constraint> = vec![
            Constraint::Fd(Fd::possible(s(&[0]), s(&[1]))),
            Constraint::Fd(Fd::certain(s(&[0]), s(&[1]))),
            Constraint::Fd(Fd::possible(s(&[1]), s(&[2]))),
            Constraint::Fd(Fd::certain(s(&[1, 2]), s(&[0, 2]))),
            Constraint::Key(Key::possible(s(&[0, 1]))),
            Constraint::Key(Key::certain(s(&[1]))),
            Constraint::Key(Key::possible(s(&[2]))),
        ];
        let subsets: Vec<AttrSet> = t.subsets().collect();
        // All 2^7 subsets of the pool.
        for mask in 0..(1usize << pool.len()) {
            let sigma: Sigma = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            for &nfs in &subsets {
                let r = Reasoner::new(t, nfs, &sigma);
                for &x in &subsets {
                    for &y in &subsets {
                        for m in [Modality::Possible, Modality::Certain] {
                            let fd = Fd {
                                lhs: x,
                                rhs: y,
                                modality: m,
                            };
                            assert_eq!(
                                r.implies_fd(&fd),
                                oracle_implies(t, nfs, &sigma, &Constraint::Fd(fd)),
                                "fd {fd:?} sigma={sigma:?} nfs={nfs:?}"
                            );
                        }
                    }
                    for m in [Modality::Possible, Modality::Certain] {
                        let key = Key {
                            attrs: x,
                            modality: m,
                        };
                        assert_eq!(
                            r.implies_key(&key),
                            oracle_implies(t, nfs, &sigma, &Constraint::Key(key)),
                            "key {key:?} sigma={sigma:?} nfs={nfs:?}"
                        );
                    }
                }
            }
        }
    }

    /// The weak-implication coincidence theorem, mechanized: over every
    /// Σ from the same pool as [`matches_oracle_exhaustively`], every
    /// NFS and every query pair, `Σ ⊨ X →_weak Y` (per the exact
    /// 2-tuple oracle) equals both `Y ⊆ X*p` and `Σ ⊨ X →_s Y`.
    #[test]
    fn weak_fd_matches_oracle_exhaustively() {
        use crate::oracle::{oracle_implies_weak_fd, weak_counter_model};
        let t = s(&[0, 1, 2]);
        let pool: Vec<Constraint> = vec![
            Constraint::Fd(Fd::possible(s(&[0]), s(&[1]))),
            Constraint::Fd(Fd::certain(s(&[0]), s(&[1]))),
            Constraint::Fd(Fd::possible(s(&[1]), s(&[2]))),
            Constraint::Fd(Fd::certain(s(&[1, 2]), s(&[0, 2]))),
            Constraint::Key(Key::possible(s(&[0, 1]))),
            Constraint::Key(Key::certain(s(&[1]))),
            Constraint::Key(Key::possible(s(&[2]))),
        ];
        let subsets: Vec<AttrSet> = t.subsets().collect();
        for mask in 0..(1usize << pool.len()) {
            let sigma: Sigma = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            for &nfs in &subsets {
                let r = Reasoner::new(t, nfs, &sigma);
                for &x in &subsets {
                    for &y in &subsets {
                        let want = oracle_implies_weak_fd(t, nfs, &sigma, x, y);
                        assert_eq!(
                            r.implies_weak_fd(x, y),
                            want,
                            "weak {x:?}->{y:?} sigma={sigma:?} nfs={nfs:?}"
                        );
                        // The collapse: weak ≡ possible as implication.
                        assert_eq!(
                            r.implies_fd(&Fd::possible(x, y)),
                            want,
                            "collapse {x:?}->{y:?} sigma={sigma:?} nfs={nfs:?}"
                        );
                        // Witness consistency: a counter-model exists
                        // iff implication fails, and genuinely
                        // separates Σ from the weak FD.
                        match weak_counter_model(t, nfs, &sigma, x, y) {
                            Some(w) => {
                                assert!(!want);
                                assert!(w.satisfies_all(&sigma) && !w.satisfies_weak_fd(x, y));
                            }
                            None => assert!(want),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn equivalence_of_representations() {
        // {X →_w Y, X →_w Z} ≡ {X →_w YZ}.
        let t = s(&[0, 1, 2]);
        let a = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1])))
            .with(Fd::certain(s(&[0]), s(&[2])));
        let b = Sigma::new().with(Fd::certain(s(&[0]), s(&[1, 2])));
        assert!(equivalent(t, AttrSet::EMPTY, &a, &b));
        let c = Sigma::new().with(Fd::certain(s(&[0]), s(&[1])));
        assert!(!equivalent(t, AttrSet::EMPTY, &a, &c));
        // A c-key is strictly stronger than its p-key outside T_S.
        let k1 = Sigma::new().with(Key::certain(s(&[0])));
        let k2 = Sigma::new().with(Key::possible(s(&[0])));
        assert!(!equivalent(t, AttrSet::EMPTY, &k1, &k2));
        assert!(equivalent(t, s(&[0]), &k1, &k2));
    }

    #[test]
    fn closure_cache_hits_on_repeated_lhs() {
        // Counters are process-wide and tests run in parallel, so the
        // assertions are on deltas, which only other *hits* could
        // inflate — a hit recorded here is a real hit.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Fd::certain(s(&[1, 2]), s(&[3])))
            .with(Key::possible(s(&[0, 1, 2])));
        let r = Reasoner::new(t, nfs, &sigma);
        let before = sqlnf_obs::report()
            .counter("core.reasoner.cache_hits")
            .unwrap_or(0);
        // Same LHS probed repeatedly, as normal-form checks do.
        let first = r.p_closure(s(&[0, 1]));
        for _ in 0..4 {
            assert_eq!(r.p_closure(s(&[0, 1])), first);
        }
        let c_first = r.c_closure(s(&[1]));
        assert_eq!(r.c_closure(s(&[1])), c_first);
        let after = sqlnf_obs::report()
            .counter("core.reasoner.cache_hits")
            .unwrap_or(0);
        let hits = after - before;
        assert!(
            hits >= 5,
            "expected a positive cache hit rate, got {hits} hits"
        );
        // A clone carries the warm cache along.
        let cloned = r.clone();
        let before_clone = sqlnf_obs::report()
            .counter("core.reasoner.cache_hits")
            .unwrap_or(0);
        assert_eq!(cloned.p_closure(s(&[0, 1])), first);
        let after_clone = sqlnf_obs::report()
            .counter("core.reasoner.cache_hits")
            .unwrap_or(0);
        assert!(after_clone > before_clone, "clone should inherit the cache");
    }

    #[test]
    fn trivial_fd_implication_from_empty_sigma() {
        let t = s(&[0, 1]);
        let nfs = s(&[0]);
        let empty = Sigma::new();
        let r = Reasoner::new(t, nfs, &empty);
        // X →_s Y trivial iff Y ⊆ X.
        assert!(r.implies_fd(&Fd::possible(s(&[0, 1]), s(&[1]))));
        assert!(!r.implies_fd(&Fd::possible(s(&[0]), s(&[1]))));
        // X →_w Y trivial iff Y ⊆ X ∩ T_S.
        assert!(r.implies_fd(&Fd::certain(s(&[0, 1]), s(&[0]))));
        assert!(!r.implies_fd(&Fd::certain(s(&[0, 1]), s(&[1]))));
    }
}
