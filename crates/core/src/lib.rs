//! # sqlnf-core
//!
//! The core of the reproduction of Köhler & Link, *SQL Schema Design:
//! Foundations, Normal Forms, and Normalization* (SIGMOD 2016):
//! reasoning about possible/certain FDs and keys under NOT NULL
//! constraints, the BCNF/SQL-BCNF normal forms with their semantic
//! justifications (redundancy-freeness), and lossless / VRNF schema
//! decomposition.
//!
//! ## Map from paper to modules
//!
//! | Paper | Module |
//! |---|---|
//! | Tables 1–3, Theorems 1 & 4 (axioms) | [`axioms`] |
//! | Definition 2, Algorithms 1–2, Theorems 2–3 | [`closure`] |
//! | Definition 3, Theorems 4–5 (implication) | [`implication`] |
//! | Lemma 2 (witnesses) | [`witness`] |
//! | Definitions 4 & 10 (redundancy) | [`redundancy`] |
//! | Definitions 5 & 12, Theorems 6–10, 14–15 | [`normal_forms`] |
//! | `Σ[X]`, Theorems 8 & 17 | [`projection`] |
//! | Theorems 11–12, Algorithm 3, Theorem 16 | [`decompose`] |
//! | classical baseline & Lien p-FD decomposition | [`relational`] |
//! | related-work FD semantics (Example 2) | [`related`] |
//! | cover minimization | [`cover`] |
//! | model-theoretic test oracle | [`oracle`] |
//! | high-level named API | [`design`] |

#![warn(missing_docs)]

pub mod anomaly;
pub mod axioms;
pub mod closure;
pub mod cover;
pub mod decompose;
pub mod design;
pub mod implication;
pub mod lint;
pub mod normal_forms;
pub mod oracle;
pub mod preservation;
pub mod projection;
pub mod redundancy;
pub mod related;
pub mod relational;
pub mod totalize;
pub mod witness;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::closure::{c_closure, c_closure_naive, p_closure, p_closure_naive};
    pub use crate::cover::{certain_fragment, minimize_cover, minimize_key, minimize_lhs};
    pub use crate::decompose::{
        decompose_instance_by_cfd, split_by_fd, vrnf_decompose, Component, Decomposition,
    };
    pub use crate::design::{NormalizedDesign, SchemaDesign};
    pub use crate::implication::{equivalent, Reasoner};
    pub use crate::lint::{lint, lint_to_string, LintReport};
    pub use crate::normal_forms::{
        bcnf_violations, is_bcnf, is_rfnf, is_sql_bcnf, is_vrnf, redundancy_witness,
        sql_bcnf_violations, value_redundancy_witness,
    };
    pub use crate::oracle::{
        counter_model, oracle_implies, oracle_implies_weak_fd, weak_counter_model,
    };
    pub use crate::projection::project_sigma;
    pub use crate::redundancy::{
        is_redundancy_free, is_value_redundancy_free, redundant_positions,
        value_redundant_positions, Position,
    };
    pub use crate::totalize::{totalize, Totalized, Untotalizable};
    pub use crate::witness::{violation_witness, Witness};
    pub use sqlnf_model::prelude::*;
}
