//! Schema linting: one call that tells a designer everything the
//! paper's machinery knows about a design — normal-form status, which
//! constraints violate it, a concrete instance exhibiting the resulting
//! redundancy, and whether normalization is available.

use crate::design::SchemaDesign;
use crate::normal_forms::{redundancy_witness, value_redundancy_witness};
use crate::redundancy::Position;
use sqlnf_model::constraint::Fd;
use sqlnf_model::table::Table;
use std::fmt;

/// Severity of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational.
    Info,
    /// The schema admits redundant null markers only.
    NullRedundancy,
    /// The schema admits redundant data values.
    ValueRedundancy,
}

/// One finding of the linter.
#[derive(Debug, Clone)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Human-readable description (column names resolved).
    pub message: String,
    /// The offending FD, if the finding is about one.
    pub fd: Option<Fd>,
}

/// The full lint report for a design.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Whether the design is in BCNF (⇔ RFNF).
    pub bcnf: bool,
    /// Whether the design is in SQL-BCNF (⇔ VRNF); `None` when Σ has
    /// possible constraints (SQL-BCNF is defined for certain-only Σ).
    pub sql_bcnf: Option<bool>,
    /// Whether Algorithm 3 applies (Σ is certain keys + total FDs).
    pub normalizable: bool,
    /// Findings, most severe first.
    pub findings: Vec<Finding>,
    /// A Σ-satisfying instance with a redundant position, when one
    /// exists (the semantic witness of Theorem 9 / 15).
    pub witness: Option<(Table, Position)>,
}

impl LintReport {
    /// Whether the design is free of redundancy findings.
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.severity == Severity::Info)
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "BCNF/RFNF: {}   SQL-BCNF/VRNF: {}   normalizable: {}",
            self.bcnf,
            match self.sql_bcnf {
                Some(b) => b.to_string(),
                None => "n/a (possible constraints present)".to_owned(),
            },
            self.normalizable
        )?;
        for finding in &self.findings {
            let tag = match finding.severity {
                Severity::Info => "info",
                Severity::NullRedundancy => "null-redundancy",
                Severity::ValueRedundancy => "VALUE-REDUNDANCY",
            };
            writeln!(f, "[{tag}] {}", finding.message)?;
        }
        if let Some((table, pos)) = &self.witness {
            writeln!(
                f,
                "witness instance (redundant cell at row {}, column {}):",
                pos.row,
                table.schema().column_name(pos.col)
            )?;
            write!(f, "{table}")?;
        }
        Ok(())
    }
}

/// Lints a design.
pub fn lint(design: &SchemaDesign) -> LintReport {
    let schema = design.schema();
    let (t, nfs) = (schema.attrs(), schema.nfs());
    let sigma = design.sigma();

    let bcnf = design.is_bcnf();
    let sql_bcnf = design.is_sql_bcnf().ok();
    let normalizable = sigma.is_total_fds_and_ckeys();

    let mut findings = Vec::new();

    // Value redundancy (certain-only Σ): the serious finding.
    if let Ok(violations) = design.sql_bcnf_violations() {
        for fd in violations {
            findings.push(Finding {
                severity: Severity::ValueRedundancy,
                message: format!(
                    "external c-FD {} has no certain key on its LHS: instances can store \
                     the same determined value many times; decompose by its total form",
                    fd.display(schema)
                ),
                fd: Some(fd),
            });
        }
    }

    // BCNF violations not already reported (null-marker redundancy, or
    // possible-FD redundancy).
    for fd in design.bcnf_violations() {
        let already = findings.iter().any(|f| f.fd == Some(fd));
        if already {
            continue;
        }
        findings.push(Finding {
            severity: Severity::NullRedundancy,
            message: format!(
                "FD {} can force redundant occurrences (possibly only of null markers); \
                 the schema is not in BCNF",
                fd.display(schema)
            ),
            fd: Some(fd),
        });
    }

    if findings.is_empty() {
        findings.push(Finding {
            severity: Severity::Info,
            message: "every instance over this schema is redundancy-free (RFNF)".to_owned(),
            fd: None,
        });
    } else if !normalizable {
        findings.push(Finding {
            severity: Severity::Info,
            message: "Σ is not certain keys + total FDs; Algorithm 3 does not apply directly \
                      (rewrite FDs in total form X ->w XY where the application allows)"
                .to_owned(),
            fd: None,
        });
    }

    // Prefer a value-redundancy witness; fall back to any redundancy.
    // Re-dress the witness in the design's own column names.
    let witness = value_redundancy_witness(t, nfs, sigma)
        .ok()
        .flatten()
        .or_else(|| redundancy_witness(t, nfs, sigma))
        .map(|(table, pos)| {
            let renamed = Table::from_rows(schema.clone(), table.rows().to_vec());
            (renamed, pos)
        });

    findings.sort_by_key(|f| std::cmp::Reverse(f.severity));
    LintReport {
        bcnf,
        sql_bcnf,
        normalizable,
        findings,
        witness,
    }
}

/// Convenience: lints and renders in one call.
pub fn lint_to_string(design: &SchemaDesign) -> String {
    lint(design).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn example3_design() -> SchemaDesign {
        let schema = TableSchema::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "item", "price"],
        );
        let sigma = Sigma::new().with(Fd::certain(
            schema.set(&["order_id", "item", "catalog"]),
            schema.attrs(),
        ));
        SchemaDesign::new(schema, sigma)
    }

    #[test]
    fn example3_lint() {
        let report = lint(&example3_design());
        assert!(!report.bcnf);
        assert_eq!(report.sql_bcnf, Some(false));
        assert!(report.normalizable);
        assert!(!report.is_clean());
        assert_eq!(report.findings[0].severity, Severity::ValueRedundancy);
        let (table, pos) = report.witness.as_ref().expect("witness");
        assert!(crate::redundancy::is_redundant(
            table,
            example3_design().sigma(),
            *pos
        ));
        let rendered = report.to_string();
        assert!(rendered.contains("VALUE-REDUNDANCY"));
        assert!(rendered.contains("witness instance"));
    }

    #[test]
    fn clean_design_lint() {
        let schema = TableSchema::new("t", ["a", "b"], &["a", "b"]);
        let sigma = Sigma::new().with(Key::certain(schema.set(&["a"])));
        let report = lint(&SchemaDesign::new(schema, sigma));
        assert!(report.bcnf);
        assert_eq!(report.sql_bcnf, Some(true));
        assert!(report.is_clean());
        assert!(report.witness.is_none());
        assert!(report.to_string().contains("redundancy-free"));
    }

    #[test]
    fn possible_constraints_flagged() {
        let schema = TableSchema::new("t", ["a", "b", "c"], &[]);
        let sigma = Sigma::new().with(Fd::possible(schema.set(&["a"]), schema.set(&["b"])));
        let report = lint(&SchemaDesign::new(schema, sigma));
        assert_eq!(report.sql_bcnf, None);
        assert!(!report.normalizable);
        assert!(!report.bcnf);
        // The p-FD violation shows up with a witness.
        assert!(report.witness.is_some());
        assert!(report.to_string().contains("n/a"));
    }

    #[test]
    fn null_only_redundancy_ranked_below_value_redundancy() {
        // (oic, oi, {oic ->w c}): SQL-BCNF but not BCNF — only null
        // markers can be redundant.
        let schema = TableSchema::new("oic", ["o", "i", "c"], &["o", "i"]);
        let sigma = Sigma::new().with(Fd::certain(schema.attrs(), schema.set(&["c"])));
        let report = lint(&SchemaDesign::new(schema, sigma));
        assert!(!report.bcnf);
        assert_eq!(report.sql_bcnf, Some(true));
        assert!(!report.is_clean());
        assert_eq!(report.findings[0].severity, Severity::NullRedundancy);
    }
}
