//! Normal forms: BCNF (Definition 5), SQL-BCNF (Definition 12), and
//! their semantic counterparts RFNF (Definition 4) and VRNF
//! (Definition 10).
//!
//! Theorems 6 and 14 make both syntactic conditions checkable on the
//! *given* representation Σ (invariance under equivalent representations
//! comes for free), in time quadratic in the input thanks to the
//! linear-time implication procedures. Theorems 9 and 15 justify them
//! semantically:
//!
//! * `(T, T_S, Σ)` is in RFNF ⟺ it is in BCNF;
//! * `(T, T_S, Σ)` is in VRNF ⟺ it is in SQL-BCNF;
//!
//! and this module also provides the constructive halves: when a normal
//! form fails, [`redundancy_witness`] / [`value_redundancy_witness`]
//! build a concrete Σ-satisfying instance together with a (value-)
//! redundant position in it.

use crate::implication::Reasoner;
use crate::redundancy::Position;
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::constraint::{Fd, Key, Modality, Sigma};
use sqlnf_model::schema::TableSchema;
use sqlnf_model::table::Table;
use sqlnf_model::tuple::Tuple;
use sqlnf_model::value::Value;

/// Error for operations defined only on certain-only constraint sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotCertainOnly;

impl std::fmt::Display for NotCertainOnly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SQL-BCNF/VRNF are defined for constraint sets of certain keys and certain FDs only"
        )
    }
}

impl std::error::Error for NotCertainOnly {}

/// The FDs of Σ that violate the BCNF condition of Theorem 6: the
/// non-trivial `X →_s Y ∈ Σ` with `Σ ⊭ p⟨X⟩`, and the non-trivial
/// `X →_w Y ∈ Σ` with `Σ ⊭ c⟨X⟩`.
pub fn bcnf_violations(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Vec<Fd> {
    let r = Reasoner::new(t, nfs, sigma);
    sigma
        .fds
        .iter()
        .filter(|fd| {
            !fd.is_trivial(nfs) && {
                sqlnf_obs::count!("core.normal_forms.candidate_keys_examined");
                !r.implies_key(&Key {
                    attrs: fd.lhs,
                    modality: fd.modality,
                })
            }
        })
        .copied()
        .collect()
}

/// Whether `(T, T_S, Σ)` is in Boyce-Codd normal form (Definition 5,
/// decided via Theorem 6 in quadratic time, Theorem 7).
pub fn is_bcnf(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> bool {
    bcnf_violations(t, nfs, sigma).is_empty()
}

/// Whether `(T, T_S, Σ)` is in Redundancy-free normal form. By
/// Theorem 9 this *is* the BCNF condition; the alias records the
/// semantic reading (decidable in quadratic time, Theorem 10).
pub fn is_rfnf(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> bool {
    is_bcnf(t, nfs, sigma)
}

/// The FDs of Σ violating the SQL-BCNF condition of Theorem 14: the
/// *external* c-FDs `X →_w Y ∈ Σ` with `Σ ⊭ c⟨X⟩`.
///
/// Errors unless Σ consists of certain keys and certain FDs only.
pub fn sql_bcnf_violations(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
) -> Result<Vec<Fd>, NotCertainOnly> {
    if !sigma.is_certain_only() {
        return Err(NotCertainOnly);
    }
    let r = Reasoner::new(t, nfs, sigma);
    Ok(sigma
        .fds
        .iter()
        .filter(|fd| {
            fd.is_external() && {
                sqlnf_obs::count!("core.normal_forms.candidate_keys_examined");
                !r.implies_key(&Key::certain(fd.lhs))
            }
        })
        .copied()
        .collect())
}

/// Whether `(T, T_S, Σ)` is in SQL-BCNF (Definition 12, Theorem 14).
pub fn is_sql_bcnf(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Result<bool, NotCertainOnly> {
    Ok(sql_bcnf_violations(t, nfs, sigma)?.is_empty())
}

/// Whether `(T, T_S, Σ)` is in Value redundancy-free normal form. By
/// Theorem 15 this *is* the SQL-BCNF condition.
pub fn is_vrnf(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Result<bool, NotCertainOnly> {
    is_sql_bcnf(t, nfs, sigma)
}

fn schema_over(t: AttrSet, nfs: AttrSet) -> TableSchema {
    let n = t.iter().map(Attr::index).max().unwrap() + 1;
    let cols: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
    let nn: Vec<String> = nfs.iter().map(|a| format!("a{}", a.index())).collect();
    let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
    TableSchema::new("witness", cols, &nn_refs)
}

/// Constructive half of Theorem 9: when `(T, T_S, Σ)` is **not** in
/// BCNF, builds a Σ-satisfying instance with a redundant position.
/// Returns `None` when the schema is in BCNF.
///
/// The instance is the Lemma 2 witness for the violated key of a
/// violating FD `X → Y`: two tuples similar on `X`; every substitution
/// at a `Y − X` position re-violates the FD.
pub fn redundancy_witness(t: AttrSet, nfs: AttrSet, sigma: &Sigma) -> Option<(Table, Position)> {
    let fd = bcnf_violations(t, nfs, sigma).into_iter().next()?;
    let r = Reasoner::new(t, nfs, sigma);
    let key = Key {
        attrs: fd.lhs,
        modality: fd.modality,
    };
    let w = crate::witness::violation_witness(&r, &sqlnf_model::constraint::Constraint::Key(key))
        .expect("violating FD implies violated key");
    let table = w.into_table(schema_over(t, nfs));
    // A non-trivial FD has a RHS attribute outside X (possible FDs) or
    // outside X ∩ T_S (certain FDs); in either case the witness carries
    // an agreeing pair there whose positions are redundant.
    let col = match fd.modality {
        Modality::Possible => (fd.rhs - fd.lhs).first(),
        Modality::Certain => (fd.rhs - (fd.lhs & nfs)).first(),
    }
    .expect("non-trivial violation has a free RHS attribute");
    Some((table, Position { row: 0, col }))
}

/// Constructive half of Theorem 15: when `(T, T_S, Σ)` (certain-only)
/// is **not** in SQL-BCNF, builds a Σ-satisfying instance with a
/// *value*-redundant position (a non-null redundant cell).
///
/// The instance is Lemma 2 (ii) for `c⟨X⟩`, modified to place the data
/// value `0` (instead of `⊥`) at one external RHS attribute `A* ∈ Y−X`;
/// with Σ certain-only, strong similarity plays no role, so satisfaction
/// of Σ is unaffected while position `(0, A*)` becomes value redundant.
pub fn value_redundancy_witness(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
) -> Result<Option<(Table, Position)>, NotCertainOnly> {
    let Some(fd) = sql_bcnf_violations(t, nfs, sigma)?.into_iter().next() else {
        return Ok(None);
    };
    let r = Reasoner::new(t, nfs, sigma);
    let star = (fd.lhs | r.c_closure(fd.lhs)) | fd.rhs;
    let a_star = (fd.rhs - fd.lhs).first().expect("external FD");
    let arity = t.iter().map(Attr::index).max().unwrap() + 1;
    let mut t0 = Vec::with_capacity(arity);
    let mut t1 = Vec::with_capacity(arity);
    for i in 0..arity {
        let a = Attr::from(i);
        if !t.contains(a) || a == a_star || (star.contains(a) && nfs.contains(a)) {
            // Filler outside T, the distinguished A*, or the NOT NULL
            // part of X·X*c: agree on the data value 0.
            t0.push(Value::Int(0));
            t1.push(Value::Int(0));
        } else if star.contains(a) {
            t0.push(Value::Null);
            t1.push(Value::Null);
        } else {
            t0.push(Value::Int(0));
            t1.push(Value::Int(1));
        }
    }
    let mut table = Table::new(schema_over(t, nfs));
    table.push(Tuple::new(t0));
    table.push(Tuple::new(t1));
    Ok(Some((
        table,
        Position {
            row: 0,
            col: a_star,
        },
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::redundancy::{is_redundant, redundant_positions};
    use sqlnf_model::satisfy::satisfies_all;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    // PURCHASE = oicp: o=0, i=1, c=2, p=3.
    const T: [usize; 4] = [0, 1, 2, 3];

    #[test]
    fn purchase_bcnf_examples() {
        let t = s(&T);
        // (oicp, oip, {ic →_w p}) is not in BCNF (Section 5.1).
        let nfs = s(&[0, 1, 3]);
        let sigma = Sigma::new().with(Fd::certain(s(&[1, 2]), s(&[3])));
        assert!(!is_bcnf(t, nfs, &sigma));
        assert_eq!(bcnf_violations(t, nfs, &sigma).len(), 1);
        assert!(!is_rfnf(t, nfs, &sigma));

        // (oicp, ∅, {oic →_w p, c⟨oicp⟩}) IS in BCNF: c⟨oic⟩ is implied
        // because p ∈ (oic)*c over Σ|FD.
        let sigma2 = Sigma::new()
            .with(Fd::certain(s(&[0, 1, 2]), s(&[3])))
            .with(Key::certain(t));
        assert!(is_bcnf(t, AttrSet::EMPTY, &sigma2));
        assert!(is_rfnf(t, AttrSet::EMPTY, &sigma2));
    }

    #[test]
    fn purchase_sql_bcnf_examples() {
        let t = s(&T);
        let nfs = s(&[0, 1, 3]);
        // (oicp, oip, {oic →_w cp}) is not in SQL-BCNF (Example 3).
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[2, 3])));
        assert_eq!(is_sql_bcnf(t, nfs, &sigma), Ok(false));
        // (oic, oi, {oic →_w c}): internal c-FD — in SQL-BCNF.
        let t1 = s(&[0, 1, 2]);
        let sigma1 = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[2])));
        assert_eq!(is_sql_bcnf(t1, s(&[0, 1]), &sigma1), Ok(true));
        // …but NOT in BCNF: the internal c-FD is non-trivial (c ∉ T_S)
        // and c⟨oic⟩ is not implied.
        assert!(!is_bcnf(t1, s(&[0, 1]), &sigma1));
        // (oicp, oip, {c⟨oic⟩}): in SQL-BCNF.
        let sigma2 = Sigma::new().with(Key::certain(s(&[0, 1, 2])));
        assert_eq!(is_sql_bcnf(t, nfs, &sigma2), Ok(true));
    }

    #[test]
    fn sql_bcnf_rejects_possible_constraints() {
        let t = s(&[0, 1]);
        let sigma = Sigma::new().with(Fd::possible(s(&[0]), s(&[1])));
        assert_eq!(is_sql_bcnf(t, t, &sigma), Err(NotCertainOnly));
    }

    #[test]
    fn classical_special_case() {
        // With T_S = T and a key in Σ, our BCNF reduces to classical
        // BCNF. Schema R(a,b,c) with a →_w b and key c⟨ac⟩: a → b
        // violates classical BCNF since a is not a superkey (a⁺ = ab).
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1])))
            .with(Key::certain(s(&[0, 2])));
        assert!(!is_bcnf(t, t, &sigma));
        // Whereas a →_w bc with key c⟨ab⟩ IS fine: a determines all of
        // T, so two tuples agreeing on a would agree on ab and violate
        // the key — c⟨a⟩ is implied.
        let sigma_ok = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1, 2])))
            .with(Key::certain(s(&[0, 1])));
        assert!(is_bcnf(t, t, &sigma_ok));
        // With the key on a itself it is in BCNF.
        let sigma2 = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1, 2])))
            .with(Key::certain(s(&[0])));
        assert!(is_bcnf(t, t, &sigma2));
    }

    #[test]
    fn keys_in_sigma_never_violate() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new()
            .with(Key::possible(s(&[0])))
            .with(Key::certain(s(&[1])));
        assert!(is_bcnf(t, AttrSet::EMPTY, &sigma));
        assert_eq!(
            is_sql_bcnf(t, AttrSet::EMPTY, &Sigma::new().with(Key::certain(s(&[1])))),
            Ok(true)
        );
    }

    #[test]
    fn invariance_under_equivalent_representations() {
        // Σ1 = {a →_w b, a →_w c} and Σ2 = {a →_w bc} are equivalent;
        // BCNF status agrees.
        let t = s(&[0, 1, 2]);
        let s1 = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1])))
            .with(Fd::certain(s(&[0]), s(&[2])));
        let s2 = Sigma::new().with(Fd::certain(s(&[0]), s(&[1, 2])));
        for nfs in t.subsets() {
            assert_eq!(is_bcnf(t, nfs, &s1), is_bcnf(t, nfs, &s2));
        }
        // Adding the key makes both BCNF.
        let s1k = s1.clone().with(Key::certain(s(&[0])));
        let s2k = s2.clone().with(Key::certain(s(&[0])));
        assert!(is_bcnf(t, t, &s1k) && is_bcnf(t, t, &s2k));
    }

    #[test]
    fn redundancy_witness_is_genuine() {
        let t = s(&T);
        let nfs = s(&[0, 1, 3]);
        let sigma = Sigma::new().with(Fd::certain(s(&[1, 2]), s(&[3])));
        let (table, pos) = redundancy_witness(t, nfs, &sigma).expect("not in BCNF");
        assert!(table.satisfies_nfs());
        assert!(satisfies_all(&table, &sigma));
        assert!(is_redundant(&table, &sigma, pos), "{table} pos={pos:?}");
        // In BCNF: no witness.
        let sigma_ok = Sigma::new()
            .with(Fd::certain(s(&[1, 2]), s(&[3])))
            .with(Key::certain(s(&[1, 2])));
        assert!(redundancy_witness(t, nfs, &sigma_ok).is_none());
    }

    #[test]
    fn value_redundancy_witness_is_genuine() {
        let t = s(&T);
        let nfs = s(&[0, 1, 3]);
        // Example 3's schema: not in SQL-BCNF.
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[2, 3])));
        let (table, pos) = value_redundancy_witness(t, nfs, &sigma)
            .unwrap()
            .expect("not in SQL-BCNF");
        assert!(table.satisfies_nfs());
        assert!(satisfies_all(&table, &sigma), "{table}");
        assert!(table.rows()[pos.row].get(pos.col).is_total());
        assert!(is_redundant(&table, &sigma, pos), "{table} pos={pos:?}");
        // A schema in SQL-BCNF yields no witness.
        let sigma_ok = Sigma::new().with(Key::certain(s(&[0, 1, 2])));
        assert_eq!(value_redundancy_witness(t, nfs, &sigma_ok), Ok(None));
    }

    /// Semantic half of Theorem 9 in the BCNF direction on a concrete
    /// family: schemata in BCNF admit no redundancy in any of a batch of
    /// random instances satisfying Σ.
    #[test]
    fn bcnf_schemas_have_redundancy_free_instances() {
        let t = s(&[0, 1, 2]);
        let nfs = s(&[0, 2]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[1, 2])))
            .with(Key::certain(s(&[0])));
        assert!(is_bcnf(t, nfs, &sigma));
        let schema = schema_over(t, nfs);
        // Enumerate all 2-row instances over a tiny domain and test the
        // Σ-satisfying ones.
        let vals = [Value::Int(0), Value::Int(1), Value::Null];
        let mut checked = 0;
        for code in 0..3usize.pow(6) {
            let mut c = code;
            let mut cells = Vec::with_capacity(6);
            for _ in 0..6 {
                cells.push(vals[c % 3].clone());
                c /= 3;
            }
            let mut table = Table::new(schema.clone());
            table.push(Tuple::new(cells[..3].to_vec()));
            table.push(Tuple::new(cells[3..].to_vec()));
            if satisfies_all(&table, &sigma) && table.satisfies_nfs() {
                checked += 1;
                assert!(
                    redundant_positions(&table, &sigma).is_empty(),
                    "redundancy in BCNF instance:\n{table}"
                );
            }
        }
        assert!(checked > 10, "sample too small: {checked}");
    }
}
