//! An exact, model-theoretic implication oracle for small schemata.
//!
//! All constraints of the combined class (p/c-FDs, p/c-keys, NOT NULL)
//! are universally quantified over *pairs* of tuples, so:
//!
//! 1. any violation is witnessed by a 2-tuple sub-instance, and every
//!    sub-multiset of a Σ-satisfying instance satisfies Σ — hence
//!    `Σ ⊨ φ` holds over all instances iff it holds over all instances
//!    with at most two tuples;
//! 2. for constraint evaluation, a 2-tuple instance is fully described
//!    by its per-attribute [`Agreement`] pattern, of which there are
//!    four per attribute (two for NOT NULL attributes);
//! 3. every such pattern is realizable by concrete values.
//!
//! Enumerating the `≤ 4^|T|` patterns therefore decides implication
//! *exactly*. This is exponential and intended purely as a test oracle
//! for the linear-time decision procedures of Section 4 (Theorems 2–5)
//! and the axiomatization (Theorems 1 and 4) — it must never be used on
//! schemata beyond a dozen attributes.

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::constraint::{Constraint, Fd, Key, Modality, Sigma};
use sqlnf_model::similarity::Agreement;

/// A 2-tuple instance abstracted to its per-attribute agreements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairPattern {
    agreements: Vec<Agreement>,
}

impl PairPattern {
    /// Agreement on attribute `a`.
    pub fn agreement(&self, a: Attr) -> Agreement {
        self.agreements[a.index()]
    }

    /// Whether the pair is weakly similar on every attribute of `x`.
    pub fn weakly_similar(&self, x: AttrSet) -> bool {
        x.iter().all(|a| self.agreement(a).weakly_similar())
    }

    /// Whether the pair is strongly similar on every attribute of `x`.
    pub fn strongly_similar(&self, x: AttrSet) -> bool {
        x.iter().all(|a| self.agreement(a).strongly_similar())
    }

    /// Whether the pair is (syntactically) equal on every attribute of
    /// `x`.
    pub fn equal_on(&self, x: AttrSet) -> bool {
        x.iter().all(|a| self.agreement(a).equal())
    }

    /// Whether the pair (as a 2-tuple table) satisfies the constraint.
    pub fn satisfies(&self, c: &Constraint) -> bool {
        match c {
            Constraint::Fd(Fd { lhs, rhs, modality }) => {
                let similar = match modality {
                    Modality::Possible => self.strongly_similar(*lhs),
                    Modality::Certain => self.weakly_similar(*lhs),
                };
                !similar || self.equal_on(*rhs)
            }
            Constraint::Key(Key { attrs, modality }) => match modality {
                Modality::Possible => !self.strongly_similar(*attrs),
                Modality::Certain => !self.weakly_similar(*attrs),
            },
        }
    }

    /// Whether the pair (as a 2-tuple table) satisfies the *weak* FD
    /// `lhs →_weak rhs` — some completion of the null markers satisfies
    /// the FD classically. A 2-tuple violation needs both rows total
    /// and equal on `lhs` (strong similarity) plus a non-null
    /// disagreement on some `rhs` attribute; any null on the RHS can be
    /// completed to match, so "weakly similar on `rhs`" (anything but
    /// `NeqNonNull`) is exactly completability.
    pub fn satisfies_weak_fd(&self, lhs: AttrSet, rhs: AttrSet) -> bool {
        !self.strongly_similar(lhs) || self.weakly_similar(rhs)
    }

    /// Whether the pair satisfies every constraint of Σ.
    pub fn satisfies_all(&self, sigma: &Sigma) -> bool {
        sigma.iter().all(|c| self.satisfies(&c))
    }
}

/// Iterates every realizable [`PairPattern`] over schema `t` with NFS
/// `nfs` (NOT NULL attributes admit only the two non-null agreements).
pub fn all_patterns(t: AttrSet, nfs: AttrSet) -> impl Iterator<Item = PairPattern> {
    let attrs: Vec<Attr> = t.iter().collect();
    let choices: Vec<Vec<Agreement>> = attrs
        .iter()
        .map(|a| {
            if nfs.contains(*a) {
                vec![Agreement::EqNonNull, Agreement::NeqNonNull]
            } else {
                vec![
                    Agreement::EqNonNull,
                    Agreement::NeqNonNull,
                    Agreement::OneNull,
                    Agreement::BothNull,
                ]
            }
        })
        .collect();
    let total: usize = choices.iter().map(Vec::len).product();
    let arity = attrs.iter().map(|a| a.index()).max().map_or(0, |m| m + 1);

    (0..total).map(move |mut code| {
        // Attributes outside `t` (unused columns) default to EqNonNull,
        // which never influences any constraint over `t`.
        let mut ag = vec![Agreement::EqNonNull; arity];
        for (i, a) in attrs.iter().enumerate() {
            let n = choices[i].len();
            ag[a.index()] = choices[i][code % n];
            code /= n;
        }
        PairPattern { agreements: ag }
    })
}

/// Decides `Σ ⊨ φ` over schema `(T, T_S)` by exhaustive enumeration of
/// 2-tuple models. Exact, exponential in `|T|`.
pub fn oracle_implies(t: AttrSet, nfs: AttrSet, sigma: &Sigma, phi: &Constraint) -> bool {
    all_patterns(t, nfs).all(|p| !p.satisfies_all(sigma) || p.satisfies(phi))
}

/// Finds a 2-tuple counter-model (as a pattern) for `Σ ⊨ φ`, if any.
pub fn counter_model(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
    phi: &Constraint,
) -> Option<PairPattern> {
    all_patterns(t, nfs).find(|p| p.satisfies_all(sigma) && !p.satisfies(phi))
}

/// Decides `Σ ⊨ lhs →_weak rhs` by exhaustive enumeration of 2-tuple
/// models. Exact: weak satisfaction is closed under sub-instances and
/// any weak violation is witnessed by a 2-tuple sub-instance, so the
/// pair-completeness argument of the module header applies verbatim to
/// the weak FD on the right of `⊨` too (Σ itself stays within the
/// combined p/c class).
pub fn oracle_implies_weak_fd(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
    lhs: AttrSet,
    rhs: AttrSet,
) -> bool {
    all_patterns(t, nfs).all(|p| !p.satisfies_all(sigma) || p.satisfies_weak_fd(lhs, rhs))
}

/// Finds a 2-tuple counter-model (as a pattern) for
/// `Σ ⊨ lhs →_weak rhs`, if any.
pub fn weak_counter_model(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
    lhs: AttrSet,
    rhs: AttrSet,
) -> Option<PairPattern> {
    all_patterns(t, nfs).find(|p| p.satisfies_all(sigma) && !p.satisfies_weak_fd(lhs, rhs))
}

/// Materializes a pattern as two concrete tuples of a table, for tests
/// that want real instances (column `i` uses values `0`/`1`/`⊥`).
pub fn realize(
    pattern: &PairPattern,
) -> (
    Vec<sqlnf_model::value::Value>,
    Vec<sqlnf_model::value::Value>,
) {
    use sqlnf_model::value::Value;
    let mut t0 = Vec::new();
    let mut t1 = Vec::new();
    for ag in &pattern.agreements {
        match ag {
            Agreement::EqNonNull => {
                t0.push(Value::Int(0));
                t1.push(Value::Int(0));
            }
            Agreement::NeqNonNull => {
                t0.push(Value::Int(0));
                t1.push(Value::Int(1));
            }
            Agreement::OneNull => {
                t0.push(Value::Int(0));
                t1.push(Value::Null);
            }
            Agreement::BothNull => {
                t0.push(Value::Null);
                t1.push(Value::Null);
            }
        }
    }
    (t0, t1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn pattern_count_respects_nfs() {
        let t = s(&[0, 1, 2]);
        assert_eq!(all_patterns(t, AttrSet::EMPTY).count(), 64);
        assert_eq!(all_patterns(t, s(&[0])).count(), 32);
        assert_eq!(all_patterns(t, t).count(), 8);
    }

    #[test]
    fn trivial_implications() {
        let t = s(&[0, 1]);
        let empty = Sigma::new();
        // X →_s X is always implied (axiom R).
        assert!(oracle_implies(
            t,
            AttrSet::EMPTY,
            &empty,
            &Constraint::Fd(Fd::possible(s(&[0]), s(&[0])))
        ));
        // X →_w X is NOT implied for nullable X (OneNull on 0 is weakly
        // similar but unequal).
        assert!(!oracle_implies(
            t,
            AttrSet::EMPTY,
            &empty,
            &Constraint::Fd(Fd::certain(s(&[0]), s(&[0])))
        ));
        // …but IS implied when X ⊆ T_S (rule S applied to R).
        assert!(oracle_implies(
            t,
            s(&[0]),
            &empty,
            &Constraint::Fd(Fd::certain(s(&[0]), s(&[0])))
        ));
        // No key is implied by the empty set (duplicate tuples).
        assert!(!oracle_implies(
            t,
            t,
            &empty,
            &Constraint::Key(Key::possible(t))
        ));
    }

    #[test]
    fn section4_examples_via_oracle() {
        // PURCHASE = oicp, T_S = ocp, Σ = {oi →_s c, ic →_w p}.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Fd::certain(s(&[1, 2]), s(&[3])));
        // Σ implies oi →_s p (shown by axioms in Section 4.1).
        assert!(oracle_implies(
            t,
            nfs,
            &sigma,
            &Constraint::Fd(Fd::possible(s(&[0, 1]), s(&[3])))
        ));
        // Σ does not imply oi →_w p.
        assert!(!oracle_implies(
            t,
            nfs,
            &sigma,
            &Constraint::Fd(Fd::certain(s(&[0, 1]), s(&[3])))
        ));
    }

    #[test]
    fn key_interaction_example() {
        // Σ = {oi →_s c, p⟨oic⟩} implies p⟨oi⟩ via key-Null-transitivity
        // (c ∈ T_S).
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Key::possible(s(&[0, 1, 2])));
        assert!(oracle_implies(
            t,
            nfs,
            &sigma,
            &Constraint::Key(Key::possible(s(&[0, 1])))
        ));
        // Without c ∈ T_S the rule's side condition fails and the
        // implication should not hold.
        let nfs2 = s(&[0, 3]);
        assert!(!oracle_implies(
            t,
            nfs2,
            &sigma,
            &Constraint::Key(Key::possible(s(&[0, 1])))
        ));
    }

    #[test]
    fn counter_models_realize_to_real_violations() {
        let t = s(&[0, 1]);
        let sigma = Sigma::new();
        let phi = Constraint::Fd(Fd::certain(s(&[0]), s(&[1])));
        let cm = counter_model(t, AttrSet::EMPTY, &sigma, &phi).expect("not implied");
        let (v0, v1) = realize(&cm);
        let schema = TableSchema::new("w", ["a", "b"], &[]);
        let table = Table::from_rows(schema, [Tuple::new(v0), Tuple::new(v1)]);
        assert!(satisfies_all(&table, &sigma));
        assert!(!satisfies_fd(&table, &Fd::certain(s(&[0]), s(&[1]))));
    }

    #[test]
    fn weak_fd_oracle_basics() {
        let t = s(&[0, 1]);
        let empty = Sigma::new();
        // X →_weak X is an axiom even for nullable X: OneNull completes.
        assert!(oracle_implies_weak_fd(
            t,
            AttrSet::EMPTY,
            &empty,
            s(&[0]),
            s(&[0])
        ));
        // But nothing implies a →_weak b from scratch: NeqNonNull on b
        // with EqNonNull on a is a counter-pair…
        assert!(!oracle_implies_weak_fd(t, t, &empty, s(&[0]), s(&[1])));
        let cm = weak_counter_model(t, t, &empty, s(&[0]), s(&[1])).unwrap();
        // …and the witness realizes to a genuine weak violation.
        let (v0, v1) = realize(&cm);
        let schema = TableSchema::new("w", ["a", "b"], &[]);
        let table = Table::from_rows(schema, [Tuple::new(v0), Tuple::new(v1)]);
        assert!(!satisfies_weak_fd(&table, s(&[0]), s(&[1])));
        // A p-FD implies its weak counterpart (possible ⟹ weak
        // pairwise); so does a classical/certain one.
        let sigma = Sigma::new().with(Fd::possible(s(&[0]), s(&[1])));
        assert!(oracle_implies_weak_fd(
            t,
            AttrSet::EMPTY,
            &sigma,
            s(&[0]),
            s(&[1])
        ));
        let sigma_c = Sigma::new().with(Fd::certain(s(&[0]), s(&[1])));
        assert!(oracle_implies_weak_fd(
            t,
            AttrSet::EMPTY,
            &sigma_c,
            s(&[0]),
            s(&[1])
        ));
        // p-FD chains transfer weakly exactly as they do possibly: a
        // NOT NULL midpoint carries the chain (the weak conclusion
        // tracks `p_closure`), a nullable one breaks it (`b` BothNull
        // satisfies a →_s b by syntactic equality while vacuating
        // b →_s c).
        let chain = Sigma::new()
            .with(Fd::possible(s(&[0]), s(&[1])))
            .with(Fd::possible(s(&[1]), s(&[2])));
        let t3 = s(&[0, 1, 2]);
        assert!(oracle_implies_weak_fd(
            t3,
            s(&[1]),
            &chain,
            s(&[0]),
            s(&[2])
        ));
        assert!(!oracle_implies_weak_fd(
            t3,
            AttrSet::EMPTY,
            &chain,
            s(&[0]),
            s(&[2])
        ));
        // Even with the NFS midpoint, the *certain* conclusion fails
        // (OneNull on `a` vacuates the chain but not weak similarity) —
        // weak sits strictly below certain as a conclusion.
        assert!(!oracle_implies(
            t3,
            s(&[1]),
            &chain,
            &Constraint::Fd(Fd::certain(s(&[0]), s(&[2])))
        ));
    }

    #[test]
    fn keys_strengthen_on_nfs() {
        // p⟨X⟩ with X ⊆ T_S implies c⟨X⟩ (rule kS) — and not otherwise.
        let t = s(&[0, 1]);
        let sigma = Sigma::new().with(Key::possible(s(&[0])));
        let phi = Constraint::Key(Key::certain(s(&[0])));
        assert!(oracle_implies(t, s(&[0]), &sigma, &phi));
        assert!(!oracle_implies(t, AttrSet::EMPTY, &sigma, &phi));
        // c⟨X⟩ always implies p⟨X⟩ (rule kW).
        let sigma2 = Sigma::new().with(Key::certain(s(&[0])));
        assert!(oracle_implies(
            t,
            AttrSet::EMPTY,
            &sigma2,
            &Constraint::Key(Key::possible(s(&[0])))
        ));
    }

    #[test]
    fn fds_never_imply_keys_alone() {
        // Figure 3's lesson: even X →_s T for all X cannot give a key.
        let t = s(&[0, 1]);
        let mut sigma = Sigma::new();
        for x in t.subsets() {
            sigma.add(Fd::possible(x, t));
            sigma.add(Fd::certain(x, t));
        }
        assert!(!oracle_implies(
            t,
            t,
            &sigma,
            &Constraint::Key(Key::possible(t))
        ));
    }
}
