//! Dependency preservation of decompositions.
//!
//! The paper defers dependency-preserving normal forms to future work
//! (Section 1 notes that dependency-preserving BCNF decompositions can
//! always be obtained by attribute splitting \[30\]); what a schema
//! designer needs day-to-day is the *check*: after decomposing, which
//! of the original constraints are still enforced by the component
//! schemata alone?
//!
//! A constraint is **preserved** when it is implied (over the original
//! schema) by the union of the components' projected constraints —
//! classically `Σ ≡ ⋃ᵢ Σ[Tᵢ]`. Keys earned during VRNF decomposition
//! (Theorem 12) are constraints of the *component* tables; over the
//! original schema the honest projection of a component's c-key `c⟨X⟩`
//! is the total c-FD `X →_w Tᵢ` (the key also forbids duplicate rows in
//! the component, which no single-table constraint over `T` expresses —
//! the set projection discards duplicates anyway), and that is what the
//! checker uses.

use crate::decompose::Decomposition;
use crate::implication::Reasoner;
use crate::projection::project_sigma;
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Constraint, Fd, Modality, Sigma};

/// Outcome of a preservation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreservationReport {
    /// The constraints of Σ implied by the union of projections.
    pub preserved: Vec<Constraint>,
    /// The constraints of Σ *not* implied — enforcing them requires a
    /// join across components.
    pub lost: Vec<Constraint>,
}

impl PreservationReport {
    /// Whether every constraint survived.
    pub fn is_preserving(&self) -> bool {
        self.lost.is_empty()
    }
}

/// The union of the components' constraints, re-read as constraints
/// over the original schema `(t, nfs)`.
pub fn united_projection(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
    decomposition: &Decomposition,
) -> Sigma {
    let mut union = Sigma::new();
    for comp in &decomposition.components {
        let projected = project_sigma(t, nfs, sigma, comp.attrs);
        for fd in projected.fds {
            union.add(fd);
        }
        for key in projected.keys {
            // A key of the original schema restricted to the component
            // stays a key statement over T.
            union.add(key);
        }
        // Keys *earned* by the decomposition (present in the component's
        // own sigma but not implied by Σ on T): over the original
        // schema they enforce the total FD X →_w Tᵢ.
        let r = Reasoner::new(t, nfs, sigma);
        for key in &comp.sigma.keys {
            if key.modality == Modality::Certain && !r.implies_key(key) {
                union.add(Fd::certain(key.attrs, comp.attrs));
            }
        }
    }
    union
}

/// Checks which constraints of Σ are preserved by the decomposition.
pub fn preservation_report(
    t: AttrSet,
    nfs: AttrSet,
    sigma: &Sigma,
    decomposition: &Decomposition,
) -> PreservationReport {
    let union = united_projection(t, nfs, sigma, decomposition);
    let r = Reasoner::new(t, nfs, &union);
    let mut preserved = Vec::new();
    let mut lost = Vec::new();
    for c in sigma.iter() {
        if r.implies(&c) {
            preserved.push(c);
        } else {
            lost.push(c);
        }
    }
    PreservationReport { preserved, lost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::vrnf_decompose;
    use sqlnf_model::constraint::Key;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn example3_decomposition_preserves() {
        // (oicp, oip, {oic →_w oicp}): components oic and oicp; the FD
        // lives entirely inside the oicp component.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 1, 3]);
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), t));
        let d = vrnf_decompose(t, nfs, &sigma).unwrap();
        let report = preservation_report(t, nfs, &sigma, &d);
        assert!(report.is_preserving(), "{report:?}");
        assert_eq!(report.preserved.len(), 1);
    }

    #[test]
    fn contractor_decomposition_preserves() {
        let table = sqlnf_datagen_stub::contractor();
        let sigma = sqlnf_datagen_stub::contractor_sigma(&table);
        let d = vrnf_decompose(table.0, table.1, &sigma).unwrap();
        let report = preservation_report(table.0, table.1, &sigma, &d);
        assert!(report.is_preserving(), "lost: {:?}", report.lost);
    }

    /// Local stand-in for the contractor schema shape (the datagen
    /// crate depends on core, so core's tests cannot use it; the
    /// end-to-end suite covers the real table).
    mod sqlnf_datagen_stub {
        use super::*;
        pub fn contractor() -> (AttrSet, AttrSet) {
            (AttrSet::first_n(8), AttrSet::first_n(8))
        }
        pub fn contractor_sigma(_t: &(AttrSet, AttrSet)) -> Sigma {
            // city,url → dmerc,status / cmd,phone,url → ver / addr → url
            // in miniature: attrs 0..8.
            Sigma::new()
                .with(Fd::certain(s(&[0, 1]), s(&[0, 1, 2, 3])))
                .with(Fd::certain(s(&[4, 1]), s(&[4, 1, 5])))
                .with(Fd::certain(s(&[6, 7]), s(&[6, 7, 1])))
        }
    }

    #[test]
    fn classic_lossy_preservation_example() {
        // The textbook non-preserving case: R(a,b,c) with a → b and
        // b → c (as total c-FDs, T_S = T), decomposed manually into
        // (a,b) and (a,c): b → c is lost.
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[0, 1])))
            .with(Fd::certain(s(&[1]), s(&[1, 2])));
        let manual = Decomposition {
            components: vec![
                crate::decompose::Component {
                    attrs: s(&[0, 1]),
                    multiset: false,
                    sigma: Sigma::new().with(Fd::certain(s(&[0]), s(&[0, 1]))),
                },
                crate::decompose::Component {
                    attrs: s(&[0, 2]),
                    multiset: true,
                    sigma: Sigma::new(),
                },
            ],
        };
        let report = preservation_report(t, t, &sigma, &manual);
        assert!(!report.is_preserving());
        assert_eq!(
            report.lost,
            vec![Constraint::Fd(Fd::certain(s(&[1]), s(&[1, 2])))]
        );
        // Algorithm 3 on the same schema splits off (b,c) first —
        // preserving both FDs.
        let d = vrnf_decompose(t, t, &sigma).unwrap();
        let report2 = preservation_report(t, t, &sigma, &d);
        assert!(report2.is_preserving(), "{report2:?}");
    }

    #[test]
    fn earned_keys_translate_to_total_fds() {
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new().with(Fd::certain(s(&[0]), s(&[0, 1])));
        let d = vrnf_decompose(t, t, &sigma).unwrap();
        let union = united_projection(t, t, &sigma, &d);
        // The earned c⟨a⟩ on component (a,b) shows up as a →_w ab.
        let r = Reasoner::new(t, t, &union);
        assert!(r.implies_fd(&Fd::certain(s(&[0]), s(&[0, 1]))));
        // But NOT as a key over the original schema.
        assert!(!r.implies_key(&Key::certain(s(&[0]))));
    }
}
