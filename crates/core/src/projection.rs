//! Schema projection `Σ[X]` (Section 5.1):
//!
//! ```text
//! Σ[X] = {Y → Z ∈ Σ⁺ | YZ ⊆ X} ∪ {(p/c)⟨Y⟩ ∈ Σ⁺ | Y ⊆ X}
//! ```
//!
//! `Σ[X]` is infinite to write down but finitely covered:
//! [`project_sigma`] produces a *cover* — a finite set of constraints
//! over `X` equivalent to `Σ[X]` on the projected schema
//! `(X, X ∩ T_S)`. Deciding a normal form on a projection is co-NP
//! complete (Theorems 8 and 17), and indeed the cover construction
//! enumerates subsets of `X`; the enumeration is restricted to the
//! attributes mentioned in Σ, which is exact:
//!
//! *An attribute `A` that occurs in no constraint of Σ enters any
//! closure only as itself and enables no rule, so every implied
//! constraint with `A` in its LHS follows from one without `A` by
//! (key-)augmentation and reflexivity/union.* Consequently a cover
//! built from LHSs `V ⊆ X ∩ attrs(Σ)` is complete; the sub-schema
//! tests below verify this against full enumeration.

use crate::implication::Reasoner;
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Fd, Key, Sigma};

/// Hard cap on the subset enumeration of the projection cover.
const MAX_ENUM_BITS: usize = 22;

/// Builds a cover of `Σ[X]` over the projected schema, expressed in the
/// *original* attribute indices (all within `x`).
///
/// For every `V ⊆ x ∩ attrs(Σ)` the cover contains:
/// * the p-FD `V →_s (V*p ∩ x)` when its RHS leaves `V`;
/// * the c-FD `V →_w (V*c ∩ x)` when non-trivial (RHS outside
///   `V ∩ T_S` — internal c-FDs on nullable attributes carry real
///   constraints and are kept);
/// * `p⟨V⟩` / `c⟨V⟩` when implied and subset-minimal among those found.
///
/// # Panics
/// Panics when `|x ∩ attrs(Σ)| > 22` (the enumeration would exceed
/// millions of subsets; the underlying problem is co-NP complete).
pub fn project_sigma(t: AttrSet, nfs: AttrSet, sigma: &Sigma, x: AttrSet) -> Sigma {
    assert!(x.is_subset(t), "projection target must be within T");
    let r = Reasoner::new(t, nfs, sigma);
    let relevant = x & sigma.attrs();
    assert!(
        relevant.len() <= MAX_ENUM_BITS,
        "projection enumeration over {} attributes refused (co-NP; cap {MAX_ENUM_BITS})",
        relevant.len()
    );

    let mut out = Sigma::new();
    // Minimal implied keys found so far, for subset pruning.
    let mut min_pkeys: Vec<AttrSet> = Vec::new();
    let mut min_ckeys: Vec<AttrSet> = Vec::new();

    // Enumerate by ascending cardinality so minimal keys are met first.
    let mut subsets: Vec<AttrSet> = relevant.subsets().collect();
    subsets.sort_by_key(|s| (s.len(), s.0));

    for v in subsets {
        // FDs.
        let rhs_p = r.p_closure(v) & x;
        if !rhs_p.is_subset(v) {
            out.add(Fd::possible(v, rhs_p));
        }
        let rhs_c = r.c_closure(v) & x;
        if !rhs_c.is_subset(v & nfs) {
            out.add(Fd::certain(v, rhs_c));
        }
        // Keys (minimal representatives only; augmentation recovers the
        // rest).
        if !min_ckeys.iter().any(|k| k.is_subset(v)) && r.implies_key(&Key::certain(v)) {
            min_ckeys.push(v);
            out.add(Key::certain(v));
        }
        if !min_pkeys.iter().any(|k| k.is_subset(v))
            && !min_ckeys.iter().any(|k| k.is_subset(v))
            && r.implies_key(&Key::possible(v))
        {
            min_pkeys.push(v);
            out.add(Key::possible(v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::equivalent;
    use crate::normal_forms::{is_bcnf, is_sql_bcnf};

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    /// Reference implementation: cover from *all* subsets of `x`.
    fn project_sigma_full(t: AttrSet, nfs: AttrSet, sigma: &Sigma, x: AttrSet) -> Sigma {
        let r = Reasoner::new(t, nfs, sigma);
        let mut out = Sigma::new();
        for v in x.subsets() {
            let rhs_p = r.p_closure(v) & x;
            if !rhs_p.is_subset(v) {
                out.add(Fd::possible(v, rhs_p));
            }
            let rhs_c = r.c_closure(v) & x;
            if !rhs_c.is_subset(v & nfs) {
                out.add(Fd::certain(v, rhs_c));
            }
            if r.implies_key(&Key::possible(v)) {
                out.add(Key::possible(v));
            }
            if r.implies_key(&Key::certain(v)) {
                out.add(Key::certain(v));
            }
        }
        out
    }

    /// The relevant-attribute restriction is exact: restricted and full
    /// covers are equivalent over the projected schema, across a pool of
    /// Σ's, NFSs and projection targets on 4 attributes.
    #[test]
    fn restricted_cover_equals_full_cover() {
        let t = s(&[0, 1, 2, 3]);
        let pools: Vec<Sigma> = vec![
            Sigma::new().with(Fd::certain(s(&[0]), s(&[1]))),
            Sigma::new()
                .with(Fd::possible(s(&[0]), s(&[1])))
                .with(Fd::certain(s(&[1]), s(&[2]))),
            Sigma::new()
                .with(Fd::certain(s(&[0, 1]), s(&[2])))
                .with(Key::possible(s(&[0, 2]))),
            Sigma::new().with(Key::certain(s(&[1]))),
            Sigma::new()
                .with(Fd::certain(s(&[0]), s(&[0, 1, 2])))
                .with(Key::certain(s(&[0, 3]))),
        ];
        for sigma in &pools {
            for nfs in [AttrSet::EMPTY, s(&[0, 2]), t] {
                for x in [s(&[0, 1]), s(&[0, 1, 2]), s(&[1, 3]), t] {
                    let fast = project_sigma(t, nfs, sigma, x);
                    let full = project_sigma_full(t, nfs, sigma, x);
                    assert!(
                        equivalent(x, nfs & x, &fast, &full),
                        "sigma={sigma:?} nfs={nfs:?} x={x:?}\nfast={fast:?}\nfull={full:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn example3_component_projections() {
        // (oicp, oip, {oic →_w cp}); project onto oic: the projected
        // cover must carry the internal c-FD oic →_w c and be in
        // SQL-BCNF but not BCNF.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 1, 3]);
        let sigma = Sigma::new().with(Fd::certain(s(&[0, 1, 2]), s(&[2, 3])));
        let oic = s(&[0, 1, 2]);
        let proj = project_sigma(t, nfs, &sigma, oic);
        // The projected cover implies oic →_w c…
        let r = Reasoner::new(oic, nfs & oic, &proj);
        assert!(r.implies_fd(&Fd::certain(s(&[0, 1, 2]), s(&[2]))));
        // …and no external FD or key.
        assert_eq!(is_sql_bcnf(oic, nfs & oic, &proj), Ok(true));
        assert!(!is_bcnf(oic, nfs & oic, &proj));
        // Projecting onto icp keeps ic →_w p (if the FD were ic-based)…
        // here instead check oicp projection is identity-equivalent.
        let full = project_sigma(t, nfs, &sigma, t);
        assert!(equivalent(t, nfs, &full, &sigma));
    }

    #[test]
    fn keys_project_and_strengthen() {
        // Σ = {c⟨0,1⟩} over 3 attrs: projecting onto {0,1} keeps the
        // key; onto {0,2} loses it.
        let t = s(&[0, 1, 2]);
        let sigma = Sigma::new().with(Key::certain(s(&[0, 1])));
        let p01 = project_sigma(t, AttrSet::EMPTY, &sigma, s(&[0, 1]));
        let r01 = Reasoner::new(s(&[0, 1]), AttrSet::EMPTY, &p01);
        assert!(r01.implies_key(&Key::certain(s(&[0, 1]))));
        let p02 = project_sigma(t, AttrSet::EMPTY, &sigma, s(&[0, 2]));
        let r02 = Reasoner::new(s(&[0, 2]), AttrSet::EMPTY, &p02);
        assert!(!r02.implies_key(&Key::possible(s(&[0, 2]))));
    }

    #[test]
    #[should_panic(expected = "co-NP")]
    fn enumeration_cap_enforced() {
        let t = AttrSet::first_n(30);
        let sigma = Sigma::new().with(Fd::certain(AttrSet::first_n(25), t));
        let _ = project_sigma(t, t, &sigma, t);
    }
}
