//! Instance-level data redundancy (Definition 4) and value redundancy
//! (Definition 10), following Vincent's constraint-independent notion.
//!
//! A *position* (row, column) of an instance `I` over `(T, T_S, Σ)` is
//! **redundant** iff `I` has no `p0`-value substitution: every change of
//! the value at that position — to any other domain value, or to `⊥`
//! where the column is nullable — yields an instance violating Σ (or
//! the NFS). It is **value redundant** if additionally it does not hold
//! `⊥` itself.
//!
//! ### Completeness of the candidate set
//!
//! The constraints of the combined class compare cell values only for
//! (in)equality within one column and for nullness. Hence the effect of
//! a substitution value `v'` on every constraint is determined by which
//! existing values in that column `v'` equals, plus whether it is `⊥`.
//! It therefore suffices to try: every distinct value already occurring
//! in the column (other than the current one), one *fresh* value equal
//! to nothing, and `⊥` (when the column is nullable). This candidate
//! set is exact, not a heuristic; `substitution_candidates` builds it.

use sqlnf_model::attrs::Attr;
use sqlnf_model::constraint::{Constraint, Sigma};
use sqlnf_model::satisfy::satisfies;
use sqlnf_model::table::Table;
use sqlnf_model::value::Value;

/// A position in an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// Row index.
    pub row: usize,
    /// Column.
    pub col: Attr,
}

/// A value that can replace the cell at a position, together with every
/// distinct behaviour class a substitution can have.
pub fn substitution_candidates(table: &Table, pos: Position) -> Vec<Value> {
    let current = table.rows()[pos.row].get(pos.col).clone();
    let mut cands: Vec<Value> = Vec::new();

    // Every distinct active-domain value of the column.
    for v in table.active_domain(pos.col) {
        if v != current {
            cands.push(v);
        }
    }
    // One fresh value, equal to no existing value in the column. A
    // string outside the domain works because equality is syntactic.
    let mut fresh = String::from("__fresh__");
    while table
        .rows()
        .iter()
        .any(|t| matches!(t.get(pos.col), Value::Str(s) if *s == fresh))
    {
        fresh.push('_');
    }
    cands.push(Value::Str(fresh));
    // The null marker, when permitted and different.
    if !table.schema().nfs().contains(pos.col) && !current.is_null() {
        cands.push(Value::Null);
    }
    cands
}

/// Whether the value at `pos` is redundant in `I` with respect to Σ
/// (Definition 4).
pub fn is_redundant(table: &Table, sigma: &Sigma, pos: Position) -> bool {
    // Only constraints mentioning the column can be affected by the
    // substitution; restrict the re-check to those.
    let affected: Vec<Constraint> = sigma
        .iter()
        .filter(|c| match c {
            Constraint::Fd(fd) => fd.attrs().contains(pos.col),
            Constraint::Key(k) => k.attrs.contains(pos.col),
        })
        .collect();
    if affected.is_empty() {
        // Any fresh value is a valid substitution.
        return false;
    }
    let mut scratch = table.clone();
    for cand in substitution_candidates(table, pos) {
        scratch.set_value(pos.row, pos.col, cand);
        if affected.iter().all(|c| satisfies(&scratch, c)) {
            return false;
        }
    }
    true
}

/// All redundant positions of the instance (Definition 4).
pub fn redundant_positions(table: &Table, sigma: &Sigma) -> Vec<Position> {
    let mut out = Vec::new();
    for row in 0..table.len() {
        for col in table.schema().attrs() {
            let pos = Position { row, col };
            if is_redundant(table, sigma, pos) {
                out.push(pos);
            }
        }
    }
    out
}

/// All *value-redundant* positions (Definition 10): redundant positions
/// whose value is not the null marker.
pub fn value_redundant_positions(table: &Table, sigma: &Sigma) -> Vec<Position> {
    redundant_positions(table, sigma)
        .into_iter()
        .filter(|p| table.rows()[p.row].get(p.col).is_total())
        .collect()
}

/// Whether the instance is redundancy-free (no redundant positions).
pub fn is_redundancy_free(table: &Table, sigma: &Sigma) -> bool {
    redundant_positions(table, sigma).is_empty()
}

/// Whether the instance is free from value redundancy.
pub fn is_value_redundancy_free(table: &Table, sigma: &Sigma) -> bool {
    value_redundant_positions(table, sigma).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    /// Figure 1 with Σ = {ic →_w p}: the three 240s of the Fitbit rows
    /// are redundant.
    #[test]
    fn figure1_redundant_prices() {
        let t = TableBuilder::new("purchase", ["order_id", "item", "catalog", "price"], &[])
            .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
            .row(tuple![5299401i64, "Fitbit Surge", "Brookstone", 240i64])
            .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
            .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["item", "catalog"]), s.set(&["price"])));
        let price = s.a("price");
        let red = redundant_positions(&t, &sigma);
        // Rows 0 and 2 (Fitbit/Amazon) have redundant prices; rows 1 and
        // 3 have unique (item,catalog) so their price is free.
        assert!(red.contains(&Position { row: 0, col: price }));
        assert!(red.contains(&Position { row: 2, col: price }));
        assert!(!red.iter().any(|p| p.row == 1 && p.col == price));
        assert!(!red.iter().any(|p| p.row == 3 && p.col == price));
        // No other column is constrained… but item/catalog of the
        // Fitbit/Amazon pair are not redundant either: changing them
        // only removes agreement.
        assert!(red.iter().all(|p| p.col == price));
        assert_eq!(red.len(), 2);
    }

    /// Figure 5's projection I[icp]: both 240s are redundant w.r.t. the
    /// c-FD, because rows 1 and 2 are weakly similar on {item,catalog}.
    #[test]
    fn figure5_projection_redundancy() {
        let t = TableBuilder::new("icp", ["item", "catalog", "price"], &["item", "price"])
            .row(tuple!["Fitbit Surge", "Amazon", 240i64])
            .row(tuple!["Fitbit Surge", null, 240i64])
            .row(tuple!["Dora Doll", "Kingtoys", 25i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["item", "catalog"]), s.set(&["price"])));
        let price = s.a("price");
        let red = redundant_positions(&t, &sigma);
        assert!(red.contains(&Position { row: 0, col: price }));
        assert!(red.contains(&Position { row: 1, col: price }));
        assert_eq!(red.len(), 2);
        // With the p-FD instead, neither 240 is redundant (the paper's
        // point c of Section 1): NULL is not strongly similar to Amazon.
        let sigma_p =
            Sigma::new().with(Fd::possible(s.set(&["item", "catalog"]), s.set(&["price"])));
        assert!(is_redundancy_free(&t, &sigma_p));
    }

    /// Section 6.2's instance over [oic]: only the NULL positions are
    /// redundant, so the instance is value-redundancy-free but not
    /// redundancy-free.
    #[test]
    fn section62_null_redundancy() {
        let t = TableBuilder::new(
            "oic",
            ["order_id", "item", "catalog"],
            &["order_id", "item"],
        )
        .row(tuple![5299401i64, "Fitbit Surge", null])
        .row(tuple![5299401i64, "Fitbit Surge", null])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys"])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys"])
        .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(
            s.set(&["order_id", "item", "catalog"]),
            s.set(&["catalog"]),
        ));
        let red = redundant_positions(&t, &sigma);
        let catalog = s.a("catalog");
        // Exactly the two NULL positions are redundant: substituting one
        // by any domain value violates oic →_w c, while neither Kingtoys
        // is redundant (substituting one by Amazon keeps the FD… no:
        // rows 3,4 agree on oi and would differ on c — wait, they are
        // weakly similar on oic only if equal on catalog. Changing one
        // Kingtoys to Amazon breaks weak similarity on oic itself, so
        // the FD still holds.)
        assert_eq!(red.len(), 2);
        assert!(red.contains(&Position {
            row: 0,
            col: catalog
        }));
        assert!(red.contains(&Position {
            row: 1,
            col: catalog
        }));
        assert!(!is_redundancy_free(&t, &sigma));
        assert!(is_value_redundancy_free(&t, &sigma));
    }

    /// Keys create redundancy-freeness: with c<item,catalog> enforced,
    /// a table satisfying it has no redundant positions.
    #[test]
    fn ckey_prevents_redundancy() {
        let t = TableBuilder::new("icp", ["item", "catalog", "price"], &[])
            .row(tuple!["Fitbit Surge", "Amazon", 240i64])
            .row(tuple!["Dora Doll", "Kingtoys", 25i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Key::certain(s.set(&["item", "catalog"])));
        assert!(satisfies_all(&t, &sigma));
        assert!(is_redundancy_free(&t, &sigma));
    }

    /// A key can also *cause* redundancy of LHS values: with p<a> and
    /// domain {0,1} exhausted… keys constrain inequality, so a cell may
    /// be unable to take any existing value but can always take a fresh
    /// one — keys alone never make a position redundant.
    #[test]
    fn keys_alone_never_make_positions_redundant() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 1i64])
            .row(tuple![2i64, 2i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new()
            .with(Key::possible(s.set(&["a"])))
            .with(Key::certain(s.set(&["a", "b"])));
        assert!(satisfies_all(&t, &sigma));
        assert!(is_redundancy_free(&t, &sigma));
    }

    /// Substituting to NULL can rescue a position: with a c-FD whose LHS
    /// contains the column, nulling the cell may *create* weak
    /// similarity and hence violations — the checker must consider it.
    #[test]
    fn null_substitution_can_create_violations() {
        // a →_w b; rows (0,0),(1,1). Change a of row 0 to NULL: rows
        // become weakly similar on a but differ on b → violation. Change
        // to fresh: fine. So position (0,a) is not redundant.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![0i64, 0i64])
            .row(tuple![1i64, 1i64])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["a"]), s.set(&["b"])));
        assert!(satisfies_all(&t, &sigma));
        assert!(is_redundancy_free(&t, &sigma));
    }

    /// A position can be redundant because *every* candidate (fresh,
    /// domain, NULL) fails: b-cell under a →_w b with a duplicate LHS.
    #[test]
    fn rhs_under_duplicate_lhs_is_redundant() {
        let t = TableBuilder::new("r", ["a", "b"], &["a"])
            .row(tuple![7i64, "x"])
            .row(tuple![7i64, "x"])
            .build();
        let s = t.schema().clone();
        let sigma = Sigma::new().with(Fd::certain(s.set(&["a"]), s.set(&["b"])));
        let red = redundant_positions(&t, &sigma);
        let b = s.a("b");
        assert!(red.contains(&Position { row: 0, col: b }));
        assert!(red.contains(&Position { row: 1, col: b }));
        // The a-cells are not redundant: a fresh value breaks the
        // agreement without violating anything.
        assert!(red.iter().all(|p| p.col == b));
    }

    #[test]
    fn unconstrained_table_is_redundancy_free() {
        let t = TableBuilder::new("r", ["a"], &[])
            .row(tuple![1i64])
            .row(tuple![1i64])
            .build();
        assert!(is_redundancy_free(&t, &Sigma::new()));
    }

    #[test]
    fn candidates_cover_domain_fresh_and_null() {
        let t = TableBuilder::new("r", ["a"], &[])
            .row(tuple![1i64])
            .row(tuple![2i64])
            .row(tuple![null])
            .build();
        let cands = substitution_candidates(
            &t,
            Position {
                row: 0,
                col: Attr(0),
            },
        );
        // 2 (domain), fresh, NULL.
        assert_eq!(cands.len(), 3);
        assert!(cands.contains(&Value::Int(2)));
        assert!(cands.contains(&Value::Null));
        assert!(cands.iter().any(|v| matches!(v, Value::Str(_))));
        // NOT NULL column: no NULL candidate.
        let t2 = TableBuilder::new("r", ["a"], &["a"])
            .row(tuple![1i64])
            .build();
        let c2 = substitution_candidates(
            &t2,
            Position {
                row: 0,
                col: Attr(0),
            },
        );
        assert!(!c2.contains(&Value::Null));
    }
}
