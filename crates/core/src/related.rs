//! The competing FD semantics of Section 3 (related work), implemented
//! for comparison: Vassiliou's three-valued satisfaction \[39\] and
//! Levene/Loizou's weak and strong FDs \[24\], all under the
//! "value unknown at present" possible-world reading of `⊥`.
//!
//! A *possible world* of an instance `I` replaces every `⊥` by some
//! domain value (independently per occurrence). Then, for an FD
//! `X → Y`:
//!
//! * **weak** satisfaction (\[24\]): some possible world satisfies the FD
//!   classically;
//! * **strong** satisfaction (\[24\]): every possible world does;
//! * **three-valued** (\[39\]): `True` if every world satisfies it,
//!   `False` if none does, `Unknown` otherwise.
//!
//! Deciding these exactly by enumeration is exponential in the number
//! of null occurrences; this module enumerates over a sufficient finite
//! domain (the column's active domain plus one fresh value per null),
//! which is exact for FD (dis)satisfaction because constraints only
//! compare values for equality. It exists to reproduce Example 2's
//! comparison matrix and as a baseline in tests — the paper's own
//! notions (`→_s`, `→_w` under the *no-information* interpretation)
//! live in `sqlnf_model::satisfy` and are linear-time per pair.

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::constraint::Fd;
use sqlnf_model::satisfy::satisfies_fd;
use sqlnf_model::table::Table;
use sqlnf_model::value::Value;

/// Three-valued satisfaction verdict of \[39\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreeValued {
    /// Holds in every possible world.
    True,
    /// Holds in no possible world.
    False,
    /// Holds in some but not all possible worlds.
    Unknown,
}

/// The positions of null occurrences of a table.
fn null_positions(table: &Table) -> Vec<(usize, Attr)> {
    let mut out = Vec::new();
    for (r, t) in table.rows().iter().enumerate() {
        for a in table.schema().attrs() {
            if t.get(a).is_null() {
                out.push((r, a));
            }
        }
    }
    out
}

/// Candidate replacement values for the `j`-th null occurrence of
/// column `a`: the column's active domain plus the fresh values
/// `fresh_a_0 ..= fresh_a_j`. Including the *earlier* nulls' fresh
/// values lets two nulls of a column become equal to each other without
/// equalling any existing value (restricted-growth enumeration). This
/// is sufficient: a world is characterized, for FD evaluation, by which
/// equalities hold among the cells of each column, and every such
/// pattern is realized by some assignment from these candidate sets.
fn candidates(table: &Table, a: Attr, column_null_index: usize) -> Vec<Value> {
    let mut c = table.active_domain(a);
    for j in 0..=column_null_index {
        c.push(Value::Str(format!("__fresh_{}_{j}__", a.index())));
    }
    c
}

/// Visits every (equality-distinguishable) possible world of `table`,
/// calling `f`; stops early when `f` returns `false`. Returns whether
/// iteration ran to completion.
///
/// # Panics
/// Panics when the instance has more than 8 null occurrences — the
/// enumeration is exponential and exists for small reference instances
/// like Example 2's.
pub fn for_each_possible_world(table: &Table, mut f: impl FnMut(&Table) -> bool) -> bool {
    let nulls = null_positions(table);
    assert!(
        nulls.len() <= 8,
        "possible-world enumeration over {} nulls refused",
        nulls.len()
    );
    let mut per_column_seen: std::collections::HashMap<Attr, usize> = Default::default();
    let cand: Vec<Vec<Value>> = nulls
        .iter()
        .map(|&(_, a)| {
            let j = per_column_seen.entry(a).or_insert(0);
            let c = candidates(table, a, *j);
            *j += 1;
            c
        })
        .collect();
    let mut world = table.clone();
    let mut idx = vec![0usize; nulls.len()];
    loop {
        for (k, &(r, a)) in nulls.iter().enumerate() {
            world.set_value(r, a, cand[k][idx[k]].clone());
        }
        if !f(&world) {
            return false;
        }
        // Odometer.
        let mut k = 0;
        loop {
            if k == nulls.len() {
                return true;
            }
            idx[k] += 1;
            if idx[k] < cand[k].len() {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

fn classical_holds(world: &Table, lhs: AttrSet, rhs: AttrSet) -> bool {
    // Worlds are total, so possible/certain/classical coincide.
    satisfies_fd(world, &Fd::possible(lhs, rhs))
}

/// Weak FD satisfaction of \[24\]: some possible world satisfies `X → Y`.
pub fn weak_fd_holds(table: &Table, lhs: AttrSet, rhs: AttrSet) -> bool {
    !for_each_possible_world(table, |w| !classical_holds(w, lhs, rhs))
}

/// Strong FD satisfaction of \[24\]: every possible world satisfies
/// `X → Y`.
pub fn strong_fd_holds(table: &Table, lhs: AttrSet, rhs: AttrSet) -> bool {
    for_each_possible_world(table, |w| classical_holds(w, lhs, rhs))
}

/// The three-valued verdict of \[39\].
pub fn three_valued(table: &Table, lhs: AttrSet, rhs: AttrSet) -> ThreeValued {
    match (
        weak_fd_holds(table, lhs, rhs),
        strong_fd_holds(table, lhs, rhs),
    ) {
        (true, true) => ThreeValued::True,
        (true, false) => ThreeValued::Unknown,
        (false, _) => ThreeValued::False,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    /// Example 2's relation.
    fn example2() -> Table {
        TableBuilder::new("emp", ["e", "d", "m", "s"], &[])
            .row(tuple!["Turing", "CS", "von Neumann", null])
            .row(tuple!["Turing", null, "Goedel", null])
            .build()
    }

    /// The full comparison matrix of Example 2, across all five
    /// semantics: \[39\] three-valued, \[24\] weak, \[24\] strong, \[28\]
    /// possible (Lien), and the paper's certain FDs.
    #[test]
    fn example2_matrix_all_semantics() {
        use ThreeValued::*;
        let t = example2();
        let s = t.schema().clone();
        let a = |n: &str| s.set(&[n]);
        // (lhs, rhs, \[39\], weak, strong, possible, certain)
        //
        // One deliberate deviation from the printed table: for m → d
        // the paper tabulates "unk" under \[39\], but by Section 3's own
        // prose ("holds … iff it holds for all … possible worlds") the
        // FD holds outright — the two managers differ in every possible
        // world, so no pair can ever agree on the LHS. We implement the
        // prose definition and assert `True` here; all other 34 entries
        // match the printed table.
        let rows: Vec<(&str, &str, ThreeValued, bool, bool, bool, bool)> = vec![
            ("e", "d", Unknown, true, false, false, false),
            ("e", "m", False, false, false, false, false),
            ("e", "s", Unknown, true, false, true, true),
            ("d", "d", True, true, true, true, false),
            ("d", "m", Unknown, true, false, true, false),
            ("m", "e", True, true, true, true, true),
            ("m", "d", True, true, true, true, true),
        ];
        for (l, r, tv, weak, strong, possible, certain) in rows {
            let (lhs, rhs) = (a(l), a(r));
            assert_eq!(three_valued(&t, lhs, rhs), tv, "[39] {l}->{r}");
            assert_eq!(weak_fd_holds(&t, lhs, rhs), weak, "[24]weak {l}->{r}");
            assert_eq!(strong_fd_holds(&t, lhs, rhs), strong, "[24]strong {l}->{r}");
            assert_eq!(
                satisfies_fd(&t, &Fd::possible(lhs, rhs)),
                possible,
                "[28] {l}->{r}"
            );
            assert_eq!(
                satisfies_fd(&t, &Fd::certain(lhs, rhs)),
                certain,
                "here {l}->{r}"
            );
        }
    }

    #[test]
    fn total_tables_collapse_all_semantics() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 2i64])
            .row(tuple![1i64, 3i64])
            .build();
        let a = AttrSet::from_indices([0]);
        let b = AttrSet::from_indices([1]);
        // a → b fails in every sense.
        assert!(!weak_fd_holds(&t, a, b));
        assert!(!strong_fd_holds(&t, a, b));
        assert_eq!(three_valued(&t, a, b), ThreeValued::False);
        assert!(!satisfies_fd(&t, &Fd::possible(a, b)));
        // b → a holds in every sense.
        assert!(weak_fd_holds(&t, b, a));
        assert!(strong_fd_holds(&t, b, a));
        assert_eq!(three_valued(&t, b, a), ThreeValued::True);
    }

    #[test]
    fn weak_vs_certain_differ_on_lhs_nulls() {
        // (⊥, 1) and (x, 2): certain FD a →_w b fails (weakly similar,
        // unequal b) but weakly (\[24\]) it holds — assign the ⊥ to
        // something other than x.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![null, 1i64])
            .row(tuple!["x", 2i64])
            .build();
        let a = AttrSet::from_indices([0]);
        let b = AttrSet::from_indices([1]);
        assert!(!satisfies_fd(&t, &Fd::certain(a, b)));
        assert!(weak_fd_holds(&t, a, b));
        assert!(!strong_fd_holds(&t, a, b));
    }

    #[test]
    fn strong_implies_weak_property() {
        // Quick randomized sanity: strong ⇒ weak, and certain ⇒ possible
        // (the latter via the model crate).
        let t = example2();
        let all = t.schema().attrs();
        for lhs in all.subsets() {
            for rhs in all.subsets() {
                if strong_fd_holds(&t, lhs, rhs) {
                    assert!(weak_fd_holds(&t, lhs, rhs));
                }
                if satisfies_fd(&t, &Fd::certain(lhs, rhs)) {
                    assert!(satisfies_fd(&t, &Fd::possible(lhs, rhs)));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "possible-world enumeration")]
    fn too_many_nulls_refused() {
        let mut b = TableBuilder::new("r", ["a"], &[]);
        for _ in 0..9 {
            b = b.row(tuple![null]);
        }
        let t = b.build();
        let a = AttrSet::from_indices([0]);
        let _ = weak_fd_holds(&t, a, a);
    }
}
