//! The classical relational baseline (Section 1's "idealized
//! instances"), implemented independently of the SQL machinery:
//! Armstrong closure, classical BCNF, and the classical BCNF
//! decomposition; plus Lien's p-FD decomposition (Section 3), whose
//! losslessness only covers the `X`-total part of an instance.
//!
//! These serve two purposes: (1) baselines the paper compares against,
//! and (2) reduction tests — the SQL notions collapse to the classical
//! ones in the idealized special case (`T_S = T`, some key holds, no
//! duplicates), which the test modules verify against this independent
//! implementation.

use sqlnf_model::attrs::AttrSet;
use sqlnf_model::project::{project_set, total_part};
use sqlnf_model::table::Table;

/// A classical functional dependency `X → Y` over total relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassicalFd {
    /// Left-hand side.
    pub lhs: AttrSet,
    /// Right-hand side.
    pub rhs: AttrSet,
}

impl ClassicalFd {
    /// Creates `X → Y`.
    pub fn new(lhs: AttrSet, rhs: AttrSet) -> Self {
        ClassicalFd { lhs, rhs }
    }

    /// Trivial iff `Y ⊆ X`.
    pub fn is_trivial(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }
}

/// The Armstrong attribute closure `X⁺` under a set of classical FDs.
pub fn armstrong_closure(fds: &[ClassicalFd], x: AttrSet) -> AttrSet {
    let mut c = x;
    loop {
        let old = c;
        for fd in fds {
            if fd.lhs.is_subset(c) {
                c |= fd.rhs;
            }
        }
        if c == old {
            return c;
        }
    }
}

/// Classical implication: `Σ ⊨ X → Y` iff `Y ⊆ X⁺`.
pub fn classical_implies(fds: &[ClassicalFd], fd: &ClassicalFd) -> bool {
    fd.rhs.is_subset(armstrong_closure(fds, fd.lhs))
}

/// Whether `X` is a superkey of `T` under the FDs.
pub fn is_superkey(fds: &[ClassicalFd], t: AttrSet, x: AttrSet) -> bool {
    t.is_subset(armstrong_closure(fds, x))
}

/// Whether relation schema `(T, Σ)` is in classical BCNF: every
/// non-trivial implied FD has a superkey LHS. Checked on the given FDs
/// (sufficient, as for Theorem 6's classical ancestor).
pub fn is_classical_bcnf(fds: &[ClassicalFd], t: AttrSet) -> bool {
    fds.iter()
        .all(|fd| fd.is_trivial() || is_superkey(fds, t, fd.lhs))
}

/// Projection of a classical FD set onto `x`: a cover of
/// `{V → W ∈ Σ⁺ | VW ⊆ x}` via closures of subsets of `x ∩ attrs(Σ)`.
pub fn project_classical(fds: &[ClassicalFd], x: AttrSet) -> Vec<ClassicalFd> {
    let mut relevant = AttrSet::EMPTY;
    for fd in fds {
        relevant |= fd.lhs;
    }
    relevant = relevant & x;
    let mut out = Vec::new();
    for v in relevant.subsets() {
        let rhs = armstrong_closure(fds, v) & x;
        if !rhs.is_subset(v) {
            out.push(ClassicalFd::new(v, rhs));
        }
    }
    out
}

/// One component of a classical BCNF decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassicalComponent {
    /// The component's attributes.
    pub attrs: AttrSet,
    /// A cover of the projected FDs.
    pub fds: Vec<ClassicalFd>,
}

/// The textbook lossless BCNF decomposition: while some component has a
/// non-trivial FD `X → Y` with non-superkey `X`, split it into
/// `X(T−XY)` and `XY`.
pub fn classical_bcnf_decompose(fds: &[ClassicalFd], t: AttrSet) -> Vec<ClassicalComponent> {
    let mut work = vec![ClassicalComponent {
        attrs: t,
        fds: fds.to_vec(),
    }];
    let mut done = Vec::new();
    while let Some(comp) = work.pop() {
        // Find an LHS-minimal violation.
        let mut relevant = AttrSet::EMPTY;
        for fd in &comp.fds {
            relevant |= fd.lhs;
        }
        let mut subsets: Vec<AttrSet> = (relevant & comp.attrs).subsets().collect();
        subsets.sort_by_key(|s| (s.len(), s.0));
        let violation = subsets.into_iter().find_map(|v| {
            let clo = armstrong_closure(&comp.fds, v) & comp.attrs;
            if clo != v && !comp.attrs.is_subset(clo) && !(clo - v).is_empty() {
                Some(ClassicalFd::new(v, clo))
            } else {
                None
            }
        });
        match violation {
            None => done.push(comp),
            Some(fd) => {
                let xy = fd.lhs | fd.rhs;
                let rest = fd.lhs | (comp.attrs - xy);
                work.push(ClassicalComponent {
                    attrs: rest,
                    fds: project_classical(&comp.fds, rest),
                });
                work.push(ClassicalComponent {
                    attrs: xy & comp.attrs,
                    fds: project_classical(&comp.fds, xy & comp.attrs),
                });
            }
        }
    }
    done.sort_by_key(|c| c.attrs.0);
    done
}

/// Lien's decomposition for a p-FD `X →_s Y` (Section 3): the `X`-total
/// part of `I` is the lossless join of the `X`-total projections on
/// `XY` and `X(T−XY)`. Returns `(I_X[X(T−XY)], I_X[XY])`.
pub fn lien_decompose(table: &Table, lhs: AttrSet, rhs: AttrSet) -> (Table, Table) {
    let t = table.schema().attrs();
    let xy = lhs | rhs;
    let rest = lhs | (t - xy);
    let total = total_part(table, lhs);
    (
        project_set(&total, rest, format!("{}_rest", table.schema().name())),
        project_set(&total, xy, format!("{}_xy", table.schema().name())),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::join::{join, reorder_columns};
    use sqlnf_model::prelude::*;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn armstrong_closure_basics() {
        let fds = vec![
            ClassicalFd::new(s(&[0]), s(&[1])),
            ClassicalFd::new(s(&[1]), s(&[2])),
        ];
        assert_eq!(armstrong_closure(&fds, s(&[0])), s(&[0, 1, 2]));
        assert_eq!(armstrong_closure(&fds, s(&[2])), s(&[2]));
        assert!(classical_implies(&fds, &ClassicalFd::new(s(&[0]), s(&[2]))));
        assert!(!classical_implies(
            &fds,
            &ClassicalFd::new(s(&[1]), s(&[0]))
        ));
    }

    #[test]
    fn bcnf_check() {
        let t = s(&[0, 1, 2]);
        // item,catalog → price over {i,c,p}: LHS is a superkey → BCNF.
        let fds = vec![ClassicalFd::new(s(&[0, 1]), s(&[2]))];
        assert!(is_classical_bcnf(&fds, t));
        // a → b over {a,b,c}: a is not a superkey → not BCNF.
        let fds2 = vec![ClassicalFd::new(s(&[0]), s(&[1]))];
        assert!(!is_classical_bcnf(&fds2, t));
    }

    #[test]
    fn purchase_running_example_decomposition() {
        // PURCHASE = oicp with ic → p: classical decomposition gives
        // oic and icp.
        let t = s(&[0, 1, 2, 3]);
        let fds = vec![ClassicalFd::new(s(&[1, 2]), s(&[3]))];
        let comps = classical_bcnf_decompose(&fds, t);
        assert_eq!(comps.len(), 2);
        let attrs: Vec<AttrSet> = comps.iter().map(|c| c.attrs).collect();
        assert!(attrs.contains(&s(&[0, 1, 2])));
        assert!(attrs.contains(&s(&[1, 2, 3])));
        for c in &comps {
            assert!(is_classical_bcnf(&c.fds, c.attrs));
        }
    }

    #[test]
    fn decomposition_agrees_with_sql_machinery_in_idealized_case() {
        // T_S = T, Σ = {c → cd total c-FD, c⟨ac⟩}: Algorithm 3 and the
        // classical decomposition must produce the same attribute sets.
        let t = s(&[0, 1, 2, 3]);
        let fds = vec![ClassicalFd::new(s(&[2]), s(&[3]))];
        let classical = classical_bcnf_decompose(&fds, t);
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[2]), s(&[2, 3])))
            .with(Key::certain(s(&[0, 2])));
        let sql = crate::decompose::vrnf_decompose(t, t, &sigma).unwrap();
        let mut a1: Vec<u128> = classical.iter().map(|c| c.attrs.0).collect();
        let mut a2: Vec<u128> = sql.components.iter().map(|c| c.attrs.0).collect();
        a1.sort();
        a2.sort();
        assert_eq!(a1, a2);
    }

    #[test]
    fn lien_decomposition_covers_only_total_part() {
        // Figure 4: the p-FD item,catalog →_s price holds, but the rows
        // have NULL catalogs, so the X-total part is empty and nothing
        // is preserved — Lien's theorem is vacuous here.
        let i = TableBuilder::new("p", ["o", "i", "c", "pr"], &[])
            .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
            .row(tuple![7485113i64, "Fitbit Surge", null, 200i64])
            .build();
        let schema = i.schema().clone();
        let ic = schema.set(&["i", "c"]);
        let pr = schema.set(&["pr"]);
        assert!(satisfies_fd(&i, &Fd::possible(ic, pr)));
        let (rest, xy) = lien_decompose(&i, ic, pr);
        assert_eq!(rest.len(), 0);
        assert_eq!(xy.len(), 0);
        // With total rows present, the total part round-trips.
        let i2 = TableBuilder::new("p", ["o", "i", "c", "pr"], &[])
            .row(tuple![1i64, "A", "X", 10i64])
            .row(tuple![2i64, "A", "X", 10i64])
            .row(tuple![3i64, "B", null, 20i64])
            .build();
        let (rest2, xy2) = lien_decompose(&i2, ic, pr);
        let joined = join(&rest2, &xy2, "j");
        let reordered = reorder_columns(&joined, schema.column_names());
        let total = sqlnf_model::project::total_part(&i2, ic);
        assert!(total.multiset_eq(&reordered));
    }

    #[test]
    fn projection_of_classical_fds() {
        let fds = vec![
            ClassicalFd::new(s(&[0]), s(&[1])),
            ClassicalFd::new(s(&[1]), s(&[2])),
        ];
        let proj = project_classical(&fds, s(&[0, 2]));
        // 0 → 2 must survive the projection (transitively).
        assert!(proj
            .iter()
            .any(|fd| fd.lhs == s(&[0]) && fd.rhs.contains(sqlnf_model::attrs::Attr(2))));
    }
}
