//! Converting a general constraint set into Algorithm 3's input class
//! (certain keys + total FDs), where meaning permits.
//!
//! Section 6.1 notes that the decomposition approach subsumes Lien's:
//! a p-FD `X →_s Y` with `X ⊆ T_S` *is* a certain FD (rule S), and the
//! discussion after Example 1 observes that one is "hard-pressed to
//! find an example where a c-FD `X →_w Y` is sensible, but `X →_w XY`
//! is not". This module mechanizes both observations:
//!
//! * p-FDs and p-keys with `T_S`-contained LHS convert **losslessly**
//!   to their certain counterparts;
//! * c-FDs `X →_w Y` that are not yet total are **strengthened** to
//!   `X →_w XY` — a strictly stronger constraint the designer must
//!   approve, which is why the conversion returns a report listing
//!   every strengthened FD rather than doing it silently;
//! * possible constraints with nullable LHS attributes cannot be
//!   expressed certainly and are rejected.

use sqlnf_model::attrs::AttrSet;
use sqlnf_model::constraint::{Constraint, Fd, Key, Modality, Sigma};

/// Why a constraint cannot enter the total class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Untotalizable {
    /// The offending constraint.
    pub constraint: Constraint,
    /// The nullable LHS attributes that block the conversion.
    pub nullable_lhs: AttrSet,
}

/// Outcome of a totalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Totalized {
    /// The converted constraint set: certain keys and total FDs only.
    pub sigma: Sigma,
    /// c-FDs that were strengthened from `X →_w Y` to `X →_w XY`
    /// (semantic change — needs designer approval).
    pub strengthened: Vec<Fd>,
    /// p-FDs/p-keys converted losslessly via rule S / kS.
    pub converted: Vec<Constraint>,
}

/// Attempts to convert Σ into certain keys + total FDs over `(T, T_S)`.
pub fn totalize(sigma: &Sigma, nfs: AttrSet) -> Result<Totalized, Untotalizable> {
    let mut out = Sigma::new();
    let mut strengthened = Vec::new();
    let mut converted = Vec::new();

    for fd in &sigma.fds {
        let fd = match fd.modality {
            Modality::Certain => *fd,
            Modality::Possible => {
                let nullable = fd.lhs - nfs;
                if !nullable.is_empty() {
                    return Err(Untotalizable {
                        constraint: Constraint::Fd(*fd),
                        nullable_lhs: nullable,
                    });
                }
                let cfd = Fd::certain(fd.lhs, fd.rhs);
                converted.push(Constraint::Fd(*fd));
                cfd
            }
        };
        if fd.is_total_form() {
            out.add(fd);
        } else {
            let total = fd.to_total();
            strengthened.push(fd);
            out.add(total);
        }
    }

    for key in &sigma.keys {
        match key.modality {
            Modality::Certain => out.add(*key),
            Modality::Possible => {
                let nullable = key.attrs - nfs;
                if !nullable.is_empty() {
                    return Err(Untotalizable {
                        constraint: Constraint::Key(*key),
                        nullable_lhs: nullable,
                    });
                }
                converted.push(Constraint::Key(*key));
                out.add(Key::certain(key.attrs));
            }
        }
    }

    debug_assert!(out.is_total_fds_and_ckeys());
    Ok(Totalized {
        sigma: out,
        strengthened,
        converted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::implication::Reasoner;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn pfd_on_not_null_lhs_converts_losslessly() {
        // oi →_s c with o, i ∈ T_S: exactly rule S; the result is
        // equivalent… up to totalization of the RHS.
        let sigma = Sigma::new().with(Fd::possible(s(&[0, 1]), s(&[2])));
        let nfs = s(&[0, 1]);
        let tot = totalize(&sigma, nfs).unwrap();
        assert!(tot.sigma.is_total_fds_and_ckeys());
        assert_eq!(tot.converted.len(), 1);
        assert_eq!(tot.strengthened.len(), 1); // RHS extended to XY
                                               // The totalized Σ implies the original constraint.
        let t = s(&[0, 1, 2]);
        let r = Reasoner::new(t, nfs, &tot.sigma);
        assert!(r.implies_fd(&Fd::possible(s(&[0, 1]), s(&[2]))));
    }

    #[test]
    fn pfd_with_nullable_lhs_rejected() {
        let sigma = Sigma::new().with(Fd::possible(s(&[0, 1]), s(&[2])));
        let err = totalize(&sigma, s(&[0])).unwrap_err();
        assert_eq!(err.nullable_lhs, s(&[1]));
    }

    #[test]
    fn cfd_strengthened_with_report() {
        let fd = Fd::certain(s(&[0, 1]), s(&[2]));
        let sigma = Sigma::new().with(fd);
        let tot = totalize(&sigma, AttrSet::EMPTY).unwrap();
        assert_eq!(tot.strengthened, vec![fd]);
        assert_eq!(tot.sigma.fds, vec![fd.to_total()]);
        // The strengthened form implies the original (Decomposition),
        // not vice versa.
        let t = s(&[0, 1, 2]);
        let r = Reasoner::new(t, AttrSet::EMPTY, &tot.sigma);
        assert!(r.implies_fd(&fd));
        let r_orig = Reasoner::new(t, AttrSet::EMPTY, &sigma);
        assert!(!r_orig.implies_fd(&fd.to_total()));
    }

    #[test]
    fn already_total_passes_through() {
        let sigma = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[0, 1])))
            .with(Key::certain(s(&[2])));
        let tot = totalize(&sigma, AttrSet::EMPTY).unwrap();
        assert_eq!(tot.sigma, sigma);
        assert!(tot.strengthened.is_empty());
        assert!(tot.converted.is_empty());
    }

    #[test]
    fn pkey_conversion_follows_nfs() {
        let sigma = Sigma::new().with(Key::possible(s(&[0, 1])));
        assert!(totalize(&sigma, s(&[0, 1])).is_ok());
        let err = totalize(&sigma, s(&[0])).unwrap_err();
        assert_eq!(err.nullable_lhs, s(&[1]));
    }

    #[test]
    fn totalized_sigma_feeds_algorithm3() {
        // End to end: a mixed Σ becomes decomposable.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 1]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0]), s(&[2])))
            .with(Fd::certain(s(&[1]), s(&[3])));
        assert!(crate::decompose::vrnf_decompose(t, nfs, &sigma).is_err());
        let tot = totalize(&sigma, nfs).unwrap();
        let d = crate::decompose::vrnf_decompose(t, nfs, &tot.sigma).unwrap();
        assert!(d.components.len() >= 2);
    }
}
