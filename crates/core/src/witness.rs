//! Counterexample construction (Lemma 2 and its FD analogues).
//!
//! When `Σ ⊭ φ`, these functions build a *concrete two-tuple instance*
//! over `(T, T_S)` that satisfies Σ and violates φ. Lemma 2 gives the
//! constructions for keys; the FD constructions follow the same closure
//! shape:
//!
//! * `Σ ⊭ p⟨X⟩` (and `Σ ⊭ X →_s Y`): values agree with `0` on
//!   `X*p ∩ (X ∪ T_S)`, are `⊥` on the rest of `X*p`, and differ
//!   (`0`/`1`) outside `X*p`;
//! * `Σ ⊭ c⟨X⟩`: values agree on `X ∪ X*c` (`0` inside `T_S`, `⊥`
//!   outside) and differ outside;
//! * `Σ ⊭ X →_w Y`: as for `c⟨X⟩` but attributes of `X − X*c` (always
//!   nullable) get the pair `(0, ⊥)` — weakly similar yet unequal, which
//!   is what defeats equality on `Y` when `Y` meets `X − X*c`.
//!
//! The witnesses double as the machinery behind the "only if" direction
//! of the normal-form justifications (Theorems 9 and 15): a violated
//! normal-form condition yields an instance with a redundant position.

use crate::implication::Reasoner;
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::constraint::{Constraint, Fd, Key, Modality};
use sqlnf_model::schema::TableSchema;
use sqlnf_model::table::Table;
use sqlnf_model::tuple::Tuple;
use sqlnf_model::value::Value;

/// A two-tuple counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// First tuple (`t_0`).
    pub t0: Vec<Value>,
    /// Second tuple (`t_1`).
    pub t1: Vec<Value>,
}

impl Witness {
    /// Materializes the witness as a table over `schema`.
    pub fn into_table(self, schema: TableSchema) -> Table {
        let mut t = Table::new(schema);
        t.push(Tuple::new(self.t0));
        t.push(Tuple::new(self.t1));
        t
    }
}

fn arity_of(t: AttrSet) -> usize {
    t.iter().map(Attr::index).max().map_or(0, |m| m + 1)
}

/// Lemma 2 (i): a Σ-satisfying instance violating `p⟨X⟩` (also violates
/// any `X →_s Y` with `Y ⊄ X*p`).
fn possible_witness(r: &Reasoner, x: AttrSet) -> Witness {
    let t = r.attrs();
    let nfs = r.nfs();
    let xp = r.p_closure(x);
    let mut t0 = Vec::with_capacity(arity_of(t));
    let mut t1 = Vec::with_capacity(arity_of(t));
    for i in 0..arity_of(t) {
        let a = Attr::from(i);
        if !t.contains(a) || (xp.contains(a) && (x.contains(a) || nfs.contains(a))) {
            // Outside T (inert filler) or in X*p ∩ (X ∪ T_S): agree on 0.
            t0.push(Value::Int(0));
            t1.push(Value::Int(0));
        } else if xp.contains(a) {
            t0.push(Value::Null);
            t1.push(Value::Null);
        } else {
            t0.push(Value::Int(0));
            t1.push(Value::Int(1));
        }
    }
    Witness { t0, t1 }
}

/// Lemma 2 (ii): a Σ-satisfying instance violating `c⟨X⟩`.
fn certain_key_witness(r: &Reasoner, x: AttrSet) -> Witness {
    let t = r.attrs();
    let nfs = r.nfs();
    let m = x | r.c_closure(x);
    let mut t0 = Vec::with_capacity(arity_of(t));
    let mut t1 = Vec::with_capacity(arity_of(t));
    for i in 0..arity_of(t) {
        let a = Attr::from(i);
        if !t.contains(a) || (m.contains(a) && nfs.contains(a)) {
            // Outside T (inert filler) or in XX*c ∩ T_S: agree on 0.
            t0.push(Value::Int(0));
            t1.push(Value::Int(0));
        } else if m.contains(a) {
            t0.push(Value::Null);
            t1.push(Value::Null);
        } else {
            t0.push(Value::Int(0));
            t1.push(Value::Int(1));
        }
    }
    Witness { t0, t1 }
}

/// FD analogue for `Σ ⊭ X →_w Y`: attributes of `X − X*c` get `(0, ⊥)`.
fn certain_fd_witness(r: &Reasoner, x: AttrSet) -> Witness {
    let t = r.attrs();
    let nfs = r.nfs();
    let xc = r.c_closure(x);
    let mut t0 = Vec::with_capacity(arity_of(t));
    let mut t1 = Vec::with_capacity(arity_of(t));
    for i in 0..arity_of(t) {
        let a = Attr::from(i);
        if !t.contains(a) {
            t0.push(Value::Int(0));
            t1.push(Value::Int(0));
        } else if xc.contains(a) {
            if nfs.contains(a) {
                t0.push(Value::Int(0));
                t1.push(Value::Int(0));
            } else {
                t0.push(Value::Null);
                t1.push(Value::Null);
            }
        } else if x.contains(a) {
            // A ∈ X − X*c is necessarily nullable (X ∩ T_S ⊆ X*c).
            debug_assert!(!nfs.contains(a));
            t0.push(Value::Int(0));
            t1.push(Value::Null);
        } else {
            t0.push(Value::Int(0));
            t1.push(Value::Int(1));
        }
    }
    Witness { t0, t1 }
}

/// Builds a two-tuple Σ-satisfying instance violating `φ`, or `None`
/// when `Σ ⊨ φ`.
pub fn violation_witness(r: &Reasoner, phi: &Constraint) -> Option<Witness> {
    if r.implies(phi) {
        return None;
    }
    Some(match phi {
        Constraint::Fd(Fd { lhs, modality, .. }) => match modality {
            Modality::Possible => possible_witness(r, *lhs),
            Modality::Certain => certain_fd_witness(r, *lhs),
        },
        Constraint::Key(Key { attrs, modality }) => match modality {
            Modality::Possible => possible_witness(r, *attrs),
            Modality::Certain => certain_key_witness(r, *attrs),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::constraint::Sigma;
    use sqlnf_model::satisfy::{satisfies, satisfies_all};

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    fn schema_for(t: AttrSet, nfs: AttrSet) -> TableSchema {
        let n = t.iter().map(Attr::index).max().unwrap() + 1;
        let cols: Vec<String> = (0..n).map(|i| format!("a{i}")).collect();
        let nn: Vec<String> = nfs.iter().map(|a| format!("a{}", a.index())).collect();
        let nn_refs: Vec<&str> = nn.iter().map(String::as_str).collect();
        TableSchema::new("w", cols, &nn_refs)
    }

    #[test]
    fn lemma2_examples() {
        // PURCHASE, Σ = {oi →_s c, ic →_w p}, T_S = ocp.
        let t = s(&[0, 1, 2, 3]);
        let nfs = s(&[0, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Fd::certain(s(&[1, 2]), s(&[3])));
        let r = Reasoner::new(t, nfs, &sigma);
        // oi →_w p is not implied; the witness proves it.
        let phi = Constraint::Fd(Fd::certain(s(&[0, 1]), s(&[3])));
        let w = violation_witness(&r, &phi).expect("not implied");
        let table = w.into_table(schema_for(t, nfs));
        assert!(satisfies_all(&table, &sigma));
        assert!(!satisfies(&table, &phi));
        // oi →_s p IS implied: no witness.
        assert!(
            violation_witness(&r, &Constraint::Fd(Fd::possible(s(&[0, 1]), s(&[3])))).is_none()
        );
    }

    /// Exhaustive soundness of all four constructions: over 3-attribute
    /// schemata and a pool of Σ's, every produced witness satisfies Σ,
    /// satisfies the NFS, and violates φ.
    #[test]
    fn witnesses_always_work_exhaustively() {
        let t = s(&[0, 1, 2]);
        let pool: Vec<Constraint> = vec![
            Constraint::Fd(Fd::possible(s(&[0]), s(&[1]))),
            Constraint::Fd(Fd::certain(s(&[0]), s(&[1]))),
            Constraint::Fd(Fd::certain(s(&[1, 2]), s(&[0]))),
            Constraint::Key(Key::possible(s(&[0, 1]))),
            Constraint::Key(Key::certain(s(&[1]))),
        ];
        let subsets: Vec<AttrSet> = t.subsets().collect();
        for mask in 0..(1usize << pool.len()) {
            let sigma: Sigma = pool
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, c)| *c)
                .collect();
            for &nfs in &subsets {
                let r = Reasoner::new(t, nfs, &sigma);
                let schema = schema_for(t, nfs);
                for &x in &subsets {
                    let mut queries: Vec<Constraint> = vec![
                        Constraint::Key(Key::possible(x)),
                        Constraint::Key(Key::certain(x)),
                    ];
                    for &y in &subsets {
                        queries.push(Constraint::Fd(Fd::possible(x, y)));
                        queries.push(Constraint::Fd(Fd::certain(x, y)));
                    }
                    for phi in queries {
                        if let Some(w) = violation_witness(&r, &phi) {
                            let table = w.into_table(schema.clone());
                            assert!(
                                table.satisfies_nfs(),
                                "NFS violated: phi={phi} sigma={sigma:?} nfs={nfs:?}"
                            );
                            assert!(
                                satisfies_all(&table, &sigma),
                                "Σ violated: phi={phi} sigma={sigma:?} nfs={nfs:?}\n{table}"
                            );
                            assert!(
                                !satisfies(&table, &phi),
                                "φ not violated: phi={phi} sigma={sigma:?} nfs={nfs:?}\n{table}"
                            );
                        }
                    }
                }
            }
        }
    }
}
