//! The `contact_draft_lookup` qualitative experiment (Figures 7–8).
//!
//! Two artifacts: the exact 14-row, 5-column snippet of Figure 7, and a
//! generated full table with the shape the paper reports for the real
//! LMRP table — 14 columns, 124 rows, satisfying the λ-FD
//!
//! ```text
//! σ: first_name, last_name, city →_w first_name, last_name, city, state_id
//! ```
//!
//! whose set projection on `[first_name, last_name, city, state_id]`
//! has exactly **105** rows (19 potential inconsistencies eliminated)
//! and on which the c-key `c⟨first_name, last_name, city⟩` holds.
//! The real table is behind a CMS download portal; the generated one
//! reproduces the combinatorics the experiment measures (see
//! DESIGN.md, "Substitutions").

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqlnf_model::prelude::*;

/// The snippet `I` of Figure 7: 5 of the 14 columns, 14 of the 124
/// rows.
pub fn fig7_snippet() -> Table {
    TableBuilder::new(
        "contact_draft_lookup_snippet",
        ["contact_id", "first_name", "last_name", "city", "state_id"],
        &["contact_id", "first_name", "last_name", "state_id"],
    )
    .row(tuple![113i64, "Michelle", "Moscato", "Carmel", 20i64])
    .row(tuple![110i64, "Kathy", "Sheehan", "Columbia", 48i64])
    .row(tuple![51i64, "Kathy", "Sheehan", "Columbia", 48i64])
    .row(tuple![64i64, "Margaret", "Cox", "Columbia", 48i64])
    .row(tuple![120i64, "Margaret", "Cox", "Columbia", 48i64])
    .row(tuple![60i64, "Stacey", "Brennan, M.D.", "Columbia", 48i64])
    .row(tuple![6i64, "Robert", "Kamps, M.D.", "Grove City", 42i64])
    .row(tuple![83i64, "Michelle", "Moscato", "Indianapolis", 20i64])
    .row(tuple![19i64, "Michelle", "Moscato", "Indianapolis", 20i64])
    .row(tuple![20i64, "Nancy", "Knudson", "Indianapolis", 20i64])
    .row(tuple![18i64, "Nancy", "Knudson", "Indianapolis", 20i64])
    .row(tuple![
        99i64,
        "Stacey",
        "Brennan, M.D.",
        "Indianapolis",
        20i64
    ])
    .row(tuple![8i64, "Carol", "Richards", null, 36i64])
    .row(tuple![7i64, "Pam", "Baumker", null, 36i64])
    .build()
}

const FIRST: &[&str] = &[
    "Michelle", "Kathy", "Margaret", "Stacey", "Robert", "Nancy", "Carol", "Pam", "James", "John",
    "Linda", "Barbara", "Susan", "Jessica", "Sarah", "Karen", "Lisa", "Betty", "Helen", "Sandra",
    "Donna", "Ruth", "Sharon", "Laura", "Emily",
];

const LAST: &[&str] = &[
    "Moscato",
    "Sheehan",
    "Cox",
    "Brennan, M.D.",
    "Kamps, M.D.",
    "Knudson",
    "Richards",
    "Baumker",
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzales",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
];

/// Cities with their (fixed) state ids, so `city → state_id` holds on
/// the city-total part, as in the real data.
const CITIES: &[(&str, i64)] = &[
    ("Carmel", 20),
    ("Columbia", 48),
    ("Grove City", 42),
    ("Indianapolis", 20),
    ("Baltimore", 24),
    ("Nashville", 47),
    ("Denver", 8),
    ("Boise", 16),
    ("Portland", 41),
    ("Madison", 55),
    ("Augusta", 23),
    ("Topeka", 26),
    ("Albany", 36),
    ("Helena", 30),
    ("Phoenix", 4),
    ("Salem", 41),
    ("Austin", 44),
    ("Dover", 10),
    ("Fargo", 38),
    ("Casper", 56),
];

/// Number of rows of the generated full table.
pub const CONTACT_ROWS: usize = 124;
/// Number of distinct rows of its projection on the λ-FD attributes.
pub const CONTACT_PROJECTED_ROWS: usize = 105;

/// Generates the full 124 × 14 `contact_draft_lookup` table.
///
/// Invariants (asserted here, verified again by tests and the
/// experiment):
/// * σ holds as a certain FD and is total;
/// * the set projection on `[first_name, last_name, city, state_id]`
///   has exactly 105 rows;
/// * `c⟨first_name, last_name, city⟩` holds on that projection but not
///   on the full table (19 duplicate profiles);
/// * profiles with a NULL city have a globally unique name, so weak
///   similarity stays harmless — as for Carol Richards and Pam Baumker
///   in Figure 7.
pub fn contact_full(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);

    // 105 distinct profiles (first, last, city?, state).
    let mut profiles: Vec<(String, String, Option<&'static str>, i64)> = Vec::new();
    let mut used_triples: std::collections::HashSet<(String, String, Option<&'static str>)> =
        Default::default();
    let mut null_city_names: std::collections::HashSet<(String, String)> = Default::default();

    // A handful of NULL-city profiles with unique names.
    while profiles.len() < 6 {
        let f = (*FIRST.choose(&mut rng).unwrap()).to_owned();
        let l = (*LAST.choose(&mut rng).unwrap()).to_owned();
        if null_city_names.insert((f.clone(), l.clone())) {
            used_triples.insert((f.clone(), l.clone(), None));
            profiles.push((f, l, None, 36));
        }
    }
    // The rest with a city; names may repeat across cities (movers),
    // but never collide with a NULL-city name.
    while profiles.len() < CONTACT_PROJECTED_ROWS {
        let f = (*FIRST.choose(&mut rng).unwrap()).to_owned();
        let l = (*LAST.choose(&mut rng).unwrap()).to_owned();
        if null_city_names.contains(&(f.clone(), l.clone())) {
            continue;
        }
        let (city, state) = *CITIES.choose(&mut rng).unwrap();
        if used_triples.insert((f.clone(), l.clone(), Some(city))) {
            profiles.push((f, l, Some(city), state));
        }
    }

    // 19 duplicated profiles (with repetition) on top of one occurrence
    // each.
    let mut occurrences: Vec<usize> = (0..profiles.len()).collect();
    for _ in 0..(CONTACT_ROWS - CONTACT_PROJECTED_ROWS) {
        occurrences.push(rng.gen_range(0..profiles.len()));
    }
    occurrences.shuffle(&mut rng);

    let schema = TableSchema::new(
        "contact_draft_lookup",
        [
            "contact_id",
            "first_name",
            "last_name",
            "title",
            "org_name",
            "address1",
            "address2",
            "city",
            "state_id",
            "zip",
            "phone",
            "fax",
            "email",
            "url",
        ],
        &["contact_id", "first_name", "last_name", "state_id"],
    );
    let mut table = Table::new(schema);
    for (row_ix, &p) in occurrences.iter().enumerate() {
        let (f, l, city, state) = &profiles[p];
        let title = ["Dr.", "Ms.", "Mr.", "Prof."][rng.gen_range(0..4)];
        let city_val = match city {
            Some(c) => Value::str(*c),
            None => Value::Null,
        };
        let address2 = if rng.gen_bool(0.8) {
            Value::Null
        } else {
            Value::str(format!("Suite {}", rng.gen_range(100..999)))
        };
        let fax = if rng.gen_bool(0.6) {
            Value::Null
        } else {
            Value::str(format!("555-{:04}", rng.gen_range(0..10000)))
        };
        table.push(Tuple::new(vec![
            Value::Int(row_ix as i64 + 1),
            Value::str(f.clone()),
            Value::str(l.clone()),
            Value::str(title),
            Value::str(format!("Org {}", rng.gen_range(1..40))),
            Value::str(format!("{} Main St", rng.gen_range(1..9999))),
            address2,
            city_val,
            Value::Int(*state),
            Value::str(format!("{:05}", rng.gen_range(10000..99999))),
            Value::str(format!("555-{:04}", rng.gen_range(0..10000))),
            fax,
            Value::str(format!("{}.{}@example.org", f.to_lowercase(), row_ix)),
            Value::str(format!("https://example.org/{}", rng.gen_range(1..50))),
        ]));
    }

    debug_assert!(table.satisfies_nfs());
    table
}

/// The λ-FD σ of the experiment over the full table's schema.
pub fn contact_sigma_fd(schema: &TableSchema) -> Fd {
    let lhs = schema.set(&["first_name", "last_name", "city"]);
    let rhs = schema.set(&["first_name", "last_name", "city", "state_id"]);
    Fd::certain(lhs, rhs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::project::project_set;

    #[test]
    fn snippet_matches_figure7() {
        let t = fig7_snippet();
        assert_eq!(t.len(), 14);
        assert_eq!(t.schema().arity(), 5);
        let s = t.schema().clone();
        // σ holds on the snippet.
        let fd = Fd::certain(
            s.set(&["first_name", "last_name", "city"]),
            s.set(&["first_name", "last_name", "city", "state_id"]),
        );
        assert!(satisfies_fd(&t, &fd));
        // The decomposition of Figure 8: 10 distinct projected rows.
        let proj = project_set(
            &t,
            s.set(&["first_name", "last_name", "city", "state_id"]),
            "p",
        );
        assert_eq!(proj.len(), 10);
        // first_name,last_name → state_id does NOT hold (Stacey
        // Brennan moved).
        assert!(!satisfies_fd(
            &t,
            &Fd::certain(s.set(&["first_name", "last_name"]), s.set(&["state_id"]))
        ));
        assert!(!satisfies_fd(
            &t,
            &Fd::possible(s.set(&["first_name", "last_name"]), s.set(&["state_id"]))
        ));
        // city →_w state_id fails on the snippet (NULL city rows with
        // state 36 weakly match cities with other states).
        assert!(!satisfies_fd(
            &t,
            &Fd::certain(s.set(&["city"]), s.set(&["state_id"]))
        ));
    }

    #[test]
    fn full_table_has_paper_shape() {
        let t = contact_full(42);
        assert_eq!(t.len(), CONTACT_ROWS);
        assert_eq!(t.schema().arity(), 14);
        let s = t.schema().clone();
        let fd = contact_sigma_fd(&s);
        assert!(satisfies_fd(&t, &fd), "σ must hold");
        // Total FD: X →_w X holds too.
        assert!(satisfies_fd(&t, &Fd::certain(fd.lhs, fd.lhs)));
        // Projection has exactly 105 rows.
        let proj = project_set(&t, fd.rhs, "proj");
        assert_eq!(proj.len(), CONTACT_PROJECTED_ROWS);
        // c-key holds on the projection, not on the base table.
        let ps = proj.schema().clone();
        let key_attrs = ps.set(&["first_name", "last_name", "city"]);
        assert!(satisfies_key(&proj, &Key::certain(key_attrs)));
        let base_key = s.set(&["first_name", "last_name", "city"]);
        assert!(!satisfies_key(&t, &Key::certain(base_key)));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = contact_full(7);
        let b = contact_full(7);
        assert!(a.multiset_eq(&b));
        let c = contact_full(8);
        assert!(!a.multiset_eq(&c));
    }
}
