//! The `contractor` normalization experiment (Section 7).
//!
//! The paper decomposes the 173 × 22 LMRP `contractor` table with three
//! λ-FDs (RHS written without repeating the LHS):
//!
//! 1. `city, url →_w dmerc_rgn, status`
//! 2. `cmd_name, phone, url →_w contractor_version, status_flag`
//! 3. `address1, contractor_bus_name, contractor_type_id →_w url`
//!
//! into four tables of 38 / 67 / 73 / 173 rows (4 / 5 / 4 / 17
//! attributes), eliminating 448 redundant data values (1 dmerc_rgn,
//! 135 status, 106 contractor_version, 106 status_flag, 100 url) plus
//! 134 redundant null markers in `dmerc_rgn`; cells drop from
//! 173·22 = 3806 to 3720.
//!
//! This generator reproduces those combinatorics *by construction*,
//! via a three-level grouping hierarchy: each row belongs to a business
//! `g3 ∈ 0..73` (FD 3 groups); `g3` determines a contact group
//! `g2 = h(g3) ∈ 0..67` (FD 2 groups); `g2` determines a region group
//! `g1 = u2(g2) ∈ 0..38` (FD 1 groups). The url is a function of `g1`
//! pulled down the hierarchy, so all three FDs hold with exactly the
//! reported numbers of groups. `dmerc_rgn` is `⊥` on every multi-row
//! region group except one two-row group — giving exactly 1 redundant
//! dmerc value and 134 redundant dmerc nulls.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf_model::prelude::*;

/// Rows of the contractor table.
pub const CONTRACTOR_ROWS: usize = 173;
/// Columns of the contractor table.
pub const CONTRACTOR_COLS: usize = 22;
/// Distinct (city, url) groups — rows of decomposed table 1.
pub const FD1_GROUPS: usize = 38;
/// Distinct (cmd_name, phone, url) groups — rows of decomposed table 2.
pub const FD2_GROUPS: usize = 67;
/// Distinct (address1, bus_name, type_id) groups — rows of table 3.
pub const FD3_GROUPS: usize = 73;

/// The special region group that carries a non-null `dmerc_rgn` on a
/// two-row group (the single redundant dmerc *value* of the paper).
const SPECIAL_G1: usize = 37;

fn h(g3: usize) -> usize {
    if g3 < FD2_GROUPS {
        g3
    } else {
        (g3 - FD2_GROUPS) % (FD2_GROUPS - 1)
    }
}

fn u2(g2: usize) -> usize {
    if g2 < FD1_GROUPS {
        g2
    } else {
        (g2 - FD1_GROUPS) % (FD1_GROUPS - 1)
    }
}

/// Per-`g3` row counts: every business has at least one row; business
/// `SPECIAL_G1` (= 37 < 67, so `h(37) = 37`, `u2(37) = 37`) has exactly
/// two; the remaining surplus is spread deterministically over the
/// other businesses.
fn row_counts(rng: &mut StdRng) -> Vec<usize> {
    let mut n3 = vec![1usize; FD3_GROUPS];
    n3[SPECIAL_G1] = 2;
    let mut surplus = CONTRACTOR_ROWS - FD3_GROUPS - 1;
    while surplus > 0 {
        let g3 = rng.gen_range(0..FD3_GROUPS);
        // Keep g3 = 37 at exactly two rows, and keep the region groups
        // 29..=36 as singletons so some non-null dmerc values exist.
        if g3 == SPECIAL_G1 || (29..=36).contains(&g3) {
            continue;
        }
        n3[g3] += 1;
        surplus -= 1;
    }
    n3
}

/// Generates the contractor table. All invariants of the module
/// documentation are asserted by the test suite and re-verified by the
/// experiment harness.
pub fn contractor(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let n3 = row_counts(&mut rng);

    // Region-group (g1) sizes, to place dmerc_rgn.
    let mut n1 = vec![0usize; FD1_GROUPS];
    for (g3, &n) in n3.iter().enumerate() {
        n1[u2(h(g3))] += n;
    }
    assert_eq!(n1[SPECIAL_G1], 2);

    let schema = TableSchema::new(
        "contractor",
        [
            "contractor_id",
            "contractor_bus_name",
            "contractor_type_id",
            "cmd_name",
            "address1",
            "address2",
            "city",
            "state_id",
            "zip",
            "phone",
            "fax",
            "url",
            "dmerc_rgn",
            "status",
            "contractor_version",
            "status_flag",
            "email",
            "region",
            "county",
            "effective_date",
            "end_date",
            "notes",
        ],
        &[
            "contractor_id",
            "contractor_bus_name",
            "contractor_type_id",
            "cmd_name",
            "address1",
            "city",
            "state_id",
            "zip",
            "phone",
            "url",
            "status",
            "contractor_version",
            "status_flag",
            "email",
            "region",
            "county",
            "effective_date",
        ],
    );
    assert_eq!(schema.arity(), CONTRACTOR_COLS);

    let mut table = Table::new(schema);
    let mut id = 0i64;
    for (g3, &count) in n3.iter().enumerate() {
        let g2 = h(g3);
        let g1 = u2(g2);
        let url = format!("https://cms.example.gov/contractor/{g1:02}");
        let city = format!("City{g1:02}");
        let dmerc: Value = if g1 == SPECIAL_G1 {
            Value::str("D1")
        } else if n1[g1] >= 2 {
            Value::Null
        } else {
            Value::str(format!("R{}", g1 % 4))
        };
        let status = format!("status-{}", g1 % 5);
        let cmd_name = format!("CMD Unit {g2:02}");
        let phone = format!("555-{:04}", 1000 + g2);
        let version = format!("v{}.{}", 1 + g2 % 4, g2 % 10);
        let status_flag = if g2.is_multiple_of(2) { "A" } else { "I" };
        let address1 = format!("{} Federal Plaza", 100 + g3);
        let bus_name = format!("Contractor Business {g3:02}");
        let type_id = (g3 % 6) as i64;

        for _ in 0..count {
            id += 1;
            let address2 = if rng.gen_bool(0.75) {
                Value::Null
            } else {
                Value::str(format!("Floor {}", rng.gen_range(1..20)))
            };
            let fax = if rng.gen_bool(0.5) {
                Value::Null
            } else {
                Value::str(format!("555-{:04}", rng.gen_range(0..10000)))
            };
            let end_date = if rng.gen_bool(0.7) {
                Value::Null
            } else {
                Value::str(format!(
                    "202{}-0{}-01",
                    rng.gen_range(0..5),
                    rng.gen_range(1..9)
                ))
            };
            let notes = if rng.gen_bool(0.85) {
                Value::Null
            } else {
                Value::str("migrated record")
            };
            table.push(Tuple::new(vec![
                Value::Int(id),
                Value::str(bus_name.clone()),
                Value::Int(type_id),
                Value::str(cmd_name.clone()),
                Value::str(address1.clone()),
                address2,
                Value::str(city.clone()),
                Value::Int((g1 % 50) as i64 + 1),
                Value::str(format!("{:05}", 10000 + 7 * g1)),
                Value::str(phone.clone()),
                fax,
                Value::str(url.clone()),
                dmerc.clone(),
                Value::str(status.clone()),
                Value::str(version.clone()),
                Value::str(status_flag),
                Value::str(format!("contact{id}@cms.example.gov")),
                Value::str(format!("Region {}", g1 % 10)),
                Value::str(format!("County {}", g3 % 30)),
                Value::str(format!("201{}-01-01", g3 % 10)),
                end_date,
                notes,
            ]));
        }
    }
    assert_eq!(table.len(), CONTRACTOR_ROWS);
    table
}

/// The three λ-FDs of the experiment, in total form, over the
/// contractor schema.
pub fn contractor_sigma(schema: &TableSchema) -> Sigma {
    let fd1_lhs = schema.set(&["city", "url"]);
    let fd1_rhs = fd1_lhs | schema.set(&["dmerc_rgn", "status"]);
    let fd2_lhs = schema.set(&["cmd_name", "phone", "url"]);
    let fd2_rhs = fd2_lhs | schema.set(&["contractor_version", "status_flag"]);
    let fd3_lhs = schema.set(&["address1", "contractor_bus_name", "contractor_type_id"]);
    let fd3_rhs = fd3_lhs | schema.set(&["url"]);
    Sigma::new()
        .with(Fd::certain(fd1_lhs, fd1_rhs))
        .with(Fd::certain(fd2_lhs, fd2_rhs))
        .with(Fd::certain(fd3_lhs, fd3_rhs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::project::project_set;

    #[test]
    fn shape_matches_paper() {
        let t = contractor(1);
        assert_eq!(t.len(), CONTRACTOR_ROWS);
        assert_eq!(t.schema().arity(), CONTRACTOR_COLS);
        assert_eq!(t.cell_count(), 3806);
        assert!(t.satisfies_nfs());
    }

    #[test]
    fn all_three_fds_hold_and_are_total() {
        let t = contractor(1);
        let sigma = contractor_sigma(t.schema());
        for fd in &sigma.fds {
            assert!(satisfies_fd(&t, fd), "{fd}");
            assert!(fd.is_total_form());
            // LHS columns are null-free → totality is automatic, but
            // check the reflexive part anyway.
            assert!(satisfies_fd(&t, &Fd::certain(fd.lhs, fd.lhs)));
        }
    }

    #[test]
    fn group_counts_match_paper() {
        let t = contractor(1);
        let s = t.schema().clone();
        let p1 = project_set(&t, s.set(&["city", "url"]), "p1");
        assert_eq!(p1.len(), FD1_GROUPS);
        let p2 = project_set(&t, s.set(&["cmd_name", "phone", "url"]), "p2");
        assert_eq!(p2.len(), FD2_GROUPS);
        let p3 = project_set(
            &t,
            s.set(&["address1", "contractor_bus_name", "contractor_type_id"]),
            "p3",
        );
        assert_eq!(p3.len(), FD3_GROUPS);
    }

    #[test]
    fn dmerc_redundancy_split() {
        // Of the 135 eliminated dmerc occurrences, exactly one is a
        // data value (the special two-row group) and 134 are ⊥.
        let t = contractor(1);
        let s = t.schema().clone();
        let dmerc = s.a("dmerc_rgn");
        let url = s.a("url");
        let mut by_group: std::collections::HashMap<&Value, Vec<&Value>> = Default::default();
        for row in t.rows() {
            by_group
                .entry(row.get(url))
                .or_default()
                .push(row.get(dmerc));
        }
        assert_eq!(by_group.len(), FD1_GROUPS);
        let mut value_elims = 0usize;
        let mut null_elims = 0usize;
        for vals in by_group.values() {
            let extra = vals.len() - 1;
            if vals[0].is_null() {
                null_elims += extra;
            } else {
                value_elims += extra;
            }
        }
        assert_eq!(value_elims, 1);
        assert_eq!(null_elims, 134);
    }

    #[test]
    fn none_of_the_lhss_are_ckeys() {
        let t = contractor(1);
        let sigma = contractor_sigma(t.schema());
        for fd in &sigma.fds {
            assert!(!satisfies_key(&t, &Key::certain(fd.lhs)), "{fd}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert!(contractor(3).multiset_eq(&contractor(3)));
    }
}
