//! The 130-table synthetic corpus standing in for the publicly mined
//! data sets of Section 7 (GO-termdb, IPI, LMRP, PFAM, RFAM, Naumann,
//! UCI — several of which are no longer hosted).
//!
//! Each table is drawn from one of three archetypes, mirroring what the
//! paper observed in the wild:
//!
//! * **Lookup** — fully total reference tables: minimal FDs all have
//!   null-free LHSs (nn-FDs), many of them accidental;
//! * **Registry** — contact-like tables with a nullable locality column
//!   inside a genuine total c-FD: the source of t-/λ-FDs; half of these
//!   are "clean" (low projection ratio — real compression) and half are
//!   "dirty" (LHS should be a key but duplicated rows violate it —
//!   projection ratio ≥ ~0.78), which produces the bimodal gap of
//!   Figure 6;
//! * **Sparse** — scattered nulls with inconsistent co-occurrences:
//!   FDs hold possibly but rarely certainly (p-FDs that are not
//!   c-FDs).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf_model::prelude::*;

/// Number of corpus tables, as in the paper.
pub const CORPUS_TABLES: usize = 130;

/// Archetypes of corpus tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Archetype {
    /// Fully total reference table.
    Lookup,
    /// Contact-like with nullable locality; `dirty` makes the λ-LHS an
    /// almost-key.
    Registry {
        /// Dirty registries have near-unique LHSs (ratio ≥ ~0.78).
        dirty: bool,
    },
    /// Null-scattered table where certain FDs rarely survive.
    Sparse,
}

/// A generated corpus table with its archetype (for reporting).
#[derive(Debug, Clone)]
pub struct CorpusTable {
    /// The instance.
    pub table: Table,
    /// Which archetype generated it.
    pub archetype: Archetype,
}

fn lookup_table(rng: &mut StdRng, ix: usize) -> Table {
    let cols = rng.gen_range(6..=9);
    let rows = rng.gen_range(30..=120);
    let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
    let schema = TableSchema::total(format!("lookup_{ix}"), names);
    let mut t = Table::new(schema);
    // col0: id; col1 = f(col0-group); remaining: low-cardinality
    // categorical values that breed accidental FDs.
    let groups = rng.gen_range(5..=20);
    for r in 0..rows {
        let g = rng.gen_range(0..groups);
        let mut row = vec![Value::Int(r as i64), Value::Int((g * 7 + 3) as i64)];
        for c in 2..cols {
            let card = 2 + (c * 3) % 7;
            row.push(Value::Int(if c % 2 == 0 {
                (g % card) as i64 // functionally dependent on the group
            } else {
                rng.gen_range(0..card as i64)
            }));
        }
        t.push(Tuple::new(row));
    }
    t
}

fn registry_table(rng: &mut StdRng, ix: usize, dirty: bool) -> Table {
    // Columns: id, name, locality (nullable), region (determined by
    // locality where present), payload…
    let cols = rng.gen_range(5..=7);
    let names: Vec<String> = ["id", "name", "locality", "region"]
        .iter()
        .map(|s| s.to_string())
        .chain((4..cols).map(|i| format!("x{i}")))
        .collect();
    let schema = TableSchema::new(format!("registry_{ix}"), names, &["id", "name", "region"]);
    let mut t = Table::new(schema);

    // Profiles (name, locality?, region): the λ-FD is
    // (name, locality) →_w (name, locality, region).
    let profile_count = if dirty {
        rng.gen_range(80..=120)
    } else {
        rng.gen_range(8..=30)
    };
    let rows = if dirty {
        // A handful of duplicates on top: ratio ≥ ~0.8.
        profile_count + rng.gen_range(3..=(1 + profile_count / 5))
    } else {
        // Heavy duplication: ratio ≤ ~0.5.
        profile_count * rng.gen_range(2..=6)
    };

    let mut profiles: Vec<(String, Option<i64>, i64)> = Vec::new();
    for p in 0..profile_count {
        // Unique names for null-locality profiles; the rest may share
        // names across localities.
        if p % 17 == 0 {
            profiles.push((format!("solo_{ix}_{p}"), None, 99));
        } else {
            let loc = rng.gen_range(0..12i64);
            profiles.push((
                format!("name_{}", p % (profile_count / 2 + 1)),
                Some(loc),
                loc % 7,
            ));
        }
    }
    // Deduplicate (name, locality) collisions to keep the c-FD intact:
    // same (name, locality) must give the same region, which holds by
    // construction (region = locality % 7); but a null-locality name
    // must not collide with any other profile name — ensured by the
    // `solo_` prefix.

    // "Semi-null families": for roughly half of the clean registries,
    // a few uniquely-named profiles gain a sibling row with a NULL
    // locality and matching region. The certain FD
    // (name, locality) →_w region still holds — the sibling weakly
    // matches only its own family — but (name, locality) →_w
    // (name, locality) now fails (⊥ vs the family's locality), so the
    // c-FD is no longer *total*. This is the population behind the
    // paper's c-FD vs t-FD gap (419 vs 205).
    // (name, locality?, region) rows appended after the main profile
    // loop: each family contributes one locality-total row and one or
    // two NULL-locality siblings.
    let mut extra_rows: Vec<(String, Option<i64>, i64)> = Vec::new();
    if !dirty && rng.gen_bool(0.55) {
        for fam in 0..rng.gen_range(2..=5) {
            let loc = rng.gen_range(0..12i64);
            let name = format!("family_{ix}_{fam}");
            extra_rows.push((name.clone(), Some(loc), loc % 7));
            for _ in 0..rng.gen_range(1..=2) {
                extra_rows.push((name.clone(), None, loc % 7));
            }
        }
    }

    for r in 0..rows {
        let p = if r < profile_count {
            r
        } else {
            rng.gen_range(0..profile_count)
        };
        let (name, loc, region) = &profiles[p];
        let mut row = vec![
            Value::Int(r as i64),
            Value::str(name.clone()),
            match loc {
                Some(l) => Value::Int(*l),
                None => Value::Null,
            },
            Value::Int(*region),
        ];
        for c in 4..cols {
            row.push(Value::Int(rng.gen_range(0..50 + c as i64)));
        }
        t.push(Tuple::new(row));
    }
    for (i, (name, loc, region)) in extra_rows.iter().enumerate() {
        let mut row = vec![
            Value::Int((rows + i) as i64),
            Value::str(name.clone()),
            match loc {
                Some(l) => Value::Int(*l),
                None => Value::Null,
            },
            Value::Int(*region),
        ];
        for c in 4..cols {
            row.push(Value::Int(rng.gen_range(0..50 + c as i64)));
        }
        t.push(Tuple::new(row));
    }
    t
}

fn sparse_table(rng: &mut StdRng, ix: usize) -> Table {
    let cols = rng.gen_range(5..=8);
    let rows = rng.gen_range(30..=120);
    let names: Vec<String> = (0..cols).map(|i| format!("s{i}")).collect();
    let schema = TableSchema::new(format!("sparse_{ix}"), names, &[]);
    let mut t = Table::new(schema);
    // Grouped structure with nulls punched into the LHS columns in a
    // way that creates weak collisions: certain FDs fail, possible FDs
    // survive.
    let groups = rng.gen_range(4..=10);
    for r in 0..rows {
        let g = rng.gen_range(0..groups);
        let mut row = Vec::with_capacity(cols);
        for c in 0..cols {
            let v = if c == 0 {
                Value::Int(g as i64)
            } else if c == 1 {
                Value::Int((g * 13) as i64 % 11) // determined by col 0
            } else {
                Value::Int(rng.gen_range(0..6))
            };
            // Punch nulls everywhere except the dependent column.
            if c != 1 && rng.gen_bool(0.18) {
                row.push(Value::Null);
            } else {
                row.push(v);
            }
        }
        t.push(Tuple::new(row));
        let _ = r;
    }
    t
}

/// Generates the corpus: `CORPUS_TABLES` seeded tables with a fixed
/// archetype mix (50 lookup, 25 clean + 25 dirty registries,
/// 30 sparse).
pub fn corpus(seed: u64) -> Vec<CorpusTable> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(CORPUS_TABLES);
    for ix in 0..CORPUS_TABLES {
        let archetype = match ix % 13 {
            0..=4 => Archetype::Lookup,
            5..=7 => Archetype::Registry { dirty: false },
            8 | 9 => Archetype::Registry { dirty: true },
            _ => Archetype::Sparse,
        };
        let table = match archetype {
            Archetype::Lookup => lookup_table(&mut rng, ix),
            Archetype::Registry { dirty } => registry_table(&mut rng, ix, dirty),
            Archetype::Sparse => sparse_table(&mut rng, ix),
        };
        out.push(CorpusTable { table, archetype });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_130_tables() {
        let c = corpus(1);
        assert_eq!(c.len(), CORPUS_TABLES);
        let lookups = c
            .iter()
            .filter(|t| t.archetype == Archetype::Lookup)
            .count();
        assert_eq!(lookups, 50);
    }

    #[test]
    fn lookup_tables_are_total() {
        for ct in corpus(2).iter().take(13) {
            if ct.archetype == Archetype::Lookup {
                assert!(ct.table.is_total());
            }
        }
    }

    #[test]
    fn registry_tables_have_nullable_locality_and_planted_cfd() {
        let c = corpus(3);
        let reg = c
            .iter()
            .find(|t| t.archetype == Archetype::Registry { dirty: false })
            .unwrap();
        let t = &reg.table;
        let s = t.schema().clone();
        // The construction guarantees the c-FD with RHS {region}; the
        // RHS must not include `locality` itself, because semi-null
        // family rows (a NULL-locality sibling weakly matching its
        // locality-total family row) break
        // (name, locality) →_w (name, locality) by design — that is
        // the planted c-FD vs t-FD gap.
        let fd = Fd::certain(s.set(&["name", "locality"]), s.set(&["region"]));
        assert!(satisfies_fd(t, &fd), "{t}");
        // Some locality is NULL.
        assert!(t.null_count(s.a("locality")) > 0);
    }

    #[test]
    fn dirty_vs_clean_projection_ratios_split() {
        let c = corpus(4);
        for ct in &c {
            if let Archetype::Registry { dirty } = ct.archetype {
                let t = &ct.table;
                let s = t.schema().clone();
                let attrs = s.set(&["name", "locality", "region"]);
                let proj = sqlnf_model::project::project_set(t, attrs, "p");
                let ratio = proj.len() as f64 / t.len() as f64;
                if dirty {
                    assert!(ratio >= 0.7, "dirty ratio {ratio}");
                } else {
                    // Clean registries compress well; semi-null family
                    // rows (unique by construction) can push the ratio
                    // up a little, but never near the dirty band. The
                    // λ-only bimodal gap itself is checked by exp_fig6.
                    assert!(ratio <= 0.68, "clean ratio {ratio}");
                }
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = corpus(9);
        let b = corpus(9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!(x.table.multiset_eq(&y.table));
        }
    }
}
