//! # sqlnf-datagen
//!
//! Embedded paper datasets (Figures 1–5, 7; Examples 1–3) and seeded
//! synthetic workload generators reproducing the combinatorics of the
//! Section 7 evaluation data (see DESIGN.md, "Substitutions", for the
//! paper-data → generator mapping and why it preserves the measured
//! behaviour).

#![warn(missing_docs)]

pub mod contact;
pub mod contractor;
pub mod corpus;
pub mod naumann;
pub mod paper;
pub mod random;
