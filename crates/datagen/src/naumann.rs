//! Synthetic stand-ins for the three Naumann-repository data sets of
//! the discovery comparison table (Section 7): `breast-cancer`
//! (11 × 699), `adult` (14 × 48 842) and `hepatitis` (20 × 155) — with
//! matching dimensions, realistic column cardinalities and null
//! placement, so the classical-vs-certain discovery comparison
//! exercises the same regimes (wide-and-short tables exploding with
//! accidental FDs, long tables with few).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf_model::prelude::*;

/// 11 columns × 699 rows, like UCI breast-cancer(-wisconsin): an id
/// column, nine cytology features with domain 1..=10, and the class.
/// A few feature cells are missing (the real set has 16).
pub fn breast_cancer_like(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = std::iter::once("sample_id".to_string())
        .chain((1..=9).map(|i| format!("feature_{i}")))
        .chain(std::iter::once("class".to_string()))
        .collect();
    let schema = TableSchema::new("breast_cancer", names, &[]);
    let mut t = Table::new(schema);
    let mut missing = 16;
    for r in 0..699 {
        let malignant = rng.gen_bool(0.34);
        let mut row = vec![Value::Int(1_000_000 + r as i64)];
        for f in 0..9 {
            let base: i64 = if malignant {
                rng.gen_range(4..=10)
            } else {
                rng.gen_range(1..=5)
            };
            if missing > 0 && f == 5 && rng.gen_bool(0.03) {
                row.push(Value::Null);
                missing -= 1;
            } else {
                row.push(Value::Int(base));
            }
        }
        row.push(Value::Int(if malignant { 4 } else { 2 }));
        t.push(Tuple::new(row));
    }
    t
}

/// 14 columns × 48 842 rows, like UCI adult: mixed-cardinality census
/// columns with nulls in `workclass` and `occupation` (the real set
/// marks them `?`), plus a near-unique `fnlwgt`.
pub fn adult_like(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = TableSchema::new(
        "adult",
        [
            "age",
            "workclass",
            "fnlwgt",
            "education",
            "education_num",
            "marital_status",
            "occupation",
            "relationship",
            "race",
            "sex",
            "capital_gain",
            "capital_loss",
            "hours_per_week",
            "income",
        ],
        &[],
    );
    let mut t = Table::new(schema);
    // education ↔ education_num is the planted genuine FD pair.
    let educations: Vec<(String, i64)> = (1..=16).map(|i| (format!("edu_{i:02}"), i)).collect();
    for _ in 0..48_842 {
        let edu = &educations[rng.gen_range(0..educations.len())];
        let null_work = rng.gen_bool(0.056); // matches the real ~5.6 % "?"
        let mut row: Vec<Value> = Vec::with_capacity(14);
        row.push(Value::Int(rng.gen_range(17..=90)));
        row.push(if null_work {
            Value::Null
        } else {
            Value::str(format!("workclass_{}", rng.gen_range(0..8)))
        });
        row.push(Value::Int(rng.gen_range(10_000..1_500_000)));
        row.push(Value::str(edu.0.clone()));
        row.push(Value::Int(edu.1));
        row.push(Value::str(format!("marital_{}", rng.gen_range(0..7))));
        row.push(if null_work {
            Value::Null // occupation is missing whenever workclass is
        } else {
            Value::str(format!("occupation_{}", rng.gen_range(0..14)))
        });
        row.push(Value::str(format!("rel_{}", rng.gen_range(0..6))));
        row.push(Value::str(format!("race_{}", rng.gen_range(0..5))));
        row.push(Value::str(if rng.gen_bool(0.67) {
            "Male"
        } else {
            "Female"
        }));
        row.push(Value::Int(if rng.gen_bool(0.92) {
            0
        } else {
            rng.gen_range(100..99_999)
        }));
        row.push(Value::Int(if rng.gen_bool(0.95) {
            0
        } else {
            rng.gen_range(100..4_400)
        }));
        row.push(Value::Int(rng.gen_range(1..=99)));
        row.push(Value::str(if rng.gen_bool(0.76) {
            "<=50K"
        } else {
            ">50K"
        }));
        t.push(Tuple::new(row));
    }
    t
}

/// 20 columns × 155 rows, like UCI hepatitis: mostly binary clinical
/// indicators with frequent missing values — the wide-short regime
/// where accidental minimal FDs explode.
pub fn hepatitis_like(seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let names: Vec<String> = std::iter::once("class".to_string())
        .chain(std::iter::once("age".to_string()))
        .chain(std::iter::once("sex".to_string()))
        .chain((1..=15).map(|i| format!("ind_{i:02}")))
        .chain(["bilirubin".to_string(), "albumin".to_string()])
        .collect();
    let schema = TableSchema::new("hepatitis", names, &[]);
    let mut t = Table::new(schema);
    for _ in 0..155 {
        let mut row: Vec<Value> = Vec::with_capacity(20);
        row.push(Value::Int(if rng.gen_bool(0.21) { 1 } else { 2 }));
        row.push(Value::Int(rng.gen_range(7..=78)));
        row.push(Value::Int(if rng.gen_bool(0.9) { 1 } else { 2 }));
        for i in 0..15 {
            // Indicators missing with varying frequency, like the real
            // set (some columns are >40 % missing).
            let miss = 0.03 + 0.025 * (i as f64);
            if rng.gen_bool(miss.min(0.45)) {
                row.push(Value::Null);
            } else {
                row.push(Value::Int(if rng.gen_bool(0.5) { 1 } else { 2 }));
            }
        }
        row.push(if rng.gen_bool(0.04) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(3..=80)) // bilirubin ×10
        });
        row.push(if rng.gen_bool(0.1) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(21..=65)) // albumin ×10
        });
        t.push(Tuple::new(row));
    }
    t
}

/// 8 columns × 1 000 000 rows: a telemetry/registry-like corpus entry
/// in the regime Snell & Lee observe dominates real schema-design
/// workloads — every column low-cardinality integers, exactly where
/// dictionary codes + counting sort replace hashing outright. Planted
/// structure: `site → region` (sites nest in regions) and
/// `device_class → firmware`; `flag` carries ~0.2 % nulls so the
/// certain-semantics machinery is exercised without dominating.
pub fn million_like(seed: u64) -> Table {
    million_like_with_rows(seed, 1_000_000)
}

/// [`million_like`] at an arbitrary row count (tests use a small
/// prefix-shaped instance; the planted FDs hold at any size).
pub fn million_like_with_rows(seed: u64, rows: usize) -> Table {
    let mut rng = StdRng::seed_from_u64(seed);
    let schema = TableSchema::new(
        "million",
        [
            "region",
            "site",
            "device_class",
            "firmware",
            "status",
            "shift",
            "reading",
            "flag",
        ],
        &[],
    );
    let mut t = Table::new(schema);
    for _ in 0..rows {
        let region = rng.gen_range(0..50i64);
        let site = region * 20 + rng.gen_range(0..20i64); // site → region
        let device_class = rng.gen_range(0..12i64);
        let firmware = (device_class * 5 + 3) % 11; // device_class → firmware
        let mut row: Vec<Value> = Vec::with_capacity(8);
        row.push(Value::Int(region));
        row.push(Value::Int(site));
        row.push(Value::Int(device_class));
        row.push(Value::Int(firmware));
        row.push(Value::Int(rng.gen_range(0..6i64)));
        row.push(Value::Int(rng.gen_range(0..3i64)));
        row.push(Value::Int(rng.gen_range(0..1000i64)));
        row.push(if rng.gen_bool(0.002) {
            Value::Null
        } else {
            Value::Int(rng.gen_range(0..2i64))
        });
        t.push(Tuple::new(row));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn million_shape_and_planted_fds() {
        // Small instance of the same generator; the structure is
        // row-count independent.
        let m = million_like_with_rows(7, 10_000);
        assert_eq!((m.schema().arity(), m.len()), (8, 10_000));
        let s = m.schema().clone();
        assert!(satisfies_fd(
            &m,
            &Fd::certain(s.set(&["site"]), s.set(&["region"]))
        ));
        assert!(satisfies_fd(
            &m,
            &Fd::certain(s.set(&["device_class"]), s.set(&["firmware"]))
        ));
        assert!(m.null_count(s.a("flag")) > 0);
        assert_eq!(m.null_count(s.a("site")), 0);
    }

    #[test]
    fn dimensions_match_the_paper() {
        let bc = breast_cancer_like(1);
        assert_eq!((bc.schema().arity(), bc.len()), (11, 699));
        let hep = hepatitis_like(1);
        assert_eq!((hep.schema().arity(), hep.len()), (20, 155));
        // adult is big; dimension check only (skipped row count is the
        // expensive part — still fast enough).
        let ad = adult_like(1);
        assert_eq!((ad.schema().arity(), ad.len()), (14, 48_842));
    }

    #[test]
    fn planted_education_fd_holds() {
        let ad = adult_like(2);
        let s = ad.schema().clone();
        assert!(satisfies_fd(
            &ad,
            &Fd::certain(s.set(&["education"]), s.set(&["education_num"]))
        ));
        assert!(satisfies_fd(
            &ad,
            &Fd::certain(s.set(&["education_num"]), s.set(&["education"]))
        ));
    }

    #[test]
    fn null_placement() {
        let ad = adult_like(3);
        let s = ad.schema().clone();
        assert!(ad.null_count(s.a("workclass")) > 1000);
        assert_eq!(ad.null_count(s.a("age")), 0);
        let hep = hepatitis_like(3);
        let hs = hep.schema().clone();
        assert!(hep.null_count(hs.a("ind_15")) > 10);
        let bc = breast_cancer_like(3);
        let bs = bc.schema().clone();
        let nulls: usize = (0..11)
            .map(|i| bc.null_count(sqlnf_model::attrs::Attr::from(i)))
            .sum();
        assert!(nulls <= 16, "{nulls}");
        let _ = bs;
    }
}
