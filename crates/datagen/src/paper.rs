//! The running-example datasets of the paper, embedded verbatim:
//! Figures 1–5, the instances of Examples 1–3, Figure 3's
//! all-FDs-no-keys instance, and the counterexample instance of
//! Section 4.

use sqlnf_model::prelude::*;

/// The PURCHASE schema of Figure 1 (idealized: total instance; the
/// schema itself keeps all columns nullable so variants can share it
/// unless stated otherwise).
pub fn purchase_schema(not_null: &[&str]) -> TableSchema {
    TableSchema::new(
        "purchase",
        ["order_id", "item", "catalog", "price"],
        not_null,
    )
}

/// Figure 1: the relation `purchase`. Satisfies
/// `item, catalog → price`; `{item, catalog}` is not a key.
pub fn purchase_fig1() -> Table {
    TableBuilder::from_schema(purchase_schema(&["order_id", "item", "catalog", "price"]))
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", "Brookstone", 240i64])
        .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build()
}

/// Figure 3: two duplicate total tuples over {item, catalog, price} —
/// satisfies every FD and violates every key.
pub fn fig3_duplicates() -> Table {
    TableBuilder::new("fig3", ["item", "catalog", "price"], &[])
        .row(tuple!["Fitbit Surge", "Amazon", 240i64])
        .row(tuple!["Fitbit Surge", "Amazon", 240i64])
        .build()
}

/// Figure 4: both catalogs NULL with different prices. Satisfies the
/// p-FD `item, catalog →_s price` but its decomposition is lossy.
pub fn purchase_fig4() -> Table {
    TableBuilder::from_schema(purchase_schema(&["order_id", "item", "price"]))
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Fitbit Surge", null, 200i64])
        .build()
}

/// Figure 5 (top): satisfies the c-FD `item, catalog →_w price`; its
/// decomposition is lossless and the 240s in `I[icp]` stay redundant.
pub fn purchase_fig5() -> Table {
    TableBuilder::from_schema(purchase_schema(&["order_id", "item", "price"]))
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build()
}

/// Example 1: employees with name/appointment NOT NULL; the c-FD
/// `nd →_w d` is violated by the dob-less John Smith.
pub fn example1_employees() -> Table {
    TableBuilder::new(
        "employee",
        ["name", "dob", "appointment"],
        &["name", "appointment"],
    )
    .row(tuple!["John Smith", "19/05/1969", "DB Admin"])
    .row(tuple!["John Smith", "01/04/1971", "Finance Manager"])
    .row(tuple!["John Smith", null, "Programmer"])
    .row(tuple!["James Brown", null, "Programmer"])
    .build()
}

/// Example 2: the satisfaction-matrix relation (employee, dept,
/// manager, salary).
pub fn example2_relation() -> Table {
    TableBuilder::new("emp", ["employee", "dept", "manager", "salary"], &[])
        .row(tuple!["Turing", "CS", "von Neumann", null])
        .row(tuple!["Turing", null, "Goedel", null])
        .build()
}

/// The counterexample instance at the end of Section 4.1: satisfies
/// Σ = {oi →_s c, ic →_w p} with T_S = ocp and violates `oi →_w p`.
pub fn section4_counterexample() -> Table {
    TableBuilder::from_schema(purchase_schema(&["order_id", "catalog", "price"]))
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, null, "Kingstoy", 25i64])
        .build()
}

/// Section 6.2's instance over `[oic]` (duplicated orders with NULL and
/// Kingtoys catalogs): exactly the ⊥-positions are redundant under
/// `oic →_w c`.
pub fn section62_oic_instance() -> Table {
    TableBuilder::new(
        "oic",
        ["order_id", "item", "catalog"],
        &["order_id", "item"],
    )
    .row(tuple![5299401i64, "Fitbit Surge", null])
    .row(tuple![5299401i64, "Fitbit Surge", null])
    .row(tuple![7485113i64, "Dora Doll", "Kingtoys"])
    .row(tuple![7485113i64, "Dora Doll", "Kingtoys"])
    .build()
}

/// Σ of the running example in Section 4: the p-FD `oi →_s c` and the
/// c-FD `ic →_w p` over [`purchase_schema`].
pub fn section4_sigma(schema: &TableSchema) -> Sigma {
    Sigma::new()
        .with(Fd::possible(
            schema.set(&["order_id", "item"]),
            schema.set(&["catalog"]),
        ))
        .with(Fd::certain(
            schema.set(&["item", "catalog"]),
            schema.set(&["price"]),
        ))
}

/// Example 3's schema constraint: the total c-FD `oic →_w oicp` over
/// PURCHASE with `T_S = oip` (stated in the paper as `oic →_w cp`).
pub fn example3_sigma(schema: &TableSchema) -> Sigma {
    Sigma::new().with(Fd::certain(
        schema.set(&["order_id", "item", "catalog"]),
        schema.attrs(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_embedded_tables_have_expected_shapes() {
        assert_eq!(purchase_fig1().len(), 4);
        assert!(purchase_fig1().is_total());
        assert_eq!(fig3_duplicates().distinct_count(), 1);
        assert_eq!(purchase_fig4().len(), 2);
        assert_eq!(purchase_fig5().len(), 4);
        assert_eq!(example1_employees().len(), 4);
        assert_eq!(example2_relation().len(), 2);
        assert_eq!(section4_counterexample().len(), 2);
        assert_eq!(section62_oic_instance().len(), 4);
    }

    #[test]
    fn figure_constraints_hold_as_stated() {
        let f5 = purchase_fig5();
        let s = f5.schema().clone();
        let ic = s.set(&["item", "catalog"]);
        let p = s.set(&["price"]);
        assert!(satisfies_fd(&f5, &Fd::certain(ic, p)));
        let f4 = purchase_fig4();
        assert!(satisfies_fd(&f4, &Fd::possible(ic, p)));
        assert!(!satisfies_fd(&f4, &Fd::certain(ic, p)));
        let e1 = example1_employees();
        let es = e1.schema().clone();
        assert!(!satisfies_fd(
            &e1,
            &Fd::certain(es.set(&["name", "dob"]), es.set(&["dob"]))
        ));
        let c = section4_counterexample();
        let sigma = section4_sigma(c.schema());
        assert!(satisfies_all(&c, &sigma));
    }
}
