//! Seeded random schema designs and rows for the fault-injection
//! harness (`sqlnf-harness`).
//!
//! Everything here is a pure function of the caller's RNG state, so a
//! workload built from a seeded [`StdRng`] is bit-reproducible. The
//! shapes are deliberately small and collision-prone: few columns, a
//! tiny value domain, and random p/c-FD/key constraints, so that
//! inserted rows violate constraints often enough to exercise the
//! engine's rejection paths, and mined constraint sets stay within
//! reach of the exact 2-tuple oracle (`sqlnf-core::oracle`).

use rand::rngs::StdRng;
use rand::Rng;
use sqlnf_model::prelude::*;

/// A non-empty uniformly random subset of `t`.
pub fn random_nonempty_subset(rng: &mut StdRng, t: AttrSet) -> AttrSet {
    let attrs: Vec<Attr> = t.iter().collect();
    assert!(
        !attrs.is_empty(),
        "cannot sample from an empty attribute set"
    );
    loop {
        let mut s = AttrSet::EMPTY;
        for &a in &attrs {
            if rng.gen_bool(0.5) {
                s.insert(a);
            }
        }
        if !s.is_empty() {
            return s;
        }
    }
}

/// A random table design: `2..=max_cols` columns (`c0`, `c1`, …), each
/// NOT NULL with probability 0.4, and up to two random constraints
/// drawn uniformly from {p-FD, c-FD, p-key, c-key} over random
/// non-empty attribute sets.
pub fn random_design(rng: &mut StdRng, name: &str, max_cols: usize) -> (TableSchema, Sigma) {
    let cols = rng.gen_range(2..=max_cols.max(2));
    let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
    let mut nfs = AttrSet::EMPTY;
    for i in 0..cols {
        if rng.gen_bool(0.4) {
            nfs.insert(i.into());
        }
    }
    let schema = TableSchema::new(name, names, &[]).with_nfs(nfs);
    let t = AttrSet::first_n(cols);
    let mut sigma = Sigma::new();
    for _ in 0..rng.gen_range(0..=2usize) {
        let certain = rng.gen_bool(0.5);
        if rng.gen_bool(0.5) {
            let lhs = random_nonempty_subset(rng, t);
            let rhs = random_nonempty_subset(rng, t);
            sigma.add(if certain {
                Fd::certain(lhs, rhs)
            } else {
                Fd::possible(lhs, rhs)
            });
        } else {
            let attrs = random_nonempty_subset(rng, t);
            sigma.add(if certain {
                Key::certain(attrs)
            } else {
                Key::possible(attrs)
            });
        }
    }
    (schema, sigma)
}

/// A random row for `schema`: integers from `[0, domain)`, and — on
/// nullable columns only — a null marker with probability 0.2. Keeping
/// NOT NULL columns total means rejections come from FD/key
/// violations, not trivial NFS failures.
pub fn random_row(rng: &mut StdRng, schema: &TableSchema, domain: i64) -> Tuple {
    let values: Vec<Value> = (0..schema.arity())
        .map(|i| {
            if !schema.nfs().contains(i.into()) && rng.gen_bool(0.2) {
                Value::Null
            } else {
                Value::Int(rng.gen_range(0..domain.max(1)))
            }
        })
        .collect();
    Tuple::new(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn designs_and_rows_are_deterministic_per_seed() {
        let gen = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let (schema, sigma) = random_design(&mut rng, "t0", 6);
            let rows: Vec<Tuple> = (0..10).map(|_| random_row(&mut rng, &schema, 4)).collect();
            (render_create_table(&schema, &sigma), rows)
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7).0, gen(8).0);
    }

    #[test]
    fn designs_render_and_parse_back() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in 0..20 {
            let (schema, sigma) = random_design(&mut rng, &format!("t{k}"), 6);
            let ddl = render_create_table(&schema, &sigma);
            let stmts = parse_script(&ddl).expect("generated DDL parses");
            assert_eq!(stmts.len(), 1);
            // NOT NULL rows are total on the NFS.
            let row = random_row(&mut rng, &schema, 4);
            assert!(row.is_total_on(schema.nfs()));
            assert_eq!(row.arity(), schema.arity());
        }
    }
}
