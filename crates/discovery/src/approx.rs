//! Approximate satisfaction: how far an instance is from satisfying a
//! constraint, as the minimum fraction of rows to delete (the `g₃`
//! measure of the FD-discovery literature).
//!
//! Section 7's Figure 6 analysis attributes the high projection-ratio
//! λ-FD population to LHSs that "should really be certain keys, but are
//! not due to dirty data". The g₃ error makes that observation
//! quantitative: a near-key LHS has a small key error (few offending
//! rows), while a genuinely compressing FD has a large one.
//!
//! Exactness: for p-FDs and p-keys (and classical FDs) the optimum is
//! computed exactly — strong similarity is transitive, so each group is
//! repaired independently (keep the plurality RHS class; keep one row
//! per group for keys). For *certain* constraints weak similarity forms
//! an arbitrary conflict graph and the optimum is NP-hard (minimum
//! vertex deletion); [`cfd_error`]/[`ckey_error`] return the exact
//! group-wise part plus a greedy bound for the null-involved part, and
//! are exact whenever no row carries `⊥` in the LHS — the common case —
//! and always an upper bound on the true g₃.

use crate::cache::PartitionCtx;
use crate::check::{probe_weak_pairs, ProbeCache};
use crate::partition::{Encoded, NullSemantics, Partition};
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::table::Table;
use std::collections::HashMap;

/// Rows to remove so that every strong-similarity group is constant on
/// `a` (exact: per group keep the plurality value).
fn group_repair_cost(enc: &Encoded, partition: &Partition, a: Attr) -> usize {
    let mut cost = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for class in &partition.classes {
        counts.clear();
        for &r in class {
            *counts.entry(enc.code(r as usize, a)).or_insert(0) += 1;
        }
        let keep = counts.values().copied().max().unwrap_or(0);
        cost += class.len() - keep;
    }
    cost
}

/// [`pfd_error`] against a caller-held strong-semantics
/// [`PartitionCtx`] — amortizes partition construction across many
/// error queries on the same instance, as the Figure 6 analysis does.
pub fn pfd_error_ctx(ctx: &mut PartitionCtx, x: AttrSet, a: Attr) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    group_repair_cost(enc, &p, a) as f64 / enc.rows() as f64
}

/// Exact g₃ error of the p-FD `X →_s A`: the minimum number of rows to
/// delete, divided by the row count (0.0 on empty instances).
pub fn pfd_error(enc: &Encoded, x: AttrSet, a: Attr) -> f64 {
    pfd_error_ctx(&mut PartitionCtx::new(enc, NullSemantics::Strong), x, a)
}

/// [`classical_fd_error`] against a caller-held null-as-value
/// [`PartitionCtx`].
pub fn classical_fd_error_ctx(ctx: &mut PartitionCtx, x: AttrSet, a: Attr) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    group_repair_cost(enc, &p, a) as f64 / enc.rows() as f64
}

/// Exact g₃ error of the classical FD `X → A` (nulls as values).
pub fn classical_fd_error(enc: &Encoded, x: AttrSet, a: Attr) -> f64 {
    classical_fd_error_ctx(
        &mut PartitionCtx::new(enc, NullSemantics::NullAsValue),
        x,
        a,
    )
}

/// [`pkey_error`] against a caller-held strong-semantics
/// [`PartitionCtx`].
pub fn pkey_error_ctx(ctx: &mut PartitionCtx, x: AttrSet) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let excess = ctx.partition(x).error();
    excess as f64 / enc.rows() as f64
}

/// Exact g₃ error of the p-key `p⟨X⟩`: keep one row per strong group.
pub fn pkey_error(enc: &Encoded, x: AttrSet) -> f64 {
    pkey_error_ctx(&mut PartitionCtx::new(enc, NullSemantics::Strong), x)
}

/// [`wfd_error`] against a caller-held strong-semantics
/// [`PartitionCtx`].
pub fn wfd_error_ctx(ctx: &mut PartitionCtx, x: AttrSet, a: Attr) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    let mut cost = 0usize;
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for class in &p.classes {
        counts.clear();
        let mut nulls = 0usize;
        for &r in class {
            let c = enc.code(r as usize, a);
            if c == 0 {
                nulls += 1;
            } else {
                *counts.entry(c).or_insert(0) += 1;
            }
        }
        // ⊥ rows never conflict (complete them to the consensus), so
        // keep all of them plus the plurality non-null class.
        let keep = nulls + counts.values().copied().max().unwrap_or(0);
        cost += class.len() - keep;
    }
    cost as f64 / enc.rows() as f64
}

/// Exact g₃ error of the *weak* FD `X →_weak A` (some possible world
/// satisfies `X → A` classically). A weak violation needs two X-total
/// rows, strongly similar on `X`, with differing **non-null** `A`
/// values — so unlike the certain case there is no null-pair conflict
/// graph and the optimum is exact: per strong group keep every
/// `⊥`-on-`A` row plus the plurality non-null value.
pub fn wfd_error(enc: &Encoded, x: AttrSet, a: Attr) -> f64 {
    wfd_error_ctx(&mut PartitionCtx::new(enc, NullSemantics::Strong), x, a)
}

/// Upper bound on the g₃ error of the c-key `c⟨X⟩`: the exact
/// strong-group excess plus a greedy vertex-deletion bound over the
/// weak-similarity pairs involving `⊥`-carrying rows. Exact when no
/// row has `⊥` in `X`.
pub fn ckey_error(enc: &Encoded, x: AttrSet) -> f64 {
    ckey_error_ctx(&mut PartitionCtx::new(enc, NullSemantics::Strong), x)
}

/// [`ckey_error`] against a caller-held strong-semantics
/// [`PartitionCtx`].
pub fn ckey_error_ctx(ctx: &mut PartitionCtx, x: AttrSet) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    let mut removed: Vec<bool> = vec![false; enc.rows()];
    // Strong groups: keep one representative, drop the rest.
    let mut cost = 0usize;
    for class in &p.classes {
        for &r in &class[1..] {
            removed[r as usize] = true;
            cost += 1;
        }
    }
    // Weak pairs through nulls: greedily delete the null-bearing side
    // (it conflicts with everything weakly matching it).
    probe_weak_pairs(enc, x, |r, s| {
        if !removed[r] && !removed[s] {
            // Prefer removing the row with ⊥ in X (it is the hub).
            let victim = if enc.is_total_on(r, x) { s } else { r };
            removed[victim] = true;
            cost += 1;
        }
        true
    });
    cost as f64 / enc.rows() as f64
}

/// [`ckey_error_ctx`] probing weak pairs through a shared
/// [`ProbeCache`] — for many-query callers. The greedy bound depends
/// on pair *visit order*, and the cache's direct-scan path enumerates
/// in a different (still deterministic) order than a fresh index, so
/// the result may differ from [`ckey_error_ctx`]'s — both remain valid
/// upper bounds on the true g₃, and they coincide whenever no row
/// carries `⊥` in `X`.
pub fn ckey_error_probed(ctx: &mut PartitionCtx, probes: &ProbeCache, x: AttrSet) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    let mut removed: Vec<bool> = vec![false; enc.rows()];
    let mut cost = 0usize;
    for class in &p.classes {
        for &r in &class[1..] {
            removed[r as usize] = true;
            cost += 1;
        }
    }
    probes.weak_pairs(enc, x, |r, s| {
        if !removed[r] && !removed[s] {
            let victim = if enc.is_total_on(r, x) { s } else { r };
            removed[victim] = true;
            cost += 1;
        }
        true
    });
    cost as f64 / enc.rows() as f64
}

/// Upper bound on the g₃ error of the c-FD `X →_w A` (exact when no
/// row carries `⊥` in `X`): group repair plus greedy deletion over
/// weakly-similar, `A`-disagreeing pairs through nulls.
pub fn cfd_error(enc: &Encoded, x: AttrSet, a: Attr) -> f64 {
    cfd_error_ctx(&mut PartitionCtx::new(enc, NullSemantics::Strong), x, a)
}

/// [`cfd_error`] against a caller-held strong-semantics
/// [`PartitionCtx`].
pub fn cfd_error_ctx(ctx: &mut PartitionCtx, x: AttrSet, a: Attr) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    let mut cost = group_repair_cost(enc, &p, a);
    let mut removed: Vec<bool> = vec![false; enc.rows()];
    probe_weak_pairs(enc, x, |r, s| {
        if !removed[r] && !removed[s] && enc.code(r, a) != enc.code(s, a) {
            let victim = if enc.is_total_on(r, x) { s } else { r };
            removed[victim] = true;
            cost += 1;
        }
        true
    });
    (cost as f64 / enc.rows() as f64).min(1.0)
}

/// [`cfd_error_ctx`] probing weak pairs through a shared
/// [`ProbeCache`]. Same visit-order caveat as [`ckey_error_probed`]:
/// the greedy bound may differ from the fresh-index one but is always
/// a valid upper bound, exact when `X` carries no `⊥`.
pub fn cfd_error_probed(ctx: &mut PartitionCtx, probes: &ProbeCache, x: AttrSet, a: Attr) -> f64 {
    let enc = ctx.encoded();
    if enc.rows() == 0 {
        return 0.0;
    }
    let p = ctx.partition(x);
    let mut cost = group_repair_cost(enc, &p, a);
    let mut removed: Vec<bool> = vec![false; enc.rows()];
    probes.weak_pairs(enc, x, |r, s| {
        if !removed[r] && !removed[s] && enc.code(r, a) != enc.code(s, a) {
            let victim = if enc.is_total_on(r, x) { s } else { r };
            removed[victim] = true;
            cost += 1;
        }
        true
    });
    (cost as f64 / enc.rows() as f64).min(1.0)
}

/// Convenience wrapper for callers holding a [`Table`].
pub fn key_error_of_table(table: &Table, x: AttrSet, certain: bool) -> f64 {
    let enc = Encoded::new(table);
    if certain {
        ckey_error(&enc, x)
    } else {
        pkey_error(&enc, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn enc(t: &Table) -> Encoded {
        Encoded::new(t)
    }

    #[test]
    fn satisfied_constraints_have_zero_error() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, 10i64])
            .row(tuple![2i64, 20i64])
            .build();
        let e = enc(&t);
        let a = AttrSet::from_indices([0]);
        assert_eq!(pfd_error(&e, a, Attr(1)), 0.0);
        assert_eq!(cfd_error(&e, a, Attr(1)), 0.0);
        assert_eq!(classical_fd_error(&e, a, Attr(1)), 0.0);
        // The key IS violated (duplicate group) with error 1/3.
        assert!((pkey_error(&e, a) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn fd_error_counts_minority_rows() {
        // Group a=1 has b ∈ {10, 10, 30}: delete 1 of 3. Group a=2 is
        // clean. Error = 1/4.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, 30i64])
            .row(tuple![2i64, 20i64])
            .build();
        let e = enc(&t);
        let err = pfd_error(&e, AttrSet::from_indices([0]), Attr(1));
        assert!((err - 0.25).abs() < 1e-12);
    }

    #[test]
    fn near_key_has_small_error() {
        // 9 distinct + 1 duplicate: key error 10%. This is the paper's
        // "dirty almost-key" shape.
        let mut b = TableBuilder::new("r", ["a"], &[]);
        for i in 0..9 {
            b = b.row(Tuple::new(vec![Value::Int(i)]));
        }
        let t = b.row(tuple![0i64]).build();
        let e = enc(&t);
        assert!((pkey_error(&e, AttrSet::from_indices([0])) - 0.1).abs() < 1e-12);
        assert!((ckey_error(&e, AttrSet::from_indices([0])) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn certain_errors_account_for_nulls() {
        // (⊥) weakly matches both values: c-key error removes it (1/3);
        // p-key sees three singletons (0).
        let t = TableBuilder::new("r", ["a"], &[])
            .row(tuple![1i64])
            .row(tuple![null])
            .row(tuple![2i64])
            .build();
        let e = enc(&t);
        let a = AttrSet::from_indices([0]);
        assert_eq!(pkey_error(&e, a), 0.0);
        assert!((ckey_error(&e, a) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cfd_error_bounds_the_true_optimum() {
        // After deleting the null row, the c-FD holds: true g₃ = 1/3;
        // the greedy bound must not undershoot it and here is exact.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![null, 20i64])
            .row(tuple![2i64, 30i64])
            .build();
        let e = enc(&t);
        let err = cfd_error(&e, AttrSet::from_indices([0]), Attr(1));
        assert!((err - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_table_is_error_free() {
        let t = Table::new(TableSchema::new("r", ["a"], &[]));
        let e = enc(&t);
        assert_eq!(pfd_error(&e, AttrSet::from_indices([0]), Attr(0)), 0.0);
        assert_eq!(ckey_error(&e, AttrSet::from_indices([0])), 0.0);
    }

    #[test]
    fn wfd_error_is_exact_and_weakest() {
        // Group a=1: b ∈ {10, ⊥, 30}. Weak repair keeps the ⊥ row and
        // one non-null value: delete 1 of 4. The p-FD must also delete
        // the ⊥ row (its singleton code conflicts): 2 of 4.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, null])
            .row(tuple![1i64, 30i64])
            .row(tuple![2i64, 20i64])
            .build();
        let e = enc(&t);
        let x = AttrSet::from_indices([0]);
        assert!((wfd_error(&e, x, Attr(1)) - 0.25).abs() < 1e-12);
        assert!((pfd_error(&e, x, Attr(1)) - 0.5).abs() < 1e-12);
        // ⊥-only disagreement: weakly satisfied, zero error.
        let t2 = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, null])
            .build();
        let e2 = enc(&t2);
        assert_eq!(wfd_error(&e2, x, Attr(1)), 0.0);
    }

    /// Zero weak error ⟺ the weak FD holds, and the weak error never
    /// exceeds the possible or classical one (the semantics is laxer).
    #[test]
    fn wfd_error_agrees_with_check() {
        use crate::check::{fd_holds, Semantics};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..30 {
            let schema = TableSchema::new("r", ["a", "b", "c"], &[]);
            let mut t = Table::new(schema);
            for _ in 0..12 {
                t.push(Tuple::new(
                    (0..3)
                        .map(|_| {
                            if rng.gen_bool(0.3) {
                                Value::Null
                            } else {
                                Value::Int(rng.gen_range(0..3))
                            }
                        })
                        .collect::<Vec<_>>(),
                ));
            }
            let e = enc(&t);
            for xi in 0..3usize {
                for ai in 0..3usize {
                    if xi == ai {
                        continue;
                    }
                    let x = AttrSet::from_indices([xi]);
                    let a = Attr(ai as u8);
                    let werr = wfd_error(&e, x, a);
                    let holds = fd_holds(&e, x, a, Semantics::Weak);
                    assert_eq!(werr == 0.0, holds, "x={xi} a={ai}\n{t}");
                    assert!(werr <= pfd_error(&e, x, a) + 1e-12);
                    assert!(werr <= classical_fd_error(&e, x, a) + 1e-12);
                }
            }
        }
    }

    /// The error is sound: deleting the implied number of rows (greedy
    /// trace) really leaves a satisfying instance, for the exactly-
    /// computed p variants.
    #[test]
    fn pfd_repair_really_works() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, 11i64])
            .row(tuple![1i64, 10i64])
            .row(tuple![2i64, 20i64])
            .row(tuple![2i64, 21i64])
            .build();
        let e = enc(&t);
        let x = AttrSet::from_indices([0]);
        let err = pfd_error(&e, x, Attr(1));
        let to_delete = (err * t.len() as f64).round() as usize;
        assert_eq!(to_delete, 2);
        // Keep the plurality per group: rows 0, 2, 3 (or 4).
        let kept = Table::from_rows(
            t.schema().clone(),
            vec![
                t.rows()[0].clone(),
                t.rows()[2].clone(),
                t.rows()[3].clone(),
            ],
        );
        assert!(satisfies_fd(
            &kept,
            &Fd::possible(x, AttrSet::from_indices([1]))
        ));
    }
}
