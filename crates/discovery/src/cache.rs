//! Memory-bounded memoization of stripped partitions, built on the
//! linear partition products of [`Partition::product_attr`].
//!
//! The TANE observation: the stripped partition of an attribute set
//! `X` is the product of the partitions of any two subsets covering
//! `X`. A level-wise miner therefore never needs to re-group the table
//! per candidate — π_X for a level-`k` candidate is one linear sweep
//! over two already-known partitions of level `k−1` and level 1. This
//! module provides the single-threaded context used by everything
//! outside the miner's worker pool ([`crate::approx`], [`crate::keys`],
//! [`crate::classify`]); the miner itself shards an equivalent cache
//! across its persistent workers (see [`crate::mine`]).
//!
//! The memo is byte-budgeted: entries are admitted until the budget is
//! full and recomputed from the (always-resident) single-attribute
//! partitions on a miss, so a tiny budget degrades throughput but
//! never results. Counters: `discovery.partition.cache.hits` /
//! `.misses` / `.evictions` (entries dropped by [`PartitionCtx::
//! evict_below`] or rejected because the budget is exhausted) and
//! `.bytes` (high-water mark of resident bytes).

use crate::partition::{Encoded, NullSemantics, Partition, ProductScratch};
use sqlnf_model::attrs::{Attr, AttrSet};
use std::collections::HashMap;
use std::rc::Rc;

/// Default byte budget for cached partitions (64 MiB) — roomy for the
/// paper-scale workloads while bounding the worst case on wide, tall
/// tables. The CLI exposes it as `--cache-budget`.
pub const DEFAULT_CACHE_BUDGET: usize = 64 << 20;

/// A single-threaded partition factory: dictionary-encoded instance +
/// null semantics + reusable product scratch + byte-budgeted memo.
///
/// [`PartitionCtx::partition`] returns [`Rc`]-shared canonical
/// partitions, equal (by `==`) to what [`Partition::by_set`] builds —
/// property-tested in `tests/discovery.rs`.
pub struct PartitionCtx<'a> {
    enc: &'a Encoded,
    sem: NullSemantics,
    singles: Vec<Option<Rc<Partition>>>,
    universal: Option<Rc<Partition>>,
    scratch: ProductScratch,
    memo: HashMap<AttrSet, Rc<Partition>>,
    memo_bytes: usize,
    budget: usize,
}

impl<'a> PartitionCtx<'a> {
    /// A context with the [`DEFAULT_CACHE_BUDGET`].
    pub fn new(enc: &'a Encoded, sem: NullSemantics) -> PartitionCtx<'a> {
        PartitionCtx::with_budget(enc, sem, DEFAULT_CACHE_BUDGET)
    }

    /// A context with an explicit byte budget. `0` disables
    /// memoization entirely (every multi-attribute partition is folded
    /// from the single-attribute ones); the singles themselves are
    /// never evicted — they are the recomputation floor.
    pub fn with_budget(enc: &'a Encoded, sem: NullSemantics, budget: usize) -> PartitionCtx<'a> {
        PartitionCtx {
            enc,
            sem,
            singles: Vec::new(),
            universal: None,
            scratch: ProductScratch::for_encoded(enc),
            memo: HashMap::new(),
            memo_bytes: 0,
            budget,
        }
    }

    /// The encoded instance this context partitions.
    pub fn encoded(&self) -> &'a Encoded {
        self.enc
    }

    /// The null semantics of every partition built here.
    pub fn semantics(&self) -> NullSemantics {
        self.sem
    }

    /// Bytes currently held by the memo (excluding the singles).
    pub fn resident_bytes(&self) -> usize {
        self.memo_bytes
    }

    /// The single-attribute partition of `a` (always cached).
    pub fn single(&mut self, a: Attr) -> Rc<Partition> {
        let i = a.index();
        if self.singles.len() <= i {
            self.singles.resize(i + 1, None);
        }
        if let Some(p) = &self.singles[i] {
            return Rc::clone(p);
        }
        let p = Rc::new(Partition::by_attr(self.enc, a, self.sem));
        self.singles[i] = Some(Rc::clone(&p));
        p
    }

    /// The stripped partition of `x`, memoized. Equal to
    /// `Partition::by_set(enc, x, sem)` but built by linear products
    /// over cached sub-partitions instead of per-candidate hashing.
    pub fn partition(&mut self, x: AttrSet) -> Rc<Partition> {
        match x.len() {
            0 => {
                if let Some(u) = &self.universal {
                    return Rc::clone(u);
                }
                let u = Rc::new(Partition::universal(self.enc.rows()));
                self.universal = Some(Rc::clone(&u));
                u
            }
            1 => self.single(x.first().expect("non-empty")),
            _ => {
                if let Some(p) = self.memo.get(&x) {
                    sqlnf_obs::count!("discovery.partition.cache.hits");
                    return Rc::clone(p);
                }
                sqlnf_obs::count!("discovery.partition.cache.misses");
                // Attribute pairs over small combined code spaces take
                // the fused counting sort straight off the raw columns.
                if x.len() == 2 {
                    let mut it = x.iter();
                    let (a, b) = (it.next().expect("pair"), it.next().expect("pair"));
                    if Partition::by_pair_applicable(self.enc, a, b) {
                        let p = Rc::new(Partition::by_pair(self.enc, a, b, self.sem));
                        self.admit(x, &p);
                        return p;
                    }
                }
                // Split off the attribute whose remaining prefix is the
                // cheapest *resident* one to sweep; fall back to the
                // last attribute when no prefix is memoized (the
                // recursion then builds it).
                let split = x
                    .iter()
                    .filter_map(|a| {
                        let p = self.memo.get(&(x - AttrSet::single(a)))?;
                        Some((a, p.stripped_rows()))
                    })
                    .min_by_key(|&(a, cost)| (cost, a))
                    .map(|(a, _)| a)
                    .unwrap_or_else(|| x.iter().last().expect("non-empty"));
                let left = self.partition(x - AttrSet::single(split));
                let p = Rc::new(left.product_attr(self.enc, split, self.sem, &mut self.scratch));
                self.admit(x, &p);
                p
            }
        }
    }

    /// Stores a partition if the budget allows; rejections count as
    /// evictions (the entry is dropped immediately).
    fn admit(&mut self, x: AttrSet, p: &Rc<Partition>) {
        let sz = p.approx_bytes() + std::mem::size_of::<AttrSet>();
        if self.memo_bytes.saturating_add(sz) > self.budget {
            sqlnf_obs::count!("discovery.partition.cache.evictions");
            return;
        }
        self.memo_bytes += sz;
        sqlnf_obs::count_max!("discovery.partition.cache.bytes", self.memo_bytes);
        self.memo.insert(x, Rc::clone(p));
    }

    /// Drops every memoized partition with fewer than `min_len`
    /// attributes. Level-wise callers retire level `k−2` and below when
    /// they advance to level `k` — products only ever consult the
    /// previous level and the singles.
    pub fn evict_below(&mut self, min_len: usize) {
        let before = self.memo.len();
        self.memo.retain(|k, _| k.len() >= min_len);
        let dropped = before - self.memo.len();
        if dropped > 0 {
            sqlnf_obs::count!("discovery.partition.cache.evictions", dropped);
            self.memo_bytes = self
                .memo
                .values()
                .map(|p| p.approx_bytes() + std::mem::size_of::<AttrSet>())
                .sum();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn sample() -> Table {
        TableBuilder::new("r", ["a", "b", "c"], &[])
            .row(tuple!["x", 1i64, 1i64])
            .row(tuple!["x", 1i64, 2i64])
            .row(tuple![null, 1i64, 1i64])
            .row(tuple![null, 2i64, 2i64])
            .row(tuple!["y", 2i64, 1i64])
            .row(tuple!["x", 1i64, 1i64])
            .build()
    }

    #[test]
    fn ctx_matches_by_set_on_all_subsets() {
        let t = sample();
        let enc = Encoded::new(&t);
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let mut ctx = PartitionCtx::new(&enc, sem);
            for x in AttrSet::first_n(3).subsets() {
                let want = Partition::by_set(&enc, x, sem);
                assert_eq!(*ctx.partition(x), want, "{sem:?} {x:?}");
                // Second call hits the memo and must agree.
                assert_eq!(*ctx.partition(x), want, "{sem:?} {x:?} (cached)");
            }
        }
    }

    #[test]
    fn zero_budget_still_correct() {
        let t = sample();
        let enc = Encoded::new(&t);
        let mut ctx = PartitionCtx::with_budget(&enc, NullSemantics::Strong, 0);
        for x in AttrSet::first_n(3).subsets() {
            assert_eq!(
                *ctx.partition(x),
                Partition::by_set(&enc, x, NullSemantics::Strong),
                "{x:?}"
            );
        }
        assert_eq!(ctx.resident_bytes(), 0);
    }

    #[test]
    fn eviction_resets_accounting() {
        let t = sample();
        let enc = Encoded::new(&t);
        let mut ctx = PartitionCtx::new(&enc, NullSemantics::NullAsValue);
        let all = AttrSet::first_n(3);
        ctx.partition(all);
        assert!(ctx.resident_bytes() > 0);
        ctx.evict_below(usize::MAX);
        assert_eq!(ctx.resident_bytes(), 0);
        // Still correct after a full purge.
        assert_eq!(
            *ctx.partition(all),
            Partition::by_set(&enc, all, NullSemantics::NullAsValue)
        );
    }
}
