//! Fast satisfaction checks used by the miner, built on
//! dictionary-encoded columns and stripped partitions. Each check is
//! exact — they are property-tested against the naive pairwise
//! definitions of `sqlnf_model::satisfy`.

use crate::partition::{Encoded, NullSemantics, Partition};
use sqlnf_model::attrs::{Attr, AttrSet};
use std::collections::HashMap;

/// Visits every unordered pair of rows that is weakly similar on `x`
/// and involves at least one row carrying `⊥` in `x` (the pairs the
/// strong partition cannot see). Calls `f(r, s)`; stops early — and
/// returns `false` — when `f` returns `false`.
///
/// Null–null pairs are compared directly (there are few null rows in
/// practice); null–total pairs are found through a hash index per
/// distinct null *pattern*: a row `r` with nulls on `N ⊆ x` is weakly
/// similar to an `x`-total row `s` iff `s` matches `r` exactly on
/// `x − N`. This turns the former full-table scan per null row into a
/// constant number of index probes, which is what keeps c-FD discovery
/// on the 48 842-row `adult` workload within the same order of
/// magnitude as classical discovery (as in the paper's comparison).
pub fn probe_weak_pairs(
    enc: &Encoded,
    x: AttrSet,
    mut f: impl FnMut(usize, usize) -> bool,
) -> bool {
    let null_rows = enc.null_rows_on(x);
    if null_rows.is_empty() {
        return true;
    }

    // 1) null–null pairs.
    for (i, &r) in null_rows.iter().enumerate() {
        for &s in &null_rows[i + 1..] {
            if enc.weakly_similar(r, s, x) && !f(r, s) {
                return false;
            }
        }
    }

    // 2) null–total pairs, by null pattern.
    let mut by_pattern: HashMap<AttrSet, Vec<usize>> = HashMap::new();
    for &r in &null_rows {
        let nulls: AttrSet = x.iter().filter(|&a| enc.code(r, a) == 0).collect();
        by_pattern.entry(x - nulls).or_default().push(r);
    }
    for (reduced, rows) in by_pattern {
        // Index the x-total rows by their `reduced` projection.
        let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
        for s in 0..enc.rows() {
            if enc.is_total_on(s, x) {
                let key: Vec<u32> = reduced.iter().map(|a| enc.code(s, a)).collect();
                index.entry(key).or_default().push(s);
            }
        }
        for r in rows {
            let key: Vec<u32> = reduced.iter().map(|a| enc.code(r, a)).collect();
            if let Some(matches) = index.get(&key) {
                for &s in matches {
                    if !f(r, s) {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// Semantics under which a mined FD `X → A` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Classical FD discovery convention: `⊥` compared like a value on
    /// both sides (the convention of the FD-discovery literature the
    /// paper benchmarks against).
    Classical,
    /// Possible FD `X →_s A`: strong similarity on `X`, syntactic
    /// equality on `A`.
    Possible,
    /// Certain FD `X →_w A`: weak similarity on `X`, syntactic equality
    /// on `A`.
    Certain,
}

/// Checks `X → A` for all `A` in `targets` at once, returning the
/// subset of `targets` on which the FD holds. `partition` must be the
/// grouping of `X` under the matching semantics (strong for
/// [`Semantics::Possible`]/[`Semantics::Certain`], null-as-value for
/// [`Semantics::Classical`]).
pub fn fd_targets_holding(
    enc: &Encoded,
    x: AttrSet,
    partition: &Partition,
    targets: AttrSet,
    sem: Semantics,
) -> AttrSet {
    let mut holding = targets;

    // Within-partition check: every class must be constant on A.
    // For Possible/Certain the class is a strong-similarity class and
    // equality is syntactic (⊥ = ⊥ ⇒ code equality works, with 0 = ⊥).
    for class in &partition.classes {
        if holding.is_empty() {
            break;
        }
        let first = class[0] as usize;
        for &r in &class[1..] {
            let r = r as usize;
            let mut still = AttrSet::EMPTY;
            for a in holding {
                if enc.code(r, a) == enc.code(first, a) {
                    still.insert(a);
                }
            }
            holding = still;
            if holding.is_empty() {
                break;
            }
        }
    }

    // Certain FDs additionally constrain rows with ⊥ in X: such a row
    // is weakly similar to every row matching its non-null part.
    if sem == Semantics::Certain && !holding.is_empty() {
        probe_weak_pairs(enc, x, |r, s| {
            let mut still = AttrSet::EMPTY;
            for a in holding {
                if enc.code(r, a) == enc.code(s, a) {
                    still.insert(a);
                }
            }
            holding = still;
            !holding.is_empty()
        });
    }
    holding
}

/// Whether `X` is a c-key of the encoded instance: no two rows weakly
/// similar on `X`.
pub fn is_ckey(enc: &Encoded, x: AttrSet, strong_partition: &Partition) -> bool {
    // Any strong class of size ≥ 2 is already a weak violation.
    if !strong_partition.is_empty() {
        return false;
    }
    probe_weak_pairs(enc, x, |_, _| false)
}

/// Whether `X` is a p-key: no two rows strongly similar on `X`
/// (equivalently, the strong partition is empty).
pub fn is_pkey(strong_partition: &Partition) -> bool {
    strong_partition.is_empty()
}

/// Whether the internal c-FD `X →_w X` holds — the extra condition that
/// upgrades a certain FD `X →_w Y` to the *total* FD `X →_w XY`
/// (Definition 9). Rows without nulls in `X` satisfy it trivially
/// (weak similarity = equality there); only null-bearing rows matter.
pub fn certain_reflexive_holds(enc: &Encoded, x: AttrSet) -> bool {
    probe_weak_pairs(enc, x, |r, s| enc.equal_on(r, s, x))
}

/// Builds the grouping of `X` appropriate for `sem`.
pub fn partition_for(enc: &Encoded, x: AttrSet, sem: Semantics) -> Partition {
    let ns = match sem {
        Semantics::Classical => NullSemantics::NullAsValue,
        Semantics::Possible | Semantics::Certain => NullSemantics::Strong,
    };
    Partition::by_set(enc, x, ns)
}

/// Convenience: whether `X → A` holds under `sem` (one-off check; the
/// miner uses [`fd_targets_holding`] with cached partitions).
pub fn fd_holds(enc: &Encoded, x: AttrSet, a: Attr, sem: Semantics) -> bool {
    let p = partition_for(enc, x, sem);
    !fd_targets_holding(enc, x, &p, AttrSet::single(a), sem).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::constraint::{Fd, Key};
    use sqlnf_model::prelude::*;

    fn enc(t: &Table) -> Encoded {
        Encoded::new(t)
    }

    #[test]
    fn figure5_checks() {
        let t = TableBuilder::new("p", ["o", "i", "c", "pr"], &[])
            .row(tuple![5299401i64, "FS", "Amazon", 240i64])
            .row(tuple![5299401i64, "FS", null, 240i64])
            .row(tuple![7485113i64, "FS", "Amazon", 240i64])
            .row(tuple![7485113i64, "DD", "Kingtoys", 25i64])
            .build();
        let e = enc(&t);
        let s = t.schema().clone();
        let ic = s.set(&["i", "c"]);
        let pr = s.a("pr");
        assert!(fd_holds(&e, ic, pr, Semantics::Possible));
        assert!(fd_holds(&e, ic, pr, Semantics::Certain));
        // But ic →_w i fails?? No: rows 1,2 weakly similar on ic, equal
        // on i. ic →_w c fails: unequal on c.
        assert!(fd_holds(&e, ic, s.a("i"), Semantics::Certain));
        assert!(!certain_reflexive_holds(&e, ic));
        // Classical (null as value) also holds: groups (FS,Amazon),
        // (FS,⊥), (DD,K) each constant on price.
        assert!(fd_holds(&e, ic, pr, Semantics::Classical));
    }

    #[test]
    fn keys_on_encoded() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple!["x", 1i64])
            .row(tuple![null, 2i64])
            .row(tuple!["y", 3i64])
            .build();
        let e = enc(&t);
        let a = AttrSet::from_indices([0]);
        let p = partition_for(&e, a, Semantics::Possible);
        assert!(is_pkey(&p));
        // ⊥ is weakly similar to both x and y → not a c-key.
        assert!(!is_ckey(&e, a, &p));
        let ab = AttrSet::from_indices([0, 1]);
        let pab = partition_for(&e, ab, Semantics::Possible);
        assert!(is_ckey(&e, ab, &pab));
    }

    /// Exhaustive agreement with the naive pairwise checker over all
    /// small tables on a 3-value domain {0, 1, ⊥}.
    #[test]
    fn agrees_with_naive_satisfaction() {
        let vals = [Value::Int(0), Value::Int(1), Value::Null];
        // 3 columns, 3 rows → 3^9 = 19683 tables.
        let schema = TableSchema::new("r", ["a", "b", "c"], &[]);
        let all = AttrSet::from_indices([0, 1, 2]);
        for code in 0..3usize.pow(9) {
            let mut c = code;
            let mut rows = Vec::new();
            for _ in 0..3 {
                let mut row = Vec::new();
                for _ in 0..3 {
                    row.push(vals[c % 3].clone());
                    c /= 3;
                }
                rows.push(Tuple::new(row));
            }
            let t = Table::from_rows(schema.clone(), rows);
            let e = enc(&t);
            for x in all.subsets() {
                let strong = partition_for(&e, x, Semantics::Possible);
                for a in all - x {
                    let fd_p = Fd::possible(x, AttrSet::single(a));
                    let fd_c = Fd::certain(x, AttrSet::single(a));
                    assert_eq!(
                        fd_holds(&e, x, a, Semantics::Possible),
                        satisfies_fd(&t, &fd_p),
                        "p x={x:?} a={a:?}\n{t}"
                    );
                    assert_eq!(
                        fd_holds(&e, x, a, Semantics::Certain),
                        satisfies_fd(&t, &fd_c),
                        "c x={x:?} a={a:?}\n{t}"
                    );
                }
                assert_eq!(
                    is_pkey(&strong),
                    satisfies_key(&t, &Key::possible(x)),
                    "pkey x={x:?}\n{t}"
                );
                assert_eq!(
                    is_ckey(&e, x, &strong),
                    satisfies_key(&t, &Key::certain(x)),
                    "ckey x={x:?}\n{t}"
                );
                // X →_w X via the dedicated reflexive check.
                let refl = Fd::certain(x, x);
                assert_eq!(
                    certain_reflexive_holds(&e, x),
                    satisfies_fd(&t, &refl),
                    "refl x={x:?}\n{t}"
                );
            }
        }
    }

    #[test]
    fn batch_targets_match_single_checks() {
        let t = TableBuilder::new("r", ["a", "b", "c", "d"], &[])
            .row(tuple![1i64, 1i64, 2i64, null])
            .row(tuple![1i64, 1i64, 3i64, null])
            .row(tuple![2i64, null, 3i64, 5i64])
            .build();
        let e = enc(&t);
        let x = AttrSet::from_indices([0]);
        for sem in [
            Semantics::Classical,
            Semantics::Possible,
            Semantics::Certain,
        ] {
            let p = partition_for(&e, x, sem);
            let targets = AttrSet::from_indices([1, 2, 3]);
            let batch = fd_targets_holding(&e, x, &p, targets, sem);
            for a in targets {
                assert_eq!(batch.contains(a), fd_holds(&e, x, a, sem), "{sem:?} {a:?}");
            }
        }
    }
}
