//! Fast satisfaction checks used by the miner, built on
//! dictionary-encoded columns and stripped partitions. Each check is
//! exact — they are property-tested against the naive pairwise
//! definitions of `sqlnf_model::satisfy`.

use crate::partition::{Encoded, NullSemantics, Partition, ProductScratch};
use sqlnf_model::attrs::{Attr, AttrSet};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A memoized probe structure for weak-similarity checks on a fixed
/// attribute set `X`: the `X`-null rows, and per distinct null
/// *pattern* a hash index of the `X`-total rows keyed by their
/// projection onto the pattern's non-null part.
///
/// Building it costs one pass to merge the per-column null lists, one
/// complement pass for the total-row list, and one key-extraction pass
/// per distinct pattern — the total-row list itself is computed **once**
/// and shared by every pattern (the old code re-scanned all rows with
/// an `is_total_on` test per pattern, which was quadratic in practice
/// on null-heavy candidates). Callers that probe the same `X` several
/// times (c-key + reflexivity during classification, key mining) build
/// the index once and reuse it.
pub struct ProbeIndex {
    x: AttrSet,
    null_rows: Vec<usize>,
    /// Sorted by reduced pattern so probing order is deterministic.
    patterns: Vec<Pattern>,
}

/// One distinct null pattern of `X`: `(reduced, null rows with this
/// pattern, total rows keyed by their projection onto reduced)`.
type Pattern = (AttrSet, Vec<usize>, HashMap<Vec<u32>, Vec<usize>>);

impl ProbeIndex {
    /// Builds the probe index of `x`. Cheap (`O(|X|)`, no allocation)
    /// when no column of `x` carries a `⊥`.
    pub fn new(enc: &Encoded, x: AttrSet) -> ProbeIndex {
        if !enc.has_nulls_on(x) {
            return ProbeIndex {
                x,
                null_rows: Vec::new(),
                patterns: Vec::new(),
            };
        }
        sqlnf_obs::count!("discovery.check.probe_index_builds");
        let null_rows = enc.null_rows_on(x);

        // The x-total rows, computed once: the ascending complement of
        // the (ascending) null-row list.
        let mut total: Vec<usize> = Vec::with_capacity(enc.rows() - null_rows.len());
        let mut nulls_it = null_rows.iter().copied().peekable();
        for r in 0..enc.rows() {
            if nulls_it.peek() == Some(&r) {
                nulls_it.next();
            } else {
                total.push(r);
            }
        }

        // Group the null rows by their reduced (non-null) pattern.
        let mut by_pattern: HashMap<AttrSet, Vec<usize>> = HashMap::new();
        for &r in &null_rows {
            let nulls: AttrSet = x.iter().filter(|&a| enc.code(r, a) == 0).collect();
            by_pattern.entry(x - nulls).or_default().push(r);
        }
        let mut patterns: Vec<Pattern> = by_pattern
            .into_iter()
            .map(|(reduced, rows)| {
                let mut index: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
                for &s in &total {
                    let key: Vec<u32> = reduced.iter().map(|a| enc.code(s, a)).collect();
                    index.entry(key).or_default().push(s);
                }
                (reduced, rows, index)
            })
            .collect();
        patterns.sort_by_key(|&(reduced, _, _)| reduced);
        ProbeIndex {
            x,
            null_rows,
            patterns,
        }
    }

    /// The attribute set this index probes.
    pub fn x(&self) -> AttrSet {
        self.x
    }

    /// Whether any row carries `⊥` in `X` (if not, every probe is a
    /// trivial success).
    pub fn has_null_rows(&self) -> bool {
        !self.null_rows.is_empty()
    }

    /// Visits every unordered pair of rows that is weakly similar on
    /// `X` and involves at least one row carrying `⊥` in `X` (the pairs
    /// the strong partition cannot see). Calls `f(r, s)`; stops early —
    /// and returns `false` — when `f` returns `false`.
    ///
    /// Null–null pairs are compared directly (there are few null rows
    /// in practice); null–total pairs come from the per-pattern hash
    /// indexes: a row `r` with nulls on `N ⊆ X` is weakly similar to an
    /// `X`-total row `s` iff `s` matches `r` exactly on `X − N`. This
    /// is what keeps c-FD discovery on the 48 842-row `adult` workload
    /// within the same order of magnitude as classical discovery (as in
    /// the paper's comparison).
    pub fn for_each_weak_pair(&self, enc: &Encoded, f: impl FnMut(usize, usize) -> bool) -> bool {
        self.for_each_weak_pair_filtered(enc, AttrSet::EMPTY, f)
    }

    /// [`ProbeIndex::for_each_weak_pair`] for the *larger* attribute
    /// set `self.x ∪ extra`, where every column of `extra` is null-free
    /// in the instance. This is what makes an index reusable across
    /// LHSs sharing a nullable footprint (see [`ProbeCache`]): rows
    /// carry `⊥` in `X` exactly where they carry `⊥` in
    /// `X ∩ nullable`, and on the null-free remainder weak similarity
    /// degenerates to code equality — so the weak pairs of `X` are the
    /// weak pairs of the footprint filtered by equality on `extra`.
    pub fn for_each_weak_pair_filtered(
        &self,
        enc: &Encoded,
        extra: AttrSet,
        mut f: impl FnMut(usize, usize) -> bool,
    ) -> bool {
        let x_full = self.x | extra;
        // 1) null–null pairs.
        for (i, &r) in self.null_rows.iter().enumerate() {
            for &s in &self.null_rows[i + 1..] {
                if enc.weakly_similar(r, s, x_full) && !f(r, s) {
                    return false;
                }
            }
        }
        // 2) null–total pairs, by null pattern.
        for (reduced, rows, index) in &self.patterns {
            for &r in rows {
                let key: Vec<u32> = reduced.iter().map(|a| enc.code(r, a)).collect();
                if let Some(matches) = index.get(&key) {
                    for &s in matches {
                        if enc.equal_on(r, s, extra) && !f(r, s) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Which of `targets` survive every weak pair of `X = self.x ∪
    /// extra` (`extra` null-free, as in
    /// [`ProbeIndex::for_each_weak_pair_filtered`]): exactly the set a
    /// pairwise fold with the code-agreement filter would leave, but
    /// computed in one linear grouping pass per null pattern instead of
    /// enumerating pairs.
    ///
    /// The collapse is sound because code equality is transitive:
    /// within one pattern, a null row and the rows weakly similar to
    /// it share their codes on `reduced ∪ extra`, so the pair
    /// constraints over such a group — every null–null and null–total
    /// pair must agree on each target — are equivalent to "the whole
    /// group is constant on each target". On `adult`-sized instances
    /// this turns the millions of pairs a *holding* candidate would
    /// enumerate into one sweep of the matching buckets.
    pub fn certain_targets_surviving(
        &self,
        enc: &Encoded,
        extra: AttrSet,
        targets: AttrSet,
    ) -> AttrSet {
        let mut holding = targets;
        if self.null_rows.is_empty() || holding.is_empty() {
            return holding;
        }
        const UNSET: u32 = u32::MAX; // dictionary codes are ≤ rows ≪ MAX

        // Per pattern: group the pattern's null rows and the total
        // rows matching them by their codes on `reduced ∪ extra`, and
        // require every group containing a null row to be constant on
        // each surviving target. Buckets are keyed by the reduced
        // codes, so each bucket is swept once per distinct reduced key
        // among the nulls — never per null row.
        for (reduced, rows, index) in &self.patterns {
            if holding.is_empty() {
                return holding;
            }
            let tvec: Vec<Attr> = holding.iter().collect();
            let mut dead = vec![false; tvec.len()];
            let mut by_rkey: HashMap<Vec<u32>, Vec<usize>> = HashMap::new();
            for &r in rows {
                let rkey: Vec<u32> = reduced.iter().map(|a| enc.code(r, a)).collect();
                by_rkey.entry(rkey).or_default().push(r);
            }
            // (has_null, per-target first code, per-target conflict)
            type Group = (bool, Vec<u32>, Vec<bool>);
            let mut groups: HashMap<Vec<u32>, Group> = HashMap::new();
            for (rkey, nulls) in &by_rkey {
                groups.clear();
                let visit = |row: usize, is_null: bool, groups: &mut HashMap<Vec<u32>, Group>| {
                    let ekey: Vec<u32> = extra.iter().map(|a| enc.code(row, a)).collect();
                    let (has_null, codes, conflict) = groups.entry(ekey).or_insert_with(|| {
                        (false, vec![UNSET; tvec.len()], vec![false; tvec.len()])
                    });
                    *has_null |= is_null;
                    for (i, &a) in tvec.iter().enumerate() {
                        let c = enc.code(row, a);
                        if codes[i] == UNSET {
                            codes[i] = c;
                        } else if codes[i] != c {
                            conflict[i] = true;
                        }
                    }
                };
                for &r in nulls {
                    visit(r, true, &mut groups);
                }
                if let Some(bucket) = index.get(rkey) {
                    for &s in bucket {
                        visit(s, false, &mut groups);
                    }
                }
                for (has_null, _, conflict) in groups.values() {
                    if *has_null {
                        for (i, &c) in conflict.iter().enumerate() {
                            dead[i] |= c;
                        }
                    }
                }
            }
            for (i, &a) in tvec.iter().enumerate() {
                if dead[i] {
                    holding.remove(a);
                }
            }
        }

        // Null–null pairs across patterns: a row non-null on `red_i`
        // and one non-null on `red_j` are weakly similar on `X` iff
        // they agree on `(red_i ∩ red_j) ∪ extra` — pairwise, but
        // patterns are few and only null rows participate.
        for i in 0..self.patterns.len() {
            for j in i + 1..self.patterns.len() {
                if holding.is_empty() {
                    return holding;
                }
                let (red_i, rows_i, _) = &self.patterns[i];
                let (red_j, rows_j, _) = &self.patterns[j];
                let common = (*red_i & *red_j) | extra;
                for &r in rows_i {
                    for &s in rows_j {
                        if enc.equal_on(r, s, common) {
                            let mut still = AttrSet::EMPTY;
                            for a in holding {
                                if enc.code(r, a) == enc.code(s, a) {
                                    still.insert(a);
                                }
                            }
                            holding = still;
                            if holding.is_empty() {
                                return holding;
                            }
                        }
                    }
                }
            }
        }
        holding
    }
}

/// One-shot form of [`ProbeIndex::for_each_weak_pair`]: builds the
/// index for `x`, probes, and drops it. Free when `x` is null-free.
/// Hot loops share indexes through a [`ProbeCache`] instead.
pub fn probe_weak_pairs(enc: &Encoded, x: AttrSet, f: impl FnMut(usize, usize) -> bool) -> bool {
    if !enc.has_nulls_on(x) {
        return true;
    }
    ProbeIndex::new(enc, x).for_each_weak_pair(enc, f)
}

/// Weak pairs of `x` without any index: each `X`-null row scanned
/// against the table. Beats building a [`ProbeIndex`] while
/// `nulls × rows` stays small (wide-short instances like `hepatitis`,
/// where most probed footprints are never seen twice).
fn direct_weak_pairs(enc: &Encoded, x: AttrSet, mut f: impl FnMut(usize, usize) -> bool) -> bool {
    let null_rows = enc.null_rows_on(x);
    // null–null pairs, each unordered pair once.
    for (i, &r) in null_rows.iter().enumerate() {
        for &s in &null_rows[i + 1..] {
            if enc.weakly_similar(r, s, x) && !f(r, s) {
                return false;
            }
        }
    }
    // null–total pairs: skip the (ascending) null list while scanning.
    for &r in &null_rows {
        let mut nulls_it = null_rows.iter().copied().peekable();
        for s in 0..enc.rows() {
            if nulls_it.peek() == Some(&s) {
                nulls_it.next();
                continue;
            }
            if enc.weakly_similar(r, s, x) && !f(r, s) {
                return false;
            }
        }
    }
    true
}

/// Direct scanning stays cheaper than an index build while the
/// `nulls × rows` pair bound is below this.
const DIRECT_SCAN_LIMIT: usize = 1 << 16;

/// A small-footprint job earns its cached index once it has been
/// probed this many times: one build costs roughly this many direct
/// scans, so building earlier would lose on footprints never probed
/// again (on wide tables most all-nullable LHSs are their own
/// footprint and show up exactly once).
const ADMIT_AFTER: u32 = 5;

/// How one probe through the [`ProbeCache`] runs.
enum ProbeStrategy {
    /// Scan null rows against the table; no index exists or is worth
    /// building yet.
    Direct,
    /// Probe through a (possibly shared) footprint index.
    Index(Arc<ProbeIndex>),
}

/// A run-scoped, thread-shared cache of [`ProbeIndex`]es keyed on the
/// *nullable footprint* `X ∩ nullable_columns`.
///
/// ## Why the footprint is a sound key
///
/// Rows carry `⊥` in `X` exactly where they carry `⊥` in the
/// footprint `S = X ∩ nullable` — the remaining columns `X ∖ S` are
/// globally null-free. On those columns weak similarity degenerates
/// to code equality, so:
///
/// > `(r, s)` weakly similar on `X`  ⟺  `(r, s)` weakly similar on
/// > `S`  ∧  `r =_{X∖S} s`.
///
/// An index built for `S` therefore serves **every** LHS with that
/// footprint, with the null-free remainder applied as an equality
/// filter at probe time ([`ProbeIndex::for_each_weak_pair_filtered`],
/// [`ProbeIndex::certain_targets_surviving`]). Keying on `S` alone
/// *without* the filter would be unsound — it admits pairs that
/// disagree on `X ∖ S`.
///
/// ## Build policy
///
/// Footprints whose pair bound is large are indexed on first probe
/// (`adult`: three footprints serve all 58 probed candidates). Small
/// jobs are scanned directly and only earn an index after
/// [`ADMIT_AFTER`] probes, so one-shot footprints — the common case on
/// wide tables where most candidate LHSs are entirely nullable — never
/// pay a build. Counted under `discovery.check.probe_index.{hits,
/// builds,direct}`; the indexes themselves still count the legacy
/// `discovery.check.probe_index_builds`.
///
/// Interior mutability is a [`Mutex`] held only for the policy lookup
/// (indexes are built outside it), so miner workers share one cache.
pub struct ProbeCache {
    nullable: AttrSet,
    rows: usize,
    state: Mutex<HashMap<AttrSet, ProbeSlot>>,
}

struct ProbeSlot {
    probes: u32,
    idx: Option<Arc<ProbeIndex>>,
}

impl ProbeCache {
    /// An empty cache for one instance.
    pub fn new(enc: &Encoded) -> ProbeCache {
        ProbeCache {
            nullable: enc.nullable_columns(),
            rows: enc.rows(),
            state: Mutex::new(HashMap::new()),
        }
    }

    /// Picks the probe strategy for footprint `s` (non-empty), bumping
    /// the reuse counters and building/memoizing the index when the
    /// policy says so.
    fn strategy(&self, enc: &Encoded, s: AttrSet) -> ProbeStrategy {
        let mut state = self.state.lock().expect("probe cache poisoned");
        let slot = state.entry(s).or_insert(ProbeSlot {
            probes: 0,
            idx: None,
        });
        slot.probes += 1;
        if let Some(idx) = &slot.idx {
            sqlnf_obs::count!("discovery.check.probe_index.hits");
            return ProbeStrategy::Index(Arc::clone(idx));
        }
        let pair_bound = enc.null_count_bound(s).saturating_mul(self.rows);
        if pair_bound <= DIRECT_SCAN_LIMIT && slot.probes < ADMIT_AFTER {
            sqlnf_obs::count!("discovery.check.probe_index.direct");
            return ProbeStrategy::Direct;
        }
        drop(state);
        // Build outside the lock so workers keep probing other
        // footprints meanwhile; a racing double build is harmless (the
        // index is deterministic) and the last insert wins.
        sqlnf_obs::count!("discovery.check.probe_index.builds");
        let idx = Arc::new(ProbeIndex::new(enc, s));
        let mut state = self.state.lock().expect("probe cache poisoned");
        if let Some(slot) = state.get_mut(&s) {
            slot.idx = Some(Arc::clone(&idx));
        }
        ProbeStrategy::Index(idx)
    }

    /// Visits every weak pair of `x` (exactly as [`probe_weak_pairs`])
    /// through the footprint cache. Enumeration *order* may differ
    /// between the direct and indexed paths; the pair set never does.
    pub fn weak_pairs(
        &self,
        enc: &Encoded,
        x: AttrSet,
        f: impl FnMut(usize, usize) -> bool,
    ) -> bool {
        let s = x & self.nullable;
        if s.is_empty() {
            return true;
        }
        match self.strategy(enc, s) {
            ProbeStrategy::Index(idx) => idx.for_each_weak_pair_filtered(enc, x - s, f),
            ProbeStrategy::Direct => direct_weak_pairs(enc, x, f),
        }
    }

    /// The subset of `targets` on which `X →_w A` survives the weak
    /// pairs of `x` — the certain-semantics tail of the FD check,
    /// served from the footprint cache (and, on the indexed path, by
    /// the linear group-constancy sweep instead of pair enumeration).
    pub fn fd_targets(&self, enc: &Encoded, x: AttrSet, targets: AttrSet) -> AttrSet {
        if targets.is_empty() {
            return targets;
        }
        let s = x & self.nullable;
        if s.is_empty() {
            return targets;
        }
        match self.strategy(enc, s) {
            ProbeStrategy::Index(idx) => idx.certain_targets_surviving(enc, x - s, targets),
            ProbeStrategy::Direct => {
                let mut holding = targets;
                direct_weak_pairs(enc, x, |r, t| {
                    let mut still = AttrSet::EMPTY;
                    for a in holding {
                        if enc.code(r, a) == enc.code(t, a) {
                            still.insert(a);
                        }
                    }
                    holding = still;
                    !holding.is_empty()
                });
                holding
            }
        }
    }
}

/// Semantics under which a mined FD `X → A` is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Semantics {
    /// Classical FD discovery convention: `⊥` compared like a value on
    /// both sides (the convention of the FD-discovery literature the
    /// paper benchmarks against).
    Classical,
    /// Possible FD `X →_s A`: strong similarity on `X`, syntactic
    /// equality on `A`.
    Possible,
    /// Certain FD `X →_w A`: weak similarity on `X`, syntactic equality
    /// on `A`.
    Certain,
    /// Weak FD (Levene/Loizou, via Badia & Lemire): *some* possible
    /// world — some completion of the null markers — satisfies `X → A`
    /// classically. On full tables this is exactly: within every group
    /// of `X`-total rows equal on `X`, all **non-null** `A`-values are
    /// equal. Rows with `⊥` in `X` constrain nothing (the completion
    /// hands them fresh values, isolating them in their own group), and
    /// a `⊥` on `A` is completed to whatever its group agreed on — so
    /// unlike [`Semantics::Certain`] there is no weak-pair probe tail,
    /// and the null-tolerant class sweep makes this the *weakest* of
    /// the four semantics pairwise: certain ⟹ possible ⟹ weak, and
    /// classical ⟹ weak.
    Weak,
}

impl Semantics {
    /// Every semantics, in strength order (for matrices and test loops):
    /// certain ⟹ possible ⟹ weak and classical ⟹ weak.
    pub const ALL: [Semantics; 4] = [
        Semantics::Classical,
        Semantics::Possible,
        Semantics::Certain,
        Semantics::Weak,
    ];

    /// Stable lowercase token, as accepted on the wire (`MINE`/`WATCH`)
    /// and by `sqlnf mine --semantics`.
    pub fn token(self) -> &'static str {
        match self {
            Semantics::Classical => "classical",
            Semantics::Possible => "possible",
            Semantics::Certain => "certain",
            Semantics::Weak => "weak",
        }
    }

    /// Parses a [`Self::token`] (case-insensitive). `None` on anything
    /// else — callers decide whether that is an error or a fallthrough.
    pub fn parse(tok: &str) -> Option<Semantics> {
        match tok.to_ascii_lowercase().as_str() {
            "classical" => Some(Semantics::Classical),
            "possible" => Some(Semantics::Possible),
            "certain" => Some(Semantics::Certain),
            "weak" => Some(Semantics::Weak),
            _ => None,
        }
    }
}

/// The subset of `targets` whose non-null codes are constant over
/// `class` — the per-class kernel of [`Semantics::Weak`] (`0` encodes
/// `⊥`, which the weak completion absorbs). Comparing against the
/// class head would be unsound here: the head may carry `⊥` on a
/// target while two later rows disagree with non-null values, so the
/// sweep tracks the first *non-null* code per target instead.
fn weak_targets_in_class(enc: &Encoded, class: &[u32], targets: AttrSet) -> AttrSet {
    let mut still = AttrSet::EMPTY;
    'targets: for a in targets {
        let mut seen = 0u32;
        for &r in class {
            let c = enc.code(r as usize, a);
            if c != 0 {
                if seen == 0 {
                    seen = c;
                } else if seen != c {
                    continue 'targets;
                }
            }
        }
        still.insert(a);
    }
    still
}

/// [`fd_targets_holding`] fused with the partition product: checks
/// `X → A` for all `A` in `targets` where `X = attrs(prefix) ∪ {by}`,
/// sweeping the refinement of `prefix` by `by` directly instead of
/// materializing `π_X` first. Stops scanning the moment every target
/// is refuted — on the last lattice level (where the partition would
/// be thrown away anyway) a violated candidate usually dies within a
/// handful of rows. Returns exactly what
/// `fd_targets_holding(enc, x, &π_X, targets, sem)` would.
#[allow(clippy::too_many_arguments)]
pub fn fd_targets_on_refinement(
    enc: &Encoded,
    x: AttrSet,
    prefix: &Partition,
    by: Attr,
    ns: NullSemantics,
    targets: AttrSet,
    sem: Semantics,
    scratch: &mut ProductScratch,
    probes: &ProbeCache,
) -> AttrSet {
    sqlnf_obs::count!("discovery.check.fused_checks");
    // The weak sweep needs per-class "first non-null code" state, not
    // head-vs-row pairs (the head's `⊥` would mask a later non-null
    // disagreement), so it materializes the refined partition and runs
    // the class kernel directly.
    if sem == Semantics::Weak {
        let p = prefix.product_attr(enc, by, ns, scratch);
        return fd_targets_holding(enc, x, &p, targets, sem);
    }
    let mut holding = targets;
    prefix.for_each_refined_pair(enc, by, ns, scratch, |head, r| {
        let (head, r) = (head as usize, r as usize);
        let mut still = AttrSet::EMPTY;
        for a in holding {
            if enc.code(r, a) == enc.code(head, a) {
                still.insert(a);
            }
        }
        holding = still;
        !holding.is_empty()
    });

    // Certain FDs additionally constrain rows with ⊥ in X, exactly as
    // in the materialized check.
    if sem == Semantics::Certain && !holding.is_empty() {
        holding = probes.fd_targets(enc, x, holding);
    }
    holding
}

/// Checks `X → A` for all `A` in `targets` at once, returning the
/// subset of `targets` on which the FD holds. `partition` must be the
/// grouping of `X` under the matching semantics (strong for
/// [`Semantics::Possible`]/[`Semantics::Certain`], null-as-value for
/// [`Semantics::Classical`]).
pub fn fd_targets_holding(
    enc: &Encoded,
    x: AttrSet,
    partition: &Partition,
    targets: AttrSet,
    sem: Semantics,
) -> AttrSet {
    let mut holding = targets;

    // Within-partition check: every class must be constant on A.
    // For Possible/Certain the class is a strong-similarity class and
    // equality is syntactic (⊥ = ⊥ ⇒ code equality works, with 0 = ⊥);
    // for Weak only the non-null codes must agree (`⊥` is completed to
    // the class consensus).
    for class in &partition.classes {
        if holding.is_empty() {
            break;
        }
        if sem == Semantics::Weak {
            holding = weak_targets_in_class(enc, class, holding);
            continue;
        }
        let first = class[0] as usize;
        for &r in &class[1..] {
            let r = r as usize;
            let mut still = AttrSet::EMPTY;
            for a in holding {
                if enc.code(r, a) == enc.code(first, a) {
                    still.insert(a);
                }
            }
            holding = still;
            if holding.is_empty() {
                break;
            }
        }
    }

    // Certain FDs additionally constrain rows with ⊥ in X: such a row
    // is weakly similar to every row matching its non-null part.
    if sem == Semantics::Certain && !holding.is_empty() {
        probe_weak_pairs(enc, x, |r, s| {
            let mut still = AttrSet::EMPTY;
            for a in holding {
                if enc.code(r, a) == enc.code(s, a) {
                    still.insert(a);
                }
            }
            holding = still;
            !holding.is_empty()
        });
    }
    holding
}

/// [`fd_targets_holding`] probing weak pairs through a [`ProbeCache`]
/// instead of a fresh per-candidate [`ProbeIndex`].
pub fn fd_targets_holding_cached(
    enc: &Encoded,
    x: AttrSet,
    partition: &Partition,
    targets: AttrSet,
    sem: Semantics,
    probes: &ProbeCache,
) -> AttrSet {
    let mut holding = targets;
    for class in &partition.classes {
        if holding.is_empty() {
            break;
        }
        if sem == Semantics::Weak {
            holding = weak_targets_in_class(enc, class, holding);
            continue;
        }
        let first = class[0] as usize;
        for &r in &class[1..] {
            let r = r as usize;
            let mut still = AttrSet::EMPTY;
            for a in holding {
                if enc.code(r, a) == enc.code(first, a) {
                    still.insert(a);
                }
            }
            holding = still;
            if holding.is_empty() {
                break;
            }
        }
    }
    if sem == Semantics::Certain && !holding.is_empty() {
        holding = probes.fd_targets(enc, x, holding);
    }
    holding
}

/// Whether `X` is a c-key of the encoded instance: no two rows weakly
/// similar on `X`.
pub fn is_ckey(enc: &Encoded, x: AttrSet, strong_partition: &Partition) -> bool {
    // Any strong class of size ≥ 2 is already a weak violation.
    if !strong_partition.is_empty() {
        return false;
    }
    probe_weak_pairs(enc, x, |_, _| false)
}

/// [`is_ckey`] probing through a shared [`ProbeCache`].
pub fn is_ckey_cached(
    enc: &Encoded,
    probes: &ProbeCache,
    x: AttrSet,
    strong_partition: &Partition,
) -> bool {
    if !strong_partition.is_empty() {
        return false;
    }
    probes.weak_pairs(enc, x, |_, _| false)
}

/// [`is_ckey`] against a prebuilt [`ProbeIndex`] — for callers that
/// also run the reflexivity check on the same `X`.
pub fn is_ckey_with(enc: &Encoded, idx: &ProbeIndex, strong_partition: &Partition) -> bool {
    if !strong_partition.is_empty() {
        return false;
    }
    idx.for_each_weak_pair(enc, |_, _| false)
}

/// Whether `X` is a p-key: no two rows strongly similar on `X`
/// (equivalently, the strong partition is empty).
pub fn is_pkey(strong_partition: &Partition) -> bool {
    strong_partition.is_empty()
}

/// Whether the internal c-FD `X →_w X` holds — the extra condition that
/// upgrades a certain FD `X →_w Y` to the *total* FD `X →_w XY`
/// (Definition 9). Rows without nulls in `X` satisfy it trivially
/// (weak similarity = equality there); only null-bearing rows matter.
pub fn certain_reflexive_holds(enc: &Encoded, x: AttrSet) -> bool {
    probe_weak_pairs(enc, x, |r, s| enc.equal_on(r, s, x))
}

/// [`certain_reflexive_holds`] against a prebuilt [`ProbeIndex`].
pub fn certain_reflexive_holds_with(enc: &Encoded, idx: &ProbeIndex) -> bool {
    idx.for_each_weak_pair(enc, |r, s| enc.equal_on(r, s, idx.x()))
}

/// [`certain_reflexive_holds`] probing through a shared
/// [`ProbeCache`].
pub fn certain_reflexive_holds_cached(enc: &Encoded, probes: &ProbeCache, x: AttrSet) -> bool {
    probes.weak_pairs(enc, x, |r, s| enc.equal_on(r, s, x))
}

/// The [`NullSemantics`] under which partitions for `sem` are built:
/// null-as-value for the classical convention, strong similarity for
/// possible/certain/weak FDs (weak satisfaction only ever constrains
/// `X`-total rows, which is exactly what the strong partition groups).
pub fn null_semantics(sem: Semantics) -> NullSemantics {
    match sem {
        Semantics::Classical => NullSemantics::NullAsValue,
        Semantics::Possible | Semantics::Certain | Semantics::Weak => NullSemantics::Strong,
    }
}

/// Whether `X` is a *weak* key — some completion of the instance has no
/// two rows equal on `X`. Rows carrying `⊥` in `X` can always be
/// completed apart with fresh values, while `X`-total duplicates can
/// never be separated, so weak keys coincide **exactly** with possible
/// keys: the strong partition must be empty. Kept as its own entry
/// point so the four-way key surface is explicit (and pinned by the
/// differential tests).
pub fn is_weak_key(strong_partition: &Partition) -> bool {
    is_pkey(strong_partition)
}

/// Builds the grouping of `X` appropriate for `sem` from scratch — the
/// reference path; hot loops go through [`crate::cache::PartitionCtx`]
/// instead.
pub fn partition_for(enc: &Encoded, x: AttrSet, sem: Semantics) -> Partition {
    Partition::by_set(enc, x, null_semantics(sem))
}

/// Convenience: whether `X → A` holds under `sem` (one-off check; the
/// miner uses [`fd_targets_holding`] with cached partitions).
pub fn fd_holds(enc: &Encoded, x: AttrSet, a: Attr, sem: Semantics) -> bool {
    let p = partition_for(enc, x, sem);
    !fd_targets_holding(enc, x, &p, AttrSet::single(a), sem).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::constraint::{Fd, Key};
    use sqlnf_model::prelude::*;

    fn enc(t: &Table) -> Encoded {
        Encoded::new(t)
    }

    #[test]
    fn figure5_checks() {
        let t = TableBuilder::new("p", ["o", "i", "c", "pr"], &[])
            .row(tuple![5299401i64, "FS", "Amazon", 240i64])
            .row(tuple![5299401i64, "FS", null, 240i64])
            .row(tuple![7485113i64, "FS", "Amazon", 240i64])
            .row(tuple![7485113i64, "DD", "Kingtoys", 25i64])
            .build();
        let e = enc(&t);
        let s = t.schema().clone();
        let ic = s.set(&["i", "c"]);
        let pr = s.a("pr");
        assert!(fd_holds(&e, ic, pr, Semantics::Possible));
        assert!(fd_holds(&e, ic, pr, Semantics::Certain));
        // But ic →_w i fails?? No: rows 1,2 weakly similar on ic, equal
        // on i. ic →_w c fails: unequal on c.
        assert!(fd_holds(&e, ic, s.a("i"), Semantics::Certain));
        assert!(!certain_reflexive_holds(&e, ic));
        // Classical (null as value) also holds: groups (FS,Amazon),
        // (FS,⊥), (DD,K) each constant on price.
        assert!(fd_holds(&e, ic, pr, Semantics::Classical));
        // Weak: the completion hands row 2's ⊥ catalog a fresh value,
        // so every constraint certain satisfaction imposes is relaxed —
        // and price is constant on the remaining exact ic-groups.
        assert!(fd_holds(&e, ic, pr, Semantics::Weak));
        assert!(fd_holds(&e, ic, s.a("i"), Semantics::Weak));
        // oi → c fails under possible (rows 1–2 agree on order and item
        // but map to Amazon and ⊥, syntactically unequal) yet holds
        // weakly: complete the ⊥ to "Amazon".
        let oi = s.set(&["o", "i"]);
        assert!(!fd_holds(&e, oi, s.a("c"), Semantics::Possible));
        assert!(fd_holds(&e, oi, s.a("c"), Semantics::Weak));
    }

    #[test]
    fn keys_on_encoded() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple!["x", 1i64])
            .row(tuple![null, 2i64])
            .row(tuple!["y", 3i64])
            .build();
        let e = enc(&t);
        let a = AttrSet::from_indices([0]);
        let p = partition_for(&e, a, Semantics::Possible);
        assert!(is_pkey(&p));
        // ⊥ is weakly similar to both x and y → not a c-key.
        assert!(!is_ckey(&e, a, &p));
        let ab = AttrSet::from_indices([0, 1]);
        let pab = partition_for(&e, ab, Semantics::Possible);
        assert!(is_ckey(&e, ab, &pab));
    }

    /// Exhaustive agreement with the naive pairwise checker over all
    /// small tables on a 3-value domain {0, 1, ⊥}.
    #[test]
    fn agrees_with_naive_satisfaction() {
        let vals = [Value::Int(0), Value::Int(1), Value::Null];
        // 3 columns, 3 rows → 3^9 = 19683 tables.
        let schema = TableSchema::new("r", ["a", "b", "c"], &[]);
        let all = AttrSet::from_indices([0, 1, 2]);
        for code in 0..3usize.pow(9) {
            let mut c = code;
            let mut rows = Vec::new();
            for _ in 0..3 {
                let mut row = Vec::new();
                for _ in 0..3 {
                    row.push(vals[c % 3].clone());
                    c /= 3;
                }
                rows.push(Tuple::new(row));
            }
            let t = Table::from_rows(schema.clone(), rows);
            let e = enc(&t);
            for x in all.subsets() {
                let strong = partition_for(&e, x, Semantics::Possible);
                for a in all - x {
                    let fd_p = Fd::possible(x, AttrSet::single(a));
                    let fd_c = Fd::certain(x, AttrSet::single(a));
                    assert_eq!(
                        fd_holds(&e, x, a, Semantics::Possible),
                        satisfies_fd(&t, &fd_p),
                        "p x={x:?} a={a:?}\n{t}"
                    );
                    assert_eq!(
                        fd_holds(&e, x, a, Semantics::Certain),
                        satisfies_fd(&t, &fd_c),
                        "c x={x:?} a={a:?}\n{t}"
                    );
                    let weak = fd_holds(&e, x, a, Semantics::Weak);
                    assert_eq!(
                        weak,
                        satisfies_weak_fd(&t, x, AttrSet::single(a)),
                        "w x={x:?} a={a:?}\n{t}"
                    );
                    // Pairwise strength chain: certain ⟹ possible ⟹
                    // weak, classical ⟹ weak.
                    if fd_holds(&e, x, a, Semantics::Possible)
                        || fd_holds(&e, x, a, Semantics::Classical)
                    {
                        assert!(weak, "chain x={x:?} a={a:?}\n{t}");
                    }
                }
                assert_eq!(is_weak_key(&strong), is_pkey(&strong), "wkey x={x:?}\n{t}");
                assert_eq!(
                    is_pkey(&strong),
                    satisfies_key(&t, &Key::possible(x)),
                    "pkey x={x:?}\n{t}"
                );
                assert_eq!(
                    is_ckey(&e, x, &strong),
                    satisfies_key(&t, &Key::certain(x)),
                    "ckey x={x:?}\n{t}"
                );
                // X →_w X via the dedicated reflexive check.
                let refl = Fd::certain(x, x);
                assert_eq!(
                    certain_reflexive_holds(&e, x),
                    satisfies_fd(&t, &refl),
                    "refl x={x:?}\n{t}"
                );
            }
        }
    }

    #[test]
    fn batch_targets_match_single_checks() {
        let t = TableBuilder::new("r", ["a", "b", "c", "d"], &[])
            .row(tuple![1i64, 1i64, 2i64, null])
            .row(tuple![1i64, 1i64, 3i64, null])
            .row(tuple![2i64, null, 3i64, 5i64])
            .build();
        let e = enc(&t);
        let x = AttrSet::from_indices([0]);
        for sem in [
            Semantics::Classical,
            Semantics::Possible,
            Semantics::Certain,
            Semantics::Weak,
        ] {
            let p = partition_for(&e, x, sem);
            let targets = AttrSet::from_indices([1, 2, 3]);
            let batch = fd_targets_holding(&e, x, &p, targets, sem);
            for a in targets {
                assert_eq!(batch.contains(a), fd_holds(&e, x, a, sem), "{sem:?} {a:?}");
            }
        }
    }

    /// The promoted [`Semantics::Weak`] must byte-match the related-work
    /// reproduction it generalizes: `sqlnf_core::related::weak_fd_holds`
    /// on the 2-row comparison table of Example 2 (the regression pin
    /// lives in `tests/discovery.rs`, where `sqlnf-core` is in scope;
    /// here we pin the same truth column directly).
    #[test]
    fn example2_weak_column() {
        let t = TableBuilder::new("emp", ["e", "d", "m", "s"], &[])
            .row(tuple!["Turing", "CS", "von Neumann", null])
            .row(tuple!["Turing", null, "Goedel", null])
            .build();
        let e = enc(&t);
        let s = t.schema().clone();
        // (lhs, rhs, weak_fd_holds column of the Example-2 matrix)
        let matrix = [
            ("e", "d", true),
            ("e", "m", false),
            ("e", "s", true),
            ("d", "d", true),
            ("d", "m", true),
            ("m", "e", true),
            ("m", "d", true),
        ];
        for (l, r, want) in matrix {
            assert_eq!(
                fd_holds(&e, s.set(&[l]), s.a(r), Semantics::Weak),
                want,
                "{l} ->weak {r}"
            );
        }
    }
}
