//! Classification of mined FDs into the categories of the paper's
//! quantitative experiment (Section 7): nn-FDs, p-FDs, c-FDs, t-FDs and
//! λ-FDs, plus the relative projection sizes behind Figure 6.
//!
//! Following the paper's convention, FDs are recorded with minimal LHSs
//! and counted **once per LHS**. The categories are:
//!
//! * **nn-FD** — a minimal p-FD whose LHS columns contain no null
//!   marker anywhere in the instance (there possible, certain and
//!   classical satisfaction coincide);
//! * **p-FD** — a minimal possible FD whose LHS has at least one column
//!   that carries nulls;
//! * **c-FD** — a minimal certain FD whose LHS has at least one column
//!   that carries nulls (certain satisfaction implies possible, so
//!   these are the "harder" dependencies);
//! * **t-FD** — a c-FD that is *total*: `X →_w X` also holds, i.e.
//!   `X →_w X·rhs` (Definition 9);
//! * **λ-FD** — a t-FD usable for VRNF decomposition: its RHS adds
//!   attributes beyond the LHS, and the LHS is **not** a certain key of
//!   the instance (else there is nothing to compress).
//!
//! For each λ-FD (and each nn-FD with non-c-key LHS) the *relative
//! projection size* is `|I[X·rhs]| / |I|` — the fraction of rows the
//! set projection keeps; small values mean much redundancy eliminated.

use crate::cache::{PartitionCtx, DEFAULT_CACHE_BUDGET};
use crate::check::{certain_reflexive_holds_cached, is_ckey_cached, ProbeCache, Semantics};
use crate::mine::{mine_fds_encoded, MinedFd, MinerConfig};
use crate::partition::{Encoded, NullSemantics};
use sqlnf_model::attrs::AttrSet;
use sqlnf_model::project::project_set;
use sqlnf_model::table::Table;
use std::time::Instant;

/// A λ-FD together with its relative projection size.
#[derive(Debug, Clone, PartialEq)]
pub struct LambdaFd {
    /// Minimal LHS.
    pub lhs: AttrSet,
    /// Determined attributes outside the LHS.
    pub rhs: AttrSet,
    /// `|I[lhs ∪ rhs]| / |I|` in `(0, 1]`.
    pub relative_projection_size: f64,
}

/// Full classification of one table's mined dependencies.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Classification {
    /// Minimal p-FDs with null-free LHS columns.
    pub nn_fds: Vec<MinedFd>,
    /// Minimal p-FDs with a null-carrying LHS column.
    pub p_fds: Vec<MinedFd>,
    /// Minimal c-FDs with a null-carrying LHS column.
    pub c_fds: Vec<MinedFd>,
    /// The total ones among `c_fds`.
    pub t_fds: Vec<MinedFd>,
    /// The decomposition-usable ones among `t_fds`, with projection
    /// ratios.
    pub lambda_fds: Vec<LambdaFd>,
    /// Relative projection sizes of nn-FDs whose LHS is not a c-key
    /// (the second series of Figure 6).
    pub nn_nonkey_ratios: Vec<f64>,
}

/// Aggregate counts over many tables (the Section 7 count table).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// nn-FD count (one per LHS).
    pub nn: usize,
    /// p-FD count.
    pub p: usize,
    /// c-FD count.
    pub c: usize,
    /// t-FD count.
    pub t: usize,
    /// λ-FD count.
    pub lambda: usize,
}

impl Counts {
    /// Adds another classification's counts.
    pub fn add(&mut self, c: &Classification) {
        self.nn += c.nn_fds.len();
        self.p += c.p_fds.len();
        self.c += c.c_fds.len();
        self.t += c.t_fds.len();
        self.lambda += c.lambda_fds.len();
    }
}

/// Mines and classifies one table. `max_lhs` bounds the mined LHS size.
pub fn classify_table(table: &Table, max_lhs: usize) -> Classification {
    classify_table_budgeted(table, max_lhs, DEFAULT_CACHE_BUDGET)
}

/// [`classify_table`] with an explicit partition-cache byte budget,
/// passed to both mining runs and to the post-mining key/reflexivity
/// checks (one [`PartitionCtx`] serves both — possible and certain FDs
/// share the strong grouping). Results are identical for any budget.
pub fn classify_table_budgeted(
    table: &Table,
    max_lhs: usize,
    cache_budget: usize,
) -> Classification {
    classify_table_encoded(table, &Encoded::new(table), max_lhs, cache_budget)
}

/// [`classify_table_budgeted`] from a pre-encoded instance. `enc` must
/// encode `table` (the table itself is still consulted for projection
/// ratios, which need the actual values). Lets callers reuse one
/// encoding across mining runs — and lets the columnar-vs-row-major
/// differential tests drive the full classification pipeline from
/// either encoding.
pub fn classify_table_encoded(
    table: &Table,
    enc: &Encoded,
    max_lhs: usize,
    cache_budget: usize,
) -> Classification {
    let arity = table.schema().arity();
    let null_free = enc.null_free_columns();

    let possible = mine_fds_encoded(
        enc,
        arity,
        MinerConfig::new(Semantics::Possible)
            .with_max_lhs(max_lhs)
            .with_cache_budget(cache_budget),
        Instant::now(),
    );
    let certain = mine_fds_encoded(
        enc,
        arity,
        MinerConfig::new(Semantics::Certain)
            .with_max_lhs(max_lhs)
            .with_cache_budget(cache_budget),
        Instant::now(),
    );

    let mut out = Classification::default();
    let mut ctx = PartitionCtx::with_budget(enc, NullSemantics::Strong, cache_budget);
    // One probe cache serves every post-mining key/reflexivity check:
    // LHSs sharing a nullable footprint reuse one index.
    let probes = ProbeCache::new(enc);

    for fd in possible.fds {
        if fd.lhs.is_subset(null_free) {
            // Figure 6's nn series additionally requires a non-key LHS.
            let strong = ctx.partition(fd.lhs);
            if !is_ckey_cached(enc, &probes, fd.lhs, &strong) {
                out.nn_nonkey_ratios
                    .push(projection_ratio(table, fd.lhs | fd.rhs));
            }
            out.nn_fds.push(fd);
        } else {
            out.p_fds.push(fd);
        }
    }

    for fd in certain.fds {
        if fd.lhs.is_subset(null_free) {
            continue; // coincides with an nn-FD; counted there
        }
        let total = certain_reflexive_holds_cached(enc, &probes, fd.lhs);
        if total {
            out.t_fds.push(fd.clone());
            let strong = ctx.partition(fd.lhs);
            let usable = !fd.rhs.is_empty() && !is_ckey_cached(enc, &probes, fd.lhs, &strong);
            if usable {
                out.lambda_fds.push(LambdaFd {
                    lhs: fd.lhs,
                    rhs: fd.rhs,
                    relative_projection_size: projection_ratio(table, fd.lhs | fd.rhs),
                });
            }
        }
        out.c_fds.push(fd);
    }
    out
}

/// Mines and classifies a table and renders the human-readable report
/// shared by `sqlnf mine` and the server's `MINE` verb: row/column
/// header, category counts, then the certain keys, λ-FDs (with
/// projection sizes) and nn-FDs.
pub fn mine_report(name: &str, table: &Table, max_lhs: usize, cache_budget: usize) -> String {
    let cls = classify_table_budgeted(table, max_lhs, cache_budget);
    let keys = crate::keys::mine_keys_budgeted(table, max_lhs, cache_budget);
    render_report(name, table.len(), table.schema(), max_lhs, &cls, &keys)
}

/// Mines minimal FDs under **one** named semantics and renders a plain
/// listing — the report behind `MINE <table> [cap] <semantics>` and
/// `sqlnf mine --semantics <tok>`. Unlike [`mine_report`] (which fixes
/// the paper's possible/certain classification), this treats all four
/// [`Semantics`] uniformly, so `weak` is a first-class citizen of the
/// serve plane and CLI.
pub fn semantics_report(
    name: &str,
    table: &Table,
    sem: Semantics,
    max_lhs: usize,
    cache_budget: usize,
) -> String {
    let enc = Encoded::new(table);
    let schema = table.schema();
    let mined = mine_fds_encoded(
        &enc,
        schema.arity(),
        MinerConfig::new(sem)
            .with_max_lhs(max_lhs)
            .with_cache_budget(cache_budget),
        Instant::now(),
    );
    render_semantics_report(name, table.len(), schema, sem, max_lhs, &mined.fds)
}

/// Renders [`semantics_report`] from already-mined FDs. Shared with the
/// incremental engine's `--incremental --semantics` path, so
/// "byte-identical output" between the two reduces to FD-set equality.
pub fn render_semantics_report(
    name: &str,
    rows: usize,
    schema: &sqlnf_model::schema::TableSchema,
    sem: Semantics,
    max_lhs: usize,
    fds: &[MinedFd],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: {rows} rows × {} columns (LHS cap {max_lhs}, {} semantics)",
        schema.arity(),
        sem.token()
    );
    let _ = writeln!(out, "minimal {} FDs: {}", sem.token(), fds.len());
    for fd in fds {
        let _ = writeln!(
            out,
            "  {} -> {}",
            schema.display_set(fd.lhs),
            schema.display_set(fd.rhs)
        );
    }
    out
}

/// Renders the `MINE` report from already-computed parts. Shared by
/// [`mine_report`] (from-scratch) and the incremental engine
/// ([`crate::incremental`]), so "byte-identical output" between the two
/// paths reduces to equality of the classification and key sets.
pub fn render_report(
    name: &str,
    rows: usize,
    schema: &sqlnf_model::schema::TableSchema,
    max_lhs: usize,
    cls: &Classification,
    keys: &crate::keys::MinedKeys,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{name}: {rows} rows × {} columns (LHS cap {max_lhs})",
        schema.arity()
    );
    let _ = writeln!(
        out,
        "minimal FDs: {} nn, {} p, {} c ({} total, {} λ); minimal keys: {} possible, {} certain",
        cls.nn_fds.len(),
        cls.p_fds.len(),
        cls.c_fds.len(),
        cls.t_fds.len(),
        cls.lambda_fds.len(),
        keys.pkeys.len(),
        keys.ckeys.len()
    );
    for k in &keys.ckeys {
        let _ = writeln!(out, "  c-key  {}", schema.display_set(*k));
    }
    for lam in &cls.lambda_fds {
        let _ = writeln!(
            out,
            "  λ-FD   {} ->w {}   (projection keeps {:.0}% of rows)",
            schema.display_set(lam.lhs),
            schema.display_set(lam.lhs | lam.rhs),
            lam.relative_projection_size * 100.0
        );
    }
    for fd in &cls.nn_fds {
        let _ = writeln!(
            out,
            "  nn-FD  {} -> {}",
            schema.display_set(fd.lhs),
            schema.display_set(fd.rhs)
        );
    }
    out
}

pub(crate) fn projection_ratio(table: &Table, attrs: AttrSet) -> f64 {
    if table.is_empty() {
        return 1.0;
    }
    let proj = project_set(table, attrs, "proj");
    proj.len() as f64 / table.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    /// The snippet `I` of Figure 7 (contact_draft_lookup, 5 columns,
    /// 14 rows). Names repeat across cities — Michelle Moscato in
    /// Carmel and Indianapolis, Stacey Brennan in Columbia and
    /// Indianapolis — so state needs the (nullable) city in the LHS,
    /// which is exactly what makes the certain FDs of the paper λ-FDs.
    fn fig7_snippet() -> Table {
        TableBuilder::new("c", ["id", "f", "l", "ci", "st"], &[])
            .row(tuple![113i64, "Michelle", "Moscato", "Carmel", 20i64])
            .row(tuple![110i64, "Kathy", "Sheehan", "Columbia", 48i64])
            .row(tuple![51i64, "Kathy", "Sheehan", "Columbia", 48i64])
            .row(tuple![64i64, "Margaret", "Cox", "Columbia", 48i64])
            .row(tuple![120i64, "Margaret", "Cox", "Columbia", 48i64])
            .row(tuple![60i64, "Stacey", "Brennan, M.D.", "Columbia", 48i64])
            .row(tuple![6i64, "Robert", "Kamps, M.D.", "Grove City", 42i64])
            .row(tuple![83i64, "Michelle", "Moscato", "Indianapolis", 20i64])
            .row(tuple![19i64, "Michelle", "Moscato", "Indianapolis", 20i64])
            .row(tuple![20i64, "Nancy", "Knudson", "Indianapolis", 20i64])
            .row(tuple![18i64, "Nancy", "Knudson", "Indianapolis", 20i64])
            .row(tuple![
                99i64,
                "Stacey",
                "Brennan, M.D.",
                "Indianapolis",
                20i64
            ])
            .row(tuple![8i64, "Carol", "Richards", null, 36i64])
            .row(tuple![7i64, "Pam", "Baumker", null, 36i64])
            .build()
    }

    #[test]
    fn lambda_detection() {
        // The paper reports the λ-FDs (f,ci) →_w … and (l,ci) →_w … on
        // the snippet (accidentally minimal below (f,l,ci)).
        let t = fig7_snippet();
        let s = t.schema().clone();
        let cls = classify_table(&t, 3);
        let flc = s.set(&["f", "l", "ci"]);
        let lam = cls.lambda_fds.iter().find(|l| {
            l.lhs.is_subset(flc) && l.lhs.contains(s.a("ci")) && l.rhs.contains(s.a("st"))
        });
        assert!(lam.is_some(), "{cls:?}");
        let lam = lam.unwrap();
        // 14 rows project to at most 10 distinct (Fig. 8 left: 10 rows).
        assert!(lam.relative_projection_size <= 10.0 / 14.0 + 1e-9);
    }

    #[test]
    fn chain_c_supseteq_t_supseteq_lambda() {
        let t = fig7_snippet();
        let cls = classify_table(&t, 3);
        assert!(cls.c_fds.len() >= cls.t_fds.len());
        assert!(cls.t_fds.len() >= cls.lambda_fds.len());
    }

    #[test]
    fn nn_vs_p_split_by_null_columns() {
        // id is null-free and a key: every FD with LHS {id} is an
        // nn-FD; FDs whose minimal LHS includes the nullable city are
        // p-FDs (or c-FDs).
        let t = fig7_snippet();
        let s = t.schema().clone();
        let cls = classify_table(&t, 3);
        assert!(cls
            .nn_fds
            .iter()
            .any(|f| f.lhs == AttrSet::single(s.a("id"))));
        for fd in &cls.p_fds {
            assert!(fd.lhs.contains(s.a("ci")), "{fd:?}");
        }
        for fd in &cls.c_fds {
            assert!(fd.lhs.contains(s.a("ci")), "{fd:?}");
        }
    }

    #[test]
    fn ckey_lhs_disqualifies_lambda() {
        // Unique rows everywhere: (a) is a c-key ⇒ no λ-FDs despite
        // total c-FDs existing.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![2i64, 10i64])
            .build();
        let cls = classify_table(&t, 2);
        assert!(cls.lambda_fds.is_empty());
    }

    #[test]
    fn counts_aggregate() {
        let t = fig7_snippet();
        let cls = classify_table(&t, 3);
        let mut counts = Counts::default();
        counts.add(&cls);
        counts.add(&cls);
        assert_eq!(counts.nn, 2 * cls.nn_fds.len());
        assert_eq!(counts.lambda, 2 * cls.lambda_fds.len());
    }

    #[test]
    fn semantics_report_lists_each_semantics() {
        // a → b holds weakly and possibly (the ⊥ completes to 10) but
        // not certainly — the per-semantics listings must disagree.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![1i64, null])
            .row(tuple![2i64, 20i64])
            .build();
        let weak = semantics_report("r", &t, Semantics::Weak, 2, DEFAULT_CACHE_BUDGET);
        let certain = semantics_report("r", &t, Semantics::Certain, 2, DEFAULT_CACHE_BUDGET);
        assert!(weak.contains("weak semantics"), "{weak}");
        assert!(weak.contains("{a} -> {b}"), "{weak}");
        assert!(!certain.contains("{a} -> {b}"), "{certain}");
        for sem in Semantics::ALL {
            let r = semantics_report("r", &t, sem, 2, DEFAULT_CACHE_BUDGET);
            assert!(r.contains(&format!("{} semantics", sem.token())), "{r}");
        }
    }

    #[test]
    fn projection_ratio_bounds() {
        let t = fig7_snippet();
        let all = t.schema().attrs();
        let r = projection_ratio(&t, all);
        assert!(r > 0.0 && r <= 1.0);
        // Projecting on a constant-ish set compresses.
        let st = t.schema().set(&["st"]);
        assert!(projection_ratio(&t, st) < r);
    }
}
