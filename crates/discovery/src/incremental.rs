//! Incremental FD/key discovery over a live, mutating instance.
//!
//! The from-scratch miner ([`crate::mine`]) re-walks the whole candidate
//! lattice per call. Under the serve tier's write traffic that is pure
//! waste: one admitted row can only *break* FDs/keys that held (it adds
//! pairs) and one deletion can only *repair* refuted ones (it removes
//! pairs) — the verdicts of untouched candidates are still good. This
//! module maintains exactly that: a verdict cache over the explored
//! candidate frontier, invalidated by a small delta algebra, so a
//! `MINE` after `k` admissions costs `O(k · touched candidates)` row
//! work instead of a full lattice re-run.
//!
//! ## Delta algebra
//!
//! Per delta we record three monotone marks: the epoch of the last
//! insert, of the last delete, and per column the epoch of the last
//! update that changed it. Verdicts are then validated per candidate:
//!
//! * **Holding** `X → A` (epoch `e`): still holds iff no insert since
//!   `e` and no update touched a column of `X ∪ {A}` since `e`.
//!   Deletions never break a holding FD/key — removing rows removes
//!   violating pairs only.
//! * **Refuted** `X → A` with witness pair `(r, s)`: still refuted iff
//!   the two rows are live and *still violate by value* — a single
//!   violating pair refutes regardless of every other row, so the
//!   witness re-check is `O(|X|)` value comparisons, no scan. (This is
//!   also why slot reuse would be sound: the check is semantic, not
//!   identity-based.) Inserts can never un-refute.
//!
//! Everything else (classification into nn/p/c/t/λ, key mining,
//! projection ratios) replays the *exact* enumeration of the
//! from-scratch path — same [`k_subsets`] order, same minimality
//! bookkeeping, same checks on the cache misses — so the output is
//! byte-identical to [`mine_report`] by construction, not by accident.
//! The `incremental_matches_scratch` differential property pins this
//! across all three semantics, random DML, and thread counts.
//!
//! ## Reconcile policy
//!
//! [`IncrementalMiner::with_reconcile_every`] arms a threshold: once
//! that many deltas accumulate, the next report *also* runs the full
//! from-scratch pipeline and asserts equivalence (panicking on any
//! divergence), then resets the counter. `discovery.incr.reconciles`
//! counts these audits.

use crate::cache::PartitionCtx;
use crate::check::{fd_targets_holding_cached, is_pkey, null_semantics, ProbeCache, Semantics};
use crate::classify::{projection_ratio, render_report, Classification, LambdaFd};
use crate::keys::MinedKeys;
use crate::mine::{k_subsets, MinedFd};
use crate::partition::{Encoded, NullSemantics, Partition};
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::column::ColumnStore;
use sqlnf_model::schema::TableSchema;
use sqlnf_model::table::Table;
use sqlnf_model::tuple::Tuple;
use sqlnf_model::value::Value;
use std::collections::HashMap;

/// Stable identifier of a row slot; never invalidated by other rows'
/// deletions (the slot array is tombstoned, not compacted).
pub type RowId = usize;

/// One row-level mutation of the maintained instance.
#[derive(Debug, Clone)]
pub enum Delta {
    /// Append a new row.
    Insert(Tuple),
    /// Replace the row in `row` with `tuple`.
    Update {
        /// Slot to overwrite (must be live).
        row: RowId,
        /// The replacement tuple.
        tuple: Tuple,
    },
    /// Remove the row in `row`.
    Delete {
        /// Slot to tombstone (must be live).
        row: RowId,
    },
}

/// A cached yes/no verdict about one candidate attribute set.
#[derive(Debug, Clone, Copy)]
enum Verdict {
    /// Established at the given delta epoch.
    Holds(u64),
    /// Refuted by the (live) witness pair.
    Fails(RowId, RowId),
}

/// Per-candidate FD verdicts, one entry per target attribute.
#[derive(Debug, Default)]
struct FdVerdict {
    /// Targets known to hold, with the epoch that established it.
    holding: Vec<(Attr, u64)>,
    /// Targets known refuted, with a witness pair.
    refuted: Vec<(Attr, RowId, RowId)>,
}

/// Per-candidate key verdicts.
#[derive(Debug, Default)]
struct KeyVerdict {
    /// Possible-key status (strong-similarity uniqueness).
    p: Option<Verdict>,
    /// Certain-key status (weak-similarity uniqueness).
    c: Option<Verdict>,
}

/// Snapshot of the delta marks a replay validates against.
struct Marks<'a> {
    insert: u64,
    delete: u64,
    cols: &'a [u64],
}

impl Marks<'_> {
    /// Whether a holding verdict from epoch `at` over columns `cols`
    /// survived every delta since: no insert, and no update touching
    /// the columns.
    fn holding_valid(&self, at: u64, cols: AttrSet) -> bool {
        at >= self.insert && cols.iter().all(|c| at >= self.cols[c.index()])
    }

    /// Whether a holding verdict from epoch `at` is invalid *only*
    /// because of inserts — no update has touched `cols` since. Such a
    /// verdict still covers every pair of pre-delta rows (deletes only
    /// remove pairs), so it can be re-validated against just the rows
    /// inserted after `at` instead of rechecking the whole candidate.
    fn only_inserts_since(&self, at: u64, cols: AttrSet) -> bool {
        at < self.insert && cols.iter().all(|c| at >= self.cols[c.index()])
    }
}

/// rustc-style multiplicative hasher for the hot code maps (postings
/// and delta groups): the keys are short `u32`s / code vectors, where
/// SipHash's DoS resistance buys nothing and costs most of each probe.
#[derive(Default, Clone)]
struct FxHasher(u64);

impl FxHasher {
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FxHasher>>;

fn sem_index(sem: Semantics) -> usize {
    match sem {
        Semantics::Classical => 0,
        Semantics::Possible => 1,
        Semantics::Certain => 2,
        Semantics::Weak => 3,
    }
}

fn strongly_similar(a: &Value, b: &Value) -> bool {
    !a.is_null() && !b.is_null() && a == b
}

fn weakly_similar(a: &Value, b: &Value) -> bool {
    a.is_null() || b.is_null() || a == b
}

/// Incrementally-maintained discovery state for one table.
///
/// Feed it the same row stream the table sees ([`IncrementalMiner::
/// apply`]); ask for mined FDs, keys or the full `MINE` report at any
/// point. Reports are byte-identical to [`mine_report`] over the
/// current rows.
pub struct IncrementalMiner {
    schema: TableSchema,
    /// Tombstoned row slots; `None` = deleted. Stable [`RowId`]s index
    /// into this.
    slots: Vec<Option<Tuple>>,
    live: usize,
    /// Monotone delta counter; bumped once per applied delta.
    epoch: u64,
    last_insert: u64,
    last_delete: u64,
    /// Per column: epoch of the last update that changed it.
    col_updated: Vec<u64>,
    /// Verdict caches per semantics
    /// (Classical/Possible/Certain/Weak).
    fd_cache: [HashMap<AttrSet, FdVerdict>; 4],
    key_cache: HashMap<AttrSet, KeyVerdict>,
    /// `X →_w X` (totality) verdicts, for the t-FD classification.
    refl_cache: HashMap<AttrSet, Verdict>,
    /// Projection-ratio memo: value + epoch it was computed at.
    ratio_cache: HashMap<AttrSet, (f64, u64)>,
    /// Warm dense view of the live rows (dictionary encoding + stable
    /// slot ids), extended in `O(arity)` per insert, dropped on
    /// update/delete and rebuilt lazily at the next mine. Without it
    /// every mine call pays an `O(rows × arity)` clone + re-encode of
    /// the whole instance — a wall-clock floor that would swallow the
    /// savings of the verdict cache.
    dense: Option<DenseView>,
    /// `(epoch, slot)` of every insert, ascending in both — the rows a
    /// verdict from epoch `e` has never seen are exactly the live
    /// entries after the `partition_point` of `e`. One entry per
    /// insert ever, matching the tombstoned `slots` growth.
    insert_log: Vec<(u64, RowId)>,
    deltas_since_reconcile: u64,
    reconcile_every: Option<u64>,
}

/// See [`IncrementalMiner::dense`]. Store row `i` is the live row in
/// slot `stable[i]`; the order is exactly [`IncrementalMiner::table`]'s
/// row order, and the store is append-only between rebuilds, so its
/// first-appearance codes are byte-identical to a fresh
/// [`Encoded::new`] over that table.
///
/// The view owns a [`ColumnStore`] rather than a long-lived
/// [`Encoded`]: mine calls take a *transient* snapshot and drop it
/// before returning, so the next insert's `push` finds the column
/// `Arc`s unshared and extends them in place (`O(arity)`). Holding the
/// snapshot across inserts would instead force a copy-on-write column
/// clone per push.
struct DenseView {
    store: ColumnStore,
    stable: Vec<RowId>,
    /// Per column: code → ascending dense rows carrying it (code 0 =
    /// the column's ⊥ rows). The delta re-validation sweeps scan only
    /// the sparsest matching list instead of the whole view.
    postings: Vec<FastMap<u32, Vec<usize>>>,
}

impl DenseView {
    fn build(store: ColumnStore, stable: Vec<RowId>) -> Self {
        let mut postings: Vec<FastMap<u32, Vec<usize>>> = vec![FastMap::default(); store.arity()];
        for row in 0..store.rows() {
            for (ci, p) in postings.iter_mut().enumerate() {
                p.entry(store.code_at(row, ci)).or_default().push(row);
            }
        }
        DenseView {
            store,
            stable,
            postings,
        }
    }

    /// A transient `O(arity)` encoding snapshot for one mine call.
    fn encode(&self) -> Encoded {
        Encoded::from_snapshot(self.store.snapshot())
    }
}

impl IncrementalMiner {
    /// An empty maintained instance over `schema`.
    pub fn new(schema: TableSchema) -> IncrementalMiner {
        let arity = schema.arity();
        IncrementalMiner {
            schema,
            slots: Vec::new(),
            live: 0,
            epoch: 0,
            last_insert: 0,
            last_delete: 0,
            col_updated: vec![0; arity],
            fd_cache: Default::default(),
            key_cache: HashMap::new(),
            refl_cache: HashMap::new(),
            ratio_cache: HashMap::new(),
            dense: None,
            insert_log: Vec::new(),
            deltas_since_reconcile: 0,
            reconcile_every: None,
        }
    }

    /// Seeds the maintained instance from an existing table; rows get
    /// [`RowId`]s `0..len` in table order.
    pub fn from_table(table: &Table) -> IncrementalMiner {
        let mut m = IncrementalMiner::new(table.schema().clone());
        m.slots.extend(table.rows().iter().cloned().map(Some));
        m.live = m.slots.len();
        m
    }

    /// Arms the reconcile threshold: after `every` deltas the next
    /// report also runs the full pipeline and asserts equivalence.
    pub fn with_reconcile_every(mut self, every: u64) -> IncrementalMiner {
        self.reconcile_every = Some(every);
        self
    }

    /// The schema of the maintained instance.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live rows remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Deltas applied since construction.
    pub fn deltas_applied(&self) -> u64 {
        self.epoch
    }

    /// The live rows as a [`Table`], in stable slot order. This is what
    /// every report mines; its row multiset always equals the table the
    /// deltas were mirrored from (row *order* is irrelevant to every
    /// mined artifact).
    pub fn table(&self) -> Table {
        Table::from_rows(self.schema.clone(), self.slots.iter().flatten().cloned())
    }

    /// Appends a row, returning its stable id.
    pub fn insert(&mut self, tuple: Tuple) -> RowId {
        let _apply = sqlnf_obs::span!("discovery.incr.apply");
        self.begin_delta();
        self.last_insert = self.epoch;
        if let Some(dense) = self.dense.as_mut() {
            dense.store.push(&tuple);
            let row = dense.store.rows() - 1;
            for (ci, p) in dense.postings.iter_mut().enumerate() {
                p.entry(dense.store.code_at(row, ci)).or_default().push(row);
            }
            dense.stable.push(self.slots.len());
        }
        self.insert_log.push((self.epoch, self.slots.len()));
        self.slots.push(Some(tuple));
        self.live += 1;
        self.slots.len() - 1
    }

    /// Replaces a live row; returns `false` (and applies nothing) if
    /// the slot is dead or out of range. Only columns whose value
    /// actually changed are marked dirty.
    pub fn update(&mut self, row: RowId, tuple: Tuple) -> bool {
        let _apply = sqlnf_obs::span!("discovery.incr.apply");
        let Some(Some(old)) = self.slots.get(row) else {
            return false;
        };
        let changed: AttrSet = (0..self.schema.arity())
            .map(Attr::from)
            .filter(|&a| old.get(a) != tuple.get(a))
            .collect();
        self.begin_delta();
        let epoch = self.epoch;
        for a in changed {
            self.col_updated[a.index()] = epoch;
        }
        self.slots[row] = Some(tuple);
        self.dense = None;
        true
    }

    /// Tombstones a live row; returns `false` if it was not live.
    pub fn delete(&mut self, row: RowId) -> bool {
        let _apply = sqlnf_obs::span!("discovery.incr.apply");
        match self.slots.get_mut(row) {
            Some(slot) if slot.is_some() => {
                *slot = None;
                self.live -= 1;
                self.dense = None;
                self.begin_delta();
                self.last_delete = self.epoch;
                true
            }
            _ => false,
        }
    }

    /// Applies one [`Delta`]; returns the inserted row's id for
    /// inserts.
    pub fn apply(&mut self, delta: Delta) -> Option<RowId> {
        match delta {
            Delta::Insert(t) => Some(self.insert(t)),
            Delta::Update { row, tuple } => {
                self.update(row, tuple);
                None
            }
            Delta::Delete { row } => {
                self.delete(row);
                None
            }
        }
    }

    fn begin_delta(&mut self) {
        sqlnf_obs::count!("discovery.incr.deltas");
        self.epoch += 1;
        self.deltas_since_reconcile += 1;
    }

    /// Whether the witness pair still violates `X → A` (rows live and
    /// similar on `X` per `sem`, unequal on `a`). Purely semantic: any
    /// live violating pair refutes, whatever its history.
    fn pair_violates_fd(
        slots: &[Option<Tuple>],
        r: RowId,
        s: RowId,
        x: AttrSet,
        a: Attr,
        sem: Semantics,
    ) -> bool {
        let (Some(Some(tr)), Some(Some(ts))) = (slots.get(r), slots.get(s)) else {
            return false;
        };
        if !Self::pair_similar(tr, ts, x, sem) {
            return false;
        }
        match sem {
            // A weak violation needs a conflict no completion can fix:
            // both values present and distinct (a ⊥ is filled with the
            // partner's value).
            Semantics::Weak => {
                let (va, vb) = (tr.get(a), ts.get(a));
                !va.is_null() && !vb.is_null() && va != vb
            }
            _ => tr.get(a) != ts.get(a),
        }
    }

    /// LHS-similarity of two live tuples under the mining semantics:
    /// syntactic equality (⊥ = ⊥) classically, strong similarity for
    /// possible FDs, weak similarity for certain FDs. Weak FDs only
    /// ever constrain `X`-total pairs (an `X`-incomplete row is
    /// completed apart with fresh values), so their pair notion is
    /// strong similarity too.
    fn pair_similar(tr: &Tuple, ts: &Tuple, x: AttrSet, sem: Semantics) -> bool {
        x.iter().all(|c| match sem {
            Semantics::Classical => tr.get(c) == ts.get(c),
            Semantics::Possible | Semantics::Weak => strongly_similar(tr.get(c), ts.get(c)),
            Semantics::Certain => weakly_similar(tr.get(c), ts.get(c)),
        })
    }

    /// Whether a witness pair still refutes `X` as a key: possible keys
    /// fall to a strongly-similar pair, certain keys to a weakly-similar
    /// one.
    fn pair_violates_key(
        slots: &[Option<Tuple>],
        r: RowId,
        s: RowId,
        x: AttrSet,
        certain: bool,
    ) -> bool {
        let (Some(Some(tr)), Some(Some(ts))) = (slots.get(r), slots.get(s)) else {
            return false;
        };
        x.iter().all(|c| {
            if certain {
                weakly_similar(tr.get(c), ts.get(c))
            } else {
                strongly_similar(tr.get(c), ts.get(c))
            }
        })
    }

    /// Whether a witness pair still refutes totality `X →_w X`: weakly
    /// similar on `X` but not syntactically equal on it.
    fn pair_violates_reflexive(slots: &[Option<Tuple>], r: RowId, s: RowId, x: AttrSet) -> bool {
        let (Some(Some(tr)), Some(Some(ts))) = (slots.get(r), slots.get(s)) else {
            return false;
        };
        x.iter().all(|c| weakly_similar(tr.get(c), ts.get(c)))
            && x.iter().any(|c| tr.get(c) != ts.get(c))
    }

    /// Finds a violating pair for each refuted target of `x` — the
    /// witnesses the next replay validates instead of re-scanning. Every
    /// requested target is guaranteed a witness (the check just refuted
    /// it over the same data).
    #[allow(clippy::too_many_arguments)]
    fn find_fd_witnesses(
        enc: &Encoded,
        probes: &ProbeCache,
        stable: &[RowId],
        x: AttrSet,
        p: &Partition,
        mut want: AttrSet,
        sem: Semantics,
        out: &mut Vec<(Attr, RowId, RowId)>,
    ) {
        if sem == Semantics::Weak {
            // The witness must be a *non-null* disagreement: comparing
            // against the class head would hand out a pair a completion
            // could repair (the head may carry ⊥ on the target), so
            // track the first non-null code per target instead.
            'weak_classes: for class in &p.classes {
                let mut got = AttrSet::EMPTY;
                for a in want {
                    let mut seen: Option<usize> = None;
                    for &r in class {
                        let r = r as usize;
                        let c = enc.code(r, a);
                        if c == 0 {
                            continue;
                        }
                        match seen {
                            None => seen = Some(r),
                            Some(f) if enc.code(f, a) != c => {
                                out.push((a, stable[f], stable[r]));
                                got.insert(a);
                                break;
                            }
                            Some(_) => {}
                        }
                    }
                }
                want = want - got;
                if want.is_empty() {
                    break 'weak_classes;
                }
            }
            debug_assert!(want.is_empty(), "refuted target without witness: {want:?}");
            return;
        }
        'classes: for class in &p.classes {
            let first = class[0] as usize;
            for &r in &class[1..] {
                let r = r as usize;
                let mut got = AttrSet::EMPTY;
                for a in want {
                    if enc.code(r, a) != enc.code(first, a) {
                        out.push((a, stable[first], stable[r]));
                        got.insert(a);
                    }
                }
                want = want - got;
                if want.is_empty() {
                    break 'classes;
                }
            }
        }
        if sem == Semantics::Certain && !want.is_empty() {
            probes.weak_pairs(enc, x, |r, s| {
                let mut got = AttrSet::EMPTY;
                for a in want {
                    if enc.code(r, a) != enc.code(s, a) {
                        out.push((a, stable[r], stable[s]));
                        got.insert(a);
                    }
                }
                want = want - got;
                !want.is_empty()
            });
        }
        debug_assert!(want.is_empty(), "refuted target without witness: {want:?}");
    }

    /// Dense indices (ascending) of the live rows inserted after
    /// `since` — the only rows that can carry a pair unseen by a
    /// verdict stamped at `since`.
    /// Memoizing wrapper around [`Self::delta_dense_since`]: within one
    /// replay most stale verdicts share the epoch of the previous mine,
    /// so the delta row set is computed once, not per candidate.
    fn delta_since_memo<'m>(
        log: &[(u64, RowId)],
        slots: &[Option<Tuple>],
        stable: &[RowId],
        since: u64,
        memo: &'m mut Option<(u64, Vec<usize>)>,
    ) -> &'m [usize] {
        if memo.as_ref().is_none_or(|(s, _)| *s != since) {
            *memo = Some((since, Self::delta_dense_since(log, slots, stable, since)));
        }
        &memo.as_ref().expect("just filled").1
    }

    fn delta_dense_since(
        log: &[(u64, RowId)],
        slots: &[Option<Tuple>],
        stable: &[RowId],
        since: u64,
    ) -> Vec<usize> {
        let start = log.partition_point(|&(e, _)| e <= since);
        log[start..]
            .iter()
            .filter(|&&(_, slot)| slots.get(slot).is_some_and(Option::is_some))
            .map(|&(_, slot)| {
                stable
                    .binary_search(&slot)
                    .expect("live slot missing from the dense view")
            })
            .collect()
    }

    /// The code projection of dense row `row` onto `attrs`, written
    /// into `buf`.
    fn key_on(enc: &Encoded, row: usize, attrs: AttrSet, buf: &mut Vec<u32>) {
        buf.clear();
        for a in attrs {
            buf.push(enc.code(row, a));
        }
    }

    /// The shortest posting list among `x`'s columns for the code
    /// vector `kv` (parallel to `x`'s iteration order); `None` when
    /// some column has no row carrying the required code — no partner
    /// can match at all.
    fn sparsest_posting<'p>(
        postings: &'p [FastMap<u32, Vec<usize>>],
        x: AttrSet,
        kv: &[u32],
    ) -> Option<&'p Vec<usize>> {
        let mut best: Option<&'p Vec<usize>> = None;
        for (i, a) in x.iter().enumerate() {
            let list = postings[a.index()].get(&kv[i])?;
            if best.is_none_or(|b: &Vec<usize>| list.len() < b.len()) {
                best = Some(list);
            }
        }
        best
    }

    /// Groups `delta` by its code vector on `x` (⊥ is code 0): equal
    /// projections have identical partner sets, so they share one
    /// probe. Under `Possible` and `Weak`, x-incomplete rows are
    /// dropped — ⊥ is strongly similar to nothing, and the weak
    /// completion isolates such rows with fresh values.
    fn delta_groups(
        enc: &Encoded,
        delta: &[usize],
        x: AttrSet,
        sem: Semantics,
    ) -> FastMap<Vec<u32>, Vec<usize>> {
        let mut key = Vec::new();
        let mut groups: FastMap<Vec<u32>, Vec<usize>> = FastMap::default();
        for &r in delta {
            if matches!(sem, Semantics::Possible | Semantics::Weak) && !enc.is_total_on(r, x) {
                continue;
            }
            Self::key_on(enc, r, x, &mut key);
            match groups.get_mut(key.as_slice()) {
                Some(g) => g.push(r),
                None => {
                    groups.insert(key.clone(), vec![r]);
                }
            }
        }
        groups
    }

    /// Visits every dense row `sem`-similar on `x` to the projection
    /// `kv` (carried by delta row `r0`), charging each visit to
    /// `scanned`. Stops — returning `false` — when `f` does. The
    /// visited rows include `r0` itself and any other delta row with a
    /// similar projection; callers decide whether self-pairs matter.
    ///
    /// Partners come from the dense view's posting lists, so work is
    /// proportional to the classes the projection actually lands in —
    /// not to the instance. This is what makes a re-mine after a small
    /// delta cheap in *wall clock*, not just in rows scanned.
    #[allow(clippy::too_many_arguments)]
    fn for_each_partner(
        enc: &Encoded,
        postings: &[FastMap<u32, Vec<usize>>],
        x: AttrSet,
        kv: &[u32],
        r0: usize,
        sem: Semantics,
        scanned: &mut usize,
        mut f: impl FnMut(usize) -> bool,
    ) -> bool {
        match sem {
            Semantics::Classical | Semantics::Possible | Semantics::Weak => {
                // Similarity is plain code equality on `x`: scan the
                // sparsest matching posting list, verifying the other
                // columns directly. A classical ⊥ is the ordinary code
                // 0, so a zero entry correctly demands fellow nulls; a
                // possible or weak projection is x-total (incomplete
                // delta rows were dropped), so any row matching its
                // all-nonzero codes is too.
                let Some(list) = Self::sparsest_posting(postings, x, kv) else {
                    return true;
                };
                for &s in list {
                    *scanned += 1;
                    if x.iter().zip(kv.iter()).all(|(a, &c)| enc.code(s, a) == c) && !f(s) {
                        return false;
                    }
                }
            }
            Semantics::Certain => {
                // Weak similarity: agreement wherever both rows are
                // non-null on `x`. On a column where `kv` is non-null a
                // partner either shares the code or is ⊥ there — so the
                // cheapest match∪null posting pair bounds the scan and
                // the remaining columns are verified pairwise. A
                // projection that is ⊥ on all of `x` is weakly similar
                // to everything and must scan the whole view (bounded
                // by such rows in the delta).
                let mut choice: Option<(Attr, u32, usize)> = None;
                for (i, a) in x.iter().enumerate() {
                    let c = kv[i];
                    if c == 0 {
                        continue;
                    }
                    let len = postings[a.index()].get(&c).map_or(0, Vec::len)
                        + postings[a.index()].get(&0).map_or(0, Vec::len);
                    if choice.is_none_or(|(_, _, best)| len < best) {
                        choice = Some((a, c, len));
                    }
                }
                match choice {
                    None => {
                        for s in 0..enc.rows() {
                            *scanned += 1;
                            if !f(s) {
                                return false;
                            }
                        }
                    }
                    Some((a, c, _)) => {
                        let lists = [postings[a.index()].get(&c), postings[a.index()].get(&0)];
                        for &s in lists.into_iter().flatten().flatten() {
                            *scanned += 1;
                            if enc.weakly_similar(r0, s, x) && !f(s) {
                                return false;
                            }
                        }
                    }
                }
            }
        }
        true
    }

    /// Visits every `sem`-similar pair `(r, s)` of dense rows with `r`
    /// drawn from `delta` — exactly the pairs that a verdict predating
    /// the delta rows has never seen. Calls `f` for each; stops early —
    /// and returns `false` — when `f` returns `false`. A pair with both
    /// rows in `delta` may be visited in both orientations; callers
    /// hunt for a single violation, so the duplicate is harmless. Rows
    /// visited are charged to `discovery.partition.rows_scanned` like
    /// every other check path.
    fn for_each_delta_pair(
        enc: &Encoded,
        postings: &[FastMap<u32, Vec<usize>>],
        delta: &[usize],
        x: AttrSet,
        sem: Semantics,
        mut f: impl FnMut(usize, usize) -> bool,
    ) -> bool {
        if delta.is_empty() {
            return true;
        }
        if x.is_empty() {
            // Similarity on ∅ is vacuous: every pair qualifies. Only
            // the empty key candidate lands here, and it dies to the
            // first pair, so the scan is O(1) in practice.
            let mut scanned = 0usize;
            let mut complete = true;
            'empty: for &r in delta {
                for s in 0..enc.rows() {
                    scanned += 1;
                    if r != s && !f(r, s) {
                        complete = false;
                        break 'empty;
                    }
                }
            }
            sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
            return complete;
        }
        let mut scanned = delta.len();
        let groups = Self::delta_groups(enc, delta, x, sem);
        let mut complete = true;
        for (kv, group) in &groups {
            let done =
                Self::for_each_partner(enc, postings, x, kv, group[0], sem, &mut scanned, |s| {
                    for &r in group {
                        if r != s && !f(r, s) {
                            return false;
                        }
                    }
                    true
                });
            if !done {
                complete = false;
                break;
            }
        }
        sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
        complete
    }

    /// Folds one class row into the weak-semantics tracking state:
    /// `tracked` holds, per target, the first dense row seen carrying a
    /// non-null code; a later row with a *different* non-null code is a
    /// genuine violating pair (no completion can reconcile two present,
    /// distinct values), recorded in `refuted` and `dead`. Rows with ⊥
    /// on a target are skipped — the weak completion absorbs them.
    fn weak_note_row(
        enc: &Encoded,
        stable: &[RowId],
        row: usize,
        tracked: &mut [(Attr, Option<usize>)],
        dead: &mut AttrSet,
        refuted: &mut Vec<(Attr, RowId, RowId)>,
    ) {
        for (a, first) in tracked.iter_mut() {
            if dead.contains(*a) {
                continue;
            }
            let c = enc.code(row, *a);
            if c == 0 {
                continue;
            }
            match first {
                None => *first = Some(row),
                Some(f) if enc.code(*f, *a) != c => {
                    refuted.push((*a, stable[*f], stable[row]));
                    dead.insert(*a);
                }
                Some(_) => {}
            }
        }
    }

    /// Re-validates previously-holding targets of `X → ·` against only
    /// the delta-involved pairs. Returns the surviving targets; each
    /// refuted one is appended to `refuted` with a live witness pair
    /// (slot ids). Sound because deletes only remove pairs and the
    /// caller has checked that no update touched `X` or a target since
    /// the verdicts were stamped.
    #[allow(clippy::too_many_arguments)]
    fn delta_targets_surviving(
        enc: &Encoded,
        postings: &[FastMap<u32, Vec<usize>>],
        stable: &[RowId],
        delta: &[usize],
        x: AttrSet,
        targets: AttrSet,
        sem: Semantics,
        refuted: &mut Vec<(Attr, RowId, RowId)>,
    ) -> AttrSet {
        let mut holding = targets;
        if delta.is_empty() {
            return holding;
        }
        if x.is_empty() {
            // `∅ → A`: every pair is similar under every semantics, so
            // the FD survives iff the column is still constant — one
            // early-exit column scan. Weakly, "constant" tolerates ⊥:
            // only two distinct non-null codes kill the target.
            if sem == Semantics::Weak {
                let mut scanned = 0usize;
                let mut tracked: Vec<(Attr, Option<usize>)> =
                    holding.iter().map(|a| (a, None)).collect();
                let mut dead = AttrSet::EMPTY;
                for s in 0..enc.rows() {
                    scanned += 1;
                    Self::weak_note_row(enc, stable, s, &mut tracked, &mut dead, refuted);
                    if dead == holding {
                        break;
                    }
                }
                sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
                return holding - dead;
            }
            let mut scanned = 0usize;
            for s in 1..enc.rows() {
                scanned += 1;
                let mut still = AttrSet::EMPTY;
                for a in holding {
                    if enc.code(s, a) == enc.code(0, a) {
                        still.insert(a);
                    } else {
                        refuted.push((a, stable[0], stable[s]));
                    }
                }
                holding = still;
                if holding.is_empty() {
                    break;
                }
            }
            sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
            return holding;
        }
        let mut scanned = delta.len();
        let groups = Self::delta_groups(enc, delta, x, sem);
        for (kv, group) in &groups {
            if holding.is_empty() {
                break;
            }
            let r0 = group[0];
            if sem == Semantics::Weak {
                // Weakly, a class stays repairable while its non-null
                // codes per target agree; the r0-homogeneity shortcut
                // below is unsound here (r0 may carry ⊥ on a target two
                // partners disagree on non-null), so track the first
                // non-null row per target across group and partners.
                let mut tracked: Vec<(Attr, Option<usize>)> =
                    holding.iter().map(|a| (a, None)).collect();
                let mut dead = AttrSet::EMPTY;
                for &m in group {
                    Self::weak_note_row(enc, stable, m, &mut tracked, &mut dead, refuted);
                }
                if dead != holding {
                    Self::for_each_partner(enc, postings, x, kv, r0, sem, &mut scanned, |s| {
                        Self::weak_note_row(enc, stable, s, &mut tracked, &mut dead, refuted);
                        dead != holding
                    });
                }
                holding = holding - dead;
                continue;
            }
            // Group members are pairwise similar on `x`, so a target
            // they disagree on dies to a member pair — and the
            // survivors are group-homogeneous, which lets the partner
            // scan below compare each row once against `r0` instead of
            // once per member.
            let mut still = AttrSet::EMPTY;
            for a in holding {
                match group.iter().find(|&&m| enc.code(m, a) != enc.code(r0, a)) {
                    Some(&m) => refuted.push((a, stable[r0], stable[m])),
                    None => {
                        still.insert(a);
                    }
                }
            }
            holding = still;
            if holding.is_empty() {
                break;
            }
            Self::for_each_partner(enc, postings, x, kv, r0, sem, &mut scanned, |s| {
                let mut still = AttrSet::EMPTY;
                for a in holding {
                    if enc.code(s, a) == enc.code(r0, a) {
                        still.insert(a);
                    } else {
                        // `s` matched the group's projection but not
                        // this target, so it is not a group member
                        // (those agree on `a`) and `(r0, s)` is a
                        // genuine violating pair.
                        refuted.push((a, stable[r0], stable[s]));
                    }
                }
                holding = still;
                !holding.is_empty()
            });
        }
        sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
        holding
    }

    /// The first delta-involved pair similar on `x` under `sem`, as
    /// slot ids — the witness that kills a stale p-/c-key verdict.
    /// `None` means the verdict survived the delta.
    fn first_delta_pair(
        enc: &Encoded,
        postings: &[FastMap<u32, Vec<usize>>],
        stable: &[RowId],
        delta: &[usize],
        x: AttrSet,
        sem: Semantics,
    ) -> Option<(RowId, RowId)> {
        let mut witness = None;
        Self::for_each_delta_pair(enc, postings, delta, x, sem, |r, s| {
            witness = Some((stable[r], stable[s]));
            false
        });
        witness
    }

    /// The first delta-involved weak pair of `x` that is *not*
    /// syntactically equal on `x` — the witness that kills a stale
    /// totality (`X →_w X`) verdict.
    fn first_delta_reflexive_violation(
        enc: &Encoded,
        postings: &[FastMap<u32, Vec<usize>>],
        stable: &[RowId],
        delta: &[usize],
        x: AttrSet,
    ) -> Option<(RowId, RowId)> {
        let mut witness = None;
        Self::for_each_delta_pair(enc, postings, delta, x, Semantics::Certain, |r, s| {
            if enc.equal_on(r, s, x) {
                true
            } else {
                witness = Some((stable[r], stable[s]));
                false
            }
        });
        witness
    }

    /// Replays the level-wise FD enumeration of [`crate::mine`] against
    /// the verdict cache. The walk — candidate order, target pruning,
    /// minimality bookkeeping — is the from-scratch serial one; only
    /// the per-candidate check is short-circuited by valid verdicts, so
    /// the returned FDs are identical to `mine_fds` over the same rows.
    #[allow(clippy::too_many_arguments)]
    fn replay_fds(
        slots: &[Option<Tuple>],
        marks: &Marks<'_>,
        log: &[(u64, RowId)],
        cache: &mut HashMap<AttrSet, FdVerdict>,
        enc: &Encoded,
        ctx: &mut PartitionCtx<'_>,
        probes: &ProbeCache,
        stable: &[RowId],
        postings: &[FastMap<u32, Vec<usize>>],
        sem: Semantics,
        arity: usize,
        max_lhs: usize,
        now: u64,
    ) -> Vec<MinedFd> {
        let attrs: Vec<Attr> = (0..arity).map(Attr::from).collect();
        let all: AttrSet = attrs.iter().copied().collect();
        let last_level = max_lhs.min(arity.saturating_sub(1));
        let mut minimal_for: Vec<Vec<AttrSet>> = vec![Vec::new(); arity];
        let mut found = Vec::new();
        let mut touched = 0usize;
        let mut delta_memo: Option<(u64, Vec<usize>)> = None;

        for k in 0..=last_level {
            if k >= 2 {
                ctx.evict_below(k - 1);
            }
            for x in k_subsets(&attrs, k) {
                let mut targets = AttrSet::EMPTY;
                for a in all - x {
                    if !minimal_for[a.index()].iter().any(|y| y.is_subset(x)) {
                        targets.insert(a);
                    }
                }
                if targets.is_empty() {
                    continue;
                }
                let v = cache.entry(x).or_default();
                let mut holding = AttrSet::EMPTY;
                let mut stale = AttrSet::EMPTY;
                let mut stale_since = u64::MAX;
                let mut unknown = AttrSet::EMPTY;
                for a in targets {
                    if let Some(&(_, at)) = v.holding.iter().find(|&&(b, _)| b == a) {
                        if marks.holding_valid(at, x | AttrSet::single(a)) {
                            holding.insert(a);
                            continue;
                        }
                        if marks.only_inserts_since(at, x | AttrSet::single(a)) {
                            stale.insert(a);
                            stale_since = stale_since.min(at);
                            continue;
                        }
                    }
                    if let Some(&(_, r, s)) = v.refuted.iter().find(|&&(b, _, _)| b == a) {
                        if Self::pair_violates_fd(slots, r, s, x, a, sem) {
                            continue; // still refuted, witness intact
                        }
                    }
                    unknown.insert(a);
                }
                if !stale.is_empty() {
                    // Held before the delta, and only inserts happened
                    // since: check the inserted rows' pairs instead of
                    // rechecking the whole candidate.
                    touched += 1;
                    let delta =
                        Self::delta_since_memo(log, slots, stable, stale_since, &mut delta_memo);
                    let mut fresh = Vec::new();
                    let survive = Self::delta_targets_surviving(
                        enc, postings, stable, delta, x, stale, sem, &mut fresh,
                    );
                    for a in survive {
                        holding.insert(a);
                        if let Some(entry) = v.holding.iter_mut().find(|(b, _)| *b == a) {
                            entry.1 = now;
                        }
                    }
                    for (a, r, s) in fresh {
                        v.holding.retain(|&(b, _)| b != a);
                        v.refuted.retain(|&(b, _, _)| b != a);
                        v.refuted.push((a, r, s));
                    }
                }
                if !unknown.is_empty() {
                    touched += 1;
                    let p = ctx.partition(x);
                    let held = fd_targets_holding_cached(enc, x, &p, unknown, sem, probes);
                    holding |= held;
                    let refuted = unknown - held;
                    // Record fresh verdicts: held targets stamped at the
                    // current epoch, refuted ones re-witnessed.
                    for a in held {
                        v.refuted.retain(|&(b, _, _)| b != a);
                        match v.holding.iter_mut().find(|(b, _)| *b == a) {
                            Some(entry) => entry.1 = now,
                            None => v.holding.push((a, now)),
                        }
                    }
                    if !refuted.is_empty() {
                        v.refuted.retain(|&(b, _, _)| !refuted.contains(b));
                        v.holding.retain(|&(b, _)| !refuted.contains(b));
                        Self::find_fd_witnesses(
                            enc,
                            probes,
                            stable,
                            x,
                            &p,
                            refuted,
                            sem,
                            &mut v.refuted,
                        );
                    }
                }
                if !holding.is_empty() {
                    for a in holding {
                        minimal_for[a.index()].push(x);
                    }
                    found.push(MinedFd {
                        lhs: x,
                        rhs: holding,
                    });
                }
            }
        }
        sqlnf_obs::count!("discovery.incr.candidates_touched", touched);
        found
    }

    /// Replays the level-wise key enumeration of [`crate::keys`]
    /// against the verdict cache; identical output to
    /// `mine_keys_budgeted` over the same rows.
    #[allow(clippy::too_many_arguments)]
    fn replay_keys(
        slots: &[Option<Tuple>],
        marks: &Marks<'_>,
        log: &[(u64, RowId)],
        cache: &mut HashMap<AttrSet, KeyVerdict>,
        enc: &Encoded,
        ctx: &mut PartitionCtx<'_>,
        probes: &ProbeCache,
        stable: &[RowId],
        postings: &[FastMap<u32, Vec<usize>>],
        arity: usize,
        max_size: usize,
        now: u64,
    ) -> MinedKeys {
        let attrs: Vec<Attr> = (0..arity).map(Attr::from).collect();
        let mut out = MinedKeys::default();
        let mut touched = 0usize;
        let mut delta_memo: Option<(u64, Vec<usize>)> = None;
        for k in 0..=max_size.min(arity) {
            if k >= 2 {
                ctx.evict_below(k - 1);
            }
            for x in k_subsets(&attrs, k) {
                let p_covered = out.pkeys.iter().any(|y| y.is_subset(x));
                let c_covered = out.ckeys.iter().any(|y| y.is_subset(x));
                if p_covered && c_covered {
                    continue;
                }
                let (p_is, c_is) = Self::key_status(
                    slots,
                    marks,
                    log,
                    cache,
                    enc,
                    ctx,
                    probes,
                    stable,
                    postings,
                    &mut delta_memo,
                    x,
                    now,
                    &mut touched,
                );
                if !p_covered && p_is {
                    out.pkeys.push(x);
                }
                if !c_covered && c_is {
                    out.ckeys.push(x);
                }
            }
        }
        sqlnf_obs::count!("discovery.incr.candidates_touched", touched);
        out
    }

    /// Cached p-key/c-key status of `x`, rechecking only what the delta
    /// marks invalidated.
    #[allow(clippy::too_many_arguments)]
    fn key_status(
        slots: &[Option<Tuple>],
        marks: &Marks<'_>,
        log: &[(u64, RowId)],
        cache: &mut HashMap<AttrSet, KeyVerdict>,
        enc: &Encoded,
        ctx: &mut PartitionCtx<'_>,
        probes: &ProbeCache,
        stable: &[RowId],
        postings: &[FastMap<u32, Vec<usize>>],
        delta_memo: &mut Option<(u64, Vec<usize>)>,
        x: AttrSet,
        now: u64,
        touched: &mut usize,
    ) -> (bool, bool) {
        let v = cache.entry(x).or_default();
        let p_known = match v.p {
            Some(Verdict::Holds(at)) if marks.holding_valid(at, x) => Some(true),
            Some(Verdict::Holds(at)) if marks.only_inserts_since(at, x) => {
                // A key dies only to a *new* similar pair; probe the
                // inserted rows instead of rechecking the candidate.
                *touched += 1;
                let delta = Self::delta_since_memo(log, slots, stable, at, delta_memo);
                match Self::first_delta_pair(enc, postings, stable, delta, x, Semantics::Possible) {
                    None => {
                        v.p = Some(Verdict::Holds(now));
                        Some(true)
                    }
                    Some((r, s)) => {
                        v.p = Some(Verdict::Fails(r, s));
                        Some(false)
                    }
                }
            }
            Some(Verdict::Fails(r, s)) if Self::pair_violates_key(slots, r, s, x, false) => {
                Some(false)
            }
            _ => None,
        };
        let c_known = match v.c {
            Some(Verdict::Holds(at)) if marks.holding_valid(at, x) => Some(true),
            Some(Verdict::Holds(at)) if marks.only_inserts_since(at, x) => {
                *touched += 1;
                let delta = Self::delta_since_memo(log, slots, stable, at, delta_memo);
                match Self::first_delta_pair(enc, postings, stable, delta, x, Semantics::Certain) {
                    None => {
                        v.c = Some(Verdict::Holds(now));
                        Some(true)
                    }
                    Some((r, s)) => {
                        v.c = Some(Verdict::Fails(r, s));
                        Some(false)
                    }
                }
            }
            Some(Verdict::Fails(r, s)) if Self::pair_violates_key(slots, r, s, x, true) => {
                Some(false)
            }
            _ => None,
        };
        if let (Some(p), Some(c)) = (p_known, c_known) {
            return (p, c);
        }
        *touched += 1;
        let strong = ctx.partition(x);
        let p_is = p_known.unwrap_or_else(|| {
            let holds = is_pkey(&strong);
            v.p = Some(if holds {
                Verdict::Holds(now)
            } else {
                let c = &strong.classes[0];
                Verdict::Fails(stable[c[0] as usize], stable[c[1] as usize])
            });
            holds
        });
        let c_is = match c_known {
            Some(c) => c,
            None => {
                // is_ckey with witness extraction: a strong pair is
                // already a weak violation; else probe the weak pairs.
                let mut witness: Option<(RowId, RowId)> = None;
                if let Some(c) = strong.classes.first() {
                    witness = Some((stable[c[0] as usize], stable[c[1] as usize]));
                } else {
                    probes.weak_pairs(enc, x, |r, s| {
                        witness = Some((stable[r], stable[s]));
                        false
                    });
                }
                v.c = Some(match witness {
                    None => Verdict::Holds(now),
                    Some((r, s)) => Verdict::Fails(r, s),
                });
                witness.is_none()
            }
        };
        (p_is, c_is)
    }

    /// Cached c-key check for classification (λ-FD and nn-ratio
    /// eligibility); shares the key verdict cache.
    #[allow(clippy::too_many_arguments)]
    fn is_ckey_incr(
        slots: &[Option<Tuple>],
        marks: &Marks<'_>,
        log: &[(u64, RowId)],
        cache: &mut HashMap<AttrSet, KeyVerdict>,
        enc: &Encoded,
        ctx: &mut PartitionCtx<'_>,
        probes: &ProbeCache,
        stable: &[RowId],
        postings: &[FastMap<u32, Vec<usize>>],
        delta_memo: &mut Option<(u64, Vec<usize>)>,
        x: AttrSet,
        now: u64,
        touched: &mut usize,
    ) -> bool {
        Self::key_status(
            slots, marks, log, cache, enc, ctx, probes, stable, postings, delta_memo, x, now,
            touched,
        )
        .1
    }

    /// Cached totality check `X →_w X` (Definition 9).
    #[allow(clippy::too_many_arguments)]
    fn reflexive_incr(
        slots: &[Option<Tuple>],
        marks: &Marks<'_>,
        log: &[(u64, RowId)],
        cache: &mut HashMap<AttrSet, Verdict>,
        enc: &Encoded,
        probes: &ProbeCache,
        stable: &[RowId],
        postings: &[FastMap<u32, Vec<usize>>],
        delta_memo: &mut Option<(u64, Vec<usize>)>,
        x: AttrSet,
        now: u64,
        touched: &mut usize,
    ) -> bool {
        match cache.get(&x) {
            Some(&Verdict::Holds(at)) if marks.holding_valid(at, x) => return true,
            Some(&Verdict::Holds(at)) if marks.only_inserts_since(at, x) => {
                *touched += 1;
                let delta = Self::delta_since_memo(log, slots, stable, at, delta_memo);
                return match Self::first_delta_reflexive_violation(enc, postings, stable, delta, x)
                {
                    None => {
                        cache.insert(x, Verdict::Holds(now));
                        true
                    }
                    Some((r, s)) => {
                        cache.insert(x, Verdict::Fails(r, s));
                        false
                    }
                };
            }
            Some(&Verdict::Fails(r, s)) if Self::pair_violates_reflexive(slots, r, s, x) => {
                return false
            }
            _ => {}
        }
        *touched += 1;
        let mut witness: Option<(RowId, RowId)> = None;
        probes.weak_pairs(enc, x, |r, s| {
            if enc.equal_on(r, s, x) {
                true
            } else {
                witness = Some((stable[r], stable[s]));
                false
            }
        });
        cache.insert(
            x,
            match witness {
                None => Verdict::Holds(now),
                Some((r, s)) => Verdict::Fails(r, s),
            },
        );
        witness.is_none()
    }

    /// Mines the minimal FDs under `sem`, replaying the lattice against
    /// the verdict cache. Byte-identical (content and order) to
    /// `mine_fds` over [`IncrementalMiner::table`].
    pub fn mine_fds(
        &mut self,
        sem: Semantics,
        max_lhs: usize,
        cache_budget: usize,
    ) -> Vec<MinedFd> {
        self.ensure_dense();
        let dense = self.dense.as_ref().expect("just ensured");
        let enc_snap = dense.encode(); // transient; dropped before the next delta
        let (enc, stable) = (&enc_snap, &dense.stable);
        let mut ctx = PartitionCtx::with_budget(enc, null_semantics(sem), cache_budget);
        let probes = ProbeCache::new(enc);
        let marks = Marks {
            insert: self.last_insert,
            delete: self.last_delete,
            cols: &self.col_updated,
        };
        let now = self.epoch;
        let fds = Self::replay_fds(
            &self.slots,
            &marks,
            &self.insert_log,
            &mut self.fd_cache[sem_index(sem)],
            enc,
            &mut ctx,
            &probes,
            stable,
            &dense.postings,
            sem,
            self.schema.arity(),
            max_lhs,
            now,
        );
        self.note_frontier();
        fds
    }

    /// Mines the minimal p-/c-keys; identical to `mine_keys_budgeted`
    /// over [`IncrementalMiner::table`].
    pub fn mine_keys(&mut self, max_size: usize, cache_budget: usize) -> MinedKeys {
        self.ensure_dense();
        let dense = self.dense.as_ref().expect("just ensured");
        let enc_snap = dense.encode(); // transient; dropped before the next delta
        let (enc, stable) = (&enc_snap, &dense.stable);
        let mut ctx = PartitionCtx::with_budget(enc, NullSemantics::Strong, cache_budget);
        let probes = ProbeCache::new(enc);
        let marks = Marks {
            insert: self.last_insert,
            delete: self.last_delete,
            cols: &self.col_updated,
        };
        let now = self.epoch;
        let keys = Self::replay_keys(
            &self.slots,
            &marks,
            &self.insert_log,
            &mut self.key_cache,
            enc,
            &mut ctx,
            &probes,
            stable,
            &dense.postings,
            self.schema.arity(),
            max_size,
            now,
        );
        self.note_frontier();
        keys
    }

    /// The classification + keys backing one `MINE` report — the
    /// incremental mirror of `classify_table_budgeted` +
    /// `mine_keys_budgeted`.
    pub fn classify(&mut self, max_lhs: usize, cache_budget: usize) -> (Classification, MinedKeys) {
        self.ensure_dense();
        let dense = self.dense.as_ref().expect("just ensured");
        let enc_snap = dense.encode(); // transient; dropped before the next delta
        let (enc, stable) = (&enc_snap, &dense.stable);
        // Materialized only if a projection ratio misses its memo —
        // `projection_ratio` wants real rows, not codes.
        let mut ratio_table: Option<Table> = None;
        let null_free = enc.null_free_columns();
        let now = self.epoch;
        let probes = ProbeCache::new(enc);
        let mut ctx = PartitionCtx::with_budget(enc, NullSemantics::Strong, cache_budget);
        let mut touched = 0usize;
        let mut delta_memo: Option<(u64, Vec<usize>)> = None;

        let marks = Marks {
            insert: self.last_insert,
            delete: self.last_delete,
            cols: &self.col_updated,
        };
        let possible = Self::replay_fds(
            &self.slots,
            &marks,
            &self.insert_log,
            &mut self.fd_cache[sem_index(Semantics::Possible)],
            enc,
            &mut ctx,
            &probes,
            stable,
            &dense.postings,
            Semantics::Possible,
            self.schema.arity(),
            max_lhs,
            now,
        );
        let certain = Self::replay_fds(
            &self.slots,
            &marks,
            &self.insert_log,
            &mut self.fd_cache[sem_index(Semantics::Certain)],
            enc,
            &mut ctx,
            &probes,
            stable,
            &dense.postings,
            Semantics::Certain,
            self.schema.arity(),
            max_lhs,
            now,
        );

        let mut out = Classification::default();
        for fd in possible {
            if fd.lhs.is_subset(null_free) {
                let ckey = Self::is_ckey_incr(
                    &self.slots,
                    &marks,
                    &self.insert_log,
                    &mut self.key_cache,
                    enc,
                    &mut ctx,
                    &probes,
                    stable,
                    &dense.postings,
                    &mut delta_memo,
                    fd.lhs,
                    now,
                    &mut touched,
                );
                if !ckey {
                    let attrs = fd.lhs | fd.rhs;
                    // Inline ratio memo (self is partially borrowed via
                    // marks/caches above, so consult the map directly).
                    let ratio = match self.ratio_cache.get(&attrs) {
                        Some(&(ratio, at))
                            if at >= marks.insert
                                && at >= marks.delete
                                && attrs.iter().all(|c| at >= marks.cols[c.index()]) =>
                        {
                            ratio
                        }
                        _ => {
                            let table = ratio_table.get_or_insert_with(|| {
                                Table::from_rows(
                                    self.schema.clone(),
                                    self.slots.iter().flatten().cloned(),
                                )
                            });
                            let ratio = projection_ratio(table, attrs);
                            self.ratio_cache.insert(attrs, (ratio, now));
                            ratio
                        }
                    };
                    out.nn_nonkey_ratios.push(ratio);
                }
                out.nn_fds.push(fd);
            } else {
                out.p_fds.push(fd);
            }
        }
        for fd in certain {
            if fd.lhs.is_subset(null_free) {
                continue; // coincides with an nn-FD; counted there
            }
            let total = Self::reflexive_incr(
                &self.slots,
                &marks,
                &self.insert_log,
                &mut self.refl_cache,
                enc,
                &probes,
                stable,
                &dense.postings,
                &mut delta_memo,
                fd.lhs,
                now,
                &mut touched,
            );
            if total {
                out.t_fds.push(fd.clone());
                let ckey = Self::is_ckey_incr(
                    &self.slots,
                    &marks,
                    &self.insert_log,
                    &mut self.key_cache,
                    enc,
                    &mut ctx,
                    &probes,
                    stable,
                    &dense.postings,
                    &mut delta_memo,
                    fd.lhs,
                    now,
                    &mut touched,
                );
                if !fd.rhs.is_empty() && !ckey {
                    let attrs = fd.lhs | fd.rhs;
                    let ratio = match self.ratio_cache.get(&attrs) {
                        Some(&(ratio, at))
                            if at >= marks.insert
                                && at >= marks.delete
                                && attrs.iter().all(|c| at >= marks.cols[c.index()]) =>
                        {
                            ratio
                        }
                        _ => {
                            let table = ratio_table.get_or_insert_with(|| {
                                Table::from_rows(
                                    self.schema.clone(),
                                    self.slots.iter().flatten().cloned(),
                                )
                            });
                            let ratio = projection_ratio(table, attrs);
                            self.ratio_cache.insert(attrs, (ratio, now));
                            ratio
                        }
                    };
                    out.lambda_fds.push(LambdaFd {
                        lhs: fd.lhs,
                        rhs: fd.rhs,
                        relative_projection_size: ratio,
                    });
                }
            }
            out.c_fds.push(fd);
        }

        let keys = Self::replay_keys(
            &self.slots,
            &marks,
            &self.insert_log,
            &mut self.key_cache,
            enc,
            &mut ctx,
            &probes,
            stable,
            &dense.postings,
            self.schema.arity(),
            max_lhs,
            now,
        );
        sqlnf_obs::count!("discovery.incr.candidates_touched", touched);
        self.note_frontier();
        (out, keys)
    }

    /// The `MINE` report over the live rows, byte-identical to
    /// [`mine_report`] over [`IncrementalMiner::table`]. When the
    /// reconcile threshold is armed and tripped, also runs the full
    /// from-scratch pipeline and asserts equivalence.
    pub fn report(&mut self, name: &str, max_lhs: usize, cache_budget: usize) -> String {
        let due = self
            .reconcile_every
            .is_some_and(|n| self.deltas_since_reconcile >= n);
        if due {
            return self.reconcile(name, max_lhs, cache_budget);
        }
        let (cls, keys) = self.classify(max_lhs, cache_budget);
        render_report(name, self.live, &self.schema, max_lhs, &cls, &keys)
    }

    /// Full-pipeline audit: runs both the incremental replay and the
    /// from-scratch mine, asserts they render the same report, resets
    /// the reconcile counter, and returns the report. Panics on any
    /// divergence — an incremental-state bug must never ship a wrong
    /// answer silently.
    pub fn reconcile(&mut self, name: &str, max_lhs: usize, cache_budget: usize) -> String {
        sqlnf_obs::count!("discovery.incr.reconciles");
        let (cls, keys) = self.classify(max_lhs, cache_budget);
        let incr = render_report(name, self.live, &self.schema, max_lhs, &cls, &keys);
        let full = crate::classify::mine_report(name, &self.table(), max_lhs, cache_budget);
        assert_eq!(
            incr, full,
            "incremental reconcile mismatch on {name} after {} deltas",
            self.epoch
        );
        self.deltas_since_reconcile = 0;
        incr
    }

    /// Builds the warm dense view if an update/delete (or construction)
    /// left it cold: the live rows are pushed straight into a fresh
    /// [`ColumnStore`] in slot order — no intermediate [`Table`] — so
    /// the codes are exactly what [`Encoded::new`] over
    /// [`IncrementalMiner::table`] would see, and later appends keep
    /// that equivalence (first-appearance codes either way).
    fn ensure_dense(&mut self) {
        if self.dense.is_none() {
            let mut store = ColumnStore::new(self.schema.arity());
            for t in self.slots.iter().flatten() {
                store.push(t);
            }
            self.dense = Some(DenseView::build(store, self.stable_ids()));
        }
    }

    fn stable_ids(&self) -> Vec<RowId> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }

    fn note_frontier(&self) {
        let frontier: usize = self.fd_cache.iter().map(HashMap::len).sum::<usize>()
            + self.key_cache.len()
            + self.refl_cache.len();
        sqlnf_obs::count_max!("discovery.incr.frontier_size", frontier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::mine_report;
    use crate::keys::mine_keys_budgeted;
    use crate::mine::{mine_fds, MinerConfig};
    use sqlnf_model::prelude::*;

    fn sample() -> Table {
        TableBuilder::new("r", ["a", "b", "c"], &[])
            .row(tuple![1i64, 10i64, "x"])
            .row(tuple![1i64, 10i64, "y"])
            .row(tuple![2i64, 20i64, null])
            .row(tuple![3i64, null, "x"])
            .build()
    }

    fn assert_matches_scratch(m: &mut IncrementalMiner, max_lhs: usize) {
        let t = m.table();
        for sem in [
            Semantics::Classical,
            Semantics::Possible,
            Semantics::Certain,
            Semantics::Weak,
        ] {
            let scratch = mine_fds(
                &t,
                MinerConfig::new(sem).with_max_lhs(max_lhs).with_threads(1),
            );
            let incr = m.mine_fds(sem, max_lhs, crate::cache::DEFAULT_CACHE_BUDGET);
            assert_eq!(scratch.fds, incr, "{sem:?}");
        }
        let keys = mine_keys_budgeted(&t, max_lhs, crate::cache::DEFAULT_CACHE_BUDGET);
        assert_eq!(
            keys,
            m.mine_keys(max_lhs, crate::cache::DEFAULT_CACHE_BUDGET)
        );
        let report = mine_report("r", &t, max_lhs, crate::cache::DEFAULT_CACHE_BUDGET);
        assert_eq!(
            report,
            m.report("r", max_lhs, crate::cache::DEFAULT_CACHE_BUDGET)
        );
    }

    #[test]
    fn cold_start_matches_scratch() {
        let mut m = IncrementalMiner::from_table(&sample());
        assert_matches_scratch(&mut m, 3);
        // Second mine over an unchanged instance: still identical.
        assert_matches_scratch(&mut m, 3);
    }

    #[test]
    fn inserts_invalidate_holding_fds() {
        let mut m = IncrementalMiner::from_table(&sample());
        assert_matches_scratch(&mut m, 3);
        // a → b held; this insert breaks it.
        m.insert(tuple![1i64, 99i64, "z"]);
        assert_matches_scratch(&mut m, 3);
    }

    #[test]
    fn deletes_can_unrefute() {
        let mut m = IncrementalMiner::from_table(&sample());
        assert_matches_scratch(&mut m, 3);
        // Deleting row 1 removes the (a,b) → c violation witness.
        m.delete(1);
        assert_matches_scratch(&mut m, 3);
        // And deleting everything leaves the vacuous instance.
        for r in [0, 2, 3] {
            m.delete(r);
        }
        assert_matches_scratch(&mut m, 3);
    }

    #[test]
    fn updates_touch_only_changed_columns() {
        let mut m = IncrementalMiner::from_table(&sample());
        assert_matches_scratch(&mut m, 3);
        m.update(2, tuple![2i64, 10i64, null]); // b changed
        assert_matches_scratch(&mut m, 3);
        m.update(3, tuple![3i64, null, "x"]); // no-op update
        assert_matches_scratch(&mut m, 3);
        m.update(0, tuple![1i64, 10i64, null]); // c nulled
        assert_matches_scratch(&mut m, 3);
    }

    #[test]
    fn dead_slots_reject_mutation() {
        let mut m = IncrementalMiner::from_table(&sample());
        assert!(m.delete(1));
        assert!(!m.delete(1));
        assert!(!m.update(1, tuple![0i64, 0i64, "q"]));
        assert!(!m.delete(99));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn empty_instance_reports() {
        let schema = TableSchema::new("e", ["a", "b"], &[]);
        let mut m = IncrementalMiner::new(schema);
        assert_matches_scratch(&mut m, 2);
        let id = m.insert(tuple![1i64, 2i64]);
        assert_matches_scratch(&mut m, 2);
        m.delete(id);
        assert_matches_scratch(&mut m, 2);
    }

    #[test]
    fn reconcile_threshold_trips_and_resets() {
        sqlnf_obs::reset();
        let mut m = IncrementalMiner::from_table(&sample()).with_reconcile_every(2);
        m.insert(tuple![5i64, 50i64, "w"]);
        let _ = m.report("r", 2, crate::cache::DEFAULT_CACHE_BUDGET); // 1 delta: no audit
        m.insert(tuple![6i64, 60i64, "v"]);
        let _ = m.report("r", 2, crate::cache::DEFAULT_CACHE_BUDGET); // 2 deltas: audit
        assert_eq!(m.deltas_since_reconcile, 0);
    }

    #[test]
    fn apply_mirrors_direct_calls() {
        let mut m = IncrementalMiner::from_table(&sample());
        let id = m
            .apply(Delta::Insert(tuple![7i64, 70i64, "u"]))
            .expect("insert returns id");
        m.apply(Delta::Update {
            row: id,
            tuple: tuple![7i64, 71i64, "u"],
        });
        m.apply(Delta::Delete { row: 0 });
        assert_matches_scratch(&mut m, 3);
    }
}
