//! Discovery of minimal possible and certain keys from data.
//!
//! The paper's quantitative analysis leans on key status throughout —
//! λ-FDs require a non-key LHS, and the Figure 6 discussion attributes
//! the high-ratio population to LHSs that "should really be certain
//! keys" but are not, due to dirty data. This module mines the minimal
//! p-keys and c-keys of an instance level-wise, with subset pruning
//! (any superset of a key is a key, by key-Augmentation).
//!
//! There is no separate *weak*-key miner: weak keys coincide exactly
//! with possible keys ([`crate::check::is_weak_key`]) — an `X`-null row
//! is always separable by fresh completion values, while two `X`-total
//! duplicates are never separable — so `pkeys` doubles as the
//! weak-semantics key set.

use crate::cache::{PartitionCtx, DEFAULT_CACHE_BUDGET};
use crate::check::{is_ckey_cached, is_pkey, ProbeCache};
use crate::partition::{Encoded, NullSemantics};
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::table::Table;

/// Minimal keys of an instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MinedKeys {
    /// Subset-minimal possible keys.
    pub pkeys: Vec<AttrSet>,
    /// Subset-minimal certain keys (every c-key is also a p-key, but a
    /// *minimal* c-key need not be a minimal p-key).
    pub ckeys: Vec<AttrSet>,
}

fn k_subsets(attrs: &[Attr], k: usize) -> Vec<AttrSet> {
    let n = attrs.len();
    let mut out = Vec::new();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| attrs[i]).collect());
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Mines the subset-minimal p-keys and c-keys with attribute sets of at
/// most `max_size` attributes, with the default partition-cache budget.
pub fn mine_keys(table: &Table, max_size: usize) -> MinedKeys {
    mine_keys_budgeted(table, max_size, DEFAULT_CACHE_BUDGET)
}

/// [`mine_keys`] with an explicit partition-cache byte budget. The
/// strong partitions of the candidates come out of one level-cached
/// [`PartitionCtx`] (a product per candidate instead of a fresh
/// grouping); results are identical for any budget.
pub fn mine_keys_budgeted(table: &Table, max_size: usize, cache_budget: usize) -> MinedKeys {
    mine_keys_encoded(
        &Encoded::new(table),
        table.schema().arity(),
        max_size,
        cache_budget,
    )
}

/// [`mine_keys_budgeted`] from a pre-encoded instance (shared encodes,
/// and the columnar-vs-row-major differential tests).
pub fn mine_keys_encoded(
    enc: &Encoded,
    arity: usize,
    max_size: usize,
    cache_budget: usize,
) -> MinedKeys {
    let attrs: Vec<Attr> = (0..arity).map(Attr::from).collect();
    let mut ctx = PartitionCtx::with_budget(enc, NullSemantics::Strong, cache_budget);
    // Candidates sharing a nullable footprint share one probe index.
    let probes = ProbeCache::new(enc);
    let mut out = MinedKeys::default();

    for k in 0..=max_size.min(arity) {
        // Partitions of level k come from level k−1; anything older is
        // dead weight.
        if k >= 2 {
            ctx.evict_below(k - 1);
        }
        for x in k_subsets(&attrs, k) {
            let p_covered = out.pkeys.iter().any(|y| y.is_subset(x));
            let c_covered = out.ckeys.iter().any(|y| y.is_subset(x));
            if p_covered && c_covered {
                continue;
            }
            let strong = ctx.partition(x);
            if !p_covered && is_pkey(&strong) {
                out.pkeys.push(x);
            }
            if !c_covered && is_ckey_cached(enc, &probes, x, &strong) {
                out.ckeys.push(x);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn sample() -> Table {
        // id unique; (name) has a NULL so it is a p-key but not c-key;
        // (a, b) jointly unique and total.
        TableBuilder::new("r", ["id", "name", "a", "b"], &[])
            .row(tuple![1i64, "x", 1i64, 1i64])
            .row(tuple![2i64, null, 1i64, 2i64])
            .row(tuple![3i64, "y", 2i64, 1i64])
            .build()
    }

    #[test]
    fn finds_minimal_keys_of_both_kinds() {
        let t = sample();
        let s = t.schema().clone();
        let keys = mine_keys(&t, 4);
        assert!(keys.pkeys.contains(&s.set(&["id"])));
        assert!(keys.ckeys.contains(&s.set(&["id"])));
        // name: p-key (the NULL is strongly similar to nothing) but not
        // a c-key (⊥ weakly matches x and y).
        assert!(keys.pkeys.contains(&s.set(&["name"])));
        assert!(!keys.ckeys.contains(&s.set(&["name"])));
        // (a,b) total and unique: both kinds.
        assert!(keys.pkeys.contains(&s.set(&["a", "b"])));
        assert!(keys.ckeys.contains(&s.set(&["a", "b"])));
    }

    #[test]
    fn minimality_no_key_contains_another() {
        let t = sample();
        let keys = mine_keys(&t, 4);
        for list in [&keys.pkeys, &keys.ckeys] {
            for (i, x) in list.iter().enumerate() {
                for (j, y) in list.iter().enumerate() {
                    if i != j {
                        assert!(!x.is_subset(*y), "{x:?} ⊆ {y:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn mined_keys_satisfy_the_instance() {
        let t = sample();
        let keys = mine_keys(&t, 4);
        for &x in &keys.pkeys {
            assert!(satisfies_key(&t, &Key::possible(x)));
        }
        for &x in &keys.ckeys {
            assert!(satisfies_key(&t, &Key::certain(x)));
        }
    }

    #[test]
    fn duplicates_kill_all_keys() {
        let t = TableBuilder::new("r", ["a"], &[])
            .row(tuple![1i64])
            .row(tuple![1i64])
            .build();
        let keys = mine_keys(&t, 1);
        assert!(keys.pkeys.is_empty());
        assert!(keys.ckeys.is_empty());
    }

    #[test]
    fn empty_set_is_key_of_singleton() {
        let t = TableBuilder::new("r", ["a"], &[]).row(tuple![1i64]).build();
        let keys = mine_keys(&t, 1);
        assert_eq!(keys.pkeys, vec![AttrSet::EMPTY]);
        assert_eq!(keys.ckeys, vec![AttrSet::EMPTY]);
    }
}
