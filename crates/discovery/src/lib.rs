//! # sqlnf-discovery
//!
//! Discovery (data profiling) of functional dependencies from SQL data,
//! as used in Section 7 of Köhler & Link (SIGMOD 2016): a TANE-style
//! level-wise miner over dictionary-encoded columns and stripped
//! partitions, instantiated for four semantics — classical (nulls as
//! values; the convention of the FD-discovery literature), possible
//! (strong similarity), certain (weak similarity) and weak
//! (some-possible-world satisfaction, after Levene/Loizou as surveyed
//! by Badia & Lemire) — plus the classification of mined FDs into
//! nn/p/c/t/λ categories and the relative projection sizes behind
//! Figure 6.

#![warn(missing_docs)]

pub mod approx;
pub mod cache;
pub mod check;
pub mod classify;
pub mod incremental;
pub mod keys;
pub mod mine;
pub mod partition;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::approx::{
        cfd_error, cfd_error_probed, ckey_error, ckey_error_probed, classical_fd_error,
        key_error_of_table, pfd_error, pkey_error, wfd_error,
    };
    pub use crate::cache::{PartitionCtx, DEFAULT_CACHE_BUDGET};
    pub use crate::check::{
        certain_reflexive_holds, certain_reflexive_holds_cached, certain_reflexive_holds_with,
        fd_holds, fd_targets_holding, fd_targets_holding_cached, is_ckey, is_ckey_cached,
        is_ckey_with, is_pkey, is_weak_key, null_semantics, partition_for, probe_weak_pairs,
        ProbeCache, ProbeIndex, Semantics,
    };
    pub use crate::classify::{
        classify_table, classify_table_budgeted, mine_report, render_report,
        render_semantics_report, semantics_report, Classification, Counts, LambdaFd,
    };
    pub use crate::incremental::{Delta, IncrementalMiner, RowId};
    pub use crate::keys::{mine_keys, mine_keys_budgeted, MinedKeys};
    pub use crate::mine::{mine_fds, MinedFd, MinerConfig, MiningResult};
    pub use crate::partition::{Encoded, NullSemantics, Partition, ProductScratch};
}
