//! Level-wise discovery of minimal non-trivial FDs, in the style of
//! TANE, under any of the three [`Semantics`].
//!
//! The miner records, per minimal LHS `X`, the set of all RHS
//! attributes `A ∉ X` such that `X → A` holds and no `Y ⊊ X` already
//! gives `Y → A` — matching the paper's counting convention ("all
//! non-trivial FDs with minimal LHSs, and only once per LHS").

use crate::check::{fd_targets_holding, partition_for, Semantics};
use crate::partition::Encoded;
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::table::Table;
use std::time::Instant;

/// One discovered dependency: a minimal LHS and every RHS attribute it
/// minimally determines under the mining semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedFd {
    /// The (minimal) left-hand side.
    pub lhs: AttrSet,
    /// All attributes outside `lhs` minimally determined by it.
    pub rhs: AttrSet,
}

/// Miner configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Semantics of the mined FDs.
    pub semantics: Semantics,
    /// Maximum LHS size explored (the lattice is exponential; the
    /// interesting minimal FDs of the evaluation live at small sizes).
    pub max_lhs: usize,
    /// Worker threads for candidate checking. Within one lattice level
    /// candidates are independent (minimality only consults strictly
    /// smaller LHSs), so per-level parallelism is exact. `1` = serial.
    pub threads: usize,
}

impl MinerConfig {
    /// Default configuration for the given semantics (LHS ≤ 4, serial —
    /// matching the experiment harness, whose timings are per-core).
    pub fn new(semantics: Semantics) -> Self {
        MinerConfig {
            semantics,
            max_lhs: 4,
            threads: 1,
        }
    }

    /// Overrides the LHS cap.
    pub fn with_max_lhs(mut self, max_lhs: usize) -> Self {
        self.max_lhs = max_lhs;
        self
    }

    /// Overrides the worker-thread count (0 means all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        self
    }
}

/// Outcome of a mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// Minimal FDs, one entry per minimal LHS.
    pub fds: Vec<MinedFd>,
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
    /// Number of candidate LHSs whose partition was evaluated.
    pub candidates_checked: usize,
}

impl MiningResult {
    /// Total number of (LHS, attribute) pairs, i.e. FDs counted
    /// attribute-wise.
    pub fn fd_count_attrwise(&self) -> usize {
        self.fds.iter().map(|f| f.rhs.len()).sum()
    }
}

/// Generates all `k`-subsets of `attrs`.
fn k_subsets(attrs: &[Attr], k: usize) -> Vec<AttrSet> {
    let mut out = Vec::new();
    let n = attrs.len();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| attrs[i]).collect());
        // Next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Mines minimal non-trivial FDs from an instance.
pub fn mine_fds(table: &Table, config: MinerConfig) -> MiningResult {
    let started = Instant::now();
    let enc = Encoded::new(table);
    mine_fds_encoded(&enc, table.schema().arity(), config, started)
}

/// Mines from a pre-encoded instance (lets callers share the encoding
/// across several mining runs, as the discovery experiment does).
pub fn mine_fds_encoded(
    enc: &Encoded,
    arity: usize,
    config: MinerConfig,
    started: Instant,
) -> MiningResult {
    let _span = sqlnf_obs::span!("mine_fds");
    let attrs: Vec<Attr> = (0..arity).map(Attr::from).collect();
    let all: AttrSet = attrs.iter().copied().collect();

    // minimal_lhs_for[a] = the minimal LHSs recorded for attribute a.
    let mut minimal_for: Vec<Vec<AttrSet>> = vec![Vec::new(); arity];
    let mut found: Vec<MinedFd> = Vec::new();
    let mut checked = 0usize;

    for k in 0..=config.max_lhs.min(arity.saturating_sub(1)) {
        sqlnf_obs::count!("discovery.mine.lattice_levels");
        // Candidates of this level, with their uncovered targets.
        let generated = k_subsets(&attrs, k);
        let generated_count = generated.len();
        let candidates: Vec<(AttrSet, AttrSet)> = generated
            .into_iter()
            .filter_map(|x| {
                let mut targets = AttrSet::EMPTY;
                for a in all - x {
                    if !minimal_for[a.index()].iter().any(|y| y.is_subset(x)) {
                        targets.insert(a);
                    }
                }
                (!targets.is_empty()).then_some((x, targets))
            })
            .collect();
        checked += candidates.len();
        sqlnf_obs::count!("discovery.mine.candidates_checked", candidates.len());
        sqlnf_obs::count!(
            "discovery.mine.candidates_pruned",
            generated_count - candidates.len()
        );
        sqlnf_obs::trace!(
            "mine level {k}: {} candidates ({} pruned)",
            candidates.len(),
            generated_count - candidates.len()
        );

        let check = |&(x, targets): &(AttrSet, AttrSet)| -> Option<MinedFd> {
            let partition = partition_for(enc, x, config.semantics);
            let holding = fd_targets_holding(enc, x, &partition, targets, config.semantics);
            (!holding.is_empty()).then_some(MinedFd {
                lhs: x,
                rhs: holding,
            })
        };

        let level_found: Vec<MinedFd> = if config.threads <= 1 || candidates.len() < 32 {
            candidates.iter().filter_map(check).collect()
        } else {
            // Within a level, candidates are independent: minimality
            // consults only strictly smaller LHSs, fixed before the
            // level starts. Chunked fan-out over scoped threads.
            let chunk = candidates.len().div_ceil(config.threads);
            std::thread::scope(|scope| {
                let handles: Vec<_> = candidates
                    .chunks(chunk)
                    .map(|part| {
                        scope.spawn(move || {
                            sqlnf_obs::count!("discovery.mine.worker_spawns");
                            sqlnf_obs::count!("discovery.mine.worker_candidates", part.len());
                            part.iter().filter_map(check).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("miner worker panicked"))
                    .collect()
            })
        };

        for fd in level_found {
            for a in fd.rhs {
                minimal_for[a.index()].push(fd.lhs);
            }
            found.push(fd);
        }
    }

    MiningResult {
        fds: found,
        elapsed: started.elapsed(),
        candidates_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::fd_holds;
    use sqlnf_model::prelude::*;

    #[test]
    fn k_subsets_counts() {
        let attrs: Vec<Attr> = (0..5).map(Attr::from).collect();
        assert_eq!(k_subsets(&attrs, 0), vec![AttrSet::EMPTY]);
        assert_eq!(k_subsets(&attrs, 1).len(), 5);
        assert_eq!(k_subsets(&attrs, 2).len(), 10);
        assert_eq!(k_subsets(&attrs, 3).len(), 10);
        assert_eq!(k_subsets(&attrs, 5).len(), 1);
        assert_eq!(k_subsets(&attrs, 6).len(), 0);
        // All distinct and of the right size.
        let threes = k_subsets(&attrs, 3);
        assert!(threes.iter().all(|s| s.len() == 3));
    }

    fn sample() -> Table {
        // b is a function of a; c is a function of (a,d) but not of a or
        // d alone; e is constant.
        TableBuilder::new("r", ["a", "b", "c", "d", "e"], &[])
            .row(tuple![1i64, 10i64, 100i64, 1i64, 7i64])
            .row(tuple![1i64, 10i64, 200i64, 2i64, 7i64])
            .row(tuple![2i64, 20i64, 100i64, 2i64, 7i64])
            .row(tuple![2i64, 20i64, 200i64, 1i64, 7i64])
            .build()
    }

    #[test]
    fn mines_planted_structure() {
        let t = sample();
        let res = mine_fds(&t, MinerConfig::new(Semantics::Classical));
        let s = t.schema().clone();
        let find = |lhs: AttrSet| res.fds.iter().find(|f| f.lhs == lhs);
        // ∅ → e (constant column).
        let empty = find(AttrSet::EMPTY).expect("constant column");
        assert!(empty.rhs.contains(s.a("e")));
        // a → b minimal.
        let a = find(AttrSet::single(s.a("a"))).expect("a → b");
        assert!(a.rhs.contains(s.a("b")));
        assert!(!a.rhs.contains(s.a("c")));
        // (a,d) → c minimal (with b ↔ a, (b,d) → c also minimal).
        let ad = find(s.set(&["a", "d"])).expect("ad → c");
        assert!(ad.rhs.contains(s.a("c")));
    }

    #[test]
    fn minimality_is_respected() {
        let t = sample();
        let res = mine_fds(&t, MinerConfig::new(Semantics::Classical));
        let e = Encoded::new(&t);
        for fd in &res.fds {
            for a in fd.rhs {
                // Holds at the recorded LHS…
                assert!(fd_holds(&e, fd.lhs, a, Semantics::Classical));
                // …and at no immediate subset.
                for b in fd.lhs {
                    let smaller = fd.lhs - AttrSet::single(b);
                    assert!(
                        !fd_holds(&e, smaller, a, Semantics::Classical),
                        "lhs={:?} a={a:?} not minimal",
                        fd.lhs
                    );
                }
            }
        }
    }

    #[test]
    fn semantics_differ_on_nulls() {
        // a has a null: p-FD a →_s b holds (null row is similar to
        // nothing) but the c-FD fails (⊥ weakly matches both groups);
        // classically (⊥ a value) it also holds.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![null, 20i64])
            .row(tuple![2i64, 30i64])
            .build();
        let possible = mine_fds(&t, MinerConfig::new(Semantics::Possible));
        let certain = mine_fds(&t, MinerConfig::new(Semantics::Certain));
        let classical = mine_fds(&t, MinerConfig::new(Semantics::Classical));
        let a = AttrSet::from_indices([0]);
        let b = sqlnf_model::attrs::Attr(1);
        let has = |r: &MiningResult| r.fds.iter().any(|f| f.lhs == a && f.rhs.contains(b));
        assert!(has(&possible));
        assert!(has(&classical));
        assert!(!has(&certain));
    }

    #[test]
    fn max_lhs_cap_is_respected() {
        let t = sample();
        let res = mine_fds(&t, MinerConfig::new(Semantics::Classical).with_max_lhs(1));
        assert!(res.fds.iter().all(|f| f.lhs.len() <= 1));
        assert!(res.candidates_checked > 0);
    }

    #[test]
    fn parallel_equals_serial() {
        // Determinism across thread counts, all semantics, on a table
        // large enough to trigger the parallel path.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let schema = TableSchema::new(
            "r",
            (0..8).map(|i| format!("c{i}")).collect::<Vec<_>>(),
            &[],
        );
        let mut t = Table::new(schema);
        for _ in 0..150 {
            t.push(Tuple::new(
                (0..8)
                    .map(|c| {
                        if rng.gen_bool(0.1) {
                            Value::Null
                        } else {
                            Value::Int(rng.gen_range(0..4 + c as i64))
                        }
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        for sem in [
            Semantics::Classical,
            Semantics::Possible,
            Semantics::Certain,
        ] {
            let serial = mine_fds(&t, MinerConfig::new(sem).with_max_lhs(3));
            let parallel = mine_fds(&t, MinerConfig::new(sem).with_max_lhs(3).with_threads(4));
            let norm = |mut fds: Vec<MinedFd>| {
                fds.sort_by_key(|f| (f.lhs.0, f.rhs.0));
                fds
            };
            assert_eq!(norm(serial.fds), norm(parallel.fds), "{sem:?}");
        }
    }

    #[test]
    fn empty_and_single_row_tables() {
        let schema = TableSchema::new("r", ["a", "b"], &[]);
        let empty = Table::new(schema.clone());
        let res = mine_fds(&empty, MinerConfig::new(Semantics::Certain));
        // Everything holds vacuously: ∅ → a, b.
        assert_eq!(res.fds.len(), 1);
        assert_eq!(res.fds[0].lhs, AttrSet::EMPTY);
        assert_eq!(res.fds[0].rhs.len(), 2);
    }
}
