//! Level-wise discovery of minimal non-trivial FDs, in the style of
//! TANE, under any of the four [`Semantics`].
//!
//! The miner records, per minimal LHS `X`, the set of all RHS
//! attributes `A ∉ X` such that `X → A` holds and no `Y ⊊ X` already
//! gives `Y → A` — matching the paper's counting convention ("all
//! non-trivial FDs with minimal LHSs, and only once per LHS").
//!
//! ## Level-cached partition products
//!
//! A level-`k` candidate's stripped partition is never rebuilt from
//! the rows: it is the TANE product `π_{X∖{a}} · π_{a}` of a cached
//! level-`(k−1)` partition refined by one more attribute's dictionary
//! codes, computed in one sweep of the prefix partition with a reusable
//! probe-table scratch (see [`Partition::product_attr`] — the cost is
//! proportional to the *prefix*, which shrinks as levels advance, not
//! to the table). Every immediate prefix of a candidate is
//! itself a candidate of the previous level (uncovered targets are
//! inherited downwards), so the prefix lookup misses only when the
//! byte budget ([`MinerConfig::cache_budget`]) evicted it — in which
//! case the partition is folded from the always-resident singles.
//! Levels retire as the frontier advances: only level `k−1` is kept
//! while level `k` runs. On levels whose partitions are never stored
//! (the last one) the product is fused with the FD check
//! ([`fd_targets_on_refinement`]) and aborts at the first refuting
//! row, so refuted candidates — the vast majority at depth — cost a
//! handful of row visits instead of a full sweep.
//!
//! With `threads > 1` the per-level fan-out runs on a *persistent*
//! worker pool spawned once inside one `thread::scope`: each worker
//! owns its scratch for the whole mining run and receives, per level,
//! a shared [`Arc`] of the candidate slice plus an atomic cursor into
//! a *cost-descending* visit order (LPT scheduling: per-candidate cost
//! is the chosen prefix's `stripped_rows()`). Workers pull one
//! candidate at a time, so an expensive straggler never pins a whole
//! contiguous chunk to one thread the way equal-size chunking did.
//! Every emitted FD and partition shard is tagged with its candidate
//! index; the main thread sorts by index before merging, so results —
//! and the cache contents under any byte budget — are byte-identical
//! across thread counts (`parallel_equals_serial`). Certain-semantics
//! workers share one [`ProbeCache`], so LHSs with the same nullable
//! footprint reuse one probe index instead of rebuilding per
//! candidate. Worker saturation is visible as the
//! `discovery.mine.worker_busy_ns` timer.

use crate::cache::DEFAULT_CACHE_BUDGET;
use crate::check::{
    fd_targets_holding_cached, fd_targets_on_refinement, null_semantics, ProbeCache, Semantics,
};
use crate::partition::{Encoded, NullSemantics, Partition, ProductScratch};
use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::table::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

/// A level parallelises once it has at least `max(PAR_MIN, threads)`
/// candidates: below that the queue/channel round-trip costs more than
/// the work. Wide-short tables (hepatitis: 15+ levels) have many short
/// levels, so this is deliberately low.
const PAR_MIN: usize = 8;

/// One discovered dependency: a minimal LHS and every RHS attribute it
/// minimally determines under the mining semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinedFd {
    /// The (minimal) left-hand side.
    pub lhs: AttrSet,
    /// All attributes outside `lhs` minimally determined by it.
    pub rhs: AttrSet,
}

/// Miner configuration.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Semantics of the mined FDs.
    pub semantics: Semantics,
    /// Maximum LHS size explored (the lattice is exponential; the
    /// interesting minimal FDs of the evaluation live at small sizes).
    pub max_lhs: usize,
    /// Worker threads for candidate checking. Within one lattice level
    /// candidates are independent (minimality only consults strictly
    /// smaller LHSs), so per-level parallelism is exact. `1` = serial.
    pub threads: usize,
    /// Byte budget for the previous level's cached partitions. Within
    /// budget, every candidate partition is one product with a cached
    /// prefix; past it, evicted prefixes are folded from the
    /// single-attribute partitions. `0` disables caching; results are
    /// identical for any value (only throughput changes).
    pub cache_budget: usize,
}

impl MinerConfig {
    /// Default configuration for the given semantics: LHS ≤ 4, and the
    /// thread count taken from `SQLNF_MINE_THREADS` when set (`0` =
    /// all available cores), else serial — matching the experiment
    /// harness, whose recorded timings are per-core.
    pub fn new(semantics: Semantics) -> Self {
        let threads = match std::env::var("SQLNF_MINE_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) => std::thread::available_parallelism().map_or(1, |n| n.get()),
                Ok(n) => n,
                Err(_) => 1,
            },
            Err(_) => 1,
        };
        MinerConfig {
            semantics,
            max_lhs: 4,
            threads,
            cache_budget: DEFAULT_CACHE_BUDGET,
        }
    }

    /// Overrides the LHS cap.
    pub fn with_max_lhs(mut self, max_lhs: usize) -> Self {
        self.max_lhs = max_lhs;
        self
    }

    /// Overrides the worker-thread count (0 means all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        self
    }

    /// Overrides the partition-cache byte budget.
    pub fn with_cache_budget(mut self, bytes: usize) -> Self {
        self.cache_budget = bytes;
        self
    }
}

/// Outcome of a mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// Minimal FDs, one entry per minimal LHS.
    pub fds: Vec<MinedFd>,
    /// Wall-clock time of the run.
    pub elapsed: std::time::Duration,
    /// Number of candidate LHSs whose partition was evaluated.
    pub candidates_checked: usize,
}

impl MiningResult {
    /// Total number of (LHS, attribute) pairs, i.e. FDs counted
    /// attribute-wise.
    pub fn fd_count_attrwise(&self) -> usize {
        self.fds.iter().map(|f| f.rhs.len()).sum()
    }
}

/// Generates all `k`-subsets of `attrs`, in the canonical
/// combination order every level-wise pass in this crate shares (the
/// incremental replay of [`crate::incremental`] relies on walking the
/// exact same order as the from-scratch miner).
pub(crate) fn k_subsets(attrs: &[Attr], k: usize) -> Vec<AttrSet> {
    let mut out = Vec::new();
    let n = attrs.len();
    if k > n {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| attrs[i]).collect());
        // Next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + n - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// Mines minimal non-trivial FDs from an instance.
pub fn mine_fds(table: &Table, config: MinerConfig) -> MiningResult {
    let started = Instant::now();
    let enc = Encoded::new(table);
    mine_fds_encoded(&enc, table.schema().arity(), config, started)
}

/// A candidate partition: borrowed from the singles at level 1, owned
/// (freshly producted) everywhere else.
enum Part<'a> {
    Ref(&'a Partition),
    Own(Partition),
}

impl Part<'_> {
    fn get(&self) -> &Partition {
        match self {
            Part::Ref(p) => p,
            Part::Own(p) => p,
        }
    }
}

/// Builds `π_x` for a level-`k` candidate from the previous level's
/// cached partitions and the always-resident singles. Every immediate
/// prefix of a live candidate was itself a live candidate one level
/// down, so the prefix lookup fails only on budget eviction — then the
/// partition is folded from the singles by repeated products.
fn candidate_partition<'a>(
    enc: &Encoded,
    ns: NullSemantics,
    x: AttrSet,
    k: usize,
    singles: &'a [Partition],
    prev: &HashMap<AttrSet, Partition>,
    scratch: &mut ProductScratch,
) -> Part<'a> {
    match k {
        0 => Part::Own(Partition::universal(enc.rows())),
        1 => Part::Ref(&singles[x.first().expect("level-1 candidate").index()]),
        2 => {
            let mut it = x.iter();
            let a = it.next().expect("level-2 candidate");
            let b = it.next().expect("level-2 candidate");
            // Small combined code space: one fused counting sort over
            // both raw columns. Otherwise (a near-unique attribute in
            // the pair) sweep the smaller of the two singles — which is
            // then tiny. Ties keep attribute order; the result is
            // canonical either way.
            if Partition::by_pair_applicable(enc, a, b) {
                return Part::Own(Partition::by_pair(enc, a, b, ns));
            }
            let (base, by) =
                if singles[a.index()].stripped_rows() <= singles[b.index()].stripped_rows() {
                    (a, b)
                } else {
                    (b, a)
                };
            Part::Own(singles[base.index()].product_attr(enc, by, ns, scratch))
        }
        _ => {
            // Among the cached immediate prefixes, refine the cheapest
            // one: a candidate containing a selective attribute has a
            // tiny prefix partition, and the product cost is exactly
            // the prefix's stripped rows.
            let mut best: Option<(Attr, &Partition, usize)> = None;
            for a in x {
                if let Some(p) = prev.get(&(x - AttrSet::single(a))) {
                    let cost = p.stripped_rows();
                    if best.is_none_or(|(_, _, c)| cost < c) {
                        best = Some((a, p, cost));
                    }
                }
            }
            if let Some((a, p, _)) = best {
                sqlnf_obs::count!("discovery.mine.prev_level.hits");
                return Part::Own(p.product_attr(enc, a, ns, scratch));
            }
            sqlnf_obs::count!("discovery.mine.prev_level.misses");
            // Every prefix was evicted: fold from the singles, smallest
            // first, so the sweeps stay as cheap as possible.
            let mut attrs: Vec<Attr> = x.iter().collect();
            attrs.sort_by_key(|a| singles[a.index()].stripped_rows());
            let mut it = attrs.into_iter();
            let a = it.next().expect("non-empty");
            let mut p = None;
            for b in it {
                let next = p
                    .as_ref()
                    .unwrap_or(&singles[a.index()])
                    .product_attr(enc, b, ns, scratch);
                p = Some(next);
            }
            Part::Own(p.expect("level ≥ 3"))
        }
    }
}

/// One level's worth of work for a persistent pool worker: the shared
/// candidate slice, the cost-descending visit order, and the atomic
/// cursor every worker pulls from.
struct LevelJob {
    k: usize,
    candidates: Arc<Vec<(AttrSet, AttrSet)>>,
    order: Arc<Vec<u32>>,
    cursor: Arc<AtomicUsize>,
    prev: Arc<HashMap<AttrSet, Partition>>,
    store: bool,
}

/// What a worker sends back per level: FDs and partition shards, each
/// tagged with the candidate index so the main thread can restore
/// candidate order exactly regardless of which worker pulled what.
/// Shard entries carry their precomputed cache size so the merge loop
/// stays trivial.
struct LevelOut {
    fds: Vec<(u32, MinedFd)>,
    shard: Vec<(u32, AttrSet, Partition, usize)>,
}

/// Check-only fast path for levels whose partitions are never stored:
/// sweep the refinement of the cheapest available prefix fused with
/// the constancy check ([`fd_targets_on_refinement`]), never
/// materializing `π_x`. Falls back to folding a prefix from the
/// singles when the budget evicted every cached one.
#[allow(clippy::too_many_arguments)]
fn check_candidate_fused(
    enc: &Encoded,
    sem: Semantics,
    ns: NullSemantics,
    x: AttrSet,
    k: usize,
    targets: AttrSet,
    singles: &[Partition],
    prev: &HashMap<AttrSet, Partition>,
    scratch: &mut ProductScratch,
    probes: &ProbeCache,
) -> AttrSet {
    if k == 2 {
        let mut it = x.iter();
        let a = it.next().expect("level-2 candidate");
        let b = it.next().expect("level-2 candidate");
        let (base, by) = if singles[a.index()].stripped_rows() <= singles[b.index()].stripped_rows()
        {
            (a, b)
        } else {
            (b, a)
        };
        return fd_targets_on_refinement(
            enc,
            x,
            &singles[base.index()],
            by,
            ns,
            targets,
            sem,
            scratch,
            probes,
        );
    }
    let mut best: Option<(Attr, &Partition, usize)> = None;
    for a in x {
        if let Some(p) = prev.get(&(x - AttrSet::single(a))) {
            let cost = p.stripped_rows();
            if best.is_none_or(|(_, _, c)| cost < c) {
                best = Some((a, p, cost));
            }
        }
    }
    if let Some((a, p, _)) = best {
        sqlnf_obs::count!("discovery.mine.prev_level.hits");
        return fd_targets_on_refinement(enc, x, p, a, ns, targets, sem, scratch, probes);
    }
    sqlnf_obs::count!("discovery.mine.prev_level.misses");
    let mut attrs: Vec<Attr> = x.iter().collect();
    attrs.sort_by_key(|a| singles[a.index()].stripped_rows());
    let by = attrs.pop().expect("non-empty");
    let mut it = attrs.into_iter();
    let a = it.next().expect("level ≥ 3");
    let mut p = None;
    for b in it {
        let next = p
            .as_ref()
            .unwrap_or(&singles[a.index()])
            .product_attr(enc, b, ns, scratch);
        p = Some(next);
    }
    let prefix = p.expect("level ≥ 3 folds at least one product");
    fd_targets_on_refinement(enc, x, &prefix, by, ns, targets, sem, scratch, probes)
}

/// The deterministic visit order for one level: candidate indexes
/// sorted by estimated check cost, most expensive first (LPT — longest
/// processing time — scheduling), ties broken by candidate index. The
/// estimate is what the check actually sweeps: the stripped rows of
/// the prefix partition the candidate will refine, or a
/// whole-table-sized pessimistic constant when every prefix was
/// evicted and the partition must be folded from the singles.
fn cost_order(
    candidates: &[(AttrSet, AttrSet)],
    k: usize,
    rows: usize,
    singles: &[Partition],
    prev: &HashMap<AttrSet, Partition>,
) -> Vec<u32> {
    let mut order: Vec<u32> = (0..candidates.len() as u32).collect();
    if k < 2 {
        return order;
    }
    let costs: Vec<usize> = candidates
        .iter()
        .map(|&(x, _)| {
            if k == 2 {
                x.iter()
                    .map(|a| singles[a.index()].stripped_rows())
                    .min()
                    .unwrap_or(0)
            } else {
                x.iter()
                    .filter_map(|a| prev.get(&(x - AttrSet::single(a))))
                    .map(|p| p.stripped_rows())
                    .min()
                    .unwrap_or_else(|| rows.saturating_mul(2))
            }
        })
        .collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i as usize]), i));
    order
}

/// The last lattice level's working set when the pre-last level was
/// check-only: each candidate refines exactly one `(k−1)`-prefix, so
/// only the *distinct* chosen prefixes are materialized — from the
/// retained level-`(k−2)` cache, one product each. The choice rule is
/// the cheapest **estimated** prefix (the minimum stripped size over
/// its cached `(k−2)`-sub-partitions): prefix choice affects
/// throughput only, never the refined result, so estimating instead of
/// measuring is sound. Deterministic throughout — first-use order
/// drives the byte-budget admission, ties break on the smallest
/// omitted attribute.
#[allow(clippy::too_many_arguments)]
fn build_needed_prefixes(
    enc: &Encoded,
    ns: NullSemantics,
    candidates: &[(AttrSet, AttrSet)],
    k: usize,
    singles: &[Partition],
    prev: &HashMap<AttrSet, Partition>,
    threads: usize,
    budget: usize,
) -> HashMap<AttrSet, Partition> {
    let pessimistic = enc.rows().saturating_mul(2);
    let est = |s: AttrSet| -> usize {
        let mut e = pessimistic;
        for b in s {
            if let Some(p) = prev.get(&(s - AttrSet::single(b))) {
                e = e.min(p.stripped_rows());
            }
        }
        e
    };
    let mut needed: Vec<AttrSet> = Vec::new();
    let mut seen: std::collections::HashSet<AttrSet> = std::collections::HashSet::new();
    for &(x, _) in candidates {
        let mut best: Option<(usize, Attr)> = None;
        for a in x {
            let e = est(x - AttrSet::single(a));
            if best.is_none_or(|(be, _)| e < be) {
                best = Some((e, a));
            }
        }
        let Some((min_est, best_a)) = best else {
            continue;
        };
        // Greedy sharing: a prefix already being built is free, so any
        // of the candidate's prefixes within 2× of the cheapest
        // estimate that is already chosen wins over minting a new one.
        // The check sweep aborts at the first refuting row, so a
        // same-magnitude prefix costs it nearly nothing — while every
        // *distinct* prefix costs a full product. Still deterministic:
        // `seen` evolves in candidate order.
        let chosen = x
            .iter()
            .map(|a| x - AttrSet::single(a))
            .find(|s| est(*s) <= min_est.saturating_mul(2) && seen.contains(s))
            .unwrap_or(x - AttrSet::single(best_a));
        if seen.insert(chosen) {
            needed.push(chosen);
        }
    }
    sqlnf_obs::count!("discovery.mine.lazy_prefix_builds", needed.len());
    let own = |part: Part| match part {
        Part::Own(p) => p,
        Part::Ref(p) => p.clone(),
    };
    let built: Vec<Partition> = if threads > 1 && needed.len() >= PAR_MIN {
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Partition>> = Vec::new();
        slots.resize_with(needed.len(), || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads.min(needed.len()))
                .map(|_| {
                    scope.spawn(|| {
                        let mut scratch = ProductScratch::for_encoded(enc);
                        let mut out = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= needed.len() {
                                break;
                            }
                            let p = candidate_partition(
                                enc,
                                ns,
                                needed[i],
                                k - 1,
                                singles,
                                prev,
                                &mut scratch,
                            );
                            out.push((i, own(p)));
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                for (i, p) in h.join().expect("prefix builder panicked") {
                    slots[i] = Some(p);
                }
            }
        });
        slots
            .into_iter()
            .map(|p| p.expect("every needed prefix built exactly once"))
            .collect()
    } else {
        let mut scratch = ProductScratch::for_encoded(enc);
        needed
            .iter()
            .map(|&s| {
                own(candidate_partition(
                    enc,
                    ns,
                    s,
                    k - 1,
                    singles,
                    prev,
                    &mut scratch,
                ))
            })
            .collect()
    };
    let mut map = HashMap::new();
    let mut bytes = 0usize;
    for (s, p) in needed.into_iter().zip(built) {
        let sz = p.approx_bytes() + std::mem::size_of::<AttrSet>();
        if bytes.saturating_add(sz) <= budget {
            bytes += sz;
            map.insert(s, p);
        } else {
            sqlnf_obs::count!("discovery.mine.prev_level.evictions");
        }
    }
    if bytes > 0 {
        sqlnf_obs::count_max!("discovery.mine.prev_level.bytes", bytes);
    }
    map
}

/// Drains the level's work queue from one thread: pulls candidate
/// positions off the shared cursor until the order is exhausted,
/// checking FDs and (when `store` is set) collecting owned partitions
/// for the next level's cache. Both output streams are tagged with the
/// candidate index. Also used by the serial path (with a trivial
/// identity order), so serial and parallel runs share one code path.
#[allow(clippy::too_many_arguments)]
fn run_queue(
    enc: &Encoded,
    sem: Semantics,
    ns: NullSemantics,
    k: usize,
    candidates: &[(AttrSet, AttrSet)],
    order: &[u32],
    cursor: &AtomicUsize,
    singles: &[Partition],
    prev: &HashMap<AttrSet, Partition>,
    store: bool,
    scratch: &mut ProductScratch,
    probes: &ProbeCache,
) -> LevelOut {
    let _busy = sqlnf_obs::span!("discovery.mine.worker_busy_ns");
    let mut fds = Vec::new();
    let mut shard = Vec::new();
    let mut processed = 0usize;
    loop {
        let pos = cursor.fetch_add(1, Ordering::Relaxed);
        if pos >= order.len() {
            break;
        }
        let i = order[pos];
        let (x, targets) = candidates[i as usize];
        processed += 1;
        if !store && k >= 2 {
            let holding =
                check_candidate_fused(enc, sem, ns, x, k, targets, singles, prev, scratch, probes);
            if !holding.is_empty() {
                fds.push((
                    i,
                    MinedFd {
                        lhs: x,
                        rhs: holding,
                    },
                ));
            }
            continue;
        }
        let p = candidate_partition(enc, ns, x, k, singles, prev, scratch);
        let holding = fd_targets_holding_cached(enc, x, p.get(), targets, sem, probes);
        if !holding.is_empty() {
            fds.push((
                i,
                MinedFd {
                    lhs: x,
                    rhs: holding,
                },
            ));
        }
        if store {
            if let Part::Own(p) = p {
                let sz = p.approx_bytes() + std::mem::size_of::<AttrSet>();
                shard.push((i, x, p, sz));
            }
        }
    }
    sqlnf_obs::count!("discovery.mine.worker_candidates", processed);
    LevelOut { fds, shard }
}

/// Mines from a pre-encoded instance (lets callers share the encoding
/// across several mining runs, as the discovery experiment does).
pub fn mine_fds_encoded(
    enc: &Encoded,
    arity: usize,
    config: MinerConfig,
    started: Instant,
) -> MiningResult {
    let _span = sqlnf_obs::span!("mine_fds");
    let attrs: Vec<Attr> = (0..arity).map(Attr::from).collect();
    let all: AttrSet = attrs.iter().copied().collect();
    let last_level = config.max_lhs.min(arity.saturating_sub(1));
    let sem = config.semantics;

    // The single-attribute partitions: always resident, the floor every
    // product chain bottoms out on. Each is an independent table sweep,
    // so with threads they are built off a shared atomic cursor — on
    // wide tables (hepatitis: 20 columns) this is the one serial stage
    // whose cost rivals a whole lattice level.
    let ns = null_semantics(sem);
    let singles: Vec<Partition> = if config.threads > 1 && arity > 1 {
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Partition>> = Vec::new();
        slots.resize_with(arity, || None);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.threads.min(arity))
                .map(|_| {
                    scope.spawn(|| {
                        let mut built = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= arity {
                                break;
                            }
                            built.push((i, Partition::by_attr(enc, Attr::from(i), ns)));
                        }
                        built
                    })
                })
                .collect();
            for h in handles {
                for (i, p) in h.join().expect("singles worker panicked") {
                    slots[i] = Some(p);
                }
            }
        });
        slots
            .into_iter()
            .map(|p| p.expect("every single built exactly once"))
            .collect()
    } else {
        attrs
            .iter()
            .map(|&a| Partition::by_attr(enc, a, ns))
            .collect()
    };
    let singles = &singles;

    // One probe cache for the whole run, shared by every worker:
    // certain-semantics candidates with the same nullable footprint
    // reuse one index (see `check::ProbeCache`).
    let probes = ProbeCache::new(enc);
    let probes = &probes;

    // minimal_lhs_for[a] = the minimal LHSs recorded for attribute a.
    let mut minimal_for: Vec<Vec<AttrSet>> = vec![Vec::new(); arity];
    let mut found: Vec<MinedFd> = Vec::new();
    let mut checked = 0usize;

    // One scope for the whole run: workers (spawned lazily at the first
    // level big enough to parallelise) persist across levels, each
    // owning its product scratch. Dropping the pool at scope end closes
    // the job channels and lets the workers drain out.
    std::thread::scope(|scope| {
        let mut pool: Vec<(Sender<LevelJob>, Receiver<LevelOut>)> = Vec::new();
        let mut prev: Arc<HashMap<AttrSet, Partition>> = Arc::new(HashMap::new());
        let mut scratch = ProductScratch::for_encoded(enc);

        for k in 0..=last_level {
            sqlnf_obs::count!("discovery.mine.lattice_levels");
            // Candidates of this level, with their uncovered targets.
            let generated = k_subsets(&attrs, k);
            let generated_count = generated.len();
            let candidates: Vec<(AttrSet, AttrSet)> = generated
                .into_iter()
                .filter_map(|x| {
                    let mut targets = AttrSet::EMPTY;
                    for a in all - x {
                        if !minimal_for[a.index()].iter().any(|y| y.is_subset(x)) {
                            targets.insert(a);
                        }
                    }
                    (!targets.is_empty()).then_some((x, targets))
                })
                .collect();
            checked += candidates.len();
            sqlnf_obs::count!("discovery.mine.candidates_checked", candidates.len());
            sqlnf_obs::count!(
                "discovery.mine.candidates_pruned",
                generated_count - candidates.len()
            );
            sqlnf_obs::trace!(
                "mine level {k}: {} candidates ({} pruned)",
                candidates.len(),
                generated_count - candidates.len()
            );

            // Keep this level's partitions only if the next level will
            // consult them (level-2 candidates product the singles
            // directly, so level-1 partitions are never stored). On a
            // deep lattice the *pre-last* level is also check-only:
            // each last-level candidate refines exactly one prefix
            // partition, so the last level materializes only the
            // distinct prefixes actually chosen (see
            // [`build_needed_prefixes`]) instead of eagerly building
            // every pre-last candidate's partition — on adult-shaped
            // tables that eager build dominated the whole run.
            let defer_prelast = last_level >= 4;
            let store = k >= 2
                && k < if defer_prelast {
                    last_level - 1
                } else {
                    last_level
                };
            let level_prev: Arc<HashMap<AttrSet, Partition>> = if defer_prelast && k == last_level {
                Arc::new(build_needed_prefixes(
                    enc,
                    ns,
                    &candidates,
                    k,
                    singles,
                    &prev,
                    config.threads,
                    config.cache_budget,
                ))
            } else {
                Arc::clone(&prev)
            };

            let outs: Vec<LevelOut> = if config.threads > 1
                && candidates.len() >= PAR_MIN.max(config.threads)
            {
                if pool.is_empty() {
                    for _ in 0..config.threads {
                        let (job_tx, job_rx) = channel::<LevelJob>();
                        let (out_tx, out_rx) = channel::<LevelOut>();
                        scope.spawn(move || {
                            sqlnf_obs::count!("discovery.mine.worker_spawns");
                            let mut scratch = ProductScratch::for_encoded(enc);
                            for job in job_rx {
                                let out = run_queue(
                                    enc,
                                    sem,
                                    ns,
                                    job.k,
                                    &job.candidates,
                                    &job.order,
                                    &job.cursor,
                                    singles,
                                    &job.prev,
                                    job.store,
                                    &mut scratch,
                                    probes,
                                );
                                if out_tx.send(out).is_err() {
                                    break;
                                }
                            }
                        });
                        pool.push((job_tx, out_rx));
                    }
                }
                // One shared queue: every worker pulls candidates
                // (most expensive first) off the same cursor, so no
                // thread idles while another drains a heavy chunk.
                let order = Arc::new(cost_order(&candidates, k, enc.rows(), singles, &level_prev));
                let candidates = Arc::new(candidates);
                let cursor = Arc::new(AtomicUsize::new(0));
                for (job_tx, _) in &pool {
                    job_tx
                        .send(LevelJob {
                            k,
                            candidates: Arc::clone(&candidates),
                            order: Arc::clone(&order),
                            cursor: Arc::clone(&cursor),
                            prev: Arc::clone(&level_prev),
                            store,
                        })
                        .expect("miner worker hung up");
                }
                pool.iter()
                    .map(|(_, out_rx)| out_rx.recv().expect("miner worker panicked"))
                    .collect()
            } else {
                let order: Vec<u32> = (0..candidates.len() as u32).collect();
                let cursor = AtomicUsize::new(0);
                vec![run_queue(
                    enc,
                    sem,
                    ns,
                    k,
                    &candidates,
                    &order,
                    &cursor,
                    singles,
                    &level_prev,
                    store,
                    &mut scratch,
                    probes,
                )]
            };

            // Retire the previous level when this one replaces it (a
            // check-only pre-last level retains it — the last level
            // still products from it), then merge this level — FDs and
            // shards sorted back into candidate order first, so the
            // result and the cache contents (budget admission
            // included) never depend on which worker processed what.
            if store && !prev.is_empty() {
                sqlnf_obs::count!("discovery.mine.prev_level.evictions", prev.len());
            }
            let mut fds: Vec<(u32, MinedFd)> = Vec::new();
            let mut shard: Vec<(u32, AttrSet, Partition, usize)> = Vec::new();
            for out in outs {
                fds.extend(out.fds);
                shard.extend(out.shard);
            }
            fds.sort_by_key(|&(i, _)| i);
            shard.sort_by_key(|s| s.0);
            let mut next: HashMap<AttrSet, Partition> = HashMap::new();
            let mut bytes = 0usize;
            for (_, x, p, sz) in shard {
                if bytes.saturating_add(sz) <= config.cache_budget {
                    bytes += sz;
                    next.insert(x, p);
                } else {
                    sqlnf_obs::count!("discovery.mine.prev_level.evictions");
                }
            }
            for (_, fd) in fds {
                for a in fd.rhs {
                    minimal_for[a.index()].push(fd.lhs);
                }
                found.push(fd);
            }
            if bytes > 0 {
                sqlnf_obs::count_max!("discovery.mine.prev_level.bytes", bytes);
            }
            if store {
                prev = Arc::new(next);
            }
        }
    });

    MiningResult {
        fds: found,
        elapsed: started.elapsed(),
        candidates_checked: checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::fd_holds;
    use sqlnf_model::prelude::*;

    #[test]
    fn k_subsets_counts() {
        let attrs: Vec<Attr> = (0..5).map(Attr::from).collect();
        assert_eq!(k_subsets(&attrs, 0), vec![AttrSet::EMPTY]);
        assert_eq!(k_subsets(&attrs, 1).len(), 5);
        assert_eq!(k_subsets(&attrs, 2).len(), 10);
        assert_eq!(k_subsets(&attrs, 3).len(), 10);
        assert_eq!(k_subsets(&attrs, 5).len(), 1);
        assert_eq!(k_subsets(&attrs, 6).len(), 0);
        // All distinct and of the right size.
        let threes = k_subsets(&attrs, 3);
        assert!(threes.iter().all(|s| s.len() == 3));
    }

    fn sample() -> Table {
        // b is a function of a; c is a function of (a,d) but not of a or
        // d alone; e is constant.
        TableBuilder::new("r", ["a", "b", "c", "d", "e"], &[])
            .row(tuple![1i64, 10i64, 100i64, 1i64, 7i64])
            .row(tuple![1i64, 10i64, 200i64, 2i64, 7i64])
            .row(tuple![2i64, 20i64, 100i64, 2i64, 7i64])
            .row(tuple![2i64, 20i64, 200i64, 1i64, 7i64])
            .build()
    }

    #[test]
    fn mines_planted_structure() {
        let t = sample();
        let res = mine_fds(&t, MinerConfig::new(Semantics::Classical));
        let s = t.schema().clone();
        let find = |lhs: AttrSet| res.fds.iter().find(|f| f.lhs == lhs);
        // ∅ → e (constant column).
        let empty = find(AttrSet::EMPTY).expect("constant column");
        assert!(empty.rhs.contains(s.a("e")));
        // a → b minimal.
        let a = find(AttrSet::single(s.a("a"))).expect("a → b");
        assert!(a.rhs.contains(s.a("b")));
        assert!(!a.rhs.contains(s.a("c")));
        // (a,d) → c minimal (with b ↔ a, (b,d) → c also minimal).
        let ad = find(s.set(&["a", "d"])).expect("ad → c");
        assert!(ad.rhs.contains(s.a("c")));
    }

    #[test]
    fn minimality_is_respected() {
        let t = sample();
        let res = mine_fds(&t, MinerConfig::new(Semantics::Classical));
        let e = Encoded::new(&t);
        for fd in &res.fds {
            for a in fd.rhs {
                // Holds at the recorded LHS…
                assert!(fd_holds(&e, fd.lhs, a, Semantics::Classical));
                // …and at no immediate subset.
                for b in fd.lhs {
                    let smaller = fd.lhs - AttrSet::single(b);
                    assert!(
                        !fd_holds(&e, smaller, a, Semantics::Classical),
                        "lhs={:?} a={a:?} not minimal",
                        fd.lhs
                    );
                }
            }
        }
    }

    #[test]
    fn semantics_differ_on_nulls() {
        // a has a null: p-FD a →_s b holds (null row is similar to
        // nothing) but the c-FD fails (⊥ weakly matches both groups);
        // classically (⊥ a value) it also holds.
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, 10i64])
            .row(tuple![null, 20i64])
            .row(tuple![2i64, 30i64])
            .build();
        let possible = mine_fds(&t, MinerConfig::new(Semantics::Possible));
        let certain = mine_fds(&t, MinerConfig::new(Semantics::Certain));
        let classical = mine_fds(&t, MinerConfig::new(Semantics::Classical));
        let weak = mine_fds(&t, MinerConfig::new(Semantics::Weak));
        let a = AttrSet::from_indices([0]);
        let b = sqlnf_model::attrs::Attr(1);
        let has = |r: &MiningResult| r.fds.iter().any(|f| f.lhs == a && f.rhs.contains(b));
        assert!(has(&possible));
        assert!(has(&classical));
        assert!(!has(&certain));
        // Weak is laxer still: the ⊥ row's fresh completion never
        // collides with 1 or 2, so a →_weak b holds like the p-FD.
        assert!(has(&weak));
    }

    /// certain ⊆ weak as *mined sets*, checked semantically: every
    /// certain-mined `lhs → a` must be covered by a weak-mined FD with
    /// `Y ⊆ lhs` determining `a` (minimal LHSs can genuinely shrink
    /// under the laxer semantics).
    #[test]
    fn certain_mined_contained_in_weak_mined() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for case in 0..12 {
            let schema = TableSchema::new(
                "r",
                (0..5).map(|i| format!("c{i}")).collect::<Vec<_>>(),
                &[],
            );
            let mut t = Table::new(schema);
            for _ in 0..40 {
                t.push(Tuple::new(
                    (0..5)
                        .map(|_| {
                            if rng.gen_bool(0.2) {
                                Value::Null
                            } else {
                                Value::Int(rng.gen_range(0..4))
                            }
                        })
                        .collect::<Vec<_>>(),
                ));
            }
            let certain = mine_fds(&t, MinerConfig::new(Semantics::Certain).with_max_lhs(3));
            let weak = mine_fds(&t, MinerConfig::new(Semantics::Weak).with_max_lhs(3));
            for fd in &certain.fds {
                for a in fd.rhs {
                    assert!(
                        weak.fds
                            .iter()
                            .any(|w| w.lhs.is_subset(fd.lhs) && w.rhs.contains(a)),
                        "case {case}: certain {:?} -> {a:?} uncovered weakly\n{t}",
                        fd.lhs
                    );
                }
            }
        }
    }

    #[test]
    fn max_lhs_cap_is_respected() {
        let t = sample();
        let res = mine_fds(&t, MinerConfig::new(Semantics::Classical).with_max_lhs(1));
        assert!(res.fds.iter().all(|f| f.lhs.len() <= 1));
        assert!(res.candidates_checked > 0);
    }

    #[test]
    fn parallel_equals_serial() {
        // Determinism across thread counts, all semantics, on a table
        // large enough to trigger the parallel path.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let schema = TableSchema::new(
            "r",
            (0..8).map(|i| format!("c{i}")).collect::<Vec<_>>(),
            &[],
        );
        let mut t = Table::new(schema);
        for _ in 0..150 {
            t.push(Tuple::new(
                (0..8)
                    .map(|c| {
                        if rng.gen_bool(0.1) {
                            Value::Null
                        } else {
                            Value::Int(rng.gen_range(0..4 + c as i64))
                        }
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        for sem in [
            Semantics::Classical,
            Semantics::Possible,
            Semantics::Certain,
            Semantics::Weak,
        ] {
            for budget in [0, 4096, DEFAULT_CACHE_BUDGET] {
                let config = |threads| {
                    MinerConfig::new(sem)
                        .with_max_lhs(3)
                        .with_cache_budget(budget)
                        .with_threads(threads)
                };
                let serial = mine_fds(&t, config(1));
                for threads in [2, 4, 8] {
                    let parallel = mine_fds(&t, config(threads));
                    // Byte-identical, order included: the index-tagged
                    // merge restores exact candidate order.
                    assert_eq!(
                        serial.fds, parallel.fds,
                        "{sem:?} budget={budget} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_single_row_tables() {
        let schema = TableSchema::new("r", ["a", "b"], &[]);
        let empty = Table::new(schema.clone());
        let res = mine_fds(&empty, MinerConfig::new(Semantics::Certain));
        // Everything holds vacuously: ∅ → a, b.
        assert_eq!(res.fds.len(), 1);
        assert_eq!(res.fds[0].lhs, AttrSet::EMPTY);
        assert_eq!(res.fds[0].rhs.len(), 2);
    }
}
