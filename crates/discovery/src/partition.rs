//! Stripped partitions à la TANE, adapted to the paper's similarity
//! semantics.
//!
//! A *partition* of the rows by an attribute set `X` groups rows with
//! identical `X`-values; *stripped* means singleton classes are dropped
//! (they can never participate in a violation). Two flavours matter:
//!
//! * [`NullSemantics::Strong`]: strong similarity — a row with `⊥` in
//!   `X` is similar to nothing, so null-bearing rows become singletons
//!   and vanish. This is the grouping for p-FD/p-key checking.
//! * [`NullSemantics::NullAsValue`]: the classical discovery convention
//!   of the FD-mining literature (nulls compared like ordinary values),
//!   used by the classical baseline and for RHS equality (`⊥ = ⊥`).
//!
//! Weak similarity is **not** an equivalence relation and has no
//! partition; c-FD checking handles null-bearing rows by probing (see
//! [`crate::check`]).

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::table::Table;
use sqlnf_model::value::Value;
use std::collections::HashMap;

/// How null markers participate in the grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NullSemantics {
    /// `⊥` equals nothing, not even `⊥` — strong similarity.
    Strong,
    /// `⊥` is grouped like an ordinary (single) value — classical
    /// discovery and syntactic RHS equality.
    NullAsValue,
}

/// Dictionary-encoded columns: each cell as a small integer, with `0`
/// reserved for `⊥`.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// `codes[a][row]` is the code of row `row` in column `a`; `0` = ⊥.
    codes: Vec<Vec<u32>>,
    /// `null_rows[a]` is the ascending list of rows with `⊥` in column
    /// `a` — lets null-aware checks skip full-table scans when a
    /// candidate's columns are (mostly) total.
    null_rows: Vec<Vec<u32>>,
    rows: usize,
}

impl Encoded {
    /// Encodes a table.
    pub fn new(table: &Table) -> Encoded {
        let arity = table.schema().arity();
        let mut codes = vec![Vec::with_capacity(table.len()); arity];
        let mut null_rows = vec![Vec::new(); arity];
        for (ci, col) in codes.iter_mut().enumerate() {
            let a = Attr::from(ci);
            let mut dict: HashMap<&Value, u32> = HashMap::new();
            for (r, t) in table.rows().iter().enumerate() {
                let v = t.get(a);
                let code = if v.is_null() {
                    null_rows[ci].push(r as u32);
                    0
                } else {
                    let next = dict.len() as u32 + 1;
                    *dict.entry(v).or_insert(next)
                };
                col.push(code);
            }
        }
        Encoded {
            codes,
            null_rows,
            rows: table.len(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The code of `(row, a)`; `0` means `⊥`.
    #[inline]
    pub fn code(&self, row: usize, a: Attr) -> u32 {
        self.codes[a.index()][row]
    }

    /// Whether the row is `X`-total.
    pub fn is_total_on(&self, row: usize, x: AttrSet) -> bool {
        x.iter().all(|a| self.code(row, a) != 0)
    }

    /// Whether two rows are weakly similar on `X`.
    pub fn weakly_similar(&self, r: usize, s: usize, x: AttrSet) -> bool {
        x.iter().all(|a| {
            let (cr, cs) = (self.code(r, a), self.code(s, a));
            cr == 0 || cs == 0 || cr == cs
        })
    }

    /// Whether two rows are syntactically equal on `X` (`⊥ = ⊥`).
    pub fn equal_on(&self, r: usize, s: usize, x: AttrSet) -> bool {
        x.iter().all(|a| self.code(r, a) == self.code(s, a))
    }

    /// The columns that contain no `⊥` at all.
    pub fn null_free_columns(&self) -> AttrSet {
        (0..self.codes.len())
            .filter(|&ci| self.null_rows[ci].is_empty())
            .map(Attr::from)
            .collect()
    }

    /// The columns that carry at least one `⊥` — the complement of
    /// [`Encoded::null_free_columns`]. A weak-similarity probe of `X`
    /// only ever depends on `X ∩ nullable_columns` plus an equality
    /// filter on the rest (see [`crate::check::ProbeCache`]).
    pub fn nullable_columns(&self) -> AttrSet {
        (0..self.codes.len())
            .filter(|&ci| !self.null_rows[ci].is_empty())
            .map(Attr::from)
            .collect()
    }

    /// Upper bound on `|null_rows_on(x)|` without merging: the sum of
    /// the per-column null counts. Used to price a direct pair scan
    /// against building a [`crate::check::ProbeIndex`].
    pub fn null_count_bound(&self, x: AttrSet) -> usize {
        x.iter().map(|a| self.null_rows[a.index()].len()).sum()
    }

    /// Whether any column of `X` carries a `⊥`. `O(|X|)` — the cheap
    /// guard that lets weak-similarity probing skip total candidates
    /// without touching the rows.
    pub fn has_nulls_on(&self, x: AttrSet) -> bool {
        x.iter().any(|a| !self.null_rows[a.index()].is_empty())
    }

    /// The rows carrying `⊥` somewhere in `X`, ascending. Merges the
    /// per-column null lists instead of scanning the table, so the cost
    /// is proportional to the nulls present, not to `rows × |X|`.
    pub fn null_rows_on(&self, x: AttrSet) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for a in x {
            let col = &self.null_rows[a.index()];
            if col.is_empty() {
                continue;
            }
            if out.is_empty() {
                out.extend(col.iter().map(|&r| r as usize));
            } else {
                // Sorted union.
                let mut merged = Vec::with_capacity(out.len() + col.len());
                let (mut i, mut j) = (0, 0);
                while i < out.len() && j < col.len() {
                    let (x_, y) = (out[i], col[j] as usize);
                    match x_.cmp(&y) {
                        std::cmp::Ordering::Less => {
                            merged.push(x_);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(y);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(x_);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&out[i..]);
                merged.extend(col[j..].iter().map(|&r| r as usize));
                out = merged;
            }
        }
        out
    }
}

/// The per-column dictionaries behind an [`Encoded`], kept alive so
/// the encoding can be **extended** one appended row at a time instead
/// of rebuilt from scratch.
///
/// Codes are assigned in first-appearance order, exactly as
/// [`Encoded::new`] assigns them, so an encoding grown through
/// [`EncodedAppender::push`] is byte-identical to a fresh encode of the
/// same rows in the same order. That equivalence is what lets the
/// incremental miner keep a dense view warm across inserts without
/// weakening the determinism contract.
#[derive(Debug, Clone)]
pub struct EncodedAppender {
    /// `dicts[a]` maps each non-null value seen in column `a` to its
    /// code (`0` stays reserved for `⊥`).
    dicts: Vec<HashMap<Value, u32>>,
}

impl EncodedAppender {
    /// Encodes a table and returns the encoding together with the
    /// dictionaries that produced it, ready to accept appended rows.
    pub fn build(table: &Table) -> (Encoded, EncodedAppender) {
        let arity = table.schema().arity();
        let mut codes = vec![Vec::with_capacity(table.len()); arity];
        let mut null_rows = vec![Vec::new(); arity];
        let mut dicts: Vec<HashMap<Value, u32>> = vec![HashMap::new(); arity];
        for (ci, col) in codes.iter_mut().enumerate() {
            let a = Attr::from(ci);
            let dict = &mut dicts[ci];
            for (r, t) in table.rows().iter().enumerate() {
                let v = t.get(a);
                let code = if v.is_null() {
                    null_rows[ci].push(r as u32);
                    0
                } else {
                    match dict.get(v) {
                        Some(&c) => c,
                        None => {
                            let next = dict.len() as u32 + 1;
                            dict.insert(v.clone(), next);
                            next
                        }
                    }
                };
                col.push(code);
            }
        }
        (
            Encoded {
                codes,
                null_rows,
                rows: table.len(),
            },
            EncodedAppender { dicts },
        )
    }

    /// Appends one row to the encoding in `O(arity)` dictionary probes.
    pub fn push(&mut self, enc: &mut Encoded, t: &sqlnf_model::tuple::Tuple) {
        let row = enc.rows as u32;
        for (ci, dict) in self.dicts.iter_mut().enumerate() {
            let v = t.get(Attr::from(ci));
            let code = if v.is_null() {
                enc.null_rows[ci].push(row);
                0
            } else {
                match dict.get(v) {
                    Some(&c) => c,
                    None => {
                        let next = dict.len() as u32 + 1;
                        dict.insert(v.clone(), next);
                        next
                    }
                }
            };
            enc.codes[ci].push(code);
        }
        enc.rows += 1;
    }
}

/// A stripped partition: classes of size ≥ 2, each a sorted row list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Equivalence classes with at least two rows.
    pub classes: Vec<Vec<u32>>,
}

/// Reusable scratch for [`Partition::product`] and
/// [`Partition::product_attr`]: one `u32` probe table (keyed by row id
/// for the binary product, by dictionary code for the attribute
/// product) plus per-group slot buffers, owned by a thread (a miner
/// worker, a [`crate::cache::PartitionCtx`]) and reused across every
/// intersection it performs — the per-candidate `HashMap` allocations
/// of the old refinement path are gone entirely.
#[derive(Debug, Default)]
pub struct ProductScratch {
    /// `probe[row]` = 1-based class id of `row` in the left partition
    /// of the running product; `0` = row absent. Only the labels set by
    /// a product are cleared afterwards, so reuse costs no wipe.
    probe: Vec<u32>,
    /// Slot buffers per left class; capacity retained across products.
    slots: Vec<Vec<u32>>,
    /// Left-class ids touched while sweeping one right class.
    touched: Vec<u32>,
    /// `heads[id − 1]` = first row of subclass `id` during a fused
    /// [`Partition::for_each_refined_pair`] sweep. Overwritten on
    /// relabel, so it needs no clearing — and the fused sweep never
    /// dirties `slots`, which [`Partition::product_attr`] relies on
    /// being empty.
    heads: Vec<u32>,
}

impl ProductScratch {
    /// Fresh scratch; the probe table grows on demand.
    pub fn new() -> ProductScratch {
        ProductScratch::default()
    }

    /// Fresh scratch pre-sized for `rows` rows.
    pub fn with_rows(rows: usize) -> ProductScratch {
        ProductScratch {
            probe: vec![0; rows],
            slots: Vec::new(),
            touched: Vec::new(),
            heads: Vec::new(),
        }
    }

    fn ensure(&mut self, classes: usize) {
        if self.slots.len() < classes {
            self.slots.resize_with(classes, Vec::new);
        }
    }

    #[inline]
    fn label(&mut self, row: u32, id: u32) {
        let r = row as usize;
        if r >= self.probe.len() {
            self.probe.resize(r + 1, 0);
        }
        self.probe[r] = id;
    }

    #[inline]
    fn probe_label(&self, row: u32) -> u32 {
        self.probe.get(row as usize).copied().unwrap_or(0)
    }

    #[inline]
    fn clear_label(&mut self, row: u32) {
        self.probe[row as usize] = 0;
    }
}

impl Partition {
    /// Partition by a single attribute.
    pub fn by_attr(enc: &Encoded, a: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.builds");
        sqlnf_obs::count!("discovery.partition.rows_scanned", enc.rows());
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in 0..enc.rows() {
            let c = enc.code(r, a);
            if c == 0 && sem == NullSemantics::Strong {
                continue; // null row: strongly similar to nothing
            }
            groups.entry(c).or_default().push(r as u32);
        }
        let mut classes: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        classes.sort();
        Partition { classes }
    }

    /// The trivial partition over the empty attribute set: one class of
    /// all rows.
    pub fn universal(rows: usize) -> Partition {
        if rows < 2 {
            return Partition { classes: vec![] };
        }
        Partition {
            classes: vec![(0..rows as u32).collect()],
        }
    }

    /// Partition by an attribute set (product of attribute partitions).
    pub fn by_set(enc: &Encoded, x: AttrSet, sem: NullSemantics) -> Partition {
        let mut attrs = x.iter();
        let first = match attrs.next() {
            None => return Partition::universal(enc.rows()),
            Some(a) => a,
        };
        let mut p = Partition::by_attr(enc, first, sem);
        for a in attrs {
            p = p.refine_by(enc, a, sem);
        }
        p
    }

    /// Refines the partition by one more attribute.
    pub fn refine_by(&self, enc: &Encoded, a: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.intersections");
        sqlnf_obs::count!(
            "discovery.partition.rows_scanned",
            self.classes.iter().map(|c| c.len()).sum::<usize>()
        );
        let mut classes = Vec::new();
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for class in &self.classes {
            groups.clear();
            for &r in class {
                let c = enc.code(r as usize, a);
                if c == 0 && sem == NullSemantics::Strong {
                    continue;
                }
                groups.entry(c).or_default().push(r);
            }
            for g in groups.drain().map(|(_, g)| g) {
                if g.len() >= 2 {
                    classes.push(g);
                }
            }
        }
        classes.sort();
        Partition { classes }
    }

    /// TANE-style product `π_self · π_other` in one linear sweep over
    /// the two stripped partitions, using a reusable probe table —
    /// no per-class hashing, no allocation beyond the emitted classes.
    ///
    /// Correctness: two rows share a class of the product iff they
    /// share a class in *both* inputs. Under either [`NullSemantics`]
    /// this is exactly the stripped partition of the attribute-set
    /// union (strong similarity drops null-bearing rows from both
    /// sides; null-as-value keeps `⊥` as the code `0`), so
    /// `π_X.product(π_Y) == Partition::by_set(enc, X ∪ Y)` — the
    /// equality the `product_matches_by_set` property test pins down.
    /// The result is canonical (sorted classes of sorted rows), so
    /// `PartialEq` agreement with [`Partition::by_set`] is structural.
    pub fn product(&self, other: &Partition, scratch: &mut ProductScratch) -> Partition {
        sqlnf_obs::count!("discovery.partition.products");
        scratch.ensure(self.classes.len());
        let mut scanned = 0usize;
        // Label every row of `self` with its class id (1-based; 0 =
        // absent, i.e. stripped singleton or dropped null row).
        for (i, class) in self.classes.iter().enumerate() {
            scanned += class.len();
            for &r in class {
                scratch.label(r, i as u32 + 1);
            }
        }
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &other.classes {
            scanned += class.len();
            for &r in class {
                let id = scratch.probe_label(r);
                if id != 0 {
                    let slot = &mut scratch.slots[id as usize - 1];
                    if slot.is_empty() {
                        scratch.touched.push(id - 1);
                    }
                    slot.push(r);
                }
            }
            for &i in &scratch.touched {
                let slot = &mut scratch.slots[i as usize];
                if slot.len() >= 2 {
                    classes.push(std::mem::take(slot));
                } else {
                    slot.clear();
                }
            }
            scratch.touched.clear();
        }
        // Reset only the labels we set, keeping the probe table clean
        // for the next product without an O(rows) wipe.
        for class in &self.classes {
            for &r in class {
                scratch.clear_label(r);
            }
        }
        sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
        classes.sort();
        Partition { classes }
    }

    /// The product `π_self · π_{a}` in one sweep over `self`'s stripped
    /// classes, reading the dictionary codes of `a` directly instead of
    /// materializing (or even touching) the single-attribute partition.
    /// This is the miner's refinement step: its cost is proportional to
    /// the rows inside `self`'s classes — which shrink rapidly as the
    /// lattice level grows — not to the table. Same canonical result as
    /// `product(&Partition::by_attr(enc, a, sem))` and as
    /// [`Partition::refine_by`], without the per-class `HashMap`.
    pub fn product_attr(
        &self,
        enc: &Encoded,
        a: Attr,
        sem: NullSemantics,
        scratch: &mut ProductScratch,
    ) -> Partition {
        sqlnf_obs::count!("discovery.partition.products");
        sqlnf_obs::count!(
            "discovery.partition.rows_scanned",
            self.classes.iter().map(|c| c.len()).sum::<usize>()
        );
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &self.classes {
            // Group the class by code, using the probe table as a
            // code → slot map scoped to this class.
            let mut used = 0u32;
            for &r in class {
                let c = enc.code(r as usize, a);
                if c == 0 && sem == NullSemantics::Strong {
                    continue;
                }
                let mut id = scratch.probe_label(c);
                if id == 0 {
                    used += 1;
                    id = used;
                    scratch.touched.push(c);
                    scratch.ensure(used as usize);
                    scratch.label(c, id);
                }
                scratch.slots[id as usize - 1].push(r);
            }
            for slot in scratch.slots[..used as usize].iter_mut() {
                if slot.len() >= 2 {
                    classes.push(std::mem::take(slot));
                } else {
                    slot.clear();
                }
            }
            while let Some(c) = scratch.touched.pop() {
                scratch.clear_label(c);
            }
        }
        classes.sort();
        Partition { classes }
    }

    /// Sweeps the refinement `π_self · π_{a}` *without materializing
    /// it*: for every row `r` that lands in an already-headed subclass,
    /// calls `f(head, r)` where `head` is the subclass's first row.
    /// Stops — and returns `false` — as soon as `f` does, skipping the
    /// rest of the sweep entirely.
    ///
    /// This is the check-only fast path for lattice levels whose
    /// partitions are never stored (the last level): a violated FD is
    /// usually refuted within a few rows, so fusing the product with
    /// the constancy check avoids paying the full prefix sweep per
    /// candidate. Only the rows actually visited count towards
    /// `discovery.partition.rows_scanned`.
    pub fn for_each_refined_pair(
        &self,
        enc: &Encoded,
        a: Attr,
        sem: NullSemantics,
        scratch: &mut ProductScratch,
        mut f: impl FnMut(u32, u32) -> bool,
    ) -> bool {
        sqlnf_obs::count!("discovery.partition.products");
        let mut scanned = 0usize;
        let mut live = true;
        'classes: for class in &self.classes {
            let mut used = 0u32;
            for &r in class {
                scanned += 1;
                let c = enc.code(r as usize, a);
                if c == 0 && sem == NullSemantics::Strong {
                    continue;
                }
                let id = scratch.probe_label(c);
                if id == 0 {
                    used += 1;
                    scratch.touched.push(c);
                    scratch.label(c, used);
                    if scratch.heads.len() < used as usize {
                        scratch.heads.resize(used as usize, 0);
                    }
                    scratch.heads[used as usize - 1] = r;
                } else if !f(scratch.heads[id as usize - 1], r) {
                    live = false;
                    while let Some(c) = scratch.touched.pop() {
                        scratch.clear_label(c);
                    }
                    break 'classes;
                }
            }
            while let Some(c) = scratch.touched.pop() {
                scratch.clear_label(c);
            }
        }
        sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
        live
    }

    /// Approximate heap footprint in bytes — the accounting unit of the
    /// level-wise partition cache budget.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Partition>()
            + self.classes.len() * std::mem::size_of::<Vec<u32>>()
            + self
                .classes
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// `Σ (|class| − 1)`: the TANE error measure. Zero iff the grouping
    /// is (a candidate for) a key under the chosen semantics.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Number of (non-singleton) classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Total rows inside the stripped classes — the cost of sweeping
    /// this partition in [`Partition::product_attr`]. Product callers
    /// use it to pick the *cheapest* available prefix (TANE: refine
    /// from the smallest representation; a candidate containing a
    /// near-unique attribute has an almost-empty stripped partition).
    pub fn stripped_rows(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Whether there are no classes of size ≥ 2.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn sample() -> Table {
        TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple!["x", 1i64])
            .row(tuple!["x", 1i64])
            .row(tuple![null, 1i64])
            .row(tuple![null, 2i64])
            .row(tuple!["y", 2i64])
            .build()
    }

    #[test]
    fn encoding_nulls_are_zero() {
        let t = sample();
        let e = Encoded::new(&t);
        assert_eq!(e.rows(), 5);
        assert_eq!(e.code(2, Attr(0)), 0);
        assert_ne!(e.code(0, Attr(0)), 0);
        assert_eq!(e.code(0, Attr(0)), e.code(1, Attr(0)));
        assert_ne!(e.code(0, Attr(0)), e.code(4, Attr(0)));
        assert_eq!(e.null_free_columns(), AttrSet::from_indices([1]));
        assert_eq!(e.null_rows_on(AttrSet::from_indices([0])), vec![2, 3]);
    }

    #[test]
    fn appended_encoding_matches_a_fresh_encode() {
        let t = sample();
        // Grow from a 2-row prefix to the full table one push at a time;
        // the result must be indistinguishable from encoding the whole
        // table in one pass (same codes, same null lists, same count).
        let prefix = Table::from_rows(t.schema().clone(), t.rows().iter().take(2).cloned());
        let (mut enc, mut app) = EncodedAppender::build(&prefix);
        for row in t.rows().iter().skip(2) {
            app.push(&mut enc, row);
        }
        let fresh = Encoded::new(&t);
        assert_eq!(enc.codes, fresh.codes);
        assert_eq!(enc.null_rows, fresh.null_rows);
        assert_eq!(enc.rows, fresh.rows);
    }

    #[test]
    fn strong_partition_drops_null_rows() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_attr(&e, Attr(0), NullSemantics::Strong);
        // Only {0,1} (the two "x" rows) form a class; nulls vanish and
        // "y" is a singleton.
        assert_eq!(p.classes, vec![vec![0, 1]]);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn null_as_value_groups_nulls_together() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_attr(&e, Attr(0), NullSemantics::NullAsValue);
        let mut classes = p.classes.clone();
        classes.sort();
        assert_eq!(classes, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn set_partition_refines() {
        let t = sample();
        let e = Encoded::new(&t);
        let ab = AttrSet::from_indices([0, 1]);
        let p_strong = Partition::by_set(&e, ab, NullSemantics::Strong);
        assert_eq!(p_strong.classes, vec![vec![0, 1]]);
        let p_nav = Partition::by_set(&e, ab, NullSemantics::NullAsValue);
        // (x,1) twice; (⊥,1) and (⊥,2) split.
        assert_eq!(p_nav.classes, vec![vec![0, 1]]);
    }

    #[test]
    fn universal_partition() {
        let p = Partition::universal(4);
        assert_eq!(p.classes, vec![vec![0, 1, 2, 3]]);
        assert_eq!(p.error(), 3);
        assert!(Partition::universal(1).is_empty());
    }

    #[test]
    fn empty_attr_set_is_universal() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_set(&e, AttrSet::EMPTY, NullSemantics::Strong);
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].len(), 5);
    }

    #[test]
    fn product_matches_by_set() {
        let t = sample();
        let e = Encoded::new(&t);
        let mut scratch = ProductScratch::new();
        let ab = AttrSet::from_indices([0, 1]);
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let pa = Partition::by_attr(&e, Attr(0), sem);
            let pb = Partition::by_attr(&e, Attr(1), sem);
            assert_eq!(
                pa.product(&pb, &mut scratch),
                Partition::by_set(&e, ab, sem),
                "{sem:?}"
            );
            // The universal partition is the product identity on
            // stripped partitions.
            let u = Partition::universal(e.rows());
            assert_eq!(pa.product(&u, &mut scratch), pa, "{sem:?} right-id");
            assert_eq!(u.product(&pa, &mut scratch), pa, "{sem:?} left-id");
        }
    }

    #[test]
    fn product_attr_matches_refine_by() {
        let t = sample();
        let e = Encoded::new(&t);
        let mut scratch = ProductScratch::new();
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let pa = Partition::by_attr(&e, Attr(0), sem);
            assert_eq!(
                pa.product_attr(&e, Attr(1), sem, &mut scratch),
                pa.refine_by(&e, Attr(1), sem),
                "{sem:?}"
            );
            let u = Partition::universal(e.rows());
            assert_eq!(
                u.product_attr(&e, Attr(0), sem, &mut scratch),
                Partition::by_attr(&e, Attr(0), sem),
                "{sem:?} from universal"
            );
        }
    }

    #[test]
    fn fused_sweep_leaves_scratch_clean_for_products() {
        // Regression: the fused pair sweep must not dirty the slot
        // buffers a later product on the SAME scratch relies on being
        // empty (it once stored subclass heads there, corrupting the
        // next product's classes).
        let t = sample();
        let e = Encoded::new(&t);
        let mut scratch = ProductScratch::new();
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let pa = Partition::by_attr(&e, Attr(0), sem);
            let mut pairs = 0usize;
            pa.for_each_refined_pair(&e, Attr(1), sem, &mut scratch, |head, r| {
                assert!(head < r, "heads precede members in sorted classes");
                pairs += 1;
                true
            });
            // A full (non-early-exited) sweep visits |class| − 1 pairs
            // per refined class.
            let refined = pa.refine_by(&e, Attr(1), sem);
            let expect: usize = refined.classes.iter().map(|c| c.len() - 1).sum();
            assert_eq!(pairs, expect, "{sem:?}");
            // The same scratch must still produce correct products.
            assert_eq!(
                pa.product_attr(&e, Attr(1), sem, &mut scratch),
                refined,
                "{sem:?} product after fused sweep"
            );
        }
    }

    #[test]
    fn weak_similarity_probe() {
        let t = sample();
        let e = Encoded::new(&t);
        let a = AttrSet::from_indices([0]);
        assert!(e.weakly_similar(2, 0, a)); // ⊥ vs x
        assert!(e.weakly_similar(2, 3, a)); // ⊥ vs ⊥
        assert!(!e.weakly_similar(0, 4, a)); // x vs y
        assert!(e.equal_on(2, 3, a)); // ⊥ = ⊥
        assert!(!e.equal_on(2, 0, a));
    }
}
