//! Stripped partitions à la TANE, adapted to the paper's similarity
//! semantics.
//!
//! A *partition* of the rows by an attribute set `X` groups rows with
//! identical `X`-values; *stripped* means singleton classes are dropped
//! (they can never participate in a violation). Two flavours matter:
//!
//! * [`NullSemantics::Strong`]: strong similarity — a row with `⊥` in
//!   `X` is similar to nothing, so null-bearing rows become singletons
//!   and vanish. This is the grouping for p-FD/p-key checking.
//! * [`NullSemantics::NullAsValue`]: the classical discovery convention
//!   of the FD-mining literature (nulls compared like ordinary values),
//!   used by the classical baseline and for RHS equality (`⊥ = ⊥`).
//!
//! Weak similarity is **not** an equivalence relation and has no
//! partition; c-FD checking handles null-bearing rows by probing (see
//! [`crate::check`]).

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::table::Table;
use sqlnf_model::value::Value;
use std::collections::HashMap;

/// How null markers participate in the grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NullSemantics {
    /// `⊥` equals nothing, not even `⊥` — strong similarity.
    Strong,
    /// `⊥` is grouped like an ordinary (single) value — classical
    /// discovery and syntactic RHS equality.
    NullAsValue,
}

/// Dictionary-encoded columns: each cell as a small integer, with `0`
/// reserved for `⊥`.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// `codes[a][row]` is the code of row `row` in column `a`; `0` = ⊥.
    codes: Vec<Vec<u32>>,
    rows: usize,
}

impl Encoded {
    /// Encodes a table.
    pub fn new(table: &Table) -> Encoded {
        let arity = table.schema().arity();
        let mut codes = vec![Vec::with_capacity(table.len()); arity];
        for (ci, col) in codes.iter_mut().enumerate() {
            let a = Attr::from(ci);
            let mut dict: HashMap<&Value, u32> = HashMap::new();
            for t in table.rows() {
                let v = t.get(a);
                let code = if v.is_null() {
                    0
                } else {
                    let next = dict.len() as u32 + 1;
                    *dict.entry(v).or_insert(next)
                };
                col.push(code);
            }
        }
        Encoded {
            codes,
            rows: table.len(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The code of `(row, a)`; `0` means `⊥`.
    #[inline]
    pub fn code(&self, row: usize, a: Attr) -> u32 {
        self.codes[a.index()][row]
    }

    /// Whether the row is `X`-total.
    pub fn is_total_on(&self, row: usize, x: AttrSet) -> bool {
        x.iter().all(|a| self.code(row, a) != 0)
    }

    /// Whether two rows are weakly similar on `X`.
    pub fn weakly_similar(&self, r: usize, s: usize, x: AttrSet) -> bool {
        x.iter().all(|a| {
            let (cr, cs) = (self.code(r, a), self.code(s, a));
            cr == 0 || cs == 0 || cr == cs
        })
    }

    /// Whether two rows are syntactically equal on `X` (`⊥ = ⊥`).
    pub fn equal_on(&self, r: usize, s: usize, x: AttrSet) -> bool {
        x.iter().all(|a| self.code(r, a) == self.code(s, a))
    }

    /// The columns that contain no `⊥` at all.
    pub fn null_free_columns(&self) -> AttrSet {
        (0..self.codes.len())
            .filter(|&ci| self.codes[ci].iter().all(|&c| c != 0))
            .map(Attr::from)
            .collect()
    }

    /// The rows carrying `⊥` somewhere in `X`.
    pub fn null_rows_on(&self, x: AttrSet) -> Vec<usize> {
        (0..self.rows)
            .filter(|&r| !self.is_total_on(r, x))
            .collect()
    }
}

/// A stripped partition: classes of size ≥ 2, each a sorted row list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Equivalence classes with at least two rows.
    pub classes: Vec<Vec<u32>>,
}

impl Partition {
    /// Partition by a single attribute.
    pub fn by_attr(enc: &Encoded, a: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.builds");
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for r in 0..enc.rows() {
            let c = enc.code(r, a);
            if c == 0 && sem == NullSemantics::Strong {
                continue; // null row: strongly similar to nothing
            }
            groups.entry(c).or_default().push(r as u32);
        }
        let mut classes: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        classes.sort();
        Partition { classes }
    }

    /// The trivial partition over the empty attribute set: one class of
    /// all rows.
    pub fn universal(rows: usize) -> Partition {
        if rows < 2 {
            return Partition { classes: vec![] };
        }
        Partition {
            classes: vec![(0..rows as u32).collect()],
        }
    }

    /// Partition by an attribute set (product of attribute partitions).
    pub fn by_set(enc: &Encoded, x: AttrSet, sem: NullSemantics) -> Partition {
        let mut attrs = x.iter();
        let first = match attrs.next() {
            None => return Partition::universal(enc.rows()),
            Some(a) => a,
        };
        let mut p = Partition::by_attr(enc, first, sem);
        for a in attrs {
            p = p.refine_by(enc, a, sem);
        }
        p
    }

    /// Refines the partition by one more attribute.
    pub fn refine_by(&self, enc: &Encoded, a: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.intersections");
        sqlnf_obs::count!(
            "discovery.partition.rows_scanned",
            self.classes.iter().map(|c| c.len()).sum::<usize>()
        );
        let mut classes = Vec::new();
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for class in &self.classes {
            groups.clear();
            for &r in class {
                let c = enc.code(r as usize, a);
                if c == 0 && sem == NullSemantics::Strong {
                    continue;
                }
                groups.entry(c).or_default().push(r);
            }
            for g in groups.drain().map(|(_, g)| g) {
                if g.len() >= 2 {
                    classes.push(g);
                }
            }
        }
        classes.sort();
        Partition { classes }
    }

    /// `Σ (|class| − 1)`: the TANE error measure. Zero iff the grouping
    /// is (a candidate for) a key under the chosen semantics.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Number of (non-singleton) classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether there are no classes of size ≥ 2.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn sample() -> Table {
        TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple!["x", 1i64])
            .row(tuple!["x", 1i64])
            .row(tuple![null, 1i64])
            .row(tuple![null, 2i64])
            .row(tuple!["y", 2i64])
            .build()
    }

    #[test]
    fn encoding_nulls_are_zero() {
        let t = sample();
        let e = Encoded::new(&t);
        assert_eq!(e.rows(), 5);
        assert_eq!(e.code(2, Attr(0)), 0);
        assert_ne!(e.code(0, Attr(0)), 0);
        assert_eq!(e.code(0, Attr(0)), e.code(1, Attr(0)));
        assert_ne!(e.code(0, Attr(0)), e.code(4, Attr(0)));
        assert_eq!(e.null_free_columns(), AttrSet::from_indices([1]));
        assert_eq!(e.null_rows_on(AttrSet::from_indices([0])), vec![2, 3]);
    }

    #[test]
    fn strong_partition_drops_null_rows() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_attr(&e, Attr(0), NullSemantics::Strong);
        // Only {0,1} (the two "x" rows) form a class; nulls vanish and
        // "y" is a singleton.
        assert_eq!(p.classes, vec![vec![0, 1]]);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn null_as_value_groups_nulls_together() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_attr(&e, Attr(0), NullSemantics::NullAsValue);
        let mut classes = p.classes.clone();
        classes.sort();
        assert_eq!(classes, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn set_partition_refines() {
        let t = sample();
        let e = Encoded::new(&t);
        let ab = AttrSet::from_indices([0, 1]);
        let p_strong = Partition::by_set(&e, ab, NullSemantics::Strong);
        assert_eq!(p_strong.classes, vec![vec![0, 1]]);
        let p_nav = Partition::by_set(&e, ab, NullSemantics::NullAsValue);
        // (x,1) twice; (⊥,1) and (⊥,2) split.
        assert_eq!(p_nav.classes, vec![vec![0, 1]]);
    }

    #[test]
    fn universal_partition() {
        let p = Partition::universal(4);
        assert_eq!(p.classes, vec![vec![0, 1, 2, 3]]);
        assert_eq!(p.error(), 3);
        assert!(Partition::universal(1).is_empty());
    }

    #[test]
    fn empty_attr_set_is_universal() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_set(&e, AttrSet::EMPTY, NullSemantics::Strong);
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].len(), 5);
    }

    #[test]
    fn weak_similarity_probe() {
        let t = sample();
        let e = Encoded::new(&t);
        let a = AttrSet::from_indices([0]);
        assert!(e.weakly_similar(2, 0, a)); // ⊥ vs x
        assert!(e.weakly_similar(2, 3, a)); // ⊥ vs ⊥
        assert!(!e.weakly_similar(0, 4, a)); // x vs y
        assert!(e.equal_on(2, 3, a)); // ⊥ = ⊥
        assert!(!e.equal_on(2, 0, a));
    }
}
