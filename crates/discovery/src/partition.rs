//! Stripped partitions à la TANE, adapted to the paper's similarity
//! semantics.
//!
//! A *partition* of the rows by an attribute set `X` groups rows with
//! identical `X`-values; *stripped* means singleton classes are dropped
//! (they can never participate in a violation). Two flavours matter:
//!
//! * [`NullSemantics::Strong`]: strong similarity — a row with `⊥` in
//!   `X` is similar to nothing, so null-bearing rows become singletons
//!   and vanish. This is the grouping for p-FD/p-key checking.
//! * [`NullSemantics::NullAsValue`]: the classical discovery convention
//!   of the FD-mining literature (nulls compared like ordinary values),
//!   used by the classical baseline and for RHS equality (`⊥ = ⊥`).
//!
//! Weak similarity is **not** an equivalence relation and has no
//! partition; c-FD checking handles null-bearing rows by probing (see
//! [`crate::check`]).
//!
//! # Encoding
//!
//! [`Encoded`] is a *zero-copy borrow* of the table's own
//! dictionary-coded columns ([`sqlnf_model::column::ColumnStore`]):
//! `Encoded::new` is `O(arity)` `Arc` clones, not an `O(rows × arity)`
//! hash-everything rebuild. The storage layer guarantees the only
//! invariants the kernels need — code `0` = `⊥`, code equality ⟺ value
//! equality within the table, and every code `≤ dict_size`. Because the
//! dictionary size is known, [`Partition::by_attr`] is a counting sort
//! (no hashing, classes come out internally sorted for free), with a
//! stable radix fallback when retired dictionary entries make the code
//! space much larger than the table (heavy DELETE churn).

use sqlnf_model::attrs::{Attr, AttrSet};
use sqlnf_model::column::ColData;
use sqlnf_model::table::Table;
use sqlnf_model::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// How null markers participate in the grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NullSemantics {
    /// `⊥` equals nothing, not even `⊥` — strong similarity.
    Strong,
    /// `⊥` is grouped like an ordinary (single) value — classical
    /// discovery and syntactic RHS equality.
    NullAsValue,
}

/// Dictionary-encoded columns: each cell as a small integer, with `0`
/// reserved for `⊥`. A shared snapshot of the table's columnar
/// storage.
#[derive(Debug, Clone)]
pub struct Encoded {
    /// Shared per-column code vectors and ascending null-row lists.
    cols: Vec<Arc<ColData>>,
    /// Upper bound (inclusive) on the codes in each column.
    dict_sizes: Vec<u32>,
    rows: usize,
}

impl Encoded {
    /// Borrows a table's columnar encoding — `O(arity)`, no per-row
    /// work. The `discovery.encode.{rows,dict_entries}` counters tick
    /// at INSERT/UPDATE time in the storage layer; only the (cheap)
    /// build itself is counted here.
    pub fn new(table: &Table) -> Encoded {
        Encoded::from_snapshot(table.snapshot())
    }

    /// Wraps an already-taken storage snapshot (e.g. the incremental
    /// miner's dense view, which owns its own
    /// [`sqlnf_model::column::ColumnStore`]).
    pub fn from_snapshot(snap: sqlnf_model::column::ColumnSnapshot) -> Encoded {
        let _span = sqlnf_obs::span!("discovery.encode");
        sqlnf_obs::count!("discovery.encode.builds");
        Encoded {
            cols: snap.cols,
            dict_sizes: snap.dict_sizes,
            rows: snap.rows,
        }
    }

    /// Re-encodes a table from its row view with the pre-columnar
    /// algorithm (per-column `HashMap<&Value, u32>`, first-appearance
    /// codes). This is the reference path the differential tests mine
    /// against: after UPDATE/DELETE the storage's codes may differ
    /// from a fresh encode (retired entries keep their codes), but
    /// every mined result must be byte-identical either way.
    pub fn from_table_rows(table: &Table) -> Encoded {
        let _span = sqlnf_obs::span!("discovery.encode");
        sqlnf_obs::count!("discovery.encode.builds");
        sqlnf_obs::count!("discovery.encode.rows", table.len());
        let arity = table.schema().arity();
        let mut cols = Vec::with_capacity(arity);
        let mut dict_sizes = Vec::with_capacity(arity);
        for ci in 0..arity {
            let a = Attr::from(ci);
            let mut data = ColData {
                codes: Vec::with_capacity(table.len()),
                null_rows: Vec::new(),
            };
            let mut dict: HashMap<&Value, u32> = HashMap::new();
            for (r, t) in table.rows().iter().enumerate() {
                let v = t.get(a);
                let code = if v.is_null() {
                    data.null_rows.push(r as u32);
                    0
                } else {
                    let next = dict.len() as u32 + 1;
                    *dict.entry(v).or_insert(next)
                };
                data.codes.push(code);
            }
            dict_sizes.push(dict.len() as u32);
            cols.push(Arc::new(data));
        }
        Encoded {
            cols,
            dict_sizes,
            rows: table.len(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The code vector of column `a` — the slice the partition kernels
    /// sweep directly.
    #[inline]
    pub fn column(&self, a: Attr) -> &[u32] {
        &self.cols[a.index()].codes
    }

    /// Inclusive upper bound on the codes in column `a` (the dictionary
    /// size; codes run `1..=dict_size`, plus `0` for `⊥`).
    #[inline]
    pub fn dict_size(&self, a: Attr) -> u32 {
        self.dict_sizes[a.index()]
    }

    /// The largest dictionary size across all columns — sizes the probe
    /// table of a [`ProductScratch`] once for every column it may meet.
    pub fn max_code(&self) -> u32 {
        self.dict_sizes.iter().copied().max().unwrap_or(0)
    }

    /// The code of `(row, a)`; `0` means `⊥`.
    #[inline]
    pub fn code(&self, row: usize, a: Attr) -> u32 {
        self.cols[a.index()].codes[row]
    }

    #[inline]
    fn nulls(&self, a: Attr) -> &[u32] {
        &self.cols[a.index()].null_rows
    }

    /// Whether the row is `X`-total.
    pub fn is_total_on(&self, row: usize, x: AttrSet) -> bool {
        x.iter().all(|a| self.code(row, a) != 0)
    }

    /// Whether two rows are weakly similar on `X`.
    pub fn weakly_similar(&self, r: usize, s: usize, x: AttrSet) -> bool {
        x.iter().all(|a| {
            let (cr, cs) = (self.code(r, a), self.code(s, a));
            cr == 0 || cs == 0 || cr == cs
        })
    }

    /// Whether two rows are syntactically equal on `X` (`⊥ = ⊥`).
    pub fn equal_on(&self, r: usize, s: usize, x: AttrSet) -> bool {
        x.iter().all(|a| self.code(r, a) == self.code(s, a))
    }

    /// The columns that contain no `⊥` at all.
    pub fn null_free_columns(&self) -> AttrSet {
        (0..self.cols.len())
            .filter(|&ci| self.cols[ci].null_rows.is_empty())
            .map(Attr::from)
            .collect()
    }

    /// The columns that carry at least one `⊥` — the complement of
    /// [`Encoded::null_free_columns`]. A weak-similarity probe of `X`
    /// only ever depends on `X ∩ nullable_columns` plus an equality
    /// filter on the rest (see [`crate::check::ProbeCache`]).
    pub fn nullable_columns(&self) -> AttrSet {
        (0..self.cols.len())
            .filter(|&ci| !self.cols[ci].null_rows.is_empty())
            .map(Attr::from)
            .collect()
    }

    /// Upper bound on `|null_rows_on(x)|` without merging: the sum of
    /// the per-column null counts. Used to price a direct pair scan
    /// against building a [`crate::check::ProbeIndex`].
    pub fn null_count_bound(&self, x: AttrSet) -> usize {
        x.iter().map(|a| self.nulls(a).len()).sum()
    }

    /// Whether any column of `X` carries a `⊥`. `O(|X|)` — the cheap
    /// guard that lets weak-similarity probing skip total candidates
    /// without touching the rows.
    pub fn has_nulls_on(&self, x: AttrSet) -> bool {
        x.iter().any(|a| !self.nulls(a).is_empty())
    }

    /// The rows carrying `⊥` somewhere in `X`, ascending. Merges the
    /// per-column null lists instead of scanning the table, so the cost
    /// is proportional to the nulls present, not to `rows × |X|`.
    pub fn null_rows_on(&self, x: AttrSet) -> Vec<usize> {
        let mut out: Vec<usize> = Vec::new();
        for a in x {
            let col = self.nulls(a);
            if col.is_empty() {
                continue;
            }
            if out.is_empty() {
                out.extend(col.iter().map(|&r| r as usize));
            } else {
                // Sorted union.
                let mut merged = Vec::with_capacity(out.len() + col.len());
                let (mut i, mut j) = (0, 0);
                while i < out.len() && j < col.len() {
                    let (x_, y) = (out[i], col[j] as usize);
                    match x_.cmp(&y) {
                        std::cmp::Ordering::Less => {
                            merged.push(x_);
                            i += 1;
                        }
                        std::cmp::Ordering::Greater => {
                            merged.push(y);
                            j += 1;
                        }
                        std::cmp::Ordering::Equal => {
                            merged.push(x_);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                merged.extend_from_slice(&out[i..]);
                merged.extend(col[j..].iter().map(|&r| r as usize));
                out = merged;
            }
        }
        out
    }
}

/// A stripped partition: classes of size ≥ 2, each a sorted row list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Equivalence classes with at least two rows.
    pub classes: Vec<Vec<u32>>,
}

/// Reusable scratch for [`Partition::product`] and
/// [`Partition::product_attr`]: one `u32` probe table (keyed by row id
/// for the binary product, by dictionary code for the attribute
/// product) plus per-group slot buffers, owned by a thread (a miner
/// worker, a [`crate::cache::PartitionCtx`]) and reused across every
/// intersection it performs — the per-candidate `HashMap` allocations
/// of the old refinement path are gone entirely.
///
/// The probe table is sized **once** — by [`ProductScratch::for_encoded`]
/// at construction, or by one `ensure_probe` branch at the top of each
/// kernel — so the hot loops index it directly with no grow-on-miss
/// branch per row.
#[derive(Debug, Default)]
pub struct ProductScratch {
    /// `probe[row]` = 1-based class id of `row` in the left partition
    /// of the running product; `0` = row absent. Only the labels set by
    /// a product are cleared afterwards, so reuse costs no wipe.
    probe: Vec<u32>,
    /// Slot buffers per left class; capacity retained across products.
    slots: Vec<Vec<u32>>,
    /// Left-class ids touched while sweeping one right class.
    touched: Vec<u32>,
    /// `heads[id − 1]` = first row of subclass `id` during a fused
    /// [`Partition::for_each_refined_pair`] sweep. Overwritten on
    /// relabel, so it needs no clearing — and the fused sweep never
    /// dirties `slots`, which [`Partition::product_attr`] relies on
    /// being empty.
    heads: Vec<u32>,
}

impl ProductScratch {
    /// Fresh scratch; the probe table is sized by the kernels' entry
    /// checks on first use.
    pub fn new() -> ProductScratch {
        ProductScratch::default()
    }

    /// Fresh scratch pre-sized for every kernel over `enc`: the probe
    /// table covers both row ids (binary products) and dictionary
    /// codes (attribute products) up front.
    pub fn for_encoded(enc: &Encoded) -> ProductScratch {
        ProductScratch {
            probe: vec![0; enc.rows().max(enc.max_code() as usize + 1)],
            ..ProductScratch::default()
        }
    }

    /// One-branch pre-size check at kernel entry; hot loops then index
    /// the probe table directly.
    #[inline]
    fn ensure_probe(&mut self, needed: usize) {
        if self.probe.len() < needed {
            self.probe.resize(needed, 0);
        }
    }

    fn ensure(&mut self, classes: usize) {
        if self.slots.len() < classes {
            self.slots.resize_with(classes, Vec::new);
        }
    }

    #[inline]
    fn label(&mut self, key: u32, id: u32) {
        debug_assert!(
            (key as usize) < self.probe.len(),
            "probe table under-sized: key {key} for len {}",
            self.probe.len()
        );
        self.probe[key as usize] = id;
    }

    #[inline]
    fn probe_label(&self, key: u32) -> u32 {
        debug_assert!((key as usize) < self.probe.len());
        self.probe[key as usize]
    }

    #[inline]
    fn clear_label(&mut self, key: u32) {
        self.probe[key as usize] = 0;
    }
}

/// Above this ratio of code space to rows, [`Partition::by_attr`]
/// switches from counting sort (cost `O(rows + dict)`) to a stable
/// radix sort of `(code, row)` pairs (cost `O(rows)` with a fixed
/// 2¹⁶-bucket pass) — the regime where heavy DELETE churn left the
/// dictionary much larger than the table.
const RADIX_OVER: usize = 4;

impl Partition {
    /// Partition by a single attribute: a counting sort over the known
    /// dictionary size. No hashing, no per-class sort — the scatter
    /// visits rows in ascending order, so every bucket comes out
    /// internally sorted; only the final by-first-row ordering of the
    /// (few) classes is explicit.
    pub fn by_attr(enc: &Encoded, a: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.builds");
        sqlnf_obs::count!("discovery.partition.rows_scanned", enc.rows());
        let col = enc.column(a);
        let dict = enc.dict_size(a) as usize;
        if dict > RADIX_OVER * col.len() + 1024 {
            return Partition::by_attr_radix(col, sem);
        }
        // starts[c] .. starts[c+1] = the slot range of code c.
        let mut starts = vec![0u32; dict + 2];
        for &c in col {
            starts[c as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut out = vec![0u32; col.len()];
        let mut cursor = starts.clone();
        for (r, &c) in col.iter().enumerate() {
            let slot = &mut cursor[c as usize];
            out[*slot as usize] = r as u32;
            *slot += 1;
        }
        let first_code = usize::from(sem == NullSemantics::Strong);
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for c in first_code..=dict {
            let (s, e) = (starts[c] as usize, starts[c + 1] as usize);
            if e - s >= 2 {
                classes.push(out[s..e].to_vec());
            }
        }
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { classes }
    }

    /// The high-cardinality fallback: stable LSB radix sort of
    /// `(code, row)` pairs, then a run sweep. Identical output to the
    /// counting-sort path.
    fn by_attr_radix(col: &[u32], sem: NullSemantics) -> Partition {
        let mut pairs: Vec<(u32, u32)> = col
            .iter()
            .enumerate()
            .filter(|&(_, &c)| !(c == 0 && sem == NullSemantics::Strong))
            .map(|(r, &c)| (c, r as u32))
            .collect();
        let max = pairs.iter().map(|p| p.0).max().unwrap_or(0);
        let mut tmp = vec![(0u32, 0u32); pairs.len()];
        radix_pass(&pairs, &mut tmp, 0);
        if max >= 1 << 16 {
            radix_pass(&tmp, &mut pairs, 16);
        } else {
            pairs.copy_from_slice(&tmp);
        }
        // Stability keeps rows ascending within each equal-code run.
        let mut classes: Vec<Vec<u32>> = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let code = pairs[i].0;
            let mut j = i + 1;
            while j < pairs.len() && pairs[j].0 == code {
                j += 1;
            }
            if j - i >= 2 {
                classes.push(pairs[i..j].iter().map(|p| p.1).collect());
            }
            i = j;
        }
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { classes }
    }

    /// Partition by an attribute *pair* in one counting sort over the
    /// combined code space `(dict_a + 1) × (dict_b + 1)` — two
    /// sequential column sweeps and a scatter, no probe table and no
    /// per-class bookkeeping. This is the level-2 fast path of the
    /// miner: at that level the prefix partitions are single attributes
    /// whose stripped classes still cover nearly the whole table, so a
    /// fused scan of both raw columns beats refining. Callers must
    /// check [`Partition::pair_space`] against the table size first
    /// (the guard [`Partition::by_pair_applicable`]); past the gate the
    /// combined space would dwarf the row count and
    /// [`Partition::product_attr`] from the smaller single wins.
    pub fn by_pair(enc: &Encoded, a: Attr, b: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.builds");
        sqlnf_obs::count!("discovery.partition.rows_scanned", enc.rows());
        let (ca, cb) = (enc.column(a), enc.column(b));
        let width = enc.dict_size(b) as usize + 1;
        let space = (enc.dict_size(a) as usize + 1) * width;
        let strong = sem == NullSemantics::Strong;
        let mut starts = vec![0u32; space + 1];
        for (&x, &y) in ca.iter().zip(cb) {
            if strong && (x == 0 || y == 0) {
                continue;
            }
            starts[x as usize * width + y as usize + 1] += 1;
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut out = vec![0u32; starts[space] as usize];
        let mut cursor = starts.clone();
        for (r, (&x, &y)) in ca.iter().zip(cb).enumerate() {
            if strong && (x == 0 || y == 0) {
                continue;
            }
            let slot = &mut cursor[x as usize * width + y as usize];
            out[*slot as usize] = r as u32;
            *slot += 1;
        }
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for c in 0..space {
            let (s, e) = (starts[c] as usize, starts[c + 1] as usize);
            if e - s >= 2 {
                classes.push(out[s..e].to_vec());
            }
        }
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { classes }
    }

    /// The combined code space a [`Partition::by_pair`] counting sort
    /// would allocate for `{a, b}`.
    fn pair_space(enc: &Encoded, a: Attr, b: Attr) -> usize {
        (enc.dict_size(a) as usize + 1).saturating_mul(enc.dict_size(b) as usize + 1)
    }

    /// Whether the pair counting sort is the right kernel for `{a, b}`:
    /// the combined space must stay within the same
    /// space-versus-rows margin the radix gate ([`RADIX_OVER`]) uses.
    pub fn by_pair_applicable(enc: &Encoded, a: Attr, b: Attr) -> bool {
        Partition::pair_space(enc, a, b) <= RADIX_OVER * enc.rows() + 1024
    }

    /// The trivial partition over the empty attribute set: one class of
    /// all rows.
    pub fn universal(rows: usize) -> Partition {
        if rows < 2 {
            return Partition { classes: vec![] };
        }
        Partition {
            classes: vec![(0..rows as u32).collect()],
        }
    }

    /// Partition by an attribute set (product of attribute partitions).
    pub fn by_set(enc: &Encoded, x: AttrSet, sem: NullSemantics) -> Partition {
        let mut attrs = x.iter();
        let first = match attrs.next() {
            None => return Partition::universal(enc.rows()),
            Some(a) => a,
        };
        let mut p = Partition::by_attr(enc, first, sem);
        for a in attrs {
            p = p.refine_by(enc, a, sem);
        }
        p
    }

    /// Refines the partition by one more attribute. Same kernel as
    /// [`Partition::product_attr`], with a throwaway scratch — callers
    /// on the hot path thread their own scratch through `product_attr`
    /// instead.
    pub fn refine_by(&self, enc: &Encoded, a: Attr, sem: NullSemantics) -> Partition {
        sqlnf_obs::count!("discovery.partition.intersections");
        sqlnf_obs::count!(
            "discovery.partition.rows_scanned",
            self.classes.iter().map(|c| c.len()).sum::<usize>()
        );
        let mut scratch = ProductScratch::new();
        self.refine_with(enc, a, sem, &mut scratch)
    }

    /// TANE-style product `π_self · π_other` in one linear sweep over
    /// the two stripped partitions, using a reusable probe table —
    /// no per-class hashing, no allocation beyond the emitted classes.
    ///
    /// Correctness: two rows share a class of the product iff they
    /// share a class in *both* inputs. Under either [`NullSemantics`]
    /// this is exactly the stripped partition of the attribute-set
    /// union (strong similarity drops null-bearing rows from both
    /// sides; null-as-value keeps `⊥` as the code `0`), so
    /// `π_X.product(π_Y) == Partition::by_set(enc, X ∪ Y)` — the
    /// equality the `product_matches_by_set` property test pins down.
    /// The result is canonical (sorted classes of sorted rows), so
    /// `PartialEq` agreement with [`Partition::by_set`] is structural.
    pub fn product(&self, other: &Partition, scratch: &mut ProductScratch) -> Partition {
        sqlnf_obs::count!("discovery.partition.products");
        scratch.ensure(self.classes.len());
        let needed = self
            .classes
            .iter()
            .chain(other.classes.iter())
            .filter_map(|c| c.last())
            .map(|&r| r as usize + 1)
            .max()
            .unwrap_or(0);
        scratch.ensure_probe(needed);
        let mut scanned = 0usize;
        // Label every row of `self` with its class id (1-based; 0 =
        // absent, i.e. stripped singleton or dropped null row).
        for (i, class) in self.classes.iter().enumerate() {
            scanned += class.len();
            for &r in class {
                scratch.label(r, i as u32 + 1);
            }
        }
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &other.classes {
            scanned += class.len();
            for &r in class {
                let id = scratch.probe_label(r);
                if id != 0 {
                    let slot = &mut scratch.slots[id as usize - 1];
                    if slot.is_empty() {
                        scratch.touched.push(id - 1);
                    }
                    slot.push(r);
                }
            }
            for &i in &scratch.touched {
                let slot = &mut scratch.slots[i as usize];
                if slot.len() >= 2 {
                    classes.push(std::mem::take(slot));
                } else {
                    slot.clear();
                }
            }
            scratch.touched.clear();
        }
        // Reset only the labels we set, keeping the probe table clean
        // for the next product without an O(rows) wipe.
        for class in &self.classes {
            for &r in class {
                scratch.clear_label(r);
            }
        }
        sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { classes }
    }

    /// The product `π_self · π_{a}` in one sweep over `self`'s stripped
    /// classes, reading the dictionary codes of `a` directly instead of
    /// materializing (or even touching) the single-attribute partition.
    /// This is the miner's refinement step: its cost is proportional to
    /// the rows inside `self`'s classes — which shrink rapidly as the
    /// lattice level grows — not to the table. Same canonical result as
    /// `product(&Partition::by_attr(enc, a, sem))` and as
    /// [`Partition::refine_by`], without the per-class `HashMap`.
    pub fn product_attr(
        &self,
        enc: &Encoded,
        a: Attr,
        sem: NullSemantics,
        scratch: &mut ProductScratch,
    ) -> Partition {
        sqlnf_obs::count!("discovery.partition.products");
        sqlnf_obs::count!(
            "discovery.partition.rows_scanned",
            self.classes.iter().map(|c| c.len()).sum::<usize>()
        );
        self.refine_with(enc, a, sem, scratch)
    }

    /// Shared kernel of [`Partition::refine_by`] and
    /// [`Partition::product_attr`] (counters live in the wrappers).
    fn refine_with(
        &self,
        enc: &Encoded,
        a: Attr,
        sem: NullSemantics,
        scratch: &mut ProductScratch,
    ) -> Partition {
        let col = enc.column(a);
        scratch.ensure_probe(enc.dict_size(a) as usize + 1);
        let strong = sem == NullSemantics::Strong;
        let mut classes: Vec<Vec<u32>> = Vec::new();
        for class in &self.classes {
            // Counting two-pass scoped to this class: the probe table
            // first holds per-code counts, then 1-based output slots
            // for the codes that survive stripping. One exact-capacity
            // allocation per emitted subclass, nothing at all for
            // singletons — which dominate once a selective attribute
            // has entered the product chain.
            for &r in class {
                let c = col[r as usize];
                if c == 0 && strong {
                    continue;
                }
                let n = scratch.probe_label(c);
                if n == 0 {
                    scratch.touched.push(c);
                }
                scratch.label(c, n + 1);
            }
            let base = classes.len();
            for i in 0..scratch.touched.len() {
                let c = scratch.touched[i];
                let n = scratch.probe_label(c);
                if n >= 2 {
                    classes.push(Vec::with_capacity(n as usize));
                    scratch.label(c, (classes.len() - base) as u32);
                } else {
                    scratch.clear_label(c);
                }
            }
            if classes.len() > base {
                for &r in class {
                    let c = col[r as usize];
                    if c == 0 && strong {
                        continue;
                    }
                    let id = scratch.probe_label(c);
                    if id != 0 {
                        classes[base + id as usize - 1].push(r);
                    }
                }
            }
            while let Some(c) = scratch.touched.pop() {
                scratch.clear_label(c);
            }
        }
        classes.sort_unstable_by_key(|c| c[0]);
        Partition { classes }
    }

    /// Sweeps the refinement `π_self · π_{a}` *without materializing
    /// it*: for every row `r` that lands in an already-headed subclass,
    /// calls `f(head, r)` where `head` is the subclass's first row.
    /// Stops — and returns `false` — as soon as `f` does, skipping the
    /// rest of the sweep entirely.
    ///
    /// This is the check-only fast path for lattice levels whose
    /// partitions are never stored (the last level): a violated FD is
    /// usually refuted within a few rows, so fusing the product with
    /// the constancy check avoids paying the full prefix sweep per
    /// candidate. Only the rows actually visited count towards
    /// `discovery.partition.rows_scanned`.
    pub fn for_each_refined_pair(
        &self,
        enc: &Encoded,
        a: Attr,
        sem: NullSemantics,
        scratch: &mut ProductScratch,
        mut f: impl FnMut(u32, u32) -> bool,
    ) -> bool {
        sqlnf_obs::count!("discovery.partition.products");
        let col = enc.column(a);
        scratch.ensure_probe(enc.dict_size(a) as usize + 1);
        let strong = sem == NullSemantics::Strong;
        let mut scanned = 0usize;
        let mut live = true;
        'classes: for class in &self.classes {
            let mut used = 0u32;
            for &r in class {
                scanned += 1;
                let c = col[r as usize];
                if c == 0 && strong {
                    continue;
                }
                let id = scratch.probe_label(c);
                if id == 0 {
                    used += 1;
                    scratch.touched.push(c);
                    scratch.label(c, used);
                    if scratch.heads.len() < used as usize {
                        scratch.heads.resize(used as usize, 0);
                    }
                    scratch.heads[used as usize - 1] = r;
                } else if !f(scratch.heads[id as usize - 1], r) {
                    live = false;
                    while let Some(c) = scratch.touched.pop() {
                        scratch.clear_label(c);
                    }
                    break 'classes;
                }
            }
            while let Some(c) = scratch.touched.pop() {
                scratch.clear_label(c);
            }
        }
        sqlnf_obs::count!("discovery.partition.rows_scanned", scanned);
        live
    }

    /// Approximate heap footprint in bytes — the accounting unit of the
    /// level-wise partition cache budget.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Partition>()
            + self.classes.len() * std::mem::size_of::<Vec<u32>>()
            + self
                .classes
                .iter()
                .map(|c| c.capacity() * std::mem::size_of::<u32>())
                .sum::<usize>()
    }

    /// `Σ (|class| − 1)`: the TANE error measure. Zero iff the grouping
    /// is (a candidate for) a key under the chosen semantics.
    pub fn error(&self) -> usize {
        self.classes.iter().map(|c| c.len() - 1).sum()
    }

    /// Number of (non-singleton) classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Total rows inside the stripped classes — the cost of sweeping
    /// this partition in [`Partition::product_attr`]. Product callers
    /// use it to pick the *cheapest* available prefix (TANE: refine
    /// from the smallest representation; a candidate containing a
    /// near-unique attribute has an almost-empty stripped partition).
    pub fn stripped_rows(&self) -> usize {
        self.classes.iter().map(Vec::len).sum()
    }

    /// Whether there are no classes of size ≥ 2.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// One stable counting pass over 16 bits of the code.
fn radix_pass(src: &[(u32, u32)], dst: &mut [(u32, u32)], shift: u32) {
    const R: usize = 1 << 16;
    let mut counts = vec![0u32; R + 1];
    for &(c, _) in src {
        counts[(((c >> shift) as usize) & (R - 1)) + 1] += 1;
    }
    for i in 1..=R {
        counts[i] += counts[i - 1];
    }
    for &p in src {
        let b = ((p.0 >> shift) as usize) & (R - 1);
        dst[counts[b] as usize] = p;
        counts[b] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlnf_model::prelude::*;

    fn sample() -> Table {
        TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple!["x", 1i64])
            .row(tuple!["x", 1i64])
            .row(tuple![null, 1i64])
            .row(tuple![null, 2i64])
            .row(tuple!["y", 2i64])
            .build()
    }

    #[test]
    fn encoding_nulls_are_zero() {
        let t = sample();
        let e = Encoded::new(&t);
        assert_eq!(e.rows(), 5);
        assert_eq!(e.code(2, Attr(0)), 0);
        assert_ne!(e.code(0, Attr(0)), 0);
        assert_eq!(e.code(0, Attr(0)), e.code(1, Attr(0)));
        assert_ne!(e.code(0, Attr(0)), e.code(4, Attr(0)));
        assert_eq!(e.null_free_columns(), AttrSet::from_indices([1]));
        assert_eq!(e.null_rows_on(AttrSet::from_indices([0])), vec![2, 3]);
    }

    #[test]
    fn snapshot_matches_row_major_reference_encode() {
        // For an append-only table, the storage's first-appearance
        // codes are exactly what the reference row-major encode
        // produces: same codes, same null lists, same dictionary sizes.
        let t = sample();
        let snap = Encoded::new(&t);
        let fresh = Encoded::from_table_rows(&t);
        assert_eq!(snap.rows, fresh.rows);
        assert_eq!(snap.dict_sizes, fresh.dict_sizes);
        for a in t.schema().attrs() {
            assert_eq!(snap.column(a), fresh.column(a), "{a:?} codes");
            assert_eq!(snap.nulls(a), fresh.nulls(a), "{a:?} null rows");
        }
    }

    #[test]
    fn snapshot_after_dml_partitions_agree_with_reference() {
        // UPDATE/DELETE may leave the storage with retired codes the
        // reference encode never assigns; the *partitions* (and hence
        // everything mined) must agree regardless.
        let mut t = sample();
        t.set_value(0, Attr(0), Value::str("z"));
        t.set_value(3, Attr(0), Value::str("x"));
        t.remove_row(1);
        t.push(tuple!["x", 2i64]);
        t.set_value(2, Attr(1), Value::Null);
        let snap = Encoded::new(&t);
        let fresh = Encoded::from_table_rows(&t);
        assert_eq!(snap.rows(), fresh.rows());
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            for a in t.schema().attrs() {
                assert_eq!(
                    Partition::by_attr(&snap, a, sem),
                    Partition::by_attr(&fresh, a, sem),
                    "{a:?} {sem:?}"
                );
                assert_eq!(snap.nulls(a), fresh.nulls(a), "{a:?} null rows");
            }
            let ab = AttrSet::from_indices([0, 1]);
            assert_eq!(
                Partition::by_set(&snap, ab, sem),
                Partition::by_set(&fresh, ab, sem),
                "{sem:?} by_set"
            );
        }
    }

    #[test]
    fn radix_path_matches_counting_sort() {
        // Force the radix fallback with a synthetic column whose code
        // space dwarfs its rows (the post-DELETE-churn regime), and
        // check it against the counting-sort path on identical codes.
        let codes = vec![70_000u32, 3, 0, 70_000, 3, 1 << 20, 0, 1 << 20, 5];
        let nulls: Vec<u32> = codes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == 0)
            .map(|(r, _)| r as u32)
            .collect();
        let rows = codes.len();
        let enc = Encoded {
            cols: vec![Arc::new(ColData {
                codes: codes.clone(),
                null_rows: nulls,
            })],
            dict_sizes: vec![1 << 20],
            rows,
        };
        assert!((1 << 20) > RADIX_OVER * rows + 1024, "radix path selected");
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let via_radix = Partition::by_attr(&enc, Attr(0), sem);
            // Naive reference grouping.
            let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
            for (r, &c) in codes.iter().enumerate() {
                if c == 0 && sem == NullSemantics::Strong {
                    continue;
                }
                groups.entry(c).or_default().push(r as u32);
            }
            let mut expect: Vec<Vec<u32>> = groups.into_values().filter(|g| g.len() >= 2).collect();
            expect.sort_unstable_by_key(|c| c[0]);
            assert_eq!(via_radix.classes, expect, "{sem:?}");
        }
        let strong = Partition::by_attr(&enc, Attr(0), NullSemantics::Strong);
        assert_eq!(strong.classes, vec![vec![0, 3], vec![1, 4], vec![5, 7]]);
        let nav = Partition::by_attr(&enc, Attr(0), NullSemantics::NullAsValue);
        assert_eq!(
            nav.classes,
            vec![vec![0, 3], vec![1, 4], vec![2, 6], vec![5, 7]]
        );
    }

    #[test]
    fn strong_partition_drops_null_rows() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_attr(&e, Attr(0), NullSemantics::Strong);
        // Only {0,1} (the two "x" rows) form a class; nulls vanish and
        // "y" is a singleton.
        assert_eq!(p.classes, vec![vec![0, 1]]);
        assert_eq!(p.error(), 1);
    }

    #[test]
    fn null_as_value_groups_nulls_together() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_attr(&e, Attr(0), NullSemantics::NullAsValue);
        let mut classes = p.classes.clone();
        classes.sort();
        assert_eq!(classes, vec![vec![0, 1], vec![2, 3]]);
    }

    #[test]
    fn set_partition_refines() {
        let t = sample();
        let e = Encoded::new(&t);
        let ab = AttrSet::from_indices([0, 1]);
        let p_strong = Partition::by_set(&e, ab, NullSemantics::Strong);
        assert_eq!(p_strong.classes, vec![vec![0, 1]]);
        let p_nav = Partition::by_set(&e, ab, NullSemantics::NullAsValue);
        // (x,1) twice; (⊥,1) and (⊥,2) split.
        assert_eq!(p_nav.classes, vec![vec![0, 1]]);
    }

    #[test]
    fn universal_partition() {
        let p = Partition::universal(4);
        assert_eq!(p.classes, vec![vec![0, 1, 2, 3]]);
        assert_eq!(p.error(), 3);
        assert!(Partition::universal(1).is_empty());
    }

    #[test]
    fn empty_attr_set_is_universal() {
        let t = sample();
        let e = Encoded::new(&t);
        let p = Partition::by_set(&e, AttrSet::EMPTY, NullSemantics::Strong);
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.classes[0].len(), 5);
    }

    #[test]
    fn product_matches_by_set() {
        let t = sample();
        let e = Encoded::new(&t);
        let mut scratch = ProductScratch::for_encoded(&e);
        let ab = AttrSet::from_indices([0, 1]);
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let pa = Partition::by_attr(&e, Attr(0), sem);
            let pb = Partition::by_attr(&e, Attr(1), sem);
            assert_eq!(
                pa.product(&pb, &mut scratch),
                Partition::by_set(&e, ab, sem),
                "{sem:?}"
            );
            // The universal partition is the product identity on
            // stripped partitions.
            let u = Partition::universal(e.rows());
            assert_eq!(pa.product(&u, &mut scratch), pa, "{sem:?} right-id");
            assert_eq!(u.product(&pa, &mut scratch), pa, "{sem:?} left-id");
        }
    }

    #[test]
    fn by_pair_matches_by_set() {
        let t = sample();
        let e = Encoded::new(&t);
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            for i in 0..t.schema().arity() {
                for j in 0..t.schema().arity() {
                    if i == j {
                        continue;
                    }
                    let (a, b) = (Attr(i as u8), Attr(j as u8));
                    assert!(Partition::by_pair_applicable(&e, a, b));
                    assert_eq!(
                        Partition::by_pair(&e, a, b, sem),
                        Partition::by_set(&e, AttrSet::from_indices([i, j]), sem),
                        "{sem:?} pair ({i}, {j})"
                    );
                }
            }
        }
    }

    #[test]
    fn product_attr_matches_refine_by() {
        let t = sample();
        let e = Encoded::new(&t);
        // Start from an unsized scratch: the kernels' entry checks must
        // size the probe table themselves.
        let mut scratch = ProductScratch::new();
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let pa = Partition::by_attr(&e, Attr(0), sem);
            assert_eq!(
                pa.product_attr(&e, Attr(1), sem, &mut scratch),
                pa.refine_by(&e, Attr(1), sem),
                "{sem:?}"
            );
            let u = Partition::universal(e.rows());
            assert_eq!(
                u.product_attr(&e, Attr(0), sem, &mut scratch),
                Partition::by_attr(&e, Attr(0), sem),
                "{sem:?} from universal"
            );
        }
    }

    #[test]
    fn fused_sweep_leaves_scratch_clean_for_products() {
        // Regression: the fused pair sweep must not dirty the slot
        // buffers a later product on the SAME scratch relies on being
        // empty (it once stored subclass heads there, corrupting the
        // next product's classes).
        let t = sample();
        let e = Encoded::new(&t);
        let mut scratch = ProductScratch::for_encoded(&e);
        for sem in [NullSemantics::Strong, NullSemantics::NullAsValue] {
            let pa = Partition::by_attr(&e, Attr(0), sem);
            let mut pairs = 0usize;
            pa.for_each_refined_pair(&e, Attr(1), sem, &mut scratch, |head, r| {
                assert!(head < r, "heads precede members in sorted classes");
                pairs += 1;
                true
            });
            // A full (non-early-exited) sweep visits |class| − 1 pairs
            // per refined class.
            let refined = pa.refine_by(&e, Attr(1), sem);
            let expect: usize = refined.classes.iter().map(|c| c.len() - 1).sum();
            assert_eq!(pairs, expect, "{sem:?}");
            // The same scratch must still produce correct products.
            assert_eq!(
                pa.product_attr(&e, Attr(1), sem, &mut scratch),
                refined,
                "{sem:?} product after fused sweep"
            );
        }
    }

    #[test]
    fn weak_similarity_probe() {
        let t = sample();
        let e = Encoded::new(&t);
        let a = AttrSet::from_indices([0]);
        assert!(e.weakly_similar(2, 0, a)); // ⊥ vs x
        assert!(e.weakly_similar(2, 3, a)); // ⊥ vs ⊥
        assert!(!e.weakly_similar(0, 4, a)); // x vs y
        assert!(e.equal_on(2, 3, a)); // ⊥ = ⊥
        assert!(!e.equal_on(2, 0, a));
    }
}
