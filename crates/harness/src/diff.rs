//! The differential check: the recovered store must render exactly
//! like a single-threaded reference [`Database`] that replayed a
//! prefix of the admitted-statement history.
//!
//! The oplog (recorded by the serve hook under the WAL mutex) is the
//! serial ground truth: per-table WAL order equals application order
//! (appends happen under the table's write lock) and tables are
//! independent, so replaying the oplog front-to-back through the
//! ordinary engine is a legal serialization of whatever the concurrent
//! clients did. Recovery after a crash plus tail corruption may only
//! lose a *suffix* of the live WAL, so the recovered store must equal
//! the replay of some prefix — and of the *whole* log when nothing was
//! corrupted.

use sqlnf_model::prelude::*;

/// The outcome of a prefix search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiffOutcome {
    /// The recovered store equals the reference replay of exactly the
    /// first `n` admitted statements.
    MatchedPrefix(usize),
    /// A statement that the concurrent store admitted was rejected on
    /// serial replay — a serializability violation.
    ReplayRejected {
        /// Oplog index of the statement the reference engine refused.
        index: usize,
        /// The engine's refusal.
        error: String,
    },
    /// No prefix of the oplog reproduces the recovered store.
    NoPrefixMatches,
}

/// Finds the unique oplog prefix whose reference replay renders
/// byte-identically to `recovered_export` (a `Store::export_script`
/// image). Uniqueness holds because every admitted statement strictly
/// grows the export — CREATE adds DDL, INSERT adds rows — so exports
/// of distinct prefixes differ.
pub fn match_prefix(oplog: &[String], recovered_export: &str) -> DiffOutcome {
    let mut reference = Database::new();
    if reference.export_script() == recovered_export {
        return DiffOutcome::MatchedPrefix(0);
    }
    for (i, stmt) in oplog.iter().enumerate() {
        if let Err(e) = reference.run_script(stmt) {
            return DiffOutcome::ReplayRejected {
                index: i,
                error: e.to_string(),
            };
        }
        if reference.export_script() == recovered_export {
            return DiffOutcome::MatchedPrefix(i + 1);
        }
    }
    DiffOutcome::NoPrefixMatches
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPLOG: [&str; 3] = [
        "CREATE TABLE t (a INT NOT NULL, CONSTRAINT k CERTAIN KEY (a));",
        "INSERT INTO t VALUES (1);",
        "INSERT INTO t VALUES (2);",
    ];

    fn replayed(n: usize) -> String {
        let mut db = Database::new();
        for s in &OPLOG[..n] {
            db.run_script(s).unwrap();
        }
        db.export_script()
    }

    #[test]
    fn finds_each_prefix_and_rejects_non_prefixes() {
        let oplog: Vec<String> = OPLOG.iter().map(|s| s.to_string()).collect();
        for n in 0..=oplog.len() {
            assert_eq!(
                match_prefix(&oplog, &replayed(n)),
                DiffOutcome::MatchedPrefix(n)
            );
        }
        // A store that lost a *middle* statement matches no prefix.
        let mut holey = Database::new();
        holey.run_script(OPLOG[0]).unwrap();
        holey.run_script(OPLOG[2]).unwrap();
        assert_eq!(
            match_prefix(&oplog, &holey.export_script()),
            DiffOutcome::NoPrefixMatches
        );
        // An oplog that cannot replay serially is a verdict of its own.
        let bad: Vec<String> = vec![OPLOG[1].to_owned()];
        assert!(matches!(
            match_prefix(&bad, "x"),
            DiffOutcome::ReplayRejected { index: 0, .. }
        ));
    }
}
