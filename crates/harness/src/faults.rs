//! Fault planning and injection.
//!
//! The plan is drawn from its own RNG stream (the workload stream is
//! never consulted), and every decision is drawn *unconditionally* —
//! the probability flags only gate whether a drawn fault is armed — so
//! changing `--kill-prob` never changes which corruption a seed would
//! inject, and vice versa.
//!
//! Corruption is strictly framing-level: a truncated tail, a smashed
//! frame marker, or appended garbage. The WAL's recovery contract is
//! that the first malformed frame ends the replay, so any of these
//! leaves a clean *prefix* of the admitted statements — which is
//! exactly what the differential check asserts. A byte flip inside a
//! payload would instead produce well-framed garbage SQL and turn
//! recovery into a parse error; that is a different (and rejected)
//! failure model, so the harness never does it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::Path;

/// Keeps the fault stream distinct from the workload stream for the
/// same seed.
const FAULT_STREAM: u64 = 0xFA17_5EED_0000_0001;

/// How the live WAL's tail is damaged after the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Truncate the log by this many bytes (clamped to its length) —
    /// the classic torn tail.
    TruncateTail(u64),
    /// Overwrite the last frame marker (`#`) so the final record is
    /// malformed.
    SmashLastFrame,
    /// Append bytes that are not a complete frame (a crash mid-append).
    AppendGarbage,
}

impl Corruption {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Corruption::TruncateTail(_) => "truncate-tail",
            Corruption::SmashLastFrame => "smash-frame",
            Corruption::AppendGarbage => "append-garbage",
        }
    }
}

/// The seed-determined fault plan of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Admitted statements between automatic snapshots (0 = only on
    /// graceful shutdown); small values force snapshot races with the
    /// concurrent writers.
    pub snapshot_every: u64,
    /// `Some(k)`: after `k` further successful WAL appends every append
    /// fails (the deterministic crash point), and the server is
    /// `kill()`ed — no final snapshot, no fsync — instead of shut down.
    pub kill_after: Option<u64>,
    /// Damage applied to the live WAL between crash and reopen.
    pub corruption: Option<Corruption>,
}

/// Draws the plan for `(seed, ops)` under the given probabilities.
pub fn plan(seed: u64, ops: usize, kill_prob: f64, corrupt_prob: f64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ FAULT_STREAM);
    let snapshot_every = rng.gen_range(0..=8u64);
    // Draw both faults unconditionally, then gate them.
    let kill_roll = rng.gen_bool(kill_prob.clamp(0.0, 1.0));
    let kill_point = rng.gen_range(1..=ops.max(1) as u64);
    let corrupt_roll = rng.gen_bool(corrupt_prob.clamp(0.0, 1.0));
    let corruption = match rng.gen_range(0..3u32) {
        0 => Corruption::TruncateTail(rng.gen_range(1..=160u64)),
        1 => Corruption::SmashLastFrame,
        _ => Corruption::AppendGarbage,
    };
    FaultPlan {
        snapshot_every,
        kill_after: kill_roll.then_some(kill_point),
        corruption: corrupt_roll.then_some(corruption),
    }
}

/// Applies `c` to the live WAL of a closed server directory: the log
/// named by the snapshot's generation (generation 0 when no snapshot
/// exists). A missing or empty log makes the corruption a no-op — the
/// differential check then simply sees full recovery.
pub fn corrupt_wal_dir(dir: &Path, c: Corruption) -> io::Result<()> {
    use sqlnf_serve::wal;
    let generation = match std::fs::read_to_string(dir.join(wal::SNAPSHOT_FILE)) {
        Ok(image) => wal::parse_snapshot(&image).0,
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    let path = wal::wal_path(dir, generation);
    let raw = match std::fs::read(&path) {
        Ok(raw) => raw,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    sqlnf_obs::count!("harness.corruptions");
    match c {
        Corruption::TruncateTail(n) => {
            let keep = raw.len() as u64 - n.min(raw.len() as u64);
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)?
                .set_len(keep)?;
        }
        Corruption::SmashLastFrame => {
            // Canonical statements never contain '#', so the last '#'
            // in the image is the last frame's marker.
            if let Some(i) = raw.iter().rposition(|&b| b == b'#') {
                let mut raw = raw;
                raw[i] = b'@';
                std::fs::write(&path, raw)?;
            }
        }
        Corruption::AppendGarbage => {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&path)?;
            f.write_all(b"#999\nINSERT INTO half_a_frame")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_prob_independent() {
        assert_eq!(plan(5, 100, 0.5, 0.5), plan(5, 100, 0.5, 0.5));
        // Gating one fault never redraws the other.
        let both = plan(5, 100, 1.0, 1.0);
        let kill_only = plan(5, 100, 1.0, 0.0);
        let corrupt_only = plan(5, 100, 0.0, 1.0);
        assert_eq!(kill_only.kill_after, both.kill_after);
        assert_eq!(corrupt_only.corruption, both.corruption);
        assert!(kill_only.corruption.is_none());
        assert!(corrupt_only.kill_after.is_none());
        assert_eq!(both.snapshot_every, kill_only.snapshot_every);
    }

    #[test]
    fn corruption_always_leaves_a_replayable_prefix() {
        use sqlnf_serve::wal::{self, Wal};
        let stmts = [
            "CREATE TABLE t (a INT NOT NULL);",
            "INSERT INTO t VALUES (1);",
            "INSERT INTO t VALUES (2), (3);",
        ];
        for c in [
            Corruption::TruncateTail(7),
            Corruption::TruncateTail(10_000),
            Corruption::SmashLastFrame,
            Corruption::AppendGarbage,
        ] {
            let dir = std::env::temp_dir().join(format!(
                "sqlnf_faults_{}_{}",
                c.label(),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let mut w = Wal::open(&dir, 0).unwrap();
            for s in &stmts {
                w.append(s).unwrap();
            }
            drop(w);
            corrupt_wal_dir(&dir, c).unwrap();
            let back = wal::replay(&wal::wal_path(&dir, 0)).unwrap();
            assert!(back.len() <= stmts.len(), "{c:?}");
            assert_eq!(back[..], stmts[..back.len()], "{c:?} must yield a prefix");
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
