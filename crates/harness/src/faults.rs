//! Fault planning and injection.
//!
//! The plan is drawn from its own RNG stream (the workload stream is
//! never consulted), and every decision is drawn *unconditionally* —
//! the probability flags only gate whether a drawn fault is armed — so
//! changing `--kill-prob` never changes which corruption a seed would
//! inject, and vice versa.
//!
//! Corruption is strictly framing-level: a truncated tail, a smashed
//! frame marker, or appended garbage. The WAL's recovery contract is
//! that the first malformed frame ends the replay, so any of these
//! leaves a clean *prefix* of the admitted statements — which is
//! exactly what the differential check asserts. A byte flip inside a
//! payload would instead produce well-framed garbage SQL and turn
//! recovery into a parse error; that is a different (and rejected)
//! failure model, so the harness never does it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::path::Path;

/// Keeps the fault stream distinct from the workload stream for the
/// same seed.
const FAULT_STREAM: u64 = 0xFA17_5EED_0000_0001;

/// How the live WAL's tail is damaged after the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Truncate the log by this many bytes (clamped to its length) —
    /// the classic torn tail.
    TruncateTail(u64),
    /// Overwrite the last frame marker (`#`) so the final record is
    /// malformed.
    SmashLastFrame,
    /// Append bytes that are not a complete frame (a crash mid-append).
    AppendGarbage,
}

impl Corruption {
    /// Short stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Corruption::TruncateTail(_) => "truncate-tail",
            Corruption::SmashLastFrame => "smash-frame",
            Corruption::AppendGarbage => "append-garbage",
        }
    }
}

/// The seed-determined fault plan of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Admitted statements between automatic snapshots (0 = only on
    /// graceful shutdown); small values force snapshot races with the
    /// concurrent writers.
    pub snapshot_every: u64,
    /// `Some(k)`: after `k` further successful WAL appends every append
    /// fails (the deterministic crash point), and the server is
    /// `kill()`ed — no final snapshot, no fsync — instead of shut down.
    pub kill_after: Option<u64>,
    /// Damage applied to the live WAL between crash and reopen.
    pub corruption: Option<Corruption>,
}

/// Draws the plan for `(seed, ops)` under the given probabilities.
pub fn plan(seed: u64, ops: usize, kill_prob: f64, corrupt_prob: f64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed ^ FAULT_STREAM);
    let snapshot_every = rng.gen_range(0..=8u64);
    // Draw both faults unconditionally, then gate them.
    let kill_roll = rng.gen_bool(kill_prob.clamp(0.0, 1.0));
    let kill_point = rng.gen_range(1..=ops.max(1) as u64);
    let corrupt_roll = rng.gen_bool(corrupt_prob.clamp(0.0, 1.0));
    let corruption = match rng.gen_range(0..3u32) {
        0 => Corruption::TruncateTail(rng.gen_range(1..=160u64)),
        1 => Corruption::SmashLastFrame,
        _ => Corruption::AppendGarbage,
    };
    FaultPlan {
        snapshot_every,
        kill_after: kill_roll.then_some(kill_point),
        corruption: corrupt_roll.then_some(corruption),
    }
}

/// Applies `c` to *every* shard log of the live generation — the one
/// named by the snapshot header (generation 0 when no snapshot
/// exists). Damaging all shards is the honest crash model for a
/// sharded log: a torn power loss does not pick a favourite file. Each
/// shard loses its own tail, and recovery's epoch merge then censors
/// every global epoch past the earliest surviving gap. Missing or
/// empty logs make the corruption a no-op — the differential check
/// then simply sees full recovery.
pub fn corrupt_wal_dir(dir: &Path, c: Corruption) -> io::Result<()> {
    use sqlnf_serve::wal;
    let generation = match std::fs::read_to_string(dir.join(wal::SNAPSHOT_FILE)) {
        Ok(image) => wal::parse_snapshot(&image).0,
        Err(e) if e.kind() == io::ErrorKind::NotFound => 0,
        Err(e) => return Err(e),
    };
    for (_, path) in wal::shard_logs(dir, generation)? {
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        if raw.is_empty() {
            continue;
        }
        sqlnf_obs::count!("harness.corruptions");
        match c {
            Corruption::TruncateTail(n) => {
                let keep = raw.len() as u64 - n.min(raw.len() as u64);
                std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)?
                    .set_len(keep)?;
            }
            Corruption::SmashLastFrame => {
                // Canonical statements never contain '#', so the last
                // '#' in the image is the last frame's marker.
                if let Some(i) = raw.iter().rposition(|&b| b == b'#') {
                    let mut raw = raw;
                    raw[i] = b'@';
                    std::fs::write(&path, raw)?;
                }
            }
            Corruption::AppendGarbage => {
                use std::io::Write as _;
                let mut f = std::fs::OpenOptions::new().append(true).open(&path)?;
                f.write_all(b"#999\nINSERT INTO half_a_frame")?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic_and_prob_independent() {
        assert_eq!(plan(5, 100, 0.5, 0.5), plan(5, 100, 0.5, 0.5));
        // Gating one fault never redraws the other.
        let both = plan(5, 100, 1.0, 1.0);
        let kill_only = plan(5, 100, 1.0, 0.0);
        let corrupt_only = plan(5, 100, 0.0, 1.0);
        assert_eq!(kill_only.kill_after, both.kill_after);
        assert_eq!(corrupt_only.corruption, both.corruption);
        assert!(kill_only.corruption.is_none());
        assert!(corrupt_only.kill_after.is_none());
        assert_eq!(both.snapshot_every, kill_only.snapshot_every);
    }

    #[test]
    fn corruption_damages_every_shard_but_leaves_replayable_prefixes() {
        use sqlnf_serve::wal::{self, Wal};
        let stmts = [
            "CREATE TABLE t (a INT NOT NULL);",
            "INSERT INTO t VALUES (1);",
            "INSERT INTO t VALUES (2), (3);",
        ];
        for c in [
            Corruption::TruncateTail(7),
            Corruption::TruncateTail(10_000),
            Corruption::SmashLastFrame,
            Corruption::AppendGarbage,
        ] {
            let dir = std::env::temp_dir().join(format!(
                "sqlnf_faults_{}_{}",
                c.label(),
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            // Two shard logs carrying interleaved global epochs.
            for shard in 0..2u64 {
                let mut w = Wal::open(&dir, 0, shard).unwrap();
                for (i, s) in stmts.iter().enumerate() {
                    w.append(2 * i as u64 + shard + 1, s).unwrap();
                }
            }
            corrupt_wal_dir(&dir, c).unwrap();
            for shard in 0..2u64 {
                let pristine: Vec<_> = stmts
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (2 * i as u64 + shard + 1, s.to_string()))
                    .collect();
                let back = wal::replay(&wal::wal_path(&dir, 0, shard)).unwrap();
                assert!(back.len() <= stmts.len(), "{c:?} shard {shard}");
                assert_eq!(
                    back[..],
                    pristine[..back.len()],
                    "{c:?} shard {shard} must yield a prefix"
                );
                // Every shard took the hit, not just the first.
                if !matches!(c, Corruption::AppendGarbage) {
                    assert!(back.len() < stmts.len(), "{c:?} shard {shard} undamaged");
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}
