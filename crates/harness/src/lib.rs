//! # sqlnf-harness
//!
//! A seeded, fully deterministic fault-injection and
//! differential-testing harness over the `sqlnf-serve` stack and the
//! discovery pipeline. The statement stream, the fault plan, and the
//! differential verdict are pure functions of a `u64` seed (the thread
//! interleaving is not, so every fault and invariant is counted in
//! statements, never wall clock):
//!
//! 1. [`workload::generate`] derives a randomized DDL/DML statement
//!    stream (the same stream for any client count — statements are
//!    dealt round-robin to the concurrent sessions);
//! 2. [`faults::plan`] derives the fault plan from an independent RNG
//!    stream of the same seed: the auto-snapshot cadence, a
//!    deterministic crash point (counted in successful WAL appends, so
//!    it is independent of thread interleaving), and a WAL tail
//!    corruption;
//! 3. [`run_one`] drives a real TCP [`Server`] with N concurrent
//!    [`Client`]s, fires the plan, then reopens the WAL directory and
//!    differentially compares the recovered store byte-for-byte
//!    against a single-threaded reference [`Database`]
//!    (`sqlnf_model::engine::Database`) replay of the admitted-
//!    statement history ([`diff::match_prefix`]);
//! 4. on the recovered tables, [`minecheck::check_table`] cross-checks
//!    the miner against the satisfaction layer and the exact 2-tuple
//!    oracle of `sqlnf-core`.
//!
//! A failure carries a replayable `(seed, ops)` pair, and
//! [`run_minimized`] shrinks the op count by prefix (the generated
//! stream is prefix-stable per seed) before reporting it.
//!
//! [`Database`]: sqlnf_model::prelude::Database

#![warn(missing_docs)]

pub mod diff;
pub mod faults;
pub mod minecheck;
pub mod workload;

pub use diff::{match_prefix, DiffOutcome};
pub use faults::{corrupt_wal_dir, plan, Corruption, FaultPlan};
pub use minecheck::{check_table, MineCheckReport, MAX_ORACLE_ATTRS};
pub use workload::{generate, Workload};

use sqlnf_serve::{Client, ClientError, FsyncMode, ServeConfig, Server, Store};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Read timeout of the harness's clients: long enough for any real
/// reply, short enough that a killed server unblocks the run quickly.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How often the kill watcher polls for the armed WAL fault.
const KILL_POLL: Duration = Duration::from_millis(5);

/// One harness run's knobs. `seed` determines everything except thread
/// interleavings, which the differential check is insensitive to by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Seed of both the workload and the fault plan.
    pub seed: u64,
    /// Statements in the generated stream.
    pub ops: usize,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Probability that the plan arms the kill fault.
    pub kill_prob: f64,
    /// Probability that the plan arms a WAL tail corruption.
    pub corrupt_prob: f64,
    /// WAL shards of the server under test (corruption damages every
    /// shard of the live generation).
    pub wal_shards: usize,
    /// Group-commit linger window, microseconds.
    pub commit_window_us: u64,
    /// Fsync discipline of the server under test.
    pub fsync: FsyncMode,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            seed: 1,
            ops: 500,
            clients: 4,
            kill_prob: 0.5,
            corrupt_prob: 0.5,
            wal_shards: 1,
            commit_window_us: 0,
            fsync: FsyncMode::Batch,
        }
    }
}

/// What one passing run did — the shape facts seed-regression tests
/// pin down.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed that was run.
    pub seed: u64,
    /// Statements generated.
    pub ops: usize,
    /// The seed's fault plan.
    pub plan: FaultPlan,
    /// Whether the server was crash-killed (vs shut down gracefully).
    pub killed: bool,
    /// Whether the armed WAL-append fault actually fired.
    pub fault_fired: bool,
    /// Whether a planned corruption was applied to the WAL directory.
    pub corrupted: bool,
    /// Statements the concurrent server admitted (durable appends).
    pub admitted: usize,
    /// Statements the server refused with an `ERR` reply, as counted
    /// by the clients (DDL re-issues, constraint violations, and —
    /// after an injected WAL fault — every further statement).
    pub rejected: usize,
    /// Statements the server acknowledged with an `OK` reply, as
    /// counted by the clients — the harness's view of the ack
    /// contract. A lower bound under a kill: replies a dying session
    /// never read are lost to the tally.
    pub acked: usize,
    /// Length of the admitted-history prefix the recovered store
    /// matched byte-for-byte.
    pub recovered: usize,
    /// Snapshots the store took while the clients ran.
    pub snapshots: u64,
    /// Tables created by the workload's DDL prefix.
    pub tables: usize,
    /// CREATE TABLEs issued mid-stream (the concurrent-DDL path).
    pub mid_stream_ddl: usize,
    /// What the miner/oracle cross-check covered on the recovered
    /// tables.
    pub minecheck: MineCheckReport,
}

impl RunReport {
    /// One-line summary for the CLI.
    pub fn line(&self) -> String {
        let fate = match (self.killed, self.corrupted) {
            (true, true) => "killed+corrupted",
            (true, false) => "killed",
            (false, true) => "corrupted",
            (false, false) => "graceful",
        };
        format!(
            "seed {:>4}  ops {:>5}  {}  admitted {:>5}  recovered {:>5}  \
             snapshots {:>3}  tables {}  fds✓ {}  keys✓ {}  oracle✓ {}",
            self.seed,
            self.ops,
            fate,
            self.admitted,
            self.recovered,
            self.snapshots,
            self.minecheck.tables,
            self.minecheck.fds_checked,
            self.minecheck.keys_checked,
            self.minecheck.oracle_queries,
        )
    }
}

/// A failing run, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct HarnessFailure {
    /// Seed of the failing run.
    pub seed: u64,
    /// Op count of the failing run (minimized when it came from
    /// [`run_minimized`]).
    pub ops: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for HarnessFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "harness failure at seed {} ops {}: {}\n  replay: sqlnf harness --seed {} --ops {}",
            self.seed, self.ops, self.message, self.seed, self.ops
        )
    }
}

impl std::error::Error for HarnessFailure {}

/// Uniquifies WAL directories across concurrent runs in one process.
static RUN_NONCE: AtomicU64 = AtomicU64::new(0);

fn run_dir(seed: u64, ops: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sqlnf_harness_{}_{seed}_{ops}_{}",
        std::process::id(),
        RUN_NONCE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Outcome of one client session thread. The authoritative admitted
/// count is the store's oplog; the client side tallies the replies it
/// actually read — `OK`s are the statements the server *acknowledged*
/// to this client, the harness's ground truth for the ack contract
/// ("OK means durable across recovery").
enum ClientOutcome {
    /// Every dealt statement earned a reply.
    Finished {
        /// Statements refused with an `ERR` reply.
        rejected: usize,
        /// Statements acknowledged with an `OK` reply.
        acked: usize,
    },
    /// The server went away mid-session (only legal under a kill);
    /// replies read before the death are lost to the tally, so the
    /// run's acked total becomes a lower bound.
    Died(ClientError),
}

/// Statements per pipelined burst. Small enough that a kill still
/// lands mid-stream for most plans, large enough to exercise the
/// server's group-commit batching (several frames per fsync).
const PIPELINE_CHUNK: usize = 8;

fn drive_client(addr: std::net::SocketAddr, stmts: Vec<String>) -> ClientOutcome {
    let mut client = match Client::connect_with_timeout(addr, Some(CLIENT_READ_TIMEOUT)) {
        Ok(c) => c,
        Err(e) => return ClientOutcome::Died(e),
    };
    let mut rejected = 0usize;
    let mut acked = 0usize;
    for chunk in stmts.chunks(PIPELINE_CHUNK) {
        match client.send_batch(chunk) {
            Ok(replies) => {
                acked += replies.iter().filter(|r| r.ok).count();
                rejected += replies.iter().filter(|r| !r.ok).count();
            }
            Err(e) => return ClientOutcome::Died(e),
        }
    }
    let _ = client.quit();
    ClientOutcome::Finished { rejected, acked }
}

/// Runs one seed end-to-end. A passing run returns its [`RunReport`];
/// any divergence — recovery panic, a store that matches no prefix of
/// the admitted history, a miner/oracle disagreement — is a
/// [`HarnessFailure`] replayable from its `(seed, ops)`.
pub fn run_one(config: &HarnessConfig) -> Result<RunReport, HarnessFailure> {
    sqlnf_obs::count!("harness.runs");
    let _span = sqlnf_obs::span!("harness.run");
    let fail = |message: String| {
        sqlnf_obs::count!("harness.failures");
        HarnessFailure {
            seed: config.seed,
            ops: config.ops,
            message,
        }
    };

    let plan = faults::plan(
        config.seed,
        config.ops,
        config.kill_prob,
        config.corrupt_prob,
    );
    let workload = workload::generate(config.seed, config.ops);
    let dir = run_dir(config.seed, config.ops);
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        wal_dir: Some(dir.clone()),
        workers: config.clients.max(1),
        snapshot_every: plan.snapshot_every,
        wal_shards: config.wal_shards.max(1),
        commit_window: Duration::from_micros(config.commit_window_us),
        fsync: config.fsync,
    })
    .map_err(|e| fail(format!("server failed to start: {e}")))?;
    let store = Arc::clone(server.store());
    store.enable_oplog();
    if let Some(k) = plan.kill_after {
        store.inject_wal_fault_after(k);
    }
    let addr = server.local_addr();

    let clients = config.clients.max(1);
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let stmts: Vec<String> = workload
                .ops
                .iter()
                .skip(i)
                .step_by(clients)
                .cloned()
                .collect();
            std::thread::spawn(move || drive_client(addr, stmts))
        })
        .collect();

    // The crash: once the armed append fault fires, the statement
    // count that became durable is fixed (regardless of interleaving),
    // so killing the server any time after is deterministic in effect.
    let mut server = Some(server);
    let mut killed = false;
    if plan.kill_after.is_some() {
        while !store.wal_fault_fired() && handles.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(KILL_POLL);
        }
        sqlnf_obs::count!("harness.kills");
        server.take().expect("server not yet consumed").kill();
        killed = true;
    }

    let mut rejected = 0usize;
    let mut acked = 0usize;
    for h in handles {
        match h.join() {
            Ok(ClientOutcome::Finished {
                rejected: r,
                acked: a,
            }) => {
                rejected += r;
                acked += a;
            }
            Ok(ClientOutcome::Died(e)) => {
                if !killed {
                    return Err(fail(format!("client died without an injected kill: {e}")));
                }
            }
            Err(_) => return Err(fail("client thread panicked".into())),
        }
    }

    if let Some(s) = server.take() {
        s.shutdown()
            .map_err(|e| fail(format!("graceful shutdown failed: {e}")))?;
    }

    let oplog = store.oplog();
    // The observability plane must agree with the ground-truth serial
    // history: every oplog push increments `stmt.admitted` (both under
    // the same admission path), so a divergence means a counter bug.
    let admitted_counter = store.stats.admitted.load(Ordering::Relaxed);
    if admitted_counter != oplog.len() as u64 {
        return Err(fail(format!(
            "stats.admitted ({admitted_counter}) diverges from the oplog ({})",
            oplog.len()
        )));
    }
    let fault_fired = store.wal_fault_fired();
    let snapshots = store.stats.snapshots.load(Ordering::Relaxed);
    drop(store);

    let corrupted = if let Some(c) = plan.corruption {
        faults::corrupt_wal_dir(&dir, c)
            .map_err(|e| fail(format!("could not apply {}: {e}", c.label())))?;
        true
    } else {
        false
    };

    // Recovery + the differential check. `catch_unwind` turns a
    // recovery panic — the bug class the torn-tail tests hunt — into a
    // replayable failure instead of tearing the harness down.
    let recovered_store = std::panic::catch_unwind(|| Store::open(&dir, 0))
        .map_err(|_| fail("recovery panicked".into()))?
        .map_err(|e| fail(format!("recovery failed: {e}")))?;
    let export = recovered_store.export_script();
    let recovered = match diff::match_prefix(&oplog, &export) {
        DiffOutcome::MatchedPrefix(n) => n,
        other => return Err(fail(format!("differential check failed: {other:?}"))),
    };
    // The ack contract, from the client's side of the wire. Every
    // `OK` reply is one oplog entry, so the tally can never exceed
    // the durable history; without a kill every reply was read, so it
    // matches exactly; and without corruption (which destroys durable
    // frames by design) every acked statement must survive recovery —
    // acks are watermark-gated, so acked statements always sit inside
    // the contiguous recovered prefix, never past a censoring gap.
    if acked > oplog.len() {
        return Err(fail(format!(
            "clients counted {acked} acks but the oplog holds only {}",
            oplog.len()
        )));
    }
    if !killed && acked != oplog.len() {
        return Err(fail(format!(
            "ack tally ({acked}) diverges from the oplog ({}) without a kill",
            oplog.len()
        )));
    }
    if !corrupted && acked > recovered {
        return Err(fail(format!(
            "an acked statement did not survive recovery: {acked} acked, {recovered} recovered"
        )));
    }
    if !killed && !corrupted && recovered != oplog.len() {
        return Err(fail(format!(
            "graceful shutdown lost statements: recovered {recovered} of {}",
            oplog.len()
        )));
    }
    if killed && !corrupted && recovered != oplog.len() {
        return Err(fail(format!(
            "crash without corruption must recover every flushed append: {recovered} of {}",
            oplog.len()
        )));
    }
    if !recovered_store.satisfies_all_constraints() {
        return Err(fail("recovered store violates its own constraints".into()));
    }

    // Miner ↔ oracle cross-check on what the run left behind.
    let mut minecheck = MineCheckReport::default();
    for name in recovered_store.table_names() {
        let table = recovered_store
            .with_table(&name, |st| st.data().clone())
            .expect("listed table exists");
        let report = check_table(&table, config.seed).map_err(&fail)?;
        minecheck.absorb(&report);
    }

    let _ = std::fs::remove_dir_all(&dir);
    Ok(RunReport {
        seed: config.seed,
        ops: config.ops,
        plan,
        killed,
        fault_fired,
        corrupted,
        admitted: oplog.len(),
        rejected,
        acked,
        recovered,
        snapshots,
        tables: workload.tables,
        mid_stream_ddl: workload.mid_stream_ddl,
        minecheck,
    })
}

/// Shrinks a failing run by op-count prefix: the generated stream of a
/// seed is prefix-stable, so replaying the same seed with fewer ops
/// reproduces an exact prefix of the workload (and of the fault
/// stream's decisions). Returns the smallest failure the binary search
/// could still reproduce — best-effort when the failure needs a racy
/// interleaving, exact for deterministic ones.
pub fn minimize(config: &HarnessConfig, first: HarnessFailure) -> HarnessFailure {
    let mut best = first;
    let (mut lo, mut hi) = (1usize, best.ops);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut shrunk = config.clone();
        shrunk.ops = mid;
        match run_one(&shrunk) {
            Err(f) => {
                sqlnf_obs::count!("harness.shrinks");
                best = f;
                hi = mid;
            }
            Ok(_) => lo = mid + 1,
        }
    }
    best
}

/// [`run_one`], with failures minimized before they are reported.
pub fn run_minimized(config: &HarnessConfig) -> Result<RunReport, HarnessFailure> {
    match run_one(config) {
        Ok(report) => Ok(report),
        Err(first) => Err(minimize(config, first)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_recovers_everything() {
        let config = HarnessConfig {
            seed: 11,
            ops: 80,
            clients: 2,
            kill_prob: 0.0,
            corrupt_prob: 0.0,
            ..HarnessConfig::default()
        };
        let report = run_one(&config).expect("clean run passes");
        assert!(!report.killed && !report.corrupted);
        assert_eq!(report.recovered, report.admitted);
        assert_eq!(report.acked, report.admitted);
        assert!(report.admitted > 0);
        assert!(report.minecheck.tables > 0);
    }

    #[test]
    fn faulted_runs_pass_and_recover_a_prefix() {
        let config = HarnessConfig {
            seed: 3,
            ops: 120,
            clients: 4,
            kill_prob: 1.0,
            corrupt_prob: 1.0,
            wal_shards: 4,
            commit_window_us: 200,
            ..HarnessConfig::default()
        };
        let report = run_one(&config).expect("faulted run passes");
        assert!(report.killed);
        assert!(report.corrupted);
        assert!(report.recovered <= report.admitted);
    }

    #[test]
    fn plan_and_workload_are_bit_reproducible() {
        let config = HarnessConfig::default();
        assert_eq!(
            faults::plan(config.seed, config.ops, 1.0, 1.0),
            faults::plan(config.seed, config.ops, 1.0, 1.0),
        );
        assert_eq!(
            workload::generate(config.seed, config.ops).ops,
            workload::generate(config.seed, config.ops).ops,
        );
    }
}
