//! # sqlnf-harness
//!
//! A seeded, fully deterministic fault-injection and
//! differential-testing harness over the `sqlnf-serve` stack and the
//! discovery pipeline. The statement stream, the fault plan, and the
//! differential verdict are pure functions of a `u64` seed (the thread
//! interleaving is not, so every fault and invariant is counted in
//! statements, never wall clock):
//!
//! 1. [`workload::generate`] derives a randomized DDL/DML statement
//!    stream (the same stream for any client count — statements are
//!    dealt round-robin to the concurrent sessions);
//! 2. [`faults::plan`] derives the fault plan from an independent RNG
//!    stream of the same seed: the auto-snapshot cadence, a
//!    deterministic crash point (counted in successful WAL appends, so
//!    it is independent of thread interleaving), and a WAL tail
//!    corruption;
//! 3. [`run_one`] drives a real TCP [`Server`] with N concurrent
//!    [`Client`]s, fires the plan, then reopens the WAL directory and
//!    differentially compares the recovered store byte-for-byte
//!    against a single-threaded reference [`Database`]
//!    (`sqlnf_model::engine::Database`) replay of the admitted-
//!    statement history ([`diff::match_prefix`]);
//! 4. on the recovered tables, [`minecheck::check_table`] cross-checks
//!    the miner against the satisfaction layer and the exact 2-tuple
//!    oracle of `sqlnf-core`.
//!
//! A failure carries a replayable `(seed, ops)` pair, and
//! [`run_minimized`] shrinks the op count by prefix (the generated
//! stream is prefix-stable per seed) before reporting it.
//!
//! [`Database`]: sqlnf_model::prelude::Database

#![warn(missing_docs)]

pub mod diff;
pub mod faults;
pub mod minecheck;
pub mod workload;

pub use diff::{match_prefix, DiffOutcome};
pub use faults::{corrupt_wal_dir, plan, Corruption, FaultPlan};
pub use minecheck::{check_table, MineCheckReport, MAX_ORACLE_ATTRS};
pub use workload::{generate, Workload};

use sqlnf_model::prelude::{parse_script, Database, Statement};
use sqlnf_serve::{
    table_facts_with, Client, ClientError, FsyncMode, ServeConfig, Server, Store, StreamItem,
    WatchEvent, WATCH_MAX_LHS,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Read timeout of the harness's clients: long enough for any real
/// reply, short enough that a killed server unblocks the run quickly.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// How often the kill watcher polls for the armed WAL fault.
const KILL_POLL: Duration = Duration::from_millis(5);

/// One harness run's knobs. `seed` determines everything except thread
/// interleavings, which the differential check is insensitive to by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessConfig {
    /// Seed of both the workload and the fault plan.
    pub seed: u64,
    /// Statements in the generated stream.
    pub ops: usize,
    /// Concurrent client sessions.
    pub clients: usize,
    /// Probability that the plan arms the kill fault.
    pub kill_prob: f64,
    /// Probability that the plan arms a WAL tail corruption.
    pub corrupt_prob: f64,
    /// WAL shards of the server under test (corruption damages every
    /// shard of the live generation).
    pub wal_shards: usize,
    /// Group-commit linger window, microseconds.
    pub commit_window_us: u64,
    /// Fsync discipline of the server under test.
    pub fsync: FsyncMode,
    /// Ride a `WATCH` subscriber and a `MINE`-issuing session along
    /// with the DML clients, then cross-check every streamed FD/key
    /// event against a from-scratch mine of its oplog prefix. Off by
    /// default so existing pinned seeds replay unchanged.
    pub watch: bool,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            seed: 1,
            ops: 500,
            clients: 4,
            kill_prob: 0.5,
            corrupt_prob: 0.5,
            wal_shards: 1,
            commit_window_us: 0,
            fsync: FsyncMode::Batch,
            watch: false,
        }
    }
}

/// What one passing run did — the shape facts seed-regression tests
/// pin down.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The seed that was run.
    pub seed: u64,
    /// Statements generated.
    pub ops: usize,
    /// The seed's fault plan.
    pub plan: FaultPlan,
    /// Whether the server was crash-killed (vs shut down gracefully).
    pub killed: bool,
    /// Whether the armed WAL-append fault actually fired.
    pub fault_fired: bool,
    /// Whether a planned corruption was applied to the WAL directory.
    pub corrupted: bool,
    /// Statements the concurrent server admitted (durable appends).
    pub admitted: usize,
    /// Statements the server refused with an `ERR` reply, as counted
    /// by the clients (DDL re-issues, constraint violations, and —
    /// after an injected WAL fault — every further statement).
    pub rejected: usize,
    /// Statements the server acknowledged with an `OK` reply, as
    /// counted by the clients — the harness's view of the ack
    /// contract. A lower bound under a kill: replies a dying session
    /// never read are lost to the tally.
    pub acked: usize,
    /// Length of the admitted-history prefix the recovered store
    /// matched byte-for-byte.
    pub recovered: usize,
    /// Snapshots the store took while the clients ran.
    pub snapshots: u64,
    /// Tables created by the workload's DDL prefix.
    pub tables: usize,
    /// CREATE TABLEs issued mid-stream (the concurrent-DDL path).
    pub mid_stream_ddl: usize,
    /// What the miner/oracle cross-check covered on the recovered
    /// tables.
    pub minecheck: MineCheckReport,
    /// FD/key stream events the `WATCH` subscriber received (0 when
    /// the run rode no subscriber).
    pub watch_events: usize,
    /// Events the subscriber lost to backpressure (`LAGGED` totals).
    pub watch_lagged: u64,
    /// `MINE` verbs acknowledged while (and just after) the DML ran.
    pub mines: usize,
}

impl RunReport {
    /// One-line summary for the CLI.
    pub fn line(&self) -> String {
        let fate = match (self.killed, self.corrupted) {
            (true, true) => "killed+corrupted",
            (true, false) => "killed",
            (false, true) => "corrupted",
            (false, false) => "graceful",
        };
        let watch = if self.watch_events > 0 || self.mines > 0 {
            format!(
                "  watch ev {} lag {} mines {}",
                self.watch_events, self.watch_lagged, self.mines
            )
        } else {
            String::new()
        };
        format!(
            "seed {:>4}  ops {:>5}  {}  admitted {:>5}  recovered {:>5}  \
             snapshots {:>3}  tables {}  fds✓ {}  keys✓ {}  oracle✓ {}{watch}",
            self.seed,
            self.ops,
            fate,
            self.admitted,
            self.recovered,
            self.snapshots,
            self.minecheck.tables,
            self.minecheck.fds_checked,
            self.minecheck.keys_checked,
            self.minecheck.oracle_queries,
        )
    }
}

/// A failing run, with everything needed to replay it.
#[derive(Debug, Clone)]
pub struct HarnessFailure {
    /// Seed of the failing run.
    pub seed: u64,
    /// Op count of the failing run (minimized when it came from
    /// [`run_minimized`]).
    pub ops: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for HarnessFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "harness failure at seed {} ops {}: {}\n  replay: sqlnf harness --seed {} --ops {}",
            self.seed, self.ops, self.message, self.seed, self.ops
        )
    }
}

impl std::error::Error for HarnessFailure {}

/// Uniquifies WAL directories across concurrent runs in one process.
static RUN_NONCE: AtomicU64 = AtomicU64::new(0);

fn run_dir(seed: u64, ops: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "sqlnf_harness_{}_{seed}_{ops}_{}",
        std::process::id(),
        RUN_NONCE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Outcome of one client session thread. The authoritative admitted
/// count is the store's oplog; the client side tallies the replies it
/// actually read — `OK`s are the statements the server *acknowledged*
/// to this client, the harness's ground truth for the ack contract
/// ("OK means durable across recovery").
enum ClientOutcome {
    /// Every dealt statement earned a reply.
    Finished {
        /// Statements refused with an `ERR` reply.
        rejected: usize,
        /// Statements acknowledged with an `OK` reply.
        acked: usize,
    },
    /// The server went away mid-session (only legal under a kill);
    /// replies read before the death are lost to the tally, so the
    /// run's acked total becomes a lower bound.
    Died(ClientError),
}

/// Statements per pipelined burst. Small enough that a kill still
/// lands mid-stream for most plans, large enough to exercise the
/// server's group-commit batching (several frames per fsync).
const PIPELINE_CHUNK: usize = 8;

fn drive_client(addr: std::net::SocketAddr, stmts: Vec<String>) -> ClientOutcome {
    let mut client = match Client::connect_with_timeout(addr, Some(CLIENT_READ_TIMEOUT)) {
        Ok(c) => c,
        Err(e) => return ClientOutcome::Died(e),
    };
    let mut rejected = 0usize;
    let mut acked = 0usize;
    for chunk in stmts.chunks(PIPELINE_CHUNK) {
        match client.send_batch(chunk) {
            Ok(replies) => {
                acked += replies.iter().filter(|r| r.ok).count();
                rejected += replies.iter().filter(|r| !r.ok).count();
            }
            Err(e) => return ClientOutcome::Died(e),
        }
    }
    let _ = client.quit();
    ClientOutcome::Finished { rejected, acked }
}

/// What the ride-along `WATCH` subscriber saw: every streamed event in
/// arrival order, the total backpressure loss, and whether the session
/// outlived the server (only legal under a kill).
struct WatchTally {
    events: Vec<WatchEvent>,
    lagged: u64,
    died: bool,
}

/// Read timeout of the ride-along subscriber: short, so `Ok(None)`
/// from `next_event` means "stream idle right now" and the final drain
/// converges quickly once the run is over.
const WATCH_POLL: Duration = Duration::from_millis(200);

fn watch_session(mut client: Client, done: Arc<AtomicBool>) -> WatchTally {
    let mut tally = WatchTally {
        events: Vec::new(),
        lagged: 0,
        died: false,
    };
    loop {
        match client.next_event() {
            Ok(Some(StreamItem::Event(ev))) => tally.events.push(ev),
            Ok(Some(StreamItem::Lagged(n))) => tally.lagged += n,
            // Idle: keep listening until the runner says the workload
            // (and the hub fence) is behind us.
            Ok(None) => {
                if done.load(Ordering::Acquire) {
                    break;
                }
            }
            Err(_) => {
                tally.died = true;
                return tally;
            }
        }
    }
    // UNWATCH forces a flush of everything still queued server-side,
    // so the tally never depends on racing the idle-poll flush.
    match client.unwatch() {
        Ok((rest, _)) => {
            for item in rest {
                match item {
                    StreamItem::Event(ev) => tally.events.push(ev),
                    StreamItem::Lagged(n) => tally.lagged += n,
                }
            }
            let _ = client.quit();
        }
        Err(_) => tally.died = true,
    }
    tally
}

/// Issues `MINE <table>` round-robin while the DML clients run — the
/// snapshot-then-mine path under live write pressure — then one final
/// pass once the stream has settled (every table exists by then), so
/// even the shortest run tallies at least one successful mine.
fn mine_session(addr: std::net::SocketAddr, tables: Vec<String>, done: Arc<AtomicBool>) -> usize {
    let mut client = match Client::connect_with_timeout(addr, Some(CLIENT_READ_TIMEOUT)) {
        Ok(c) => c,
        Err(_) => return 0,
    };
    let mut mined = 0usize;
    let pass = |client: &mut Client, mined: &mut usize| -> bool {
        for t in &tables {
            match client.request(&format!("MINE {t}")) {
                Ok(r) if r.ok => *mined += 1,
                // Refusals are expected early: a mid-stream table may
                // not exist yet.
                Ok(_) => {}
                Err(_) => return false,
            }
        }
        true
    };
    while !done.load(Ordering::Acquire) {
        if !pass(&mut client, &mut mined) {
            return mined;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    if pass(&mut client, &mut mined) {
        let _ = client.quit();
    }
    mined
}

/// Runs one seed end-to-end. A passing run returns its [`RunReport`];
/// any divergence — recovery panic, a store that matches no prefix of
/// the admitted history, a miner/oracle disagreement — is a
/// [`HarnessFailure`] replayable from its `(seed, ops)`.
pub fn run_one(config: &HarnessConfig) -> Result<RunReport, HarnessFailure> {
    sqlnf_obs::count!("harness.runs");
    let _span = sqlnf_obs::span!("harness.run");
    let fail = |message: String| {
        sqlnf_obs::count!("harness.failures");
        HarnessFailure {
            seed: config.seed,
            ops: config.ops,
            message,
        }
    };

    let plan = faults::plan(
        config.seed,
        config.ops,
        config.kill_prob,
        config.corrupt_prob,
    );
    let workload = workload::generate(config.seed, config.ops);
    let dir = run_dir(config.seed, config.ops);
    let _ = std::fs::remove_dir_all(&dir);

    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        wal_dir: Some(dir.clone()),
        // A session occupies a worker for its lifetime, so the two
        // ride-along sessions (subscriber + miner) need seats of their
        // own or they would starve the DML clients.
        workers: config.clients.max(1) + if config.watch { 2 } else { 0 },
        snapshot_every: plan.snapshot_every,
        wal_shards: config.wal_shards.max(1),
        commit_window: Duration::from_micros(config.commit_window_us),
        fsync: config.fsync,
    })
    .map_err(|e| fail(format!("server failed to start: {e}")))?;
    let store = Arc::clone(server.store());
    store.enable_oplog();
    if let Some(k) = plan.kill_after {
        store.inject_wal_fault_after(k);
    }
    let addr = server.local_addr();

    // The ride-along subscriber registers before any DML client
    // connects, so its subscription covers the whole durable history
    // (epoch 1 onward) and completeness is checkable afterwards.
    let watch_done = Arc::new(AtomicBool::new(false));
    // Odd seeds subscribe on the weak plane (`WATCH * weak`), even
    // seeds on the default one, so both fact vocabularies are under
    // the stream-soundness check — deterministically per seed.
    let weak_plane = config.watch && config.seed % 2 == 1;
    let watch_handle = if config.watch {
        let mut watcher = Client::connect_with_timeout(addr, Some(WATCH_POLL))
            .map_err(|e| fail(format!("watch subscriber failed to connect: {e}")))?;
        if weak_plane {
            watcher.watch_weak(None)
        } else {
            watcher.watch(None)
        }
        .map_err(|e| fail(format!("WATCH refused: {e}")))?;
        let done = Arc::clone(&watch_done);
        Some(std::thread::spawn(move || watch_session(watcher, done)))
    } else {
        None
    };
    let mine_handle = if config.watch {
        let tables: Vec<String> = (0..workload.tables).map(|i| format!("t{i}")).collect();
        let done = Arc::clone(&watch_done);
        Some(std::thread::spawn(move || mine_session(addr, tables, done)))
    } else {
        None
    };

    let clients = config.clients.max(1);
    let handles: Vec<_> = (0..clients)
        .map(|i| {
            let stmts: Vec<String> = workload
                .ops
                .iter()
                .skip(i)
                .step_by(clients)
                .cloned()
                .collect();
            std::thread::spawn(move || drive_client(addr, stmts))
        })
        .collect();

    // The crash: once the armed append fault fires, the statement
    // count that became durable is fixed (regardless of interleaving),
    // so killing the server any time after is deterministic in effect.
    let mut server = Some(server);
    let mut killed = false;
    if plan.kill_after.is_some() {
        while !store.wal_fault_fired() && handles.iter().any(|h| !h.is_finished()) {
            std::thread::sleep(KILL_POLL);
        }
        sqlnf_obs::count!("harness.kills");
        server.take().expect("server not yet consumed").kill();
        killed = true;
    }

    let mut rejected = 0usize;
    let mut acked = 0usize;
    for h in handles {
        match h.join() {
            Ok(ClientOutcome::Finished {
                rejected: r,
                acked: a,
            }) => {
                rejected += r;
                acked += a;
            }
            Ok(ClientOutcome::Died(e)) => {
                if !killed {
                    return Err(fail(format!("client died without an injected kill: {e}")));
                }
            }
            Err(_) => return Err(fail("client thread panicked".into())),
        }
    }

    // Wind down the ride-alongs while the server (if it survived) is
    // still up: fence the hub first, so every committed frame has been
    // mined and queued before the subscriber is told it may stop, then
    // let the subscriber drain (its UNWATCH flushes the queue) and the
    // miner finish its settled pass.
    if config.watch {
        store.watch_barrier();
    }
    watch_done.store(true, Ordering::Release);
    let mines = match mine_handle {
        Some(h) => h.join().map_err(|_| fail("mine thread panicked".into()))?,
        None => 0,
    };
    let watch_tally = match watch_handle {
        Some(h) => {
            let tally = h.join().map_err(|_| fail("watch thread panicked".into()))?;
            if tally.died && !killed {
                return Err(fail(
                    "watch subscriber died without an injected kill".into(),
                ));
            }
            Some(tally)
        }
        None => None,
    };

    if let Some(s) = server.take() {
        s.shutdown()
            .map_err(|e| fail(format!("graceful shutdown failed: {e}")))?;
    }

    let oplog = store.oplog();
    // The observability plane must agree with the ground-truth serial
    // history: every oplog push increments `stmt.admitted` (both under
    // the same admission path), so a divergence means a counter bug.
    let admitted_counter = store.stats.admitted.load(Ordering::Relaxed);
    if admitted_counter != oplog.len() as u64 {
        return Err(fail(format!(
            "stats.admitted ({admitted_counter}) diverges from the oplog ({})",
            oplog.len()
        )));
    }
    let fault_fired = store.wal_fault_fired();
    let snapshots = store.stats.snapshots.load(Ordering::Relaxed);
    drop(store);

    let corrupted = if let Some(c) = plan.corruption {
        faults::corrupt_wal_dir(&dir, c)
            .map_err(|e| fail(format!("could not apply {}: {e}", c.label())))?;
        true
    } else {
        false
    };

    // Recovery + the differential check. `catch_unwind` turns a
    // recovery panic — the bug class the torn-tail tests hunt — into a
    // replayable failure instead of tearing the harness down.
    let recovered_store = std::panic::catch_unwind(|| Store::open(&dir, 0))
        .map_err(|_| fail("recovery panicked".into()))?
        .map_err(|e| fail(format!("recovery failed: {e}")))?;
    let export = recovered_store.export_script();
    let recovered = match diff::match_prefix(&oplog, &export) {
        DiffOutcome::MatchedPrefix(n) => n,
        other => return Err(fail(format!("differential check failed: {other:?}"))),
    };
    // The ack contract, from the client's side of the wire. Every
    // `OK` reply is one oplog entry, so the tally can never exceed
    // the durable history; without a kill every reply was read, so it
    // matches exactly; and without corruption (which destroys durable
    // frames by design) every acked statement must survive recovery —
    // acks are watermark-gated, so acked statements always sit inside
    // the contiguous recovered prefix, never past a censoring gap.
    if acked > oplog.len() {
        return Err(fail(format!(
            "clients counted {acked} acks but the oplog holds only {}",
            oplog.len()
        )));
    }
    if !killed && acked != oplog.len() {
        return Err(fail(format!(
            "ack tally ({acked}) diverges from the oplog ({}) without a kill",
            oplog.len()
        )));
    }
    if !corrupted && acked > recovered {
        return Err(fail(format!(
            "an acked statement did not survive recovery: {acked} acked, {recovered} recovered"
        )));
    }
    if !killed && !corrupted && recovered != oplog.len() {
        return Err(fail(format!(
            "graceful shutdown lost statements: recovered {recovered} of {}",
            oplog.len()
        )));
    }
    if killed && !corrupted && recovered != oplog.len() {
        return Err(fail(format!(
            "crash without corruption must recover every flushed append: {recovered} of {}",
            oplog.len()
        )));
    }
    if !recovered_store.satisfies_all_constraints() {
        return Err(fail("recovered store violates its own constraints".into()));
    }

    // Miner ↔ oracle cross-check on what the run left behind.
    let mut minecheck = MineCheckReport::default();
    for name in recovered_store.table_names() {
        let table = recovered_store
            .with_table(&name, |st| st.data().clone())
            .expect("listed table exists");
        let report = check_table(&table, config.seed).map_err(&fail)?;
        minecheck.absorb(&report);
    }

    // Stream soundness: every event the subscriber received must be
    // confirmed by a from-scratch mine of the oplog prefix it claims —
    // replay the durable history statement by statement and diff the
    // touched table's fact set across each epoch. The received stream
    // must be an in-order subsequence of that reference stream (the
    // hub releases epochs contiguously and the queue is FIFO, so lag
    // can only drop events, never reorder them), and with no kill and
    // no lag it must be the whole thing.
    let (watch_events, watch_lagged) = if let Some(tally) = &watch_tally {
        let mut db = Database::new();
        let mut facts: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut expected: Vec<String> = Vec::new();
        for (i, stmt) in oplog.iter().enumerate() {
            let epoch = i + 1;
            let parsed = parse_script(stmt)
                .map_err(|e| fail(format!("admitted statement does not parse: {e:?}")))?;
            db.run_script(stmt)
                .map_err(|e| fail(format!("admitted statement does not replay: {e}")))?;
            for s in &parsed {
                let name = match s {
                    Statement::CreateTable { schema, .. } => schema.name().to_owned(),
                    Statement::Insert { table, .. } => table.clone(),
                };
                let table = db.table(&name).expect("replayed table exists").data();
                let now = table_facts_with(table, WATCH_MAX_LHS, weak_plane);
                let before = facts.entry(name.clone()).or_default();
                for f in before.difference(&now) {
                    expected.push(format!("EVENT {epoch} {name} -{f}"));
                }
                for f in now.difference(before) {
                    expected.push(format!("EVENT {epoch} {name} +{f}"));
                }
                *before = now;
            }
        }
        let got: Vec<String> = tally.events.iter().map(WatchEvent::line).collect();
        let mut reference = expected.iter();
        for line in &got {
            if !reference.any(|e| e == line) {
                return Err(fail(format!(
                    "unsound WATCH event (no from-scratch mine of any remaining \
                     oplog prefix produces it, in order): {line}"
                )));
            }
        }
        if !killed && !tally.died && tally.lagged == 0 && got != expected {
            return Err(fail(format!(
                "WATCH stream incomplete without lag: received {} of {} events",
                got.len(),
                expected.len()
            )));
        }
        (tally.events.len(), tally.lagged)
    } else {
        (0, 0)
    };

    let _ = std::fs::remove_dir_all(&dir);
    Ok(RunReport {
        seed: config.seed,
        ops: config.ops,
        plan,
        killed,
        fault_fired,
        corrupted,
        admitted: oplog.len(),
        rejected,
        acked,
        recovered,
        snapshots,
        tables: workload.tables,
        mid_stream_ddl: workload.mid_stream_ddl,
        minecheck,
        watch_events,
        watch_lagged,
        mines,
    })
}

/// Shrinks a failing run by op-count prefix: the generated stream of a
/// seed is prefix-stable, so replaying the same seed with fewer ops
/// reproduces an exact prefix of the workload (and of the fault
/// stream's decisions). Returns the smallest failure the binary search
/// could still reproduce — best-effort when the failure needs a racy
/// interleaving, exact for deterministic ones.
pub fn minimize(config: &HarnessConfig, first: HarnessFailure) -> HarnessFailure {
    let mut best = first;
    let (mut lo, mut hi) = (1usize, best.ops);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let mut shrunk = config.clone();
        shrunk.ops = mid;
        match run_one(&shrunk) {
            Err(f) => {
                sqlnf_obs::count!("harness.shrinks");
                best = f;
                hi = mid;
            }
            Ok(_) => lo = mid + 1,
        }
    }
    best
}

/// [`run_one`], with failures minimized before they are reported.
pub fn run_minimized(config: &HarnessConfig) -> Result<RunReport, HarnessFailure> {
    match run_one(config) {
        Ok(report) => Ok(report),
        Err(first) => Err(minimize(config, first)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_recovers_everything() {
        let config = HarnessConfig {
            seed: 11,
            ops: 80,
            clients: 2,
            kill_prob: 0.0,
            corrupt_prob: 0.0,
            ..HarnessConfig::default()
        };
        let report = run_one(&config).expect("clean run passes");
        assert!(!report.killed && !report.corrupted);
        assert_eq!(report.recovered, report.admitted);
        assert_eq!(report.acked, report.admitted);
        assert!(report.admitted > 0);
        assert!(report.minecheck.tables > 0);
    }

    #[test]
    fn faulted_runs_pass_and_recover_a_prefix() {
        let config = HarnessConfig {
            seed: 3,
            ops: 120,
            clients: 4,
            kill_prob: 1.0,
            corrupt_prob: 1.0,
            wal_shards: 4,
            commit_window_us: 200,
            ..HarnessConfig::default()
        };
        let report = run_one(&config).expect("faulted run passes");
        assert!(report.killed);
        assert!(report.corrupted);
        assert!(report.recovered <= report.admitted);
    }

    #[test]
    fn watched_run_cross_checks_the_stream() {
        let config = HarnessConfig {
            seed: 5,
            ops: 60,
            clients: 2,
            kill_prob: 0.0,
            corrupt_prob: 0.0,
            watch: true,
            ..HarnessConfig::default()
        };
        let report = run_one(&config).expect("watched run passes");
        assert!(report.watch_events > 0, "subscriber saw no events");
        assert_eq!(report.watch_lagged, 0, "drain must keep up at this scale");
        assert!(report.mines > 0, "MINE must ride along with the DML");
        assert_eq!(report.recovered, report.admitted);
    }

    /// Seed parity picks the subscriber's plane: odd seeds (above) ride
    /// `WATCH * weak`, even seeds the default plane. Both must pass the
    /// stream-soundness check against their own fact vocabulary.
    #[test]
    fn watched_run_covers_the_default_plane_on_even_seeds() {
        let config = HarnessConfig {
            seed: 6,
            ops: 50,
            clients: 2,
            kill_prob: 0.0,
            corrupt_prob: 0.0,
            watch: true,
            ..HarnessConfig::default()
        };
        let report = run_one(&config).expect("watched run passes");
        assert!(report.watch_events > 0, "subscriber saw no events");
        assert_eq!(report.recovered, report.admitted);
    }

    #[test]
    fn plan_and_workload_are_bit_reproducible() {
        let config = HarnessConfig::default();
        assert_eq!(
            faults::plan(config.seed, config.ops, 1.0, 1.0),
            faults::plan(config.seed, config.ops, 1.0, 1.0),
        );
        assert_eq!(
            workload::generate(config.seed, config.ops).ops,
            workload::generate(config.seed, config.ops).ops,
        );
    }
}
