//! Cross-checking the miner against the satisfaction layer and the
//! exact 2-tuple oracle on the tables a run leaves behind.
//!
//! Four independent code paths must agree:
//!
//! 1. **determinism** — `mine_fds` / `mine_keys_budgeted` return
//!    byte-identical results across thread counts and cache budgets,
//!    for each of the four semantics;
//! 2. **soundness vs satisfaction** — every mined p-/c-/weak FD and
//!    key holds on the instance under `sqlnf_model::satisfy` (a
//!    pairwise evaluator sharing no code with the partition-based
//!    miner);
//! 3. **oracle agreement** — with Σ = the mined constraints, sampled
//!    implication queries through `oracle_implies` are consistent with
//!    `counter_model` (and `oracle_implies_weak_fd` with
//!    `weak_counter_model`), and every constraint the oracle derives
//!    from Σ must hold on the instance (the instance is a model of Σ);
//! 4. **augmentation** — LHS-extensions of mined FDs are implied by Σ,
//!    a known-true theorem the oracle must confirm.
//!
//! On top of the per-semantics checks, the cross-semantics lattice is
//! enforced: every certain-mined FD must be weakly covered (certain ⊆
//! weak as implied sets), and on null-free instances all four
//! semantics must mine the identical FD list.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlnf_core::prelude::*;
use sqlnf_datagen::random::random_nonempty_subset;
use sqlnf_discovery::prelude::*;

/// Oracle queries stay exact but exponential; never cross this arity.
pub const MAX_ORACLE_ATTRS: usize = 8;

/// What the cross-check covered (for reports and seed-regression
/// assertions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MineCheckReport {
    /// Tables checked.
    pub tables: usize,
    /// Mined FDs validated against the satisfaction layer.
    pub fds_checked: usize,
    /// Mined keys validated against the satisfaction layer.
    pub keys_checked: usize,
    /// Implication queries answered by the 2-tuple oracle.
    pub oracle_queries: usize,
}

/// Runs the full cross-check on one table. `seed` drives the sampled
/// oracle queries, so a failing run replays exactly.
pub fn check_table(table: &Table, seed: u64) -> Result<MineCheckReport, String> {
    let arity = table.schema().arity();
    if arity > MAX_ORACLE_ATTRS {
        return Ok(MineCheckReport::default());
    }
    let mut report = MineCheckReport {
        tables: 1,
        ..MineCheckReport::default()
    };
    let name = table.schema().name().to_owned();
    let _span = sqlnf_obs::span!("harness.minecheck");

    // 1. Determinism across threads × budgets, per semantics — and
    //    soundness of possible/certain results against the
    //    satisfaction layer.
    let mut mined_sigma = Sigma::new();
    let mut mined_by_sem: Vec<Vec<MinedFd>> = Vec::with_capacity(Semantics::ALL.len());
    for sem in Semantics::ALL {
        let config = |threads, budget| {
            MinerConfig::new(sem)
                .with_max_lhs(arity)
                .with_threads(threads)
                .with_cache_budget(budget)
        };
        let base = mine_fds(table, config(1, 0));
        for (threads, budget) in [(4, 0), (1, DEFAULT_CACHE_BUDGET), (4, DEFAULT_CACHE_BUDGET)] {
            let again = mine_fds(table, config(threads, budget));
            if again.fds != base.fds {
                return Err(format!(
                    "{name}: {sem:?} mining differs at threads={threads} budget={budget}"
                ));
            }
        }
        for mined in &base.fds {
            let fd = match sem {
                Semantics::Possible => Fd::possible(mined.lhs, mined.rhs),
                Semantics::Certain => Fd::certain(mined.lhs, mined.rhs),
                // Classical semantics (nulls as values) has no
                // satisfaction-layer analogue; determinism above is its
                // whole check.
                Semantics::Classical => continue,
                // Weak FDs live outside the p/c constraint language:
                // check them against the dedicated pairwise evaluator
                // and keep them out of Σ.
                Semantics::Weak => {
                    if !satisfies_weak_fd(table, mined.lhs, mined.rhs) {
                        return Err(format!(
                            "{name}: mined weak FD {:?} -> {:?} does not hold per satisfy layer",
                            mined.lhs, mined.rhs
                        ));
                    }
                    report.fds_checked += 1;
                    continue;
                }
            };
            if !satisfies_fd(table, &fd) {
                return Err(format!(
                    "{name}: mined {sem:?} FD {} does not hold per satisfy layer",
                    fd.display(table.schema())
                ));
            }
            report.fds_checked += 1;
            mined_sigma.add(fd);
        }
        mined_by_sem.push(base.fds);
    }

    // Cross-semantics lattice. Certain ⊆ weak as implied sets: every
    // certain-mined FD must be covered by a weak-mined FD on a sub-LHS
    // (minimal LHSs can shrink under the laxer semantics, never grow).
    let (certain_fds, weak_fds) = (&mined_by_sem[2], &mined_by_sem[3]);
    for fd in certain_fds {
        for a in fd.rhs {
            if !weak_fds
                .iter()
                .any(|w| w.lhs.is_subset(fd.lhs) && w.rhs.contains(a))
            {
                return Err(format!(
                    "{name}: certain-mined {:?} -> {a:?} has no weak cover",
                    fd.lhs
                ));
            }
        }
    }
    // On a null-free instance all four semantics coincide exactly.
    if table
        .rows()
        .iter()
        .all(|r| (0..arity).all(|i| !r.get(Attr::from(i)).is_null()))
        && mined_by_sem.iter().any(|fds| fds != &mined_by_sem[0])
    {
        return Err(format!(
            "{name}: null-free instance mined differently across semantics"
        ));
    }

    // 2. Keys: budget-independent, and sound against the satisfy layer.
    let keys = mine_keys_budgeted(table, arity, 0);
    if keys != mine_keys_budgeted(table, arity, DEFAULT_CACHE_BUDGET) {
        return Err(format!("{name}: key mining differs across cache budgets"));
    }
    for k in &keys.pkeys {
        let key = Key::possible(*k);
        if !satisfies_key(table, &key) {
            return Err(format!(
                "{name}: mined p-key {} does not hold",
                key.display(table.schema())
            ));
        }
        report.keys_checked += 1;
        mined_sigma.add(key);
    }
    for k in &keys.ckeys {
        let key = Key::certain(*k);
        if !satisfies_key(table, &key) {
            return Err(format!(
                "{name}: mined c-key {} does not hold",
                key.display(table.schema())
            ));
        }
        report.keys_checked += 1;
        mined_sigma.add(key);
    }

    // 3 & 4. Oracle agreement over Σ = mined constraints. Cap |Σ| to
    // bound the 4^arity × |Σ| pattern sweeps.
    let sigma = Sigma::from_constraints(mined_sigma.iter().take(16));
    let t = table.schema().attrs();
    let nfs = table.schema().nfs();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0000_AC1E_5EED);

    // Augmentation: Σ ∋ X→Y implies XZ→Y; the oracle must agree.
    for phi in sigma.iter().take(4) {
        let query = match phi {
            Constraint::Fd(fd) => {
                let grown = fd.lhs.union(AttrSet::single(
                    t.iter().nth(rng.gen_range(0..arity)).expect("attr in t"),
                ));
                Constraint::Fd(Fd {
                    lhs: grown,
                    rhs: fd.rhs,
                    modality: fd.modality,
                })
            }
            // A superset of a key is a key of the same modality.
            Constraint::Key(key) => Constraint::Key(Key {
                attrs: key.attrs.union(random_nonempty_subset(&mut rng, t)),
                modality: key.modality,
            }),
        };
        report.oracle_queries += 1;
        sqlnf_obs::count!("harness.oracle.queries");
        if !oracle_implies(t, nfs, &sigma, &query) {
            return Err(format!(
                "{name}: oracle denies an augmentation of a mined constraint: {}",
                query.display(table.schema())
            ));
        }
    }

    // Sampled queries: counter_model must mirror oracle_implies, and
    // anything Σ implies must hold on the instance (which is a model
    // of Σ by the soundness checks above).
    for _ in 0..8 {
        let modality = if rng.gen_bool(0.5) {
            Modality::Possible
        } else {
            Modality::Certain
        };
        let phi = if rng.gen_bool(0.5) {
            Constraint::Fd(Fd {
                lhs: random_nonempty_subset(&mut rng, t),
                rhs: random_nonempty_subset(&mut rng, t),
                modality,
            })
        } else {
            Constraint::Key(Key {
                attrs: random_nonempty_subset(&mut rng, t),
                modality,
            })
        };
        let implied = oracle_implies(t, nfs, &sigma, &phi);
        report.oracle_queries += 1;
        sqlnf_obs::count!("harness.oracle.queries");
        if implied == counter_model(t, nfs, &sigma, &phi).is_some() {
            return Err(format!(
                "{name}: counter_model disagrees with oracle_implies on {}",
                phi.display(table.schema())
            ));
        }
        if implied && !satisfies(table, &phi) {
            return Err(format!(
                "{name}: Σ ⊨ {} per oracle, but the instance violates it",
                phi.display(table.schema())
            ));
        }
    }

    // Weak-FD implication queries over the same Σ: the exact oracle,
    // its counter-model, and the instance (a model of Σ) must agree.
    for _ in 0..4 {
        let lhs = random_nonempty_subset(&mut rng, t);
        let rhs = random_nonempty_subset(&mut rng, t);
        let implied = oracle_implies_weak_fd(t, nfs, &sigma, lhs, rhs);
        report.oracle_queries += 1;
        sqlnf_obs::count!("harness.oracle.queries");
        if implied == weak_counter_model(t, nfs, &sigma, lhs, rhs).is_some() {
            return Err(format!(
                "{name}: weak_counter_model disagrees with oracle on {lhs:?} -> {rhs:?}"
            ));
        }
        if implied && !satisfies_weak_fd(table, lhs, rhs) {
            return Err(format!(
                "{name}: Σ ⊨ {lhs:?} ->weak {rhs:?} per oracle, but the instance violates it"
            ));
        }
    }

    Ok(report)
}

impl MineCheckReport {
    /// Accumulates another table's report.
    pub fn absorb(&mut self, other: &MineCheckReport) {
        self.tables += other.tables;
        self.fds_checked += other.fds_checked;
        self.keys_checked += other.keys_checked;
        self.oracle_queries += other.oracle_queries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_passes_the_full_cross_check() {
        let table = sqlnf_datagen::paper::purchase_fig5();
        let report = check_table(&table, 99).expect("cross-check passes");
        assert_eq!(report.tables, 1);
        assert!(report.fds_checked > 0);
        assert!(report.oracle_queries > 0);
    }

    #[test]
    fn wide_tables_are_skipped_not_attempted() {
        let table = sqlnf_datagen::contractor::contractor(1);
        assert!(table.schema().arity() > MAX_ORACLE_ATTRS);
        let report = check_table(&table, 1).unwrap();
        assert_eq!(report, MineCheckReport::default());
    }
}
