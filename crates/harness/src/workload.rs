//! The seeded workload generator: one global stream of SQL statements
//! per `(seed, ops)` pair, dealt round-robin to clients by the runner
//! so the stream — and therefore every fault decision derived from the
//! seed — is independent of `--clients`.
//!
//! ## Grammar
//!
//! ```text
//! workload  := ddl-prefix op*
//! ddl-prefix:= CREATE TABLE t0 [.. t2]        (1–3 random designs)
//! op        := INSERT (94%)                   1–2 random rows
//!            | CREATE TABLE t<k> (2%)         mid-stream DDL
//!            | duplicate CREATE TABLE (4%)    always rejected
//! ```
//!
//! Every statement is rendered through `sqlnf_model::sql`'s canonical
//! renderers, so the server's WAL entries, the oplog, and a reference
//! `Database` replay all agree byte-for-byte on re-rendered state.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sqlnf_datagen::random::{random_design, random_row};
use sqlnf_model::prelude::*;

/// Widest table the generator emits — kept at 6 so every generated
/// schema is within reach of the exact 2-tuple oracle (≤ 4⁶ patterns
/// per implication query).
pub const MAX_COLS: usize = 6;

/// Value domain of generated rows; small enough that FD/key violations
/// occur naturally.
pub const DOMAIN: i64 = 4;

/// A generated workload: the op stream plus the shape facts the
/// seed-regression tests assert on.
#[derive(Debug, Clone)]
pub struct Workload {
    /// SQL statements, in stream order.
    pub ops: Vec<String>,
    /// CREATE TABLEs issued after the initial DDL prefix (the
    /// concurrent-DDL path).
    pub mid_stream_ddl: usize,
    /// Distinct tables created (including the prefix).
    pub tables: usize,
}

/// Generates the statement stream for `(seed, ops)`. Prefixes of the
/// stream are stable: `generate(s, m).ops == generate(s, n).ops[..m]`
/// for `m <= n`, which is what lets the minimizer shrink by op count
/// while replaying the same seed.
pub fn generate(seed: u64, ops: usize) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(ops);
    let mut schemas: Vec<TableSchema> = Vec::new();
    let mut ddls: Vec<String> = Vec::new();
    let mut mid_stream_ddl = 0usize;

    let create = |rng: &mut StdRng, schemas: &mut Vec<TableSchema>, ddls: &mut Vec<String>| {
        let name = format!("t{}", schemas.len());
        let (schema, sigma) = random_design(rng, &name, MAX_COLS);
        let ddl = render_create_table(&schema, &sigma);
        schemas.push(schema);
        ddls.push(ddl.clone());
        ddl
    };

    // The pre-drawn table count keeps the stream a prefix-stable
    // function of the seed even when `ops` is tiny.
    let prefix = rng.gen_range(1..=3usize);
    for _ in 0..prefix {
        if out.len() >= ops {
            break;
        }
        let ddl = create(&mut rng, &mut schemas, &mut ddls);
        out.push(ddl);
    }

    while out.len() < ops {
        let roll = rng.gen_range(0..100u32);
        if roll < 2 && schemas.len() < 8 {
            let ddl = create(&mut rng, &mut schemas, &mut ddls);
            out.push(ddl);
            mid_stream_ddl += 1;
        } else if roll < 6 {
            // Re-issuing an existing table's DDL: the engine rejects it
            // with DuplicateTable, exercising the rejection path
            // without touching any state.
            let dup = ddls.choose(&mut rng).expect("prefix created a table");
            out.push(dup.clone());
        } else {
            let i = rng.gen_range(0..schemas.len());
            let n_rows = rng.gen_range(1..=2usize);
            let rows: Vec<Tuple> = (0..n_rows)
                .map(|_| random_row(&mut rng, &schemas[i], DOMAIN))
                .collect();
            out.push(render_insert(schemas[i].name(), &rows));
        }
    }

    Workload {
        ops: out,
        mid_stream_ddl,
        tables: schemas.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_prefix_stable() {
        let a = generate(42, 120);
        let b = generate(42, 120);
        assert_eq!(a.ops, b.ops);
        let short = generate(42, 30);
        assert_eq!(short.ops[..], a.ops[..30]);
        assert_ne!(generate(43, 120).ops, a.ops);
    }

    #[test]
    fn every_statement_parses() {
        let w = generate(7, 200);
        assert_eq!(w.ops.len(), 200);
        for op in &w.ops {
            parse_script(op).expect("generated statement parses");
        }
        // The mix contains both DDL and DML.
        assert!(w.ops.iter().any(|s| s.starts_with("CREATE TABLE")));
        assert!(w.ops.iter().any(|s| s.starts_with("INSERT INTO")));
    }
}
