//! Attributes and attribute sets.
//!
//! The paper works with a countably infinite universe of attributes; any
//! concrete table schema `T` is a finite subset of it. We index the
//! attributes of one schema by position and represent subsets of `T` as
//! 128-bit bitsets, which caps schemata at 128 attributes — far above the
//! 22 columns of the largest table in the paper's evaluation — and makes
//! the closure algorithms of Section 4 word-level operations.

use std::fmt;

/// Maximum number of attributes a single [`crate::schema::TableSchema`]
/// may have.
pub const MAX_ATTRS: usize = 128;

/// An attribute of a table schema, identified by its column index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Attr(pub u8);

impl Attr {
    /// Column index of this attribute.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Attr {
    #[inline]
    fn from(i: usize) -> Self {
        assert!(i < MAX_ATTRS, "attribute index {i} exceeds MAX_ATTRS");
        Attr(i as u8)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A set of attributes of one table schema, as a 128-bit bitset.
///
/// Supports the set algebra the paper's algorithms are written in:
/// union (`|`), intersection (`&`), difference (`-`), subset tests, and
/// iteration in ascending column order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AttrSet(pub u128);

impl AttrSet {
    /// The empty attribute set.
    pub const EMPTY: AttrSet = AttrSet(0);

    /// Set containing the single attribute `a`.
    #[inline]
    pub fn single(a: Attr) -> Self {
        AttrSet(1u128 << a.0)
    }

    /// Set containing the attributes with indices `0..n`.
    #[inline]
    pub fn first_n(n: usize) -> Self {
        assert!(n <= MAX_ATTRS);
        if n == MAX_ATTRS {
            AttrSet(u128::MAX)
        } else {
            AttrSet((1u128 << n) - 1)
        }
    }

    /// Builds a set from attribute indices.
    pub fn from_indices<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = AttrSet::EMPTY;
        for i in iter {
            s.insert(Attr::from(i));
        }
        s
    }

    /// Number of attributes in the set.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether `a` is a member.
    #[inline]
    pub fn contains(self, a: Attr) -> bool {
        self.0 & (1u128 << a.0) != 0
    }

    /// Whether `self ⊆ other`.
    #[inline]
    pub fn is_subset(self, other: AttrSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Whether `self ⊊ other`.
    #[inline]
    pub fn is_proper_subset(self, other: AttrSet) -> bool {
        self != other && self.is_subset(other)
    }

    /// Whether the two sets share no attribute.
    #[inline]
    pub fn is_disjoint(self, other: AttrSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Inserts an attribute, returning whether it was newly added.
    #[inline]
    pub fn insert(&mut self, a: Attr) -> bool {
        let bit = 1u128 << a.0;
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes an attribute, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, a: Attr) -> bool {
        let bit = 1u128 << a.0;
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Union, as a pure function (the paper's `XY`).
    #[inline]
    pub fn union(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 | other.0)
    }

    /// Intersection.
    #[inline]
    pub fn intersect(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & other.0)
    }

    /// Set difference `self − other`.
    #[inline]
    pub fn difference(self, other: AttrSet) -> AttrSet {
        AttrSet(self.0 & !other.0)
    }

    /// Iterates members in ascending column order.
    #[inline]
    pub fn iter(self) -> AttrIter {
        AttrIter(self.0)
    }

    /// The lowest-indexed member, if any.
    #[inline]
    pub fn first(self) -> Option<Attr> {
        if self.0 == 0 {
            None
        } else {
            Some(Attr(self.0.trailing_zeros() as u8))
        }
    }

    /// Enumerates all subsets of `self`, the empty set first and `self`
    /// last. Exponential — intended for the sub-schema procedures the
    /// paper proves co-NP complete (Theorems 8 and 17), where `self` is
    /// small.
    pub fn subsets(self) -> SubsetIter {
        SubsetIter {
            mask: self.0,
            current: 0,
            done: false,
        }
    }
}

impl std::ops::BitOr for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitor(self, rhs: AttrSet) -> AttrSet {
        self.union(rhs)
    }
}

impl std::ops::BitAnd for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn bitand(self, rhs: AttrSet) -> AttrSet {
        self.intersect(rhs)
    }
}

impl std::ops::Sub for AttrSet {
    type Output = AttrSet;
    #[inline]
    fn sub(self, rhs: AttrSet) -> AttrSet {
        self.difference(rhs)
    }
}

impl std::ops::BitOrAssign for AttrSet {
    #[inline]
    fn bitor_assign(&mut self, rhs: AttrSet) {
        self.0 |= rhs.0;
    }
}

impl FromIterator<Attr> for AttrSet {
    fn from_iter<I: IntoIterator<Item = Attr>>(iter: I) -> Self {
        let mut s = AttrSet::EMPTY;
        for a in iter {
            s.insert(a);
        }
        s
    }
}

impl IntoIterator for AttrSet {
    type Item = Attr;
    type IntoIter = AttrIter;
    fn into_iter(self) -> AttrIter {
        self.iter()
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, a) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", a.0)?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the members of an [`AttrSet`].
pub struct AttrIter(u128);

impl Iterator for AttrIter {
    type Item = Attr;

    #[inline]
    fn next(&mut self) -> Option<Attr> {
        if self.0 == 0 {
            None
        } else {
            let i = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(Attr(i as u8))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for AttrIter {}

/// Iterator over all subsets of an [`AttrSet`].
pub struct SubsetIter {
    mask: u128,
    current: u128,
    done: bool,
}

impl Iterator for SubsetIter {
    type Item = AttrSet;

    fn next(&mut self) -> Option<AttrSet> {
        if self.done {
            return None;
        }
        let out = AttrSet(self.current);
        if self.current == self.mask {
            self.done = true;
        } else {
            // Standard subset-enumeration trick: step to the next subset
            // of `mask` in lexicographic (binary) order.
            self.current = (self.current.wrapping_sub(self.mask)) & self.mask;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn empty_set_basics() {
        let e = AttrSet::EMPTY;
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset(e));
        assert!(!e.is_proper_subset(e));
        assert_eq!(e.first(), None);
        assert_eq!(e.iter().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::EMPTY;
        assert!(s.insert(Attr(3)));
        assert!(!s.insert(Attr(3)));
        assert!(s.contains(Attr(3)));
        assert!(!s.contains(Attr(4)));
        assert!(s.remove(Attr(3)));
        assert!(!s.remove(Attr(3)));
        assert!(s.is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = set(&[0, 1, 2]);
        let b = set(&[2, 3]);
        assert_eq!(a | b, set(&[0, 1, 2, 3]));
        assert_eq!(a & b, set(&[2]));
        assert_eq!(a - b, set(&[0, 1]));
        assert_eq!(b - a, set(&[3]));
        assert!(set(&[0, 1]).is_subset(a));
        assert!(set(&[0, 1]).is_proper_subset(a));
        assert!(!a.is_proper_subset(a));
        assert!(a.is_disjoint(set(&[5, 6])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn first_n_covers_prefix() {
        assert_eq!(AttrSet::first_n(0), AttrSet::EMPTY);
        assert_eq!(AttrSet::first_n(3), set(&[0, 1, 2]));
        assert_eq!(AttrSet::first_n(128).len(), 128);
    }

    #[test]
    fn iteration_is_ascending() {
        let s = set(&[7, 1, 100, 42]);
        let got: Vec<usize> = s.iter().map(Attr::index).collect();
        assert_eq!(got, vec![1, 7, 42, 100]);
        assert_eq!(s.first(), Some(Attr(1)));
    }

    #[test]
    fn high_bit_attributes() {
        let mut s = AttrSet::EMPTY;
        s.insert(Attr(127));
        assert!(s.contains(Attr(127)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next(), Some(Attr(127)));
    }

    #[test]
    fn subset_enumeration_is_complete_and_unique() {
        let s = set(&[0, 2, 5]);
        let subs: Vec<AttrSet> = s.subsets().collect();
        assert_eq!(subs.len(), 8);
        assert_eq!(subs[0], AttrSet::EMPTY);
        assert_eq!(*subs.last().unwrap(), s);
        let unique: std::collections::HashSet<u128> = subs.iter().map(|x| x.0).collect();
        assert_eq!(unique.len(), 8);
        for sub in subs {
            assert!(sub.is_subset(s));
        }
    }

    #[test]
    fn subsets_of_empty() {
        let subs: Vec<AttrSet> = AttrSet::EMPTY.subsets().collect();
        assert_eq!(subs, vec![AttrSet::EMPTY]);
    }

    #[test]
    fn from_iterator() {
        let s: AttrSet = [Attr(1), Attr(4)].into_iter().collect();
        assert_eq!(s, set(&[1, 4]));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_ATTRS")]
    fn attr_index_overflow_panics() {
        let _ = Attr::from(128usize);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", set(&[0, 3])), "{0,3}");
    }
}
