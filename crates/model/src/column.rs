//! Dictionary-coded columnar storage — the primary representation
//! behind [`crate::table::Table`].
//!
//! Every column is a `Vec<u32>` of dictionary codes with `0` reserved
//! for the null marker `⊥`, plus the ascending list of null-bearing
//! rows. Codes are assigned in **first-appearance order** and never
//! reassigned, so within one store code equality coincides with value
//! equality — the invariant every partition kernel in
//! `sqlnf-discovery` relies on. For a table built by appends alone the
//! codes are exactly what a fresh row-major encode would produce;
//! after point updates or deletes the codes may differ from a fresh
//! encode (retired dictionary entries keep their codes) but remain
//! *consistent*, which is all the discovery kernels need: partitions
//! group by code identity, never by code magnitude.
//!
//! Columns sit behind [`Arc`]s so a discovery snapshot is `O(arity)`
//! pointer clones. Mutations go through [`Arc::make_mut`]: in-place
//! while the store is unshared (the engine's steady state), a one-time
//! column copy when a snapshot is still alive. Callers that mine and
//! mutate in alternation should therefore drop snapshots before
//! mutating again.

use crate::attrs::Attr;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// One dictionary-coded column: the code vector and the ascending list
/// of rows holding `⊥`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ColData {
    /// `codes[row]` is the dictionary code of the cell; `0` = `⊥`.
    pub codes: Vec<u32>,
    /// Rows with `⊥` in this column, strictly ascending.
    pub null_rows: Vec<u32>,
}

/// Value → code dictionary for one column. Code `0` stays reserved for
/// `⊥`; non-null values get `1, 2, …` in first-appearance order.
/// Entries are never removed, so a code retired by UPDATE/DELETE is
/// simply never reused for a different value.
#[derive(Debug, Clone, Default)]
struct Dict {
    index: HashMap<Value, u32>,
}

impl Dict {
    fn code_for(&mut self, v: &Value) -> u32 {
        if let Some(&c) = self.index.get(v) {
            return c;
        }
        let c = self.index.len() as u32 + 1;
        sqlnf_obs::count!("discovery.encode.dict_entries");
        self.index.insert(v.clone(), c);
        c
    }
}

/// The dictionary-coded columns of a table, maintained incrementally
/// on INSERT/UPDATE/DELETE.
#[derive(Debug, Clone, Default)]
pub struct ColumnStore {
    cols: Vec<Arc<ColData>>,
    dicts: Vec<Dict>,
    rows: usize,
}

/// A frozen `O(arity)` view of a [`ColumnStore`]: shared column data
/// plus the dictionary sizes (every code in `cols[a]` is `≤
/// dict_sizes[a]`). This is what `sqlnf-discovery`'s `Encoded` wraps —
/// taking one costs no per-row work at all.
#[derive(Debug, Clone)]
pub struct ColumnSnapshot {
    /// Shared per-column code vectors and null lists.
    pub cols: Vec<Arc<ColData>>,
    /// Number of dictionary entries per column; an inclusive upper
    /// bound on the codes appearing in the column.
    pub dict_sizes: Vec<u32>,
    /// Number of rows.
    pub rows: usize,
}

impl ColumnStore {
    /// An empty store with `arity` columns.
    pub fn new(arity: usize) -> ColumnStore {
        ColumnStore {
            cols: (0..arity).map(|_| Arc::new(ColData::default())).collect(),
            dicts: vec![Dict::default(); arity],
            rows: 0,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The code of cell `(row, col)`; `0` = `⊥`.
    #[inline]
    pub fn code_at(&self, row: usize, col: usize) -> u32 {
        self.cols[col].codes[row]
    }

    /// Number of dictionary entries of column `col` (codes run
    /// `1..=dict_size`).
    pub fn dict_size(&self, col: usize) -> u32 {
        self.dicts[col].index.len() as u32
    }

    /// Appends one row in `O(arity)` dictionary probes.
    pub fn push(&mut self, t: &Tuple) {
        sqlnf_obs::count!("discovery.encode.rows");
        let row = self.rows as u32;
        for (ci, dict) in self.dicts.iter_mut().enumerate() {
            let v = t.get(Attr::from(ci));
            let code = if v.is_null() { 0 } else { dict.code_for(v) };
            let col = Arc::make_mut(&mut self.cols[ci]);
            col.codes.push(code);
            if code == 0 {
                col.null_rows.push(row);
            }
        }
        self.rows += 1;
    }

    /// Re-codes one cell after a point update.
    pub fn set_value(&mut self, row: usize, col: usize, v: &Value) {
        let code = if v.is_null() {
            0
        } else {
            self.dicts[col].code_for(v)
        };
        let data = Arc::make_mut(&mut self.cols[col]);
        let old = std::mem::replace(&mut data.codes[row], code);
        if (old == 0) != (code == 0) {
            let r = row as u32;
            match data.null_rows.binary_search(&r) {
                Ok(i) => {
                    data.null_rows.remove(i);
                }
                Err(i) => data.null_rows.insert(i, r),
            }
        }
    }

    /// Removes one row, shifting later rows down by one.
    pub fn remove_row(&mut self, row: usize) {
        let r = row as u32;
        for col in &mut self.cols {
            let data = Arc::make_mut(col);
            data.codes.remove(row);
            let i = match data.null_rows.binary_search(&r) {
                Ok(i) => {
                    data.null_rows.remove(i);
                    i
                }
                Err(i) => i,
            };
            for n in &mut data.null_rows[i..] {
                *n -= 1;
            }
        }
        self.rows -= 1;
    }

    /// Freezes the current contents into an `O(arity)` snapshot.
    pub fn snapshot(&self) -> ColumnSnapshot {
        ColumnSnapshot {
            cols: self.cols.clone(),
            dict_sizes: (0..self.cols.len()).map(|c| self.dict_size(c)).collect(),
            rows: self.rows,
        }
    }

    /// FNV-style hash of a row's code vector. Together with
    /// [`ColumnStore::code_rows_equal`] this gives duplicate detection
    /// over `u32` codes instead of hashing `Value`s.
    pub fn row_code_hash(&self, row: usize) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for col in &self.cols {
            h ^= u64::from(col.codes[row]);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Whether two rows carry identical codes in every column — within
    /// one store, exactly value (multiset-element) equality.
    pub fn code_rows_equal(&self, r: usize, s: usize) -> bool {
        self.cols.iter().all(|c| c.codes[r] == c.codes[s])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn store3() -> ColumnStore {
        let mut s = ColumnStore::new(2);
        s.push(&tuple!["x", 1i64]);
        s.push(&tuple![null, 1i64]);
        s.push(&tuple!["x", 2i64]);
        s
    }

    #[test]
    fn first_appearance_codes_and_null_lists() {
        let s = store3();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.code_at(0, 0), 1);
        assert_eq!(s.code_at(1, 0), 0);
        assert_eq!(s.code_at(2, 0), 1);
        assert_eq!(s.code_at(0, 1), 1);
        assert_eq!(s.code_at(2, 1), 2);
        assert_eq!(s.snapshot().cols[0].null_rows, vec![1]);
        assert_eq!(s.dict_size(0), 1);
        assert_eq!(s.dict_size(1), 2);
    }

    #[test]
    fn set_value_maintains_null_rows() {
        let mut s = store3();
        s.set_value(1, 0, &Value::str("y"));
        assert_eq!(s.code_at(1, 0), 2);
        assert!(s.snapshot().cols[0].null_rows.is_empty());
        s.set_value(0, 0, &Value::Null);
        assert_eq!(s.code_at(0, 0), 0);
        assert_eq!(s.snapshot().cols[0].null_rows, vec![0]);
        // Re-using an existing value re-uses its code.
        s.set_value(0, 0, &Value::str("x"));
        assert_eq!(s.code_at(0, 0), 1);
    }

    #[test]
    fn remove_row_shifts_null_rows() {
        let mut s = store3();
        s.push(&tuple![null, 3i64]);
        // null rows in column 0: [1, 3]
        s.remove_row(0);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.snapshot().cols[0].null_rows, vec![0, 2]);
        s.remove_row(0); // removes the (now first) null row
        assert_eq!(s.snapshot().cols[0].null_rows, vec![1]);
    }

    #[test]
    fn snapshot_is_isolated_from_later_mutations() {
        let mut s = store3();
        let snap = s.snapshot();
        s.push(&tuple!["z", 9i64]);
        s.set_value(0, 1, &Value::Int(7));
        assert_eq!(snap.rows, 3);
        assert_eq!(snap.cols[0].codes.len(), 3);
        assert_eq!(snap.cols[1].codes[0], 1);
        assert_eq!(s.code_at(0, 1), 4); // 9 took code 3, then 7 got 4
    }

    #[test]
    fn code_row_equality_matches_value_equality() {
        let mut s = ColumnStore::new(2);
        s.push(&tuple!["a", 1i64]);
        s.push(&tuple!["a", 1i64]);
        s.push(&tuple!["a", 2i64]);
        s.push(&tuple![null, 1i64]);
        s.push(&tuple![null, 1i64]);
        assert!(s.code_rows_equal(0, 1));
        assert!(!s.code_rows_equal(0, 2));
        assert!(s.code_rows_equal(3, 4));
        assert_eq!(s.row_code_hash(0), s.row_code_hash(1));
    }
}
