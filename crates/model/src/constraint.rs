//! The constraint language of the paper: possible and certain functional
//! dependencies (Definition 1), possible and certain keys (from
//! Köhler/Link/Zhou, recalled in Section 2), and NOT NULL constraints
//! (represented by the schema's NFS).

use crate::attrs::AttrSet;
use crate::schema::TableSchema;
use std::fmt;

/// Whether a dependency is *possible* (strong similarity on the LHS,
/// subscript `s`) or *certain* (weak similarity, subscript `w`).
///
/// A possible FD holds if *some* replacement of LHS nulls satisfies the
/// FD classically; a certain FD holds if *every* replacement does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Modality {
    /// `X →_s Y` / `p⟨X⟩`: LHS matched by strong similarity.
    Possible,
    /// `X →_w Y` / `c⟨X⟩`: LHS matched by weak similarity.
    Certain,
}

impl Modality {
    /// The subscript the paper uses (`s` for possible, `w` for certain).
    pub fn subscript(self) -> char {
        match self {
            Modality::Possible => 's',
            Modality::Certain => 'w',
        }
    }
}

/// A possible or certain functional dependency `X →_{s|w} Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fd {
    /// Left-hand side `X`.
    pub lhs: AttrSet,
    /// Right-hand side `Y`.
    pub rhs: AttrSet,
    /// Possible (`→_s`) or certain (`→_w`).
    pub modality: Modality,
}

impl Fd {
    /// A possible FD `X →_s Y`.
    pub fn possible(lhs: AttrSet, rhs: AttrSet) -> Fd {
        Fd {
            lhs,
            rhs,
            modality: Modality::Possible,
        }
    }

    /// A certain FD `X →_w Y`.
    pub fn certain(lhs: AttrSet, rhs: AttrSet) -> Fd {
        Fd {
            lhs,
            rhs,
            modality: Modality::Certain,
        }
    }

    /// Whether the FD is *internal*: `Y ⊆ X` (Definition 11).
    pub fn is_internal(&self) -> bool {
        self.rhs.is_subset(self.lhs)
    }

    /// Whether the FD is *external*: `Y ⊄ X` (Definition 11).
    pub fn is_external(&self) -> bool {
        !self.is_internal()
    }

    /// Whether the FD is syntactically *total*: a certain FD of the form
    /// `X →_w XY`, i.e. whose RHS contains its LHS (Definition 9).
    pub fn is_total_form(&self) -> bool {
        self.modality == Modality::Certain && self.lhs.is_subset(self.rhs)
    }

    /// The total companion `X →_w X(Y∪X)` of a certain FD.
    pub fn to_total(&self) -> Fd {
        Fd::certain(self.lhs, self.rhs | self.lhs)
    }

    /// Whether the FD is trivial, i.e. implied by the empty constraint
    /// set over a schema with NFS `nfs`:
    ///
    /// * a p-FD `X →_s Y` is trivial iff `Y ⊆ X`;
    /// * a c-FD `X →_w Y` is trivial iff `Y ⊆ X ∩ T_S` (an internal
    ///   c-FD on nullable attributes is *not* trivial — Section 6.2).
    pub fn is_trivial(&self, nfs: AttrSet) -> bool {
        match self.modality {
            Modality::Possible => self.rhs.is_subset(self.lhs),
            Modality::Certain => self.rhs.is_subset(self.lhs & nfs),
        }
    }

    /// All attributes mentioned by the FD.
    pub fn attrs(&self) -> AttrSet {
        self.lhs | self.rhs
    }

    /// Renders the FD with column names, e.g. `item,catalog ->w price`.
    pub fn display(&self, schema: &TableSchema) -> String {
        format!(
            "{} ->{} {}",
            schema.display_set(self.lhs),
            self.modality.subscript(),
            schema.display_set(self.rhs)
        )
    }
}

impl fmt::Display for Fd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} ->{} {:?}",
            self.lhs,
            self.modality.subscript(),
            self.rhs
        )
    }
}

/// A possible or certain key `p⟨X⟩` / `c⟨X⟩`.
///
/// A p-key (c-key) holds if no two tuples with distinct tuple identities
/// are strongly (weakly) similar on `X`. Because tables are multisets,
/// keys are *not* expressible as FDs (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// The key attributes `X`.
    pub attrs: AttrSet,
    /// Possible (`p⟨X⟩`) or certain (`c⟨X⟩`).
    pub modality: Modality,
}

impl Key {
    /// A possible key `p⟨X⟩`.
    pub fn possible(attrs: AttrSet) -> Key {
        Key {
            attrs,
            modality: Modality::Possible,
        }
    }

    /// A certain key `c⟨X⟩`.
    pub fn certain(attrs: AttrSet) -> Key {
        Key {
            attrs,
            modality: Modality::Certain,
        }
    }

    /// Renders the key with column names, e.g. `c<item,catalog>`.
    pub fn display(&self, schema: &TableSchema) -> String {
        let tag = match self.modality {
            Modality::Possible => 'p',
            Modality::Certain => 'c',
        };
        format!(
            "{tag}<{}>",
            &schema.display_set(self.attrs)[1..schema.display_set(self.attrs).len() - 1]
        )
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.modality {
            Modality::Possible => 'p',
            Modality::Certain => 'c',
        };
        write!(f, "{tag}<{:?}>", self.attrs)
    }
}

/// Any constraint of the combined class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Constraint {
    /// A possible or certain FD.
    Fd(Fd),
    /// A possible or certain key.
    Key(Key),
}

impl Constraint {
    /// Renders the constraint with column names.
    pub fn display(&self, schema: &TableSchema) -> String {
        match self {
            Constraint::Fd(fd) => fd.display(schema),
            Constraint::Key(k) => k.display(schema),
        }
    }
}

impl From<Fd> for Constraint {
    fn from(fd: Fd) -> Constraint {
        Constraint::Fd(fd)
    }
}

impl From<Key> for Constraint {
    fn from(k: Key) -> Constraint {
        Constraint::Key(k)
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constraint::Fd(fd) => write!(f, "{fd}"),
            Constraint::Key(k) => write!(f, "{k}"),
        }
    }
}

/// A constraint set Σ over one schema: p/c-FDs and p/c-keys. The NOT
/// NULL constraints live in the schema's NFS, completing the combined
/// class the paper reasons about.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Sigma {
    /// The FDs of Σ.
    pub fds: Vec<Fd>,
    /// The keys of Σ.
    pub keys: Vec<Key>,
}

impl Sigma {
    /// The empty constraint set.
    pub fn new() -> Sigma {
        Sigma::default()
    }

    /// Builds Σ from any mix of constraints.
    pub fn from_constraints(cs: impl IntoIterator<Item = Constraint>) -> Sigma {
        let mut s = Sigma::new();
        for c in cs {
            s.add(c);
        }
        s
    }

    /// Adds one constraint.
    pub fn add(&mut self, c: impl Into<Constraint>) {
        match c.into() {
            Constraint::Fd(fd) => self.fds.push(fd),
            Constraint::Key(k) => self.keys.push(k),
        }
    }

    /// Fluent insertion.
    pub fn with(mut self, c: impl Into<Constraint>) -> Sigma {
        self.add(c);
        self
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.fds.len() + self.keys.len()
    }

    /// Whether Σ is empty.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty() && self.keys.is_empty()
    }

    /// Iterates all constraints (FDs first).
    pub fn iter(&self) -> impl Iterator<Item = Constraint> + '_ {
        self.fds
            .iter()
            .copied()
            .map(Constraint::Fd)
            .chain(self.keys.iter().copied().map(Constraint::Key))
    }

    /// All attributes mentioned by some constraint of Σ.
    pub fn attrs(&self) -> AttrSet {
        let mut s = AttrSet::EMPTY;
        for fd in &self.fds {
            s |= fd.attrs();
        }
        for k in &self.keys {
            s |= k.attrs;
        }
        s
    }

    /// The *FD-projection* `Σ|FD` of Definition 3: every key `X` is
    /// replaced by the FD `X → T` of the same modality.
    pub fn fd_projection(&self, t: AttrSet) -> Vec<Fd> {
        let mut out = self.fds.clone();
        for k in &self.keys {
            out.push(Fd {
                lhs: k.attrs,
                rhs: t,
                modality: k.modality,
            });
        }
        out
    }

    /// The *key-projection* `Σ|key` of Definition 3: the keys of Σ.
    pub fn key_projection(&self) -> &[Key] {
        &self.keys
    }

    /// Whether Σ consists of certain keys and certain FDs only (the
    /// class SQL-BCNF is defined for, Definition 12).
    pub fn is_certain_only(&self) -> bool {
        self.fds.iter().all(|f| f.modality == Modality::Certain)
            && self.keys.iter().all(|k| k.modality == Modality::Certain)
    }

    /// Whether Σ consists of certain keys and *total* FDs only (the
    /// input class of the VRNF decomposition, Algorithm 3).
    pub fn is_total_fds_and_ckeys(&self) -> bool {
        self.fds.iter().all(Fd::is_total_form)
            && self.keys.iter().all(|k| k.modality == Modality::Certain)
    }

    /// Renders Σ with column names.
    pub fn display(&self, schema: &TableSchema) -> String {
        let items: Vec<String> = self.iter().map(|c| c.display(schema)).collect();
        format!("{{{}}}", items.join(", "))
    }
}

impl FromIterator<Constraint> for Sigma {
    fn from_iter<I: IntoIterator<Item = Constraint>>(iter: I) -> Sigma {
        Sigma::from_constraints(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrSet;

    fn s(ix: &[usize]) -> AttrSet {
        AttrSet::from_indices(ix.iter().copied())
    }

    #[test]
    fn fd_shape_predicates() {
        let internal = Fd::certain(s(&[0, 1]), s(&[1]));
        assert!(internal.is_internal());
        assert!(!internal.is_external());
        let external = Fd::certain(s(&[0]), s(&[0, 1]));
        assert!(external.is_external());
        assert!(external.is_total_form());
        let not_total = Fd::certain(s(&[0]), s(&[1]));
        assert!(!not_total.is_total_form());
        assert_eq!(not_total.to_total(), Fd::certain(s(&[0]), s(&[0, 1])));
        // p-FDs are never total (totality is a c-FD notion).
        assert!(!Fd::possible(s(&[0]), s(&[0, 1])).is_total_form());
    }

    #[test]
    fn triviality_depends_on_modality_and_nfs() {
        let nfs = s(&[0]);
        // p-FD X →_s Y trivial iff Y ⊆ X.
        assert!(Fd::possible(s(&[0, 1]), s(&[1])).is_trivial(nfs));
        assert!(!Fd::possible(s(&[0]), s(&[1])).is_trivial(nfs));
        // c-FD X →_w Y trivial iff Y ⊆ X ∩ T_S.
        assert!(Fd::certain(s(&[0, 1]), s(&[0])).is_trivial(nfs));
        // Internal but on a nullable attribute: non-trivial
        // (the oic →_w c example of Section 6.2).
        assert!(!Fd::certain(s(&[0, 1]), s(&[1])).is_trivial(nfs));
    }

    #[test]
    fn sigma_collections() {
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Fd::certain(s(&[1, 2]), s(&[3])))
            .with(Key::possible(s(&[0, 1, 2])));
        assert_eq!(sigma.len(), 3);
        assert_eq!(sigma.fds.len(), 2);
        assert_eq!(sigma.keys.len(), 1);
        assert_eq!(sigma.attrs(), s(&[0, 1, 2, 3]));
        assert!(!sigma.is_certain_only());
        assert!(!sigma.is_empty());
        assert_eq!(sigma.iter().count(), 3);
    }

    #[test]
    fn fd_projection_replaces_keys() {
        // The paper's example: Σ = {oi →_s c, p⟨oic⟩} over oicp gives
        // Σ|FD = {oi →_s c, oic →_s oicp}.
        let t = s(&[0, 1, 2, 3]);
        let sigma = Sigma::new()
            .with(Fd::possible(s(&[0, 1]), s(&[2])))
            .with(Key::possible(s(&[0, 1, 2])));
        let fds = sigma.fd_projection(t);
        assert_eq!(fds.len(), 2);
        assert_eq!(fds[1], Fd::possible(s(&[0, 1, 2]), t));
        assert_eq!(sigma.key_projection().len(), 1);
    }

    #[test]
    fn class_tests() {
        let total_only = Sigma::new()
            .with(Fd::certain(s(&[0]), s(&[0, 1])))
            .with(Key::certain(s(&[0, 1])));
        assert!(total_only.is_certain_only());
        assert!(total_only.is_total_fds_and_ckeys());
        let not_total = Sigma::new().with(Fd::certain(s(&[0]), s(&[1])));
        assert!(not_total.is_certain_only());
        assert!(!not_total.is_total_fds_and_ckeys());
    }

    #[test]
    fn display_with_names() {
        let schema = crate::schema::TableSchema::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &[],
        );
        let fd = Fd::certain(schema.set(&["item", "catalog"]), schema.set(&["price"]));
        assert_eq!(fd.display(&schema), "{item,catalog} ->w {price}");
        let k = Key::certain(schema.set(&["item", "catalog"]));
        assert_eq!(k.display(&schema), "c<item,catalog>");
        let sigma = Sigma::new().with(fd).with(k);
        assert_eq!(
            sigma.display(&schema),
            "{{item,catalog} ->w {price}, c<item,catalog>}"
        );
    }
}
