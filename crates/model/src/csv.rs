//! Minimal CSV reading/writing for tables.
//!
//! Hand-rolled (RFC-4180-style quoting) to stay within the approved
//! dependency set. Empty fields and the literal `NULL` load as the null
//! marker; integers load as [`Value::Int`]; everything else as strings.

use crate::schema::TableSchema;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt::Write as _;

/// Errors raised while parsing CSV input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The input had no header line.
    MissingHeader,
    /// A data row had a different number of fields than the header.
    RaggedRow {
        /// 1-based line number of the offending row.
        line: usize,
        /// Fields found.
        got: usize,
        /// Fields expected (header width).
        expected: usize,
    },
    /// A quoted field was not terminated.
    UnterminatedQuote {
        /// 1-based line number where the quote opened.
        line: usize,
    },
    /// The header repeats a column name.
    DuplicateColumn(String),
    /// More columns than the 128-attribute schema limit.
    TooManyColumns(usize),
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::MissingHeader => write!(f, "CSV input has no header line"),
            CsvError::RaggedRow {
                line,
                got,
                expected,
            } => write!(
                f,
                "CSV row at line {line} has {got} fields, expected {expected}"
            ),
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting at line {line}")
            }
            CsvError::DuplicateColumn(c) => {
                write!(f, "CSV header repeats column {c:?}")
            }
            CsvError::TooManyColumns(n) => {
                write!(f, "CSV has {n} columns; at most 128 are supported")
            }
        }
    }
}

impl std::error::Error for CsvError {}

/// Splits CSV text into records of fields, honouring double-quoted
/// fields with `""` escapes and embedded newlines.
fn parse_records(input: &str) -> Result<Vec<Vec<String>>, CsvError> {
    let mut records = Vec::new();
    let mut field = String::new();
    let mut record: Vec<String> = Vec::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut line = 1usize;
    let mut quote_line = 1usize;
    let mut any = false;

    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    line += 1;
                    field.push(c);
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => {
                    in_quotes = true;
                    quote_line = line;
                }
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    line += 1;
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::UnterminatedQuote { line: quote_line });
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Parses CSV text (header line first) into a table named `name`. All
/// columns are nullable; declare an NFS afterwards with
/// [`TableSchema::with_nfs`] if needed.
pub fn table_from_csv(name: &str, input: &str) -> Result<Table, CsvError> {
    let records = parse_records(input)?;
    let mut it = records.into_iter();
    let header = it.next().ok_or(CsvError::MissingHeader)?;
    if header.len() > crate::attrs::MAX_ATTRS {
        return Err(CsvError::TooManyColumns(header.len()));
    }
    for (i, c) in header.iter().enumerate() {
        if header[..i].contains(c) {
            return Err(CsvError::DuplicateColumn(c.clone()));
        }
    }
    let schema = TableSchema::new(name, header.clone(), &[]);
    let mut table = Table::new(schema);
    for (i, rec) in it.enumerate() {
        if rec.len() != header.len() {
            return Err(CsvError::RaggedRow {
                line: i + 2,
                got: rec.len(),
                expected: header.len(),
            });
        }
        table.push(Tuple::new(
            rec.iter()
                .map(|f| Value::parse_field(f))
                .collect::<Vec<_>>(),
        ));
    }
    Ok(table)
}

fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Serializes a table to CSV text with a header line; nulls are written
/// as the literal `NULL`.
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema()
        .column_names()
        .iter()
        .map(|c| escape(c))
        .collect();
    let _ = writeln!(out, "{}", header.join(","));
    for t in table.rows() {
        let row: Vec<String> = t
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => "NULL".to_owned(),
                other => escape(&other.to_string()),
            })
            .collect();
        let _ = writeln!(out, "{}", row.join(","));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn roundtrip_simple() {
        let csv = "a,b,c\n1,x,NULL\n2,,z\n";
        let t = table_from_csv("t", csv).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.rows()[0], tuple![1i64, "x", null]);
        assert_eq!(t.rows()[1], tuple![2i64, null, "z"]);
        let back = table_to_csv(&t);
        let t2 = table_from_csv("t", &back).unwrap();
        assert!(t.multiset_eq(&t2));
    }

    #[test]
    fn quoted_fields() {
        let csv = "name,bio\n\"Brennan, M.D.\",\"says \"\"hi\"\"\"\n";
        let t = table_from_csv("t", csv).unwrap();
        assert_eq!(t.rows()[0], tuple!["Brennan, M.D.", "says \"hi\""]);
        let back = table_to_csv(&t);
        let t2 = table_from_csv("t", &back).unwrap();
        assert!(t.multiset_eq(&t2));
    }

    #[test]
    fn embedded_newline_in_quotes() {
        let csv = "a\n\"line1\nline2\"\n";
        let t = table_from_csv("t", csv).unwrap();
        assert_eq!(t.rows()[0], tuple!["line1\nline2"]);
    }

    #[test]
    fn crlf_input() {
        let csv = "a,b\r\n1,2\r\n";
        let t = table_from_csv("t", csv).unwrap();
        assert_eq!(t.rows()[0], tuple![1i64, 2i64]);
    }

    #[test]
    fn missing_final_newline() {
        let t = table_from_csv("t", "a\n7").unwrap();
        assert_eq!(t.rows()[0], tuple![7i64]);
    }

    #[test]
    fn errors() {
        assert_eq!(table_from_csv("t", ""), Err(CsvError::MissingHeader));
        assert!(matches!(
            table_from_csv("t", "a,b\n1\n"),
            Err(CsvError::RaggedRow {
                line: 2,
                got: 1,
                expected: 2
            })
        ));
        assert!(matches!(
            table_from_csv("t", "a\n\"oops\n"),
            Err(CsvError::UnterminatedQuote { .. })
        ));
    }
}
