//! A small constraint-enforcing storage engine: named tables, each with
//! a declared constraint set, and insert/update/delete operations that
//! keep every instance a valid table over its `(T, T_S, Σ)`.
//!
//! This is the substrate behind the run-time claims of the paper's
//! introduction: on a well-designed schema the engine rejects update
//! anomalies locally (a key check on one table) instead of scanning for
//! all redundant occurrences of a value.

use crate::constraint::Sigma;
use crate::incremental::IndexBank;
use crate::schema::TableSchema;
use crate::sql::{self, Statement};
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Why an engine operation was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// No table with this name.
    NoSuchTable(String),
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Wrong arity for the target table.
    ArityMismatch {
        /// Target table.
        table: String,
        /// Values supplied.
        got: usize,
        /// Columns declared.
        expected: usize,
    },
    /// A NOT NULL column would receive `⊥`.
    NotNullViolation {
        /// Target table.
        table: String,
        /// Offending column name.
        column: String,
    },
    /// A declared constraint would be violated.
    ConstraintViolation {
        /// Target table.
        table: String,
        /// The violated constraint, rendered with column names.
        constraint: String,
        /// The two rows witnessing the violation.
        rows: (usize, usize),
    },
    /// Row index out of range.
    NoSuchRow {
        /// Target table.
        table: String,
        /// Requested row.
        row: usize,
    },
    /// SQL script error.
    Parse(sql::ParseError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::NoSuchTable(t) => write!(f, "no such table {t:?}"),
            EngineError::DuplicateTable(t) => write!(f, "table {t:?} already exists"),
            EngineError::ArityMismatch {
                table,
                got,
                expected,
            } => {
                write!(
                    f,
                    "table {table:?} has {expected} columns, got {got} values"
                )
            }
            EngineError::NotNullViolation { table, column } => {
                write!(f, "column {column:?} of {table:?} is NOT NULL")
            }
            EngineError::ConstraintViolation {
                table,
                constraint,
                rows,
            } => write!(
                f,
                "constraint {constraint} of {table:?} violated by rows {} and {}",
                rows.0, rows.1
            ),
            EngineError::NoSuchRow { table, row } => {
                write!(f, "table {table:?} has no row {row}")
            }
            EngineError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sql::ParseError> for EngineError {
    fn from(e: sql::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

/// A stored table: schema, declared constraints, data, and the
/// incremental constraint indexes that make inserts O(1) amortized per
/// constraint (see [`crate::incremental`]). All three mutations —
/// insert, update, delete — maintain the indexes incrementally, so a
/// `StoredTable` is self-contained: services that want per-table
/// locking (rather than one lock around a whole [`Database`]) can wrap
/// each `StoredTable` in its own lock and call these methods directly.
#[derive(Debug, Clone)]
pub struct StoredTable {
    sigma: Sigma,
    data: Table,
    bank: IndexBank,
}

impl StoredTable {
    /// An empty stored table enforcing `sigma`.
    pub fn new(schema: TableSchema, sigma: Sigma) -> StoredTable {
        let data = Table::new(schema);
        let bank = IndexBank::build(&sigma, &data);
        StoredTable { sigma, data, bank }
    }

    /// The declared constraints.
    pub fn sigma(&self) -> &Sigma {
        &self.sigma
    }

    /// The current instance.
    pub fn data(&self) -> &Table {
        &self.data
    }

    /// The incremental constraint indexes mirroring the instance
    /// (read-only; exposed for admission probes and tests).
    pub fn bank(&self) -> &IndexBank {
        &self.bank
    }

    fn name(&self) -> &str {
        self.data.schema().name()
    }

    fn violation_error(&self, ci: usize, rows: (usize, usize)) -> EngineError {
        let constraint = self
            .sigma
            .iter()
            .nth(ci)
            .expect("index bank mirrors sigma")
            .display(self.data.schema());
        EngineError::ConstraintViolation {
            table: self.name().to_owned(),
            constraint,
            rows,
        }
    }

    fn check_row_shape(&self, row: &Tuple) -> Result<(), EngineError> {
        let schema = self.data.schema();
        if row.arity() != schema.arity() {
            return Err(EngineError::ArityMismatch {
                table: self.name().to_owned(),
                got: row.arity(),
                expected: schema.arity(),
            });
        }
        for a in schema.nfs() {
            if row.get(a).is_null() {
                return Err(EngineError::NotNullViolation {
                    table: self.name().to_owned(),
                    column: schema.column_name(a).to_owned(),
                });
            }
        }
        Ok(())
    }

    /// Inserts a row, enforcing the NFS and every declared constraint
    /// via the incremental indexes; on rejection the table is
    /// unchanged. Amortized O(1) per FD/key plus O(#null rows) for
    /// certain constraints.
    pub fn insert(&mut self, row: Tuple) -> Result<(), EngineError> {
        self.check_row_shape(&row)?;
        if let Err((ci, conflict)) = self.bank.can_insert(self.data.rows(), &row) {
            return Err(self.violation_error(ci, (conflict.with_row, self.data.len())));
        }
        self.bank.insert(&row, self.data.len());
        self.data.push(row);
        Ok(())
    }

    /// Updates one cell, enforcing constraints incrementally: the old
    /// row leaves the indexes, the replacement is validated against the
    /// rest of the instance, and on rejection the old row is restored —
    /// no full rescan, no index rebuild.
    pub fn update(&mut self, row: usize, column: &str, value: Value) -> Result<(), EngineError> {
        if row >= self.data.len() {
            return Err(EngineError::NoSuchRow {
                table: self.name().to_owned(),
                row,
            });
        }
        let schema = self.data.schema();
        let a = schema
            .attr(column)
            .ok_or_else(|| EngineError::NoSuchTable(format!("{}.{column}", self.name())))?;
        if value.is_null() && schema.nfs().contains(a) {
            return Err(EngineError::NotNullViolation {
                table: self.name().to_owned(),
                column: column.to_owned(),
            });
        }
        let old = self.data.rows()[row].clone();
        let mut new = old.clone();
        *new.get_mut(a) = value.clone();
        self.bank.remove(&old, row);
        match self
            .bank
            .can_insert_excluding(self.data.rows(), &new, Some(row))
        {
            Err((ci, conflict)) => {
                self.bank.insert(&old, row);
                Err(self.violation_error(ci, (conflict.with_row, row)))
            }
            Ok(()) => {
                self.bank.insert(&new, row);
                self.data.set_value(row, a, value);
                Ok(())
            }
        }
    }

    /// Deletes a row (deletions can never introduce a violation of this
    /// constraint class); the indexes compact their row ids in place.
    pub fn delete(&mut self, row: usize) -> Result<Tuple, EngineError> {
        if row >= self.data.len() {
            return Err(EngineError::NoSuchRow {
                table: self.name().to_owned(),
                row,
            });
        }
        let removed = self.data.remove_row(row);
        self.bank.remove(&removed, row);
        self.bank.shift_down(row);
        Ok(removed)
    }
}

/// A database: a set of named, constraint-checked tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, StoredTable>,
}

impl Database {
    /// An empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Creates a table from a schema and constraint set.
    pub fn create_table(&mut self, schema: TableSchema, sigma: Sigma) -> Result<(), EngineError> {
        let name = schema.name().to_owned();
        if self.tables.contains_key(&name) {
            return Err(EngineError::DuplicateTable(name));
        }
        self.tables.insert(name, StoredTable::new(schema, sigma));
        Ok(())
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Looks up a stored table.
    pub fn table(&self, name: &str) -> Result<&StoredTable, EngineError> {
        self.tables
            .get(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_owned()))
    }

    fn table_mut(&mut self, name: &str) -> Result<&mut StoredTable, EngineError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| EngineError::NoSuchTable(name.to_owned()))
    }

    /// Inserts a row into a named table (see [`StoredTable::insert`]).
    pub fn insert(&mut self, name: &str, row: Tuple) -> Result<(), EngineError> {
        self.table_mut(name)?.insert(row)
    }

    /// Updates one cell of a named table (see [`StoredTable::update`]).
    pub fn update(
        &mut self,
        name: &str,
        row: usize,
        column: &str,
        value: Value,
    ) -> Result<(), EngineError> {
        self.table_mut(name)?.update(row, column, value)
    }

    /// Deletes a row of a named table (see [`StoredTable::delete`]).
    pub fn delete(&mut self, name: &str, row: usize) -> Result<Tuple, EngineError> {
        self.table_mut(name)?.delete(row)
    }

    /// Executes a parsed statement.
    pub fn execute(&mut self, stmt: Statement) -> Result<(), EngineError> {
        match stmt {
            Statement::CreateTable { schema, sigma } => self.create_table(schema, sigma),
            Statement::Insert { table, rows } => {
                for row in rows {
                    self.insert(&table, row)?;
                }
                Ok(())
            }
        }
    }

    /// Parses and executes a SQL script.
    pub fn run_script(&mut self, src: &str) -> Result<(), EngineError> {
        for stmt in sql::parse_script(src)? {
            self.execute(stmt)?;
        }
        Ok(())
    }

    /// Renders the whole database as a SQL script that recreates it —
    /// DDL in table-name order, then each table's rows in insertion
    /// order. Byte-compatible with the serve layer's store export, so
    /// a single-threaded `Database` can act as the differential
    /// reference for concurrent recovery tests.
    pub fn export_script(&self) -> String {
        let mut out = String::new();
        for (name, st) in &self.tables {
            out.push_str(&sql::render_create_table(st.data().schema(), st.sigma()));
            out.push('\n');
            if !st.data().is_empty() {
                out.push_str(&sql::render_insert(name, st.data().rows()));
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrSet;
    use crate::constraint::{Fd, Key};
    use crate::tuple;

    fn purchase_db() -> Database {
        let mut db = Database::new();
        db.run_script(
            "CREATE TABLE purchase (
                order_id INT NOT NULL,
                item     TEXT NOT NULL,
                catalog  TEXT,
                price    INT NOT NULL,
                CONSTRAINT fd CERTAIN FD (item, catalog) -> (price)
            );
            INSERT INTO purchase VALUES
                (5299401, 'Fitbit Surge', 'Amazon', 240),
                (7485113, 'Dora Doll', 'Kingtoys', 25);",
        )
        .unwrap();
        db
    }

    #[test]
    fn script_loads_and_data_is_queryable() {
        let db = purchase_db();
        assert_eq!(db.table_names(), vec!["purchase"]);
        let t = db.table("purchase").unwrap();
        assert_eq!(t.data().len(), 2);
        assert_eq!(t.sigma().fds.len(), 1);
    }

    #[test]
    fn insert_enforces_cfd() {
        let mut db = purchase_db();
        // Same (item, catalog), same price: fine (duplicates allowed!).
        db.insert("purchase", tuple![1i64, "Fitbit Surge", "Amazon", 240i64])
            .unwrap();
        // Different price: rejected, table unchanged.
        let err = db
            .insert("purchase", tuple![2i64, "Fitbit Surge", "Amazon", 999i64])
            .unwrap_err();
        assert!(matches!(err, EngineError::ConstraintViolation { .. }));
        assert_eq!(db.table("purchase").unwrap().data().len(), 3);
        // Weak similarity bites: NULL catalog with a new price conflicts
        // with the Amazon row.
        let err2 = db
            .insert("purchase", tuple![3i64, "Fitbit Surge", null, 100i64])
            .unwrap_err();
        assert!(matches!(err2, EngineError::ConstraintViolation { .. }));
        // …but the same price is accepted.
        db.insert("purchase", tuple![3i64, "Fitbit Surge", null, 240i64])
            .unwrap();
    }

    #[test]
    fn not_null_and_arity_enforced() {
        let mut db = purchase_db();
        let e = db
            .insert("purchase", tuple![null, "X", "Y", 1i64])
            .unwrap_err();
        assert!(matches!(e, EngineError::NotNullViolation { .. }));
        let e2 = db.insert("purchase", tuple![1i64]).unwrap_err();
        assert!(matches!(e2, EngineError::ArityMismatch { .. }));
    }

    #[test]
    fn update_rolls_back_on_violation() {
        let mut db = purchase_db();
        db.insert("purchase", tuple![9i64, "Fitbit Surge", "Amazon", 240i64])
            .unwrap();
        // Changing one of the two Amazon prices breaks the c-FD.
        let err = db
            .update("purchase", 0, "price", Value::Int(999))
            .unwrap_err();
        assert!(matches!(err, EngineError::ConstraintViolation { .. }));
        let t = db.table("purchase").unwrap().data();
        assert_eq!(t.rows()[0].get(t.schema().a("price")), &Value::Int(240));
        // Changing the item breaks the agreement instead: allowed.
        db.update("purchase", 0, "item", Value::str("Fitbit Versa"))
            .unwrap();
        // NOT NULL still enforced on update.
        let e2 = db.update("purchase", 0, "price", Value::Null).unwrap_err();
        assert!(matches!(e2, EngineError::NotNullViolation { .. }));
    }

    #[test]
    fn keys_reject_duplicates_fds_do_not() {
        let mut db = Database::new();
        let schema = TableSchema::new("t", ["a", "b"], &[]);
        let sigma = Sigma::new()
            .with(Key::certain(AttrSet::from_indices([0])))
            .with(Fd::certain(
                AttrSet::from_indices([0]),
                AttrSet::from_indices([1]),
            ));
        db.create_table(schema, sigma).unwrap();
        db.insert("t", tuple![1i64, 10i64]).unwrap();
        // The c-key rejects even an identical duplicate.
        let e = db.insert("t", tuple![1i64, 10i64]).unwrap_err();
        assert!(matches!(e, EngineError::ConstraintViolation { .. }));
        // A NULL key value is weakly similar to everything: rejected.
        let e2 = db.insert("t", tuple![null, 20i64]).unwrap_err();
        assert!(matches!(e2, EngineError::ConstraintViolation { .. }));
        db.insert("t", tuple![2i64, 20i64]).unwrap();
    }

    #[test]
    fn delete_returns_row() {
        let mut db = purchase_db();
        let removed = db.delete("purchase", 0).unwrap();
        assert_eq!(
            removed,
            tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64]
        );
        assert_eq!(db.table("purchase").unwrap().data().len(), 1);
        assert!(matches!(
            db.delete("purchase", 5),
            Err(EngineError::NoSuchRow { .. })
        ));
    }

    #[test]
    fn export_script_round_trips() {
        let db = purchase_db();
        let script = db.export_script();
        let mut back = Database::new();
        back.run_script(&script).unwrap();
        assert_eq!(back.export_script(), script);
        assert_eq!(back.table("purchase").unwrap().data().len(), 2);
    }

    #[test]
    fn duplicate_table_and_missing_table_errors() {
        let mut db = purchase_db();
        let schema = TableSchema::new("purchase", ["x"], &[]);
        assert!(matches!(
            db.create_table(schema, Sigma::new()),
            Err(EngineError::DuplicateTable(_))
        ));
        assert!(matches!(
            db.insert("nope", tuple![1i64]),
            Err(EngineError::NoSuchTable(_))
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let mut db = purchase_db();
        let err = db
            .insert("purchase", tuple![2i64, "Dora Doll", "Kingtoys", 999i64])
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("purchase"));
        assert!(msg.contains("->w"));
    }
}
