//! Incremental constraint checking: validate one candidate row against
//! an instance in (amortized) constant time per constraint, instead of
//! revalidating the whole table.
//!
//! For each constraint an [`ConstraintIndex`] maintains:
//!
//! * a hash map from the `X`-projection of every `X`-total row to the
//!   group's shared RHS image (FDs) or its row count (keys) — strong
//!   similarity and syntactic equality are transitive on the `X`-total
//!   part, so one representative per group suffices;
//! * the list of rows carrying `⊥` in `X` (for certain constraints,
//!   whose weak similarity escapes the hash map). A candidate row is
//!   checked against these pairwise; with the null lists short — the
//!   common case — the check is O(1) + O(#null rows).
//!
//! The index answers *admission* queries (`can_insert`) and is updated
//! by `insert`, `remove` and `shift_down`, so point updates and deletes
//! maintain it incrementally instead of rebuilding from scratch: a
//! removal is one hash lookup plus a scan of the affected group, and a
//! delete's id compaction touches every stored row id once but never
//! rehashes or reallocates the projections. This is what gives
//! `sqlnf_model::engine` linear bulk loads; the equivalence with full
//! revalidation is property-tested.

use crate::attrs::AttrSet;
use crate::constraint::{Constraint, Fd, Key, Modality};
use crate::similarity::weakly_similar;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Why a candidate row is inadmissible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// An existing row the candidate conflicts with (an index into the
    /// insertion sequence).
    pub with_row: usize,
}

fn project_values(row: &Tuple, x: AttrSet) -> Vec<Value> {
    x.iter().map(|a| row.get(a).clone()).collect()
}

/// One X-total FD group: the shared RHS image plus every member row.
/// All members agree on the RHS projection (enforced at admission), so
/// any member serves as the conflict witness.
#[derive(Debug, Clone)]
struct FdGroup {
    rhs: Vec<Value>,
    rows: Vec<usize>,
}

/// Incremental state for one constraint.
#[derive(Debug, Clone)]
enum IndexKind {
    Fd {
        fd: Fd,
        /// X-total groups: X-projection → (RHS image, member row ids).
        groups: HashMap<Vec<Value>, FdGroup>,
        /// Rows with ⊥ somewhere in X (certain FDs only need these).
        null_rows: Vec<usize>,
    },
    Key {
        key: Key,
        /// X-total groups: X-projection → member row ids.
        groups: HashMap<Vec<Value>, Vec<usize>>,
        null_rows: Vec<usize>,
    },
}

/// Incremental checker for one constraint over a growing instance.
#[derive(Debug, Clone)]
pub struct ConstraintIndex {
    kind: IndexKind,
}

impl ConstraintIndex {
    /// An empty index for `c`.
    pub fn new(c: Constraint) -> ConstraintIndex {
        let kind = match c {
            Constraint::Fd(fd) => IndexKind::Fd {
                fd,
                groups: HashMap::new(),
                null_rows: Vec::new(),
            },
            Constraint::Key(key) => IndexKind::Key {
                key,
                groups: HashMap::new(),
                null_rows: Vec::new(),
            },
        };
        ConstraintIndex { kind }
    }

    /// Whether inserting `row` (as row id `row_id`) into the instance
    /// `rows` (the rows inserted so far, in order) keeps the constraint
    /// satisfied. `rows` is only consulted for weak-similarity checks
    /// against null-bearing rows.
    pub fn can_insert(&self, rows: &[Tuple], row: &Tuple) -> Result<(), Conflict> {
        self.can_insert_excluding(rows, row, None)
    }

    /// [`can_insert`](Self::can_insert), but any comparison against the
    /// row at index `exclude` is skipped. Used by point updates, where
    /// the candidate replaces an existing row: the old row is first
    /// [`remove`](Self::remove)d from the index, but still occupies its
    /// slot in `rows` while the replacement is validated.
    pub fn can_insert_excluding(
        &self,
        rows: &[Tuple],
        row: &Tuple,
        exclude: Option<usize>,
    ) -> Result<(), Conflict> {
        match &self.kind {
            IndexKind::Fd {
                fd,
                groups,
                null_rows,
            } => {
                let total = row.is_total_on(fd.lhs);
                if total {
                    if let Some(g) = groups.get(&project_values(row, fd.lhs)) {
                        if project_values(row, fd.rhs) != g.rhs {
                            return Err(Conflict {
                                with_row: g.rows[0],
                            });
                        }
                    }
                }
                // Certain FDs: weak similarity involving a null side.
                if fd.modality == Modality::Certain {
                    // The candidate against existing null rows…
                    for &r in null_rows {
                        if weakly_similar(row, &rows[r], fd.lhs) && !row.eq_on(&rows[r], fd.rhs) {
                            return Err(Conflict { with_row: r });
                        }
                    }
                    // …and, if the candidate itself has nulls in X, it
                    // is weakly similar to rows the hash map cannot
                    // find: scan.
                    if !total {
                        for (r, existing) in rows.iter().enumerate() {
                            if Some(r) == exclude {
                                continue;
                            }
                            if weakly_similar(row, existing, fd.lhs) && !row.eq_on(existing, fd.rhs)
                            {
                                return Err(Conflict { with_row: r });
                            }
                        }
                    }
                }
                Ok(())
            }
            IndexKind::Key {
                key,
                groups,
                null_rows,
            } => {
                let total = row.is_total_on(key.attrs);
                if total {
                    if let Some(members) = groups.get(&project_values(row, key.attrs)) {
                        return Err(Conflict {
                            with_row: members[0],
                        });
                    }
                }
                if key.modality == Modality::Certain {
                    for &r in null_rows {
                        if weakly_similar(row, &rows[r], key.attrs) {
                            return Err(Conflict { with_row: r });
                        }
                    }
                    if !total {
                        for (r, existing) in rows.iter().enumerate() {
                            if Some(r) == exclude {
                                continue;
                            }
                            if weakly_similar(row, existing, key.attrs) {
                                return Err(Conflict { with_row: r });
                            }
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Records `row` (id `row_id`) as inserted. Callers must have
    /// checked `can_insert` first; the index does not re-verify.
    pub fn insert(&mut self, row: &Tuple, row_id: usize) {
        match &mut self.kind {
            IndexKind::Fd {
                fd,
                groups,
                null_rows,
            } => {
                if row.is_total_on(fd.lhs) {
                    groups
                        .entry(project_values(row, fd.lhs))
                        .or_insert_with(|| FdGroup {
                            rhs: project_values(row, fd.rhs),
                            rows: Vec::new(),
                        })
                        .rows
                        .push(row_id);
                } else {
                    null_rows.push(row_id);
                }
            }
            IndexKind::Key {
                key,
                groups,
                null_rows,
            } => {
                if row.is_total_on(key.attrs) {
                    groups
                        .entry(project_values(row, key.attrs))
                        .or_default()
                        .push(row_id);
                } else {
                    null_rows.push(row_id);
                }
            }
        }
    }

    /// Forgets the membership of `row` (id `row_id`): one hash lookup
    /// plus a scan of the affected group. The caller passes the exact
    /// tuple the id was inserted with; ids of other rows are untouched
    /// (use [`shift_down`](Self::shift_down) after a positional
    /// delete).
    pub fn remove(&mut self, row: &Tuple, row_id: usize) {
        fn drop_id(ids: &mut Vec<usize>, row_id: usize) {
            if let Some(at) = ids.iter().position(|&r| r == row_id) {
                ids.swap_remove(at);
            }
        }
        match &mut self.kind {
            IndexKind::Fd {
                fd,
                groups,
                null_rows,
            } => {
                if row.is_total_on(fd.lhs) {
                    let proj = project_values(row, fd.lhs);
                    if let Some(g) = groups.get_mut(&proj) {
                        drop_id(&mut g.rows, row_id);
                        if g.rows.is_empty() {
                            groups.remove(&proj);
                        }
                    }
                } else {
                    drop_id(null_rows, row_id);
                }
            }
            IndexKind::Key {
                key,
                groups,
                null_rows,
            } => {
                if row.is_total_on(key.attrs) {
                    let proj = project_values(row, key.attrs);
                    if let Some(members) = groups.get_mut(&proj) {
                        drop_id(members, row_id);
                        if members.is_empty() {
                            groups.remove(&proj);
                        }
                    }
                } else {
                    drop_id(null_rows, row_id);
                }
            }
        }
    }

    /// Compacts row ids after the row at `removed` was deleted from the
    /// instance: every stored id greater than `removed` decrements by
    /// one. The id `removed` itself must already have been
    /// [`remove`](Self::remove)d. Touches each stored id once — no
    /// rehashing, no reallocation.
    pub fn shift_down(&mut self, removed: usize) {
        fn shift(ids: &mut [usize], removed: usize) {
            for r in ids {
                debug_assert_ne!(*r, removed, "removed id still indexed");
                if *r > removed {
                    *r -= 1;
                }
            }
        }
        match &mut self.kind {
            IndexKind::Fd {
                groups, null_rows, ..
            } => {
                for g in groups.values_mut() {
                    shift(&mut g.rows, removed);
                }
                shift(null_rows, removed);
            }
            IndexKind::Key {
                groups, null_rows, ..
            } => {
                for members in groups.values_mut() {
                    shift(members, removed);
                }
                shift(null_rows, removed);
            }
        }
    }

    /// Rebuilds the index from scratch over an instance (used after
    /// updates/deletes, which invalidate incremental state).
    pub fn rebuild(&mut self, table: &Table) {
        let c = match &self.kind {
            IndexKind::Fd { fd, .. } => Constraint::Fd(*fd),
            IndexKind::Key { key, .. } => Constraint::Key(*key),
        };
        *self = ConstraintIndex::new(c);
        for (i, row) in table.rows().iter().enumerate() {
            self.insert(row, i);
        }
    }
}

/// A bank of indexes, one per constraint of Σ, sharing admission and
/// insertion.
#[derive(Debug, Clone, Default)]
pub struct IndexBank {
    indexes: Vec<ConstraintIndex>,
}

impl IndexBank {
    /// Builds the bank for Σ over an existing instance.
    pub fn build(sigma: &crate::constraint::Sigma, table: &Table) -> IndexBank {
        let mut bank = IndexBank {
            indexes: sigma.iter().map(ConstraintIndex::new).collect(),
        };
        for idx in &mut bank.indexes {
            idx.rebuild(table);
        }
        bank
    }

    /// Checks every constraint; returns the first conflict with the
    /// index of the violated constraint.
    pub fn can_insert(&self, rows: &[Tuple], row: &Tuple) -> Result<(), (usize, Conflict)> {
        self.can_insert_excluding(rows, row, None)
    }

    /// [`can_insert`](Self::can_insert) skipping comparisons against
    /// the row at `exclude` (see
    /// [`ConstraintIndex::can_insert_excluding`]).
    pub fn can_insert_excluding(
        &self,
        rows: &[Tuple],
        row: &Tuple,
        exclude: Option<usize>,
    ) -> Result<(), (usize, Conflict)> {
        for (ci, idx) in self.indexes.iter().enumerate() {
            idx.can_insert_excluding(rows, row, exclude)
                .map_err(|c| (ci, c))?;
        }
        Ok(())
    }

    /// Records an accepted insert in every index.
    pub fn insert(&mut self, row: &Tuple, row_id: usize) {
        for idx in &mut self.indexes {
            idx.insert(row, row_id);
        }
    }

    /// Forgets `row` (id `row_id`) in every index (see
    /// [`ConstraintIndex::remove`]).
    pub fn remove(&mut self, row: &Tuple, row_id: usize) {
        for idx in &mut self.indexes {
            idx.remove(row, row_id);
        }
    }

    /// Compacts ids after a positional delete in every index (see
    /// [`ConstraintIndex::shift_down`]).
    pub fn shift_down(&mut self, removed: usize) {
        for idx in &mut self.indexes {
            idx.shift_down(removed);
        }
    }

    /// Rebuilds every index from scratch (only needed when the whole
    /// instance is replaced; mutations maintain the bank
    /// incrementally).
    pub fn rebuild(&mut self, table: &Table) {
        for idx in &mut self.indexes {
            idx.rebuild(table);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Sigma;
    use crate::satisfy::satisfies_all;
    use crate::schema::TableSchema;
    use crate::tuple;

    fn schema() -> TableSchema {
        TableSchema::new("t", ["a", "b", "c"], &[])
    }

    /// Reference: would appending `row` keep Σ satisfied?
    fn naive_admissible(table: &Table, sigma: &Sigma, row: &Tuple) -> bool {
        let mut next = table.clone();
        next.push(row.clone());
        satisfies_all(&next, sigma)
    }

    #[test]
    fn fd_admission_matches_naive() {
        let sigma = Sigma::new().with(Fd::certain(
            AttrSet::from_indices([0]),
            AttrSet::from_indices([1]),
        ));
        let mut table = Table::new(schema());
        let mut bank = IndexBank::build(&sigma, &table);
        let candidates = vec![
            tuple![1i64, 10i64, 0i64],
            tuple![1i64, 10i64, 1i64], // same group, same rhs: ok
            tuple![1i64, 20i64, 2i64], // conflicts
            tuple![null, 10i64, 3i64], // weakly similar to group 1, same b: ok
            tuple![null, 30i64, 4i64], // weakly similar, different b: conflict
            tuple![2i64, 30i64, 5i64], // fresh group… but wait: weakly similar to the ⊥ row!
        ];
        for cand in candidates {
            let expected = naive_admissible(&table, &sigma, &cand);
            let got = bank.can_insert(table.rows(), &cand).is_ok();
            assert_eq!(got, expected, "candidate {cand}");
            if expected {
                bank.insert(&cand, table.len());
                table.push(cand);
            }
        }
    }

    #[test]
    fn key_admission_matches_naive() {
        let sigma = Sigma::new().with(Key::certain(AttrSet::from_indices([0, 1])));
        let mut table = Table::new(schema());
        let mut bank = IndexBank::build(&sigma, &table);
        let candidates = vec![
            tuple![1i64, 1i64, 0i64],
            tuple![1i64, 2i64, 0i64],
            tuple![1i64, 1i64, 9i64], // duplicate key: conflict
            tuple![null, 3i64, 0i64], // ⊥ weakly matches nothing on b=3: ok
            tuple![null, 1i64, 0i64], // weakly matches (1,1): conflict
            tuple![2i64, 3i64, 0i64], // weakly matches (⊥,3): conflict
        ];
        for cand in candidates {
            let expected = naive_admissible(&table, &sigma, &cand);
            let got = bank.can_insert(table.rows(), &cand).is_ok();
            assert_eq!(got, expected, "candidate {cand}");
            if expected {
                bank.insert(&cand, table.len());
                table.push(cand);
            }
        }
    }

    #[test]
    fn conflict_reports_a_real_row() {
        let sigma = Sigma::new().with(Fd::possible(
            AttrSet::from_indices([0]),
            AttrSet::from_indices([1]),
        ));
        let mut table = Table::new(schema());
        let mut bank = IndexBank::build(&sigma, &table);
        let first = tuple![7i64, 1i64, 0i64];
        bank.insert(&first, 0);
        table.push(first);
        let (ci, conflict) = bank
            .can_insert(table.rows(), &tuple![7i64, 2i64, 0i64])
            .unwrap_err();
        assert_eq!(ci, 0);
        assert_eq!(conflict.with_row, 0);
    }

    #[test]
    fn remove_and_shift_track_deletes() {
        let sigma = Sigma::new()
            .with(Key::certain(AttrSet::from_indices([0])))
            .with(Fd::certain(
                AttrSet::from_indices([1]),
                AttrSet::from_indices([2]),
            ));
        let mut table = Table::new(schema());
        let mut bank = IndexBank::build(&sigma, &table);
        let rows = vec![
            tuple![1i64, 5i64, 50i64],
            tuple![2i64, null, 50i64],
            tuple![3i64, 5i64, 50i64],
        ];
        for r in &rows {
            bank.can_insert(table.rows(), r).unwrap();
            bank.insert(r, table.len());
            table.push(r.clone());
        }
        // Delete the middle (null-bearing) row: remove + shift.
        let removed = table.rows()[1].clone();
        bank.remove(&removed, 1);
        bank.shift_down(1);
        let remaining = Table::from_rows(
            table.schema().clone(),
            vec![table.rows()[0].clone(), table.rows()[2].clone()],
        );
        // Key 1 is free again, key 3 (now id 1) still taken, and the
        // FD group {5}→{50} still rejects a divergent RHS.
        assert!(bank
            .can_insert(remaining.rows(), &tuple![2i64, 9i64, 0i64])
            .is_ok());
        let (_, c) = bank
            .can_insert(remaining.rows(), &tuple![3i64, 8i64, 0i64])
            .unwrap_err();
        assert_eq!(c.with_row, 1);
        assert!(bank
            .can_insert(remaining.rows(), &tuple![4i64, 5i64, 99i64])
            .is_err());
        // Updating row 0's key: remove old, validate replacement
        // excluding the slot, insert new.
        let old = remaining.rows()[0].clone();
        bank.remove(&old, 0);
        let new = tuple![3i64, 5i64, 50i64];
        // Key 3 is taken by row 1: conflict even mid-update.
        assert!(bank
            .can_insert_excluding(remaining.rows(), &new, Some(0))
            .is_err());
        let new_ok = tuple![7i64, 5i64, 50i64];
        bank.can_insert_excluding(remaining.rows(), &new_ok, Some(0))
            .unwrap();
        bank.insert(&new_ok, 0);
        let after = Table::from_rows(
            remaining.schema().clone(),
            vec![new_ok, remaining.rows()[1].clone()],
        );
        assert!(bank
            .can_insert(after.rows(), &tuple![7i64, 0i64, 0i64])
            .is_err());
        assert!(bank
            .can_insert(after.rows(), &tuple![1i64, 0i64, 0i64])
            .is_ok());
    }

    #[test]
    fn rebuild_after_mutation() {
        let sigma = Sigma::new().with(Key::possible(AttrSet::from_indices([0])));
        let mut table = Table::new(schema());
        table.push(tuple![1i64, 0i64, 0i64]);
        let mut bank = IndexBank::build(&sigma, &table);
        assert!(bank
            .can_insert(table.rows(), &tuple![1i64, 0i64, 0i64])
            .is_err());
        // Delete the row; after rebuild the key is free again.
        let empty = Table::new(schema());
        bank.rebuild(&empty);
        assert!(bank
            .can_insert(empty.rows(), &tuple![1i64, 0i64, 0i64])
            .is_ok());
    }
}
