//! The equality join of Definition 8.
//!
//! The join of two components matches tuples by *syntactic equality of
//! values on common attributes* — not weak similarity — so `⊥` joins
//! only with `⊥`. This is exactly the join under which Figure 5's
//! decomposition is lossless while Figure 4's (based on a p-FD) is not.

use crate::attrs::Attr;
use crate::schema::TableSchema;
use crate::table::Table;
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::HashMap;

/// Natural equality join of two tables on their common column names.
///
/// Output columns are the left table's columns followed by the right
/// table's non-common columns; the output NFS is inherited column-wise.
/// Joining on zero common columns degenerates to the cross product,
/// which the paper's performance experiment uses deliberately.
pub fn join(left: &Table, right: &Table, name: impl Into<String>) -> Table {
    let ls = left.schema();
    let rs = right.schema();

    // Common columns, as (left attr, right attr) pairs.
    let mut common: Vec<(Attr, Attr)> = Vec::new();
    for (ri, rc) in rs.column_names().iter().enumerate() {
        if let Some(la) = ls.attr(rc) {
            common.push((la, Attr::from(ri)));
        }
    }
    let right_only: Vec<Attr> = (0..rs.arity())
        .map(Attr::from)
        .filter(|a| ls.attr(rs.column_name(*a)).is_none())
        .collect();

    // Output schema.
    let mut columns: Vec<String> = ls.column_names().to_vec();
    let mut not_null: Vec<String> = ls
        .nfs()
        .iter()
        .map(|a| ls.column_name(a).to_owned())
        .collect();
    for &a in &right_only {
        columns.push(rs.column_name(a).to_owned());
        if rs.nfs().contains(a) {
            not_null.push(rs.column_name(a).to_owned());
        }
    }
    let nn: Vec<&str> = not_null.iter().map(String::as_str).collect();
    let schema = TableSchema::new(name, columns, &nn);

    // Hash the right side on its common-column values (syntactic
    // equality, so `⊥` keys match only `⊥` keys).
    let mut index: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right.len());
    for (i, t) in right.rows().iter().enumerate() {
        let key: Vec<Value> = common.iter().map(|&(_, ra)| t.get(ra).clone()).collect();
        index.entry(key).or_default().push(i);
    }

    let mut out = Table::new(schema);
    for lt in left.rows() {
        let key: Vec<Value> = common.iter().map(|&(la, _)| lt.get(la).clone()).collect();
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let rt = &right.rows()[ri];
                let mut vals: Vec<Value> = lt.values().to_vec();
                vals.extend(right_only.iter().map(|&a| rt.get(a).clone()));
                out.push(Tuple::new(vals));
            }
        }
    }
    out
}

/// Joins a sequence of components left to right. Panics on an empty
/// sequence.
pub fn join_all<'a>(components: impl IntoIterator<Item = &'a Table>, name: &str) -> Table {
    let mut it = components.into_iter();
    let first = it.next().expect("join_all needs at least one component");
    let mut acc = first.clone();
    for (i, c) in it.enumerate() {
        acc = join(&acc, c, format!("{name}_{i}"));
    }
    // Rename the final result.
    let schema = acc.schema().clone().with_name(name);
    let rows: Vec<Tuple> = acc.rows().to_vec();
    Table::from_rows(schema, rows)
}

/// Reorders the columns of `table` to the given order (a permutation of
/// its column names), so results of joins can be compared with the
/// original instance via [`Table::multiset_eq`].
pub fn reorder_columns(table: &Table, order: &[String]) -> Table {
    let s = table.schema();
    assert_eq!(order.len(), s.arity(), "order must mention every column");
    let attrs: Vec<Attr> = order
        .iter()
        .map(|c| {
            s.attr(c)
                .unwrap_or_else(|| panic!("no column {c:?} to reorder"))
        })
        .collect();
    let nn: Vec<&str> = attrs
        .iter()
        .filter(|a| s.nfs().contains(**a))
        .map(|a| s.column_name(*a))
        .collect();
    let schema = TableSchema::new(s.name(), order.to_vec(), &nn);
    let mut out = Table::new(schema);
    for t in table.rows() {
        out.push(Tuple::new(
            attrs.iter().map(|&a| t.get(a).clone()).collect::<Vec<_>>(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::{project_multiset, project_set};
    use crate::table::TableBuilder;
    use crate::tuple;

    /// The top instance of Figure 5.
    fn purchase_fig5() -> Table {
        TableBuilder::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "item", "price"],
        )
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build()
    }

    #[test]
    fn figure5_join_is_lossless() {
        // I = I[[oic]] ⋈ I[icp] for the c-FD item,catalog →_w price.
        let i = purchase_fig5();
        let s = i.schema();
        let oic = s.set(&["order_id", "item", "catalog"]);
        let icp = s.set(&["item", "catalog", "price"]);
        let left = project_multiset(&i, oic, "oic");
        let right = project_set(&i, icp, "icp");
        let joined = join(&left, &right, "rejoined");
        let reordered = reorder_columns(&joined, s.column_names());
        assert!(i.multiset_eq(&reordered));
    }

    #[test]
    fn figure4_pfd_decomposition_is_lossy() {
        // Figure 4: both tuples have NULL catalog and different prices;
        // the p-FD item,catalog →_s price holds but the decomposition
        // loses information (the join mixes the two prices).
        let i = TableBuilder::new("purchase", ["order_id", "item", "catalog", "price"], &[])
            .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
            .row(tuple![7485113i64, "Fitbit Surge", null, 200i64])
            .build();
        let s = i.schema();
        let oic = s.set(&["order_id", "item", "catalog"]);
        let icp = s.set(&["item", "catalog", "price"]);
        let joined = join(
            &project_multiset(&i, oic, "oic"),
            &project_set(&i, icp, "icp"),
            "rejoined",
        );
        // Each of the 2 left rows matches both right rows: 4 rows ≠ 2.
        assert_eq!(joined.len(), 4);
        let reordered = reorder_columns(&joined, s.column_names());
        assert!(!i.multiset_eq(&reordered));
    }

    #[test]
    fn null_joins_only_null() {
        let l = TableBuilder::new("l", ["k", "x"], &[])
            .row(tuple![null, 1i64])
            .row(tuple!["a", 2i64])
            .build();
        let r = TableBuilder::new("r", ["k", "y"], &[])
            .row(tuple![null, 10i64])
            .row(tuple!["a", 20i64])
            .row(tuple!["b", 30i64])
            .build();
        let j = join(&l, &r, "j");
        assert_eq!(j.len(), 2);
        assert!(j.rows().contains(&tuple![null, 1i64, 10i64]));
        assert!(j.rows().contains(&tuple!["a", 2i64, 20i64]));
    }

    #[test]
    fn disjoint_columns_cross_product() {
        let l = TableBuilder::new("l", ["a"], &[])
            .row(tuple![1i64])
            .row(tuple![2i64])
            .build();
        let r = TableBuilder::new("r", ["b"], &[])
            .row(tuple![10i64])
            .row(tuple![20i64])
            .row(tuple![30i64])
            .build();
        let j = join(&l, &r, "j");
        assert_eq!(j.len(), 6);
        assert_eq!(j.schema().column_names(), &["a", "b"]);
    }

    #[test]
    fn join_multiplicity_multiplies() {
        let l = TableBuilder::new("l", ["k"], &[])
            .row(tuple!["a"])
            .row(tuple!["a"])
            .build();
        let r = TableBuilder::new("r", ["k", "v"], &[])
            .row(tuple!["a", 1i64])
            .row(tuple!["a", 2i64])
            .build();
        let j = join(&l, &r, "j");
        assert_eq!(j.len(), 4);
    }

    #[test]
    fn join_all_three_way() {
        let a = TableBuilder::new("a", ["k", "x"], &[])
            .row(tuple![1i64, "x"])
            .build();
        let b = TableBuilder::new("b", ["k", "y"], &[])
            .row(tuple![1i64, "y"])
            .build();
        let c = TableBuilder::new("c", ["y", "z"], &[])
            .row(tuple!["y", "z"])
            .build();
        let j = join_all([&a, &b, &c], "j");
        assert_eq!(j.schema().column_names(), &["k", "x", "y", "z"]);
        assert_eq!(j.len(), 1);
        assert_eq!(j.schema().name(), "j");
    }

    #[test]
    fn reorder_preserves_nfs() {
        let t = TableBuilder::new("t", ["a", "b"], &["b"])
            .row(tuple![1i64, 2i64])
            .build();
        let r = reorder_columns(&t, &["b".into(), "a".into()]);
        assert_eq!(r.schema().column_names(), &["b", "a"]);
        assert_eq!(r.schema().nfs(), r.schema().set(&["b"]));
        assert_eq!(r.rows()[0], tuple![2i64, 1i64]);
    }
}
