//! # sqlnf-model
//!
//! Substrate for SQL schema design à la Köhler & Link (SIGMOD 2016):
//! the data model of Section 2 — attribute sets, table schemata with
//! null-free subschemata, multiset tables whose cells may carry the
//! "no information" null marker, weak/strong similarity, the constraint
//! language (p/c-FDs, p/c-keys, NOT NULL), constraint satisfaction, and
//! the set/multiset projections and equality joins of Section 6.
//!
//! The reasoning machinery (closures, implication, normal forms,
//! decompositions) lives in `sqlnf-core`, which builds on this crate.

#![warn(missing_docs)]

pub mod attrs;
pub mod column;
pub mod constraint;
pub mod csv;
pub mod engine;
pub mod incremental;
pub mod join;
pub mod project;
pub mod satisfy;
pub mod schema;
pub mod similarity;
pub mod sql;
pub mod stats;
pub mod table;
pub mod tuple;
pub mod value;

/// Convenience re-exports for downstream crates, tests and examples.
pub mod prelude {
    pub use crate::attrs::{Attr, AttrSet};
    pub use crate::column::{ColData, ColumnSnapshot, ColumnStore};
    pub use crate::constraint::{Constraint, Fd, Key, Modality, Sigma};
    pub use crate::csv::{table_from_csv, table_to_csv};
    pub use crate::engine::{Database, EngineError, StoredTable};
    pub use crate::join::{join, join_all, reorder_columns};
    pub use crate::project::{project_multiset, project_set, total_part};
    pub use crate::satisfy::{
        fd_violation, key_violation, satisfies, satisfies_all, satisfies_fd, satisfies_key,
        satisfies_weak_fd, violations, weak_fd_violation,
    };
    pub use crate::schema::TableSchema;
    pub use crate::similarity::{strongly_similar, weakly_similar, Agreement};
    pub use crate::sql::{
        parse_script, parse_statement, render_create_table, render_insert, ParseError, Statement,
    };
    pub use crate::stats::{profile, render_profile, TableProfile};
    pub use crate::table::{Table, TableBuilder};
    pub use crate::tuple;
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
}
