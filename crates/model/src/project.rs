//! Set and multiset projection (Definition 6).
//!
//! `I[[X]]` — the *multiset projection* — keeps one projected tuple per
//! input tuple (`{{ t[X] | t ∈ I }}`); `I[X]` — the *set projection* —
//! additionally removes duplicates. Decompositions (Definition 7) mix
//! both kinds of component.

use crate::attrs::AttrSet;
use crate::table::Table;
use crate::tuple::Tuple;
use std::collections::HashSet;

/// The multiset projection `I[[X]]`.
pub fn project_multiset(table: &Table, x: AttrSet, name: impl Into<String>) -> Table {
    let (schema, _) = table.schema().project(x, name);
    let mut out = Table::new(schema);
    for t in table.rows() {
        out.push(t.project(x));
    }
    out
}

/// The set projection `I[X]`.
///
/// Duplicate elimination is by syntactic tuple identity (`⊥ = ⊥`), which
/// is how the paper counts e.g. the 105 distinct rows of the
/// `contact_draft_lookup` projection.
pub fn project_set(table: &Table, x: AttrSet, name: impl Into<String>) -> Table {
    let (schema, _) = table.schema().project(x, name);
    let mut out = Table::new(schema);
    let mut seen: HashSet<Tuple> = HashSet::with_capacity(table.len());
    for t in table.rows() {
        let p = t.project(x);
        if seen.insert(p.clone()) {
            out.push(p);
        }
    }
    out
}

/// The `X`-total sub-table `I_X`: the tuples of `I` that are `X`-total.
/// Lien's partial decomposition theorem for p-FDs (Section 3) only
/// applies to this part of an instance.
pub fn total_part(table: &Table, x: AttrSet) -> Table {
    let mut out = Table::with_schema(table.schema_ref());
    for t in table.rows() {
        if t.is_total_on(x) {
            out.push(t.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::table::TableBuilder;
    use crate::tuple;

    /// The purchase relation of Figure 1.
    fn purchase_fig1() -> Table {
        TableBuilder::new("purchase", ["order_id", "item", "catalog", "price"], &[])
            .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
            .row(tuple![5299401i64, "Fitbit Surge", "Brookstone", 240i64])
            .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
            .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
            .build()
    }

    #[test]
    fn figure2_decomposition_projections() {
        // Figure 2: purchase[oic] has 4 rows, purchase[icp] has 3 rows
        // (the two redundant 240s collapse to one).
        let i = purchase_fig1();
        let s = i.schema().clone();
        let oic = s.set(&["order_id", "item", "catalog"]);
        let icp = s.set(&["item", "catalog", "price"]);
        let p_oic = project_set(&i, oic, "purchase_oic");
        let p_icp = project_set(&i, icp, "purchase_icp");
        assert_eq!(p_oic.len(), 4);
        assert_eq!(p_icp.len(), 3);
        assert_eq!(p_icp.schema().column_names(), &["item", "catalog", "price"]);
    }

    #[test]
    fn multiset_projection_keeps_multiplicity() {
        let i = purchase_fig1();
        let ic = i.schema().set(&["item", "catalog"]);
        let m = project_multiset(&i, ic, "m");
        assert_eq!(m.len(), 4);
        // (Fitbit Surge, Amazon) appears twice.
        assert_eq!(m.distinct_count(), 3);
        let s = project_set(&i, ic, "s");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn projection_of_nulls_keeps_null_identity() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![null, 1i64])
            .row(tuple![null, 1i64])
            .build();
        let p = project_set(&t, t.schema().set(&["a", "b"]), "p");
        // Two syntactically identical null-bearing rows collapse.
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn total_part_filters_null_rows() {
        let t = TableBuilder::new("r", ["a", "b"], &[])
            .row(tuple![1i64, null])
            .row(tuple![null, 2i64])
            .row(tuple![3i64, 4i64])
            .build();
        let a = t.schema().set(&["a"]);
        let part = total_part(&t, a);
        assert_eq!(part.len(), 2);
        assert!(part.rows().iter().all(|r| r.is_total_on(a)));
    }

    #[test]
    fn projection_schema_is_reindexed() {
        let schema = TableSchema::new("r", ["a", "b", "c"], &["c"]);
        let t = Table::from_rows(schema, [tuple![1i64, 2i64, 3i64]]);
        let bc = t.schema().set(&["b", "c"]);
        let p = project_multiset(&t, bc, "p");
        assert_eq!(p.schema().column_names(), &["b", "c"]);
        assert_eq!(p.schema().nfs(), p.schema().set(&["c"]));
        assert_eq!(p.rows()[0], tuple![2i64, 3i64]);
    }
}
