//! Constraint satisfaction on instances (Definition 1 and the key
//! notions of Section 2).
//!
//! Checking is exact and uses a hash-grouping fast path for the
//! `X`-total part of the instance (strong similarity and equality are
//! transitive there), falling back to pairwise comparison only for
//! tuples carrying a null marker in the LHS — the part where weak
//! similarity loses transitivity.

use crate::attrs::AttrSet;
use crate::constraint::{Constraint, Fd, Key, Modality, Sigma};
use crate::similarity::weakly_similar;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// A witness that an instance violates a constraint: the indices of two
/// rows (possibly with equal values — tables are multisets, so two rows
/// are distinct tuples regardless of their values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ViolatingPair {
    /// Index of the first row.
    pub row_a: usize,
    /// Index of the second row.
    pub row_b: usize,
}

fn key_of(table: &Table, row: usize, x: AttrSet) -> Vec<Value> {
    let t = &table.rows()[row];
    x.iter().map(|a| t.get(a).clone()).collect()
}

/// Groups the `X`-total rows of `table` by their `X`-projection
/// (syntactic equality; on `X`-total rows this equals strong similarity).
/// Returns the groups and the list of rows that are not `X`-total.
fn split_on(table: &Table, x: AttrSet) -> (HashMap<Vec<Value>, Vec<usize>>, Vec<usize>) {
    let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    let mut nulls: Vec<usize> = Vec::new();
    for (i, t) in table.rows().iter().enumerate() {
        if t.is_total_on(x) {
            groups.entry(key_of(table, i, x)).or_default().push(i);
        } else {
            nulls.push(i);
        }
    }
    (groups, nulls)
}

/// Finds a pair violating the FD, if any.
///
/// `X →_s Y` is violated by a pair strongly similar on `X` with unequal
/// `Y`; `X →_w Y` by a pair weakly similar on `X` with unequal `Y`.
pub fn fd_violation(table: &Table, fd: &Fd) -> Option<ViolatingPair> {
    let (groups, nulls) = split_on(table, fd.lhs);
    sqlnf_obs::count!("model.satisfy.fastpath_rows", table.len() - nulls.len());

    // Pairs within an X-total group are strongly (hence weakly) similar
    // on X: all group members must agree on Y.
    for rows in groups.values() {
        if rows.len() < 2 {
            continue;
        }
        let first = rows[0];
        for &r in &rows[1..] {
            sqlnf_obs::count!("model.satisfy.pair_comparisons");
            if !table.rows()[first].eq_on(&table.rows()[r], fd.rhs) {
                return Some(ViolatingPair {
                    row_a: first,
                    row_b: r,
                });
            }
        }
    }

    if fd.modality == Modality::Certain {
        // Rows with a null in X are weakly similar to anything matching
        // their non-null part; compare them against every row.
        for &i in &nulls {
            for j in 0..table.len() {
                if i == j {
                    continue;
                }
                sqlnf_obs::count!("model.satisfy.pair_comparisons");
                let (t, u) = (&table.rows()[i], &table.rows()[j]);
                if weakly_similar(t, u, fd.lhs) && !t.eq_on(u, fd.rhs) {
                    return Some(ViolatingPair { row_a: i, row_b: j });
                }
            }
        }
    }
    // For possible FDs, rows with a null in X are strongly similar to
    // nothing, so they cannot participate in a violation.
    None
}

/// Whether the instance satisfies the FD.
pub fn satisfies_fd(table: &Table, fd: &Fd) -> bool {
    fd_violation(table, fd).is_none()
}

/// Finds a pair witnessing that **no** possible world of the instance
/// satisfies `X → Y` classically — the violation notion of *weak*
/// satisfaction (Levene/Loizou; Badia & Lemire's FDs with null
/// markers).
///
/// A completion is free to hand every `X`-incomplete row fresh values
/// (isolating it in its own group) and to fill a `⊥` on the RHS with
/// whatever its group agreed on, so the only unfixable conflict is two
/// `X`-total rows equal on `X` that carry *distinct non-null* values on
/// some attribute of `Y`. Equivalently: weak satisfaction is closed
/// under sub-instances and every violation is witnessed by a 2-row
/// sub-instance, which is what lets the 2-tuple implication oracle of
/// `sqlnf-core` cover weak FDs too.
pub fn weak_fd_violation(table: &Table, lhs: AttrSet, rhs: AttrSet) -> Option<ViolatingPair> {
    let (groups, _nulls) = split_on(table, lhs);
    for rows in groups.values() {
        if rows.len() < 2 {
            continue;
        }
        // First row carrying a non-null value per RHS attribute; a
        // later row disagreeing non-null is the witness. Tracking the
        // group head instead would be unsound (its `⊥` masks later
        // conflicts).
        for a in rhs {
            let mut seen: Option<usize> = None;
            for &r in rows {
                sqlnf_obs::count!("model.satisfy.pair_comparisons");
                let v = table.rows()[r].get(a);
                if matches!(v, Value::Null) {
                    continue;
                }
                match seen {
                    None => seen = Some(r),
                    Some(first) if table.rows()[first].get(a) != v => {
                        return Some(ViolatingPair {
                            row_a: first,
                            row_b: r,
                        });
                    }
                    Some(_) => {}
                }
            }
        }
    }
    None
}

/// Whether *some* possible world of the instance satisfies `X → Y`
/// classically (weak FD satisfaction). See [`weak_fd_violation`].
pub fn satisfies_weak_fd(table: &Table, lhs: AttrSet, rhs: AttrSet) -> bool {
    weak_fd_violation(table, lhs, rhs).is_none()
}

/// Finds a pair violating the key, if any.
///
/// `p⟨X⟩` is violated by two rows strongly similar on `X`; `c⟨X⟩` by two
/// rows weakly similar on `X`. Rows are distinct by *identity*, so two
/// duplicate tuples violate both.
pub fn key_violation(table: &Table, key: &Key) -> Option<ViolatingPair> {
    let (groups, nulls) = split_on(table, key.attrs);
    sqlnf_obs::count!("model.satisfy.fastpath_rows", table.len() - nulls.len());

    for rows in groups.values() {
        if rows.len() >= 2 {
            return Some(ViolatingPair {
                row_a: rows[0],
                row_b: rows[1],
            });
        }
    }

    if key.modality == Modality::Certain {
        for &i in &nulls {
            for j in 0..table.len() {
                if i == j {
                    continue;
                }
                sqlnf_obs::count!("model.satisfy.pair_comparisons");
                if weakly_similar(&table.rows()[i], &table.rows()[j], key.attrs) {
                    return Some(ViolatingPair { row_a: i, row_b: j });
                }
            }
        }
    }
    None
}

/// Whether the instance satisfies the key.
pub fn satisfies_key(table: &Table, key: &Key) -> bool {
    key_violation(table, key).is_none()
}

/// Whether the instance satisfies a constraint.
pub fn satisfies(table: &Table, c: &Constraint) -> bool {
    match c {
        Constraint::Fd(fd) => satisfies_fd(table, fd),
        Constraint::Key(k) => satisfies_key(table, k),
    }
}

/// Whether the instance satisfies every constraint of Σ *and* its NFS.
/// This is the paper's "table over `(T, T_S, Σ)`".
pub fn satisfies_all(table: &Table, sigma: &Sigma) -> bool {
    table.satisfies_nfs() && sigma.iter().all(|c| satisfies(table, &c))
}

/// Every constraint of Σ the instance violates (NFS violations are
/// reported via [`Table::satisfies_nfs`]).
pub fn violations(table: &Table, sigma: &Sigma) -> Vec<Constraint> {
    sigma.iter().filter(|c| !satisfies(table, c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::tuple;

    /// Figure 1's relation: satisfies item,catalog → price, violates the
    /// key {item, catalog}.
    fn purchase_fig1() -> Table {
        TableBuilder::new("purchase", ["order_id", "item", "catalog", "price"], &[])
            .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
            .row(tuple![5299401i64, "Fitbit Surge", "Brookstone", 240i64])
            .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
            .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
            .build()
    }

    /// The top instance of Figure 5 (catalog nullable).
    fn purchase_fig5() -> Table {
        TableBuilder::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "item", "price"],
        )
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, "Fitbit Surge", null, 240i64])
        .row(tuple![7485113i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![7485113i64, "Dora Doll", "Kingtoys", 25i64])
        .build()
    }

    #[test]
    fn fig1_fd_holds_key_fails() {
        let t = purchase_fig1();
        let s = t.schema().clone();
        let ic = s.set(&["item", "catalog"]);
        let p = s.set(&["price"]);
        assert!(satisfies_fd(&t, &Fd::possible(ic, p)));
        assert!(satisfies_fd(&t, &Fd::certain(ic, p)));
        assert!(!satisfies_key(&t, &Key::possible(ic)));
        assert!(!satisfies_key(&t, &Key::certain(ic)));
    }

    #[test]
    fn fig3_every_fd_no_key() {
        // Figure 3: two identical total tuples satisfy every FD but
        // violate every key.
        let t = TableBuilder::new("fig3", ["item", "catalog", "price"], &[])
            .row(tuple!["Fitbit Surge", "Amazon", 240i64])
            .row(tuple!["Fitbit Surge", "Amazon", 240i64])
            .build();
        let all = t.schema().attrs();
        for lhs in all.subsets() {
            for rhs in all.subsets() {
                assert!(satisfies_fd(&t, &Fd::possible(lhs, rhs)));
                assert!(satisfies_fd(&t, &Fd::certain(lhs, rhs)));
            }
            assert!(!satisfies_key(&t, &Key::possible(lhs)));
            assert!(!satisfies_key(&t, &Key::certain(lhs)));
        }
    }

    #[test]
    fn fig5_cfd_holds_pfd_holds() {
        let t = purchase_fig5();
        let s = t.schema().clone();
        let ic = s.set(&["item", "catalog"]);
        let p = s.set(&["price"]);
        // Both the p-FD and the c-FD item,catalog → price hold.
        assert!(satisfies_fd(&t, &Fd::possible(ic, p)));
        assert!(satisfies_fd(&t, &Fd::certain(ic, p)));
        // But item,catalog →_w item,catalog,price does NOT hold: rows 1
        // and 2 are weakly similar on ic yet differ on catalog.
        let icp = s.set(&["item", "catalog", "price"]);
        assert!(!satisfies_fd(&t, &Fd::certain(ic, icp)));
    }

    #[test]
    fn fig5_projection_keys() {
        // On I[icp] of Figure 5, p<item,catalog> holds but
        // c<item,catalog> does not.
        let t = purchase_fig5();
        let s = t.schema().clone();
        let icp = s.set(&["item", "catalog", "price"]);
        let proj = crate::project::project_set(&t, icp, "icp");
        let ps = proj.schema().clone();
        let ic = ps.set(&["item", "catalog"]);
        assert!(satisfies_key(&proj, &Key::possible(ic)));
        assert!(!satisfies_key(&proj, &Key::certain(ic)));
    }

    #[test]
    fn example2_matrix() {
        // The satisfaction matrix of Example 2 for possible and certain
        // FDs.
        let t = TableBuilder::new("emp", ["e", "d", "m", "s"], &[])
            .row(tuple!["Turing", "CS", "von Neumann", null])
            .row(tuple!["Turing", null, "Goedel", null])
            .build();
        let s = t.schema().clone();
        let f = |l: &[&str], r: &[&str], m: Modality| Fd {
            lhs: s.set(l),
            rhs: s.set(r),
            modality: m,
        };
        use Modality::*;
        assert!(!satisfies_fd(&t, &f(&["e"], &["d"], Possible)));
        assert!(!satisfies_fd(&t, &f(&["e"], &["d"], Certain)));
        assert!(!satisfies_fd(&t, &f(&["e"], &["m"], Possible)));
        assert!(!satisfies_fd(&t, &f(&["e"], &["m"], Certain)));
        assert!(satisfies_fd(&t, &f(&["e"], &["s"], Possible)));
        assert!(satisfies_fd(&t, &f(&["e"], &["s"], Certain)));
        assert!(satisfies_fd(&t, &f(&["d"], &["d"], Possible)));
        assert!(!satisfies_fd(&t, &f(&["d"], &["d"], Certain)));
        assert!(satisfies_fd(&t, &f(&["d"], &["m"], Possible)));
        assert!(!satisfies_fd(&t, &f(&["d"], &["m"], Certain)));
        assert!(satisfies_fd(&t, &f(&["m"], &["e"], Possible)));
        assert!(satisfies_fd(&t, &f(&["m"], &["e"], Certain)));
        assert!(satisfies_fd(&t, &f(&["m"], &["d"], Possible)));
        assert!(satisfies_fd(&t, &f(&["m"], &["d"], Certain)));
    }

    #[test]
    fn example1_ckey_vs_cfd() {
        // Example 1: the c-FD nd →_w d is violated (row 3 is weakly
        // similar on nd to rows 1 and 2 but disagrees on d with them),
        // while a c-key c<nd> would also forbid the two appointments.
        let t = TableBuilder::new("emp", ["n", "d", "a"], &["n", "a"])
            .row(tuple!["John Smith", "19/05/1969", "DB Admin"])
            .row(tuple!["John Smith", "01/04/1971", "Finance Manager"])
            .row(tuple!["John Smith", null, "Programmer"])
            .row(tuple!["James Brown", null, "Programmer"])
            .build();
        let s = t.schema().clone();
        let nd = s.set(&["n", "d"]);
        let d = s.set(&["d"]);
        assert!(!satisfies_fd(&t, &Fd::certain(nd, d)));
        // After assigning a dob to row 3 that matches row 1's, the c-FD
        // holds while c<nd> is still violated (rows 1 and 3 agree on nd).
        let mut fixed = t.clone();
        fixed.set_value(2, s.a("d"), Value::str("19/05/1969"));
        assert!(satisfies_fd(&fixed, &Fd::certain(nd, d)));
        assert!(!satisfies_key(&fixed, &Key::certain(nd)));
    }

    #[test]
    fn violation_pair_indices_are_real() {
        let t = purchase_fig5();
        let s = t.schema().clone();
        let ic = s.set(&["item", "catalog"]);
        let icp = s.set(&["item", "catalog", "price"]);
        let v = fd_violation(&t, &Fd::certain(ic, icp)).expect("violated");
        let (a, b) = (&t.rows()[v.row_a], &t.rows()[v.row_b]);
        assert!(weakly_similar(a, b, ic));
        assert!(!a.eq_on(b, icp));
    }

    #[test]
    fn section4_counterexample_instance() {
        // The instance at the end of Section 4.1 violates oi →_w p while
        // satisfying Σ = {oi →_s c, ic →_w p} with T_S = ocp.
        let t = TableBuilder::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "catalog", "price"],
        )
        .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
        .row(tuple![5299401i64, null, "Kingstoy", 25i64])
        .build();
        let s = t.schema().clone();
        let sigma = Sigma::new()
            .with(Fd::possible(
                s.set(&["order_id", "item"]),
                s.set(&["catalog"]),
            ))
            .with(Fd::certain(s.set(&["item", "catalog"]), s.set(&["price"])));
        assert!(satisfies_all(&t, &sigma));
        assert!(!satisfies_fd(
            &t,
            &Fd::certain(s.set(&["order_id", "item"]), s.set(&["price"]))
        ));
    }

    #[test]
    fn empty_and_singleton_tables_satisfy_everything() {
        let schema = crate::schema::TableSchema::new("r", ["a", "b"], &[]);
        let empty = Table::new(schema.clone());
        let single = Table::from_rows(schema, [tuple![1i64, null]]);
        let all = single.schema().attrs();
        for t in [&empty, &single] {
            for x in all.subsets() {
                assert!(satisfies_key(t, &Key::possible(x)));
                assert!(satisfies_key(t, &Key::certain(x)));
                for y in all.subsets() {
                    assert!(satisfies_fd(t, &Fd::possible(x, y)));
                    assert!(satisfies_fd(t, &Fd::certain(x, y)));
                }
            }
        }
    }

    #[test]
    fn empty_lhs_fd_forces_constant_column() {
        let t = TableBuilder::new("r", ["a"], &[])
            .row(tuple![1i64])
            .row(tuple![2i64])
            .build();
        let a = t.schema().set(&["a"]);
        // Every pair is (weakly and strongly) similar on ∅.
        assert!(!satisfies_fd(&t, &Fd::possible(AttrSet::EMPTY, a)));
        assert!(!satisfies_fd(&t, &Fd::certain(AttrSet::EMPTY, a)));
        assert!(!satisfies_key(&t, &Key::possible(AttrSet::EMPTY)));
    }

    #[test]
    fn sigma_helpers() {
        let t = purchase_fig1();
        let s = t.schema().clone();
        let ic = s.set(&["item", "catalog"]);
        let sigma = Sigma::new()
            .with(Fd::certain(ic, s.set(&["price"])))
            .with(Key::possible(ic));
        assert!(!satisfies_all(&t, &sigma));
        let v = violations(&t, &sigma);
        assert_eq!(v, vec![Constraint::Key(Key::possible(ic))]);
    }
}
