//! Table schemata `(T, T_S)`: a finite attribute set together with a
//! null-free subschema (the SQL `NOT NULL` columns).

use crate::attrs::{Attr, AttrSet, MAX_ATTRS};
use std::fmt;
use std::sync::Arc;

/// A table schema `(T, T_S)`.
///
/// `T` is the full attribute set (all columns, indices `0..arity`), and
/// `T_S ⊆ T` is the *null-free subschema* (NFS): the set of attributes
/// declared `NOT NULL`. A table over `(T, T_S)` must be `T_S`-total.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    name: String,
    columns: Vec<String>,
    nfs: AttrSet,
}

impl TableSchema {
    /// Creates a schema from a table name, column names, and the names of
    /// the `NOT NULL` columns.
    ///
    /// # Panics
    /// Panics on more than [`MAX_ATTRS`] columns, duplicate column names,
    /// an empty column list, or an NFS column that is not a column.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
        not_null: &[&str],
    ) -> Self {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        assert!(!columns.is_empty(), "a table schema must be non-empty");
        assert!(
            columns.len() <= MAX_ATTRS,
            "at most {MAX_ATTRS} columns are supported"
        );
        for (i, c) in columns.iter().enumerate() {
            assert!(!columns[..i].contains(c), "duplicate column name {c:?}");
        }
        let mut nfs = AttrSet::EMPTY;
        for nn in not_null {
            let idx = columns
                .iter()
                .position(|c| c == nn)
                .unwrap_or_else(|| panic!("NOT NULL column {nn:?} is not a column"));
            nfs.insert(Attr::from(idx));
        }
        TableSchema {
            name: name.into(),
            columns,
            nfs,
        }
    }

    /// Creates a schema in which every column is `NOT NULL` — the
    /// idealized relational special case of Section 1.
    pub fn total<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        let mut s = TableSchema::new(name, columns, &[]);
        s.nfs = s.attrs();
        s
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The full attribute set `T`.
    pub fn attrs(&self) -> AttrSet {
        AttrSet::first_n(self.columns.len())
    }

    /// The null-free subschema `T_S`.
    pub fn nfs(&self) -> AttrSet {
        self.nfs
    }

    /// Replaces the NFS (used by generators and the decomposition code).
    pub fn with_nfs(mut self, nfs: AttrSet) -> Self {
        assert!(nfs.is_subset(self.attrs()), "NFS must be a subset of T");
        self.nfs = nfs;
        self
    }

    /// Renames the table.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Whether attribute `a` is declared `NOT NULL`.
    pub fn is_not_null(&self, a: Attr) -> bool {
        self.nfs.contains(a)
    }

    /// Column name of attribute `a`.
    pub fn column_name(&self, a: Attr) -> &str {
        &self.columns[a.index()]
    }

    /// All column names in order.
    pub fn column_names(&self) -> &[String] {
        &self.columns
    }

    /// Resolves a column name to its attribute, if present.
    pub fn attr(&self, column: &str) -> Option<Attr> {
        self.columns
            .iter()
            .position(|c| c == column)
            .map(Attr::from)
    }

    /// Resolves a column name, panicking with a helpful message when the
    /// column does not exist. Intended for tests and examples.
    pub fn a(&self, column: &str) -> Attr {
        self.attr(column)
            .unwrap_or_else(|| panic!("no column {column:?} in table {:?}", self.name))
    }

    /// Resolves several column names into an [`AttrSet`].
    pub fn set(&self, columns: &[&str]) -> AttrSet {
        columns.iter().map(|c| self.a(c)).collect()
    }

    /// Formats an attribute set using column names, e.g. `{item,catalog}`.
    pub fn display_set(&self, x: AttrSet) -> String {
        let mut out = String::from("{");
        for (i, a) in x.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(self.column_name(a));
        }
        out.push('}');
        out
    }

    /// The projected schema over the attribute set `x`: keeps the columns
    /// of `x` (in ascending original order) and intersects the NFS, as in
    /// the paper's sub-schema construction `(X, X ∩ T_S, Σ[X])`.
    ///
    /// Returns the projected schema together with the map from new
    /// attribute indices to old ones.
    pub fn project(&self, x: AttrSet, name: impl Into<String>) -> (TableSchema, Vec<Attr>) {
        assert!(x.is_subset(self.attrs()), "projection outside schema");
        assert!(!x.is_empty(), "a table schema must be non-empty");
        let old: Vec<Attr> = x.iter().collect();
        let columns: Vec<String> = old
            .iter()
            .map(|&a| self.columns[a.index()].clone())
            .collect();
        let mut nfs = AttrSet::EMPTY;
        for (new_ix, &a) in old.iter().enumerate() {
            if self.nfs.contains(a) {
                nfs.insert(Attr::from(new_ix));
            }
        }
        (
            TableSchema {
                name: name.into(),
                columns,
                nfs,
            },
            old,
        )
    }

    /// Translates an attribute set of this schema into the projected
    /// schema produced by [`TableSchema::project`] for `x`. Attributes
    /// outside `x` are dropped.
    pub fn translate_into_projection(&self, x: AttrSet, s: AttrSet) -> AttrSet {
        let mut out = AttrSet::EMPTY;
        for (new_ix, a) in x.iter().enumerate() {
            if s.contains(a) {
                out.insert(Attr::from(new_ix));
            }
        }
        out
    }
}

impl fmt::Display for TableSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
            if self.nfs.contains(Attr::from(i)) {
                write!(f, " NOT NULL")?;
            }
        }
        write!(f, ")")
    }
}

/// Shared schema handle used by tables; cloning is cheap.
pub type SchemaRef = Arc<TableSchema>;

#[cfg(test)]
mod tests {
    use super::*;

    fn purchase() -> TableSchema {
        // The running example: PURCHASE = {order_id, item, catalog, price}
        // with T_S = {order_id, catalog, price}.
        TableSchema::new(
            "purchase",
            ["order_id", "item", "catalog", "price"],
            &["order_id", "catalog", "price"],
        )
    }

    #[test]
    fn basic_accessors() {
        let s = purchase();
        assert_eq!(s.name(), "purchase");
        assert_eq!(s.arity(), 4);
        assert_eq!(s.attrs().len(), 4);
        assert_eq!(s.nfs(), s.set(&["order_id", "catalog", "price"]));
        assert!(s.is_not_null(s.a("price")));
        assert!(!s.is_not_null(s.a("item")));
        assert_eq!(s.column_name(Attr(1)), "item");
        assert_eq!(s.attr("nope"), None);
    }

    #[test]
    fn total_schema_has_full_nfs() {
        let s = TableSchema::total("r", ["a", "b"]);
        assert_eq!(s.nfs(), s.attrs());
    }

    #[test]
    fn display_set_uses_names() {
        let s = purchase();
        assert_eq!(s.display_set(s.set(&["item", "catalog"])), "{item,catalog}");
        assert_eq!(s.display_set(AttrSet::EMPTY), "{}");
    }

    #[test]
    fn projection_remaps_attrs_and_nfs() {
        let s = purchase();
        let icp = s.set(&["item", "catalog", "price"]);
        let (p, old) = s.project(icp, "purchase_icp");
        assert_eq!(p.column_names(), &["item", "catalog", "price"]);
        assert_eq!(old, vec![Attr(1), Attr(2), Attr(3)]);
        // item was nullable, catalog and price NOT NULL.
        assert_eq!(p.nfs(), p.set(&["catalog", "price"]));
        // Translation: {catalog} in the old schema maps to index 1 here.
        let t = s.translate_into_projection(icp, s.set(&["catalog", "order_id"]));
        assert_eq!(t, p.set(&["catalog"]));
    }

    #[test]
    fn schema_display() {
        let s = TableSchema::new("r", ["a", "b"], &["a"]);
        assert_eq!(s.to_string(), "r(a NOT NULL, b)");
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_columns_rejected() {
        let _ = TableSchema::new("r", ["a", "a"], &[]);
    }

    #[test]
    #[should_panic(expected = "is not a column")]
    fn unknown_not_null_rejected() {
        let _ = TableSchema::new("r", ["a"], &["b"]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_schema_rejected() {
        let _ = TableSchema::new("r", Vec::<String>::new(), &[]);
    }
}
