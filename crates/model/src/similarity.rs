//! Weak and strong similarity (Section 2 of the paper).
//!
//! For tuples `t, t'` over `T` and `X ⊆ T`:
//!
//! * `t[X] ∼_w t'[X]` (*weak similarity*) iff for every `A ∈ X`,
//!   `t[A] = t'[A]` or `t[A] = ⊥` or `t'[A] = ⊥`;
//! * `t[X] ∼_s t'[X]` (*strong similarity*) iff for every `A ∈ X`,
//!   `t[A] = t'[A] ≠ ⊥`.
//!
//! On `X`-total tuples the two coincide with classical agreement. Note
//! that weak similarity is reflexive and symmetric but **not**
//! transitive, which is the combinatorial root of most of the paper's
//! departures from relational theory.

use crate::attrs::{Attr, AttrSet};
use crate::tuple::Tuple;
use crate::value::Value;

/// Per-attribute agreement classification of a pair of cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Agreement {
    /// Both non-null and equal: contributes to strong and weak similarity
    /// and to equality.
    EqNonNull,
    /// Both non-null and distinct: breaks everything.
    NeqNonNull,
    /// Exactly one side is `⊥`: weakly similar, not equal.
    OneNull,
    /// Both sides are `⊥`: weakly similar and (syntactically) equal, but
    /// not strongly similar.
    BothNull,
}

impl Agreement {
    /// Classifies a pair of cell values.
    #[inline]
    pub fn of(a: &Value, b: &Value) -> Agreement {
        match (a.is_null(), b.is_null()) {
            (true, true) => Agreement::BothNull,
            (true, false) | (false, true) => Agreement::OneNull,
            (false, false) => {
                if a == b {
                    Agreement::EqNonNull
                } else {
                    Agreement::NeqNonNull
                }
            }
        }
    }

    /// Whether this agreement admits weak similarity on the attribute.
    #[inline]
    pub fn weakly_similar(self) -> bool {
        self != Agreement::NeqNonNull
    }

    /// Whether this agreement admits strong similarity on the attribute.
    #[inline]
    pub fn strongly_similar(self) -> bool {
        self == Agreement::EqNonNull
    }

    /// Whether this agreement is syntactic equality (`⊥ = ⊥`).
    #[inline]
    pub fn equal(self) -> bool {
        matches!(self, Agreement::EqNonNull | Agreement::BothNull)
    }
}

/// `t[X] ∼_w t'[X]`.
pub fn weakly_similar(t: &Tuple, u: &Tuple, x: AttrSet) -> bool {
    x.iter()
        .all(|a| Agreement::of(t.get(a), u.get(a)).weakly_similar())
}

/// `t[X] ∼_s t'[X]`.
pub fn strongly_similar(t: &Tuple, u: &Tuple, x: AttrSet) -> bool {
    x.iter()
        .all(|a| Agreement::of(t.get(a), u.get(a)).strongly_similar())
}

/// Syntactic equality `t[X] = t'[X]` (with `⊥ = ⊥`); same as
/// [`Tuple::eq_on`], provided here for symmetry.
pub fn equal_on(t: &Tuple, u: &Tuple, x: AttrSet) -> bool {
    t.eq_on(u, x)
}

/// The full agreement profile of a pair: for each attribute of the
/// schema, its [`Agreement`]. This is the finite abstraction on which
/// the 2-tuple implication oracle of `sqlnf-core` is built.
pub fn agreement_profile(t: &Tuple, u: &Tuple) -> Vec<Agreement> {
    assert_eq!(t.arity(), u.arity());
    (0..t.arity())
        .map(|i| {
            let a = Attr::from(i);
            Agreement::of(t.get(a), u.get(a))
        })
        .collect()
}

/// The set of attributes on which the pair is weakly similar.
pub fn weak_agree_set(t: &Tuple, u: &Tuple) -> AttrSet {
    (0..t.arity())
        .map(Attr::from)
        .filter(|&a| Agreement::of(t.get(a), u.get(a)).weakly_similar())
        .collect()
}

/// The set of attributes on which the pair is strongly similar.
pub fn strong_agree_set(t: &Tuple, u: &Tuple) -> AttrSet {
    (0..t.arity())
        .map(Attr::from)
        .filter(|&a| Agreement::of(t.get(a), u.get(a)).strongly_similar())
        .collect()
}

/// The set of attributes on which the pair is syntactically equal.
pub fn equal_set(t: &Tuple, u: &Tuple) -> AttrSet {
    (0..t.arity())
        .map(Attr::from)
        .filter(|&a| Agreement::of(t.get(a), u.get(a)).equal())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn agreement_classification() {
        use Agreement::*;
        assert_eq!(Agreement::of(&Value::Int(1), &Value::Int(1)), EqNonNull);
        assert_eq!(Agreement::of(&Value::Int(1), &Value::Int(2)), NeqNonNull);
        assert_eq!(Agreement::of(&Value::Null, &Value::Int(1)), OneNull);
        assert_eq!(Agreement::of(&Value::Int(1), &Value::Null), OneNull);
        assert_eq!(Agreement::of(&Value::Null, &Value::Null), BothNull);
    }

    #[test]
    fn agreement_predicates() {
        use Agreement::*;
        assert!(EqNonNull.weakly_similar() && EqNonNull.strongly_similar() && EqNonNull.equal());
        assert!(
            !NeqNonNull.weakly_similar() && !NeqNonNull.strongly_similar() && !NeqNonNull.equal()
        );
        assert!(OneNull.weakly_similar() && !OneNull.strongly_similar() && !OneNull.equal());
        assert!(BothNull.weakly_similar() && !BothNull.strongly_similar() && BothNull.equal());
    }

    #[test]
    fn similarity_on_sets() {
        // Figure 5's first two tuples: weakly similar on {item,catalog},
        // not strongly.
        let t1 = tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64];
        let t2 = tuple![5299401i64, "Fitbit Surge", null, 240i64];
        let ic = AttrSet::from_indices([1, 2]);
        assert!(weakly_similar(&t1, &t2, ic));
        assert!(!strongly_similar(&t1, &t2, ic));
        assert!(strongly_similar(&t1, &t2, AttrSet::from_indices([1])));
        // On the empty set everything is similar.
        assert!(weakly_similar(&t1, &t2, AttrSet::EMPTY));
        assert!(strongly_similar(&t1, &t2, AttrSet::EMPTY));
    }

    #[test]
    fn weak_similarity_is_not_transitive() {
        let a = tuple!["x"];
        let b = tuple![null];
        let c = tuple!["y"];
        let all = AttrSet::from_indices([0]);
        assert!(weakly_similar(&a, &b, all));
        assert!(weakly_similar(&b, &c, all));
        assert!(!weakly_similar(&a, &c, all));
    }

    #[test]
    fn agree_sets() {
        let t = tuple![1i64, null, "a", null];
        let u = tuple![1i64, 2i64, "b", null];
        assert_eq!(weak_agree_set(&t, &u), AttrSet::from_indices([0, 1, 3]));
        assert_eq!(strong_agree_set(&t, &u), AttrSet::from_indices([0]));
        assert_eq!(equal_set(&t, &u), AttrSet::from_indices([0, 3]));
        assert_eq!(
            agreement_profile(&t, &u),
            vec![
                Agreement::EqNonNull,
                Agreement::OneNull,
                Agreement::NeqNonNull,
                Agreement::BothNull
            ]
        );
    }
}
