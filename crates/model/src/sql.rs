//! A small SQL front-end for schema design: `CREATE TABLE` with
//! possible/certain key and FD constraints, and `INSERT INTO … VALUES`.
//!
//! The dialect extends SQL DDL with the paper's constraint language:
//!
//! ```sql
//! CREATE TABLE purchase (
//!     order_id INT NOT NULL,
//!     item     TEXT NOT NULL,
//!     catalog  TEXT,
//!     price    INT NOT NULL,
//!     CONSTRAINT line CERTAIN FD (order_id, item, catalog)
//!                               -> (order_id, item, catalog, price),
//!     CONSTRAINT uniq POSSIBLE KEY (order_id, item, catalog)
//! );
//!
//! INSERT INTO purchase VALUES
//!     (5299401, 'Fitbit Surge', NULL, 240),
//!     (7485113, 'Dora Doll', 'Kingtoys', 25);
//! ```
//!
//! `render_create_table` emits the same dialect, so normalized designs
//! round-trip back into DDL.

use crate::attrs::AttrSet;
use crate::constraint::{Fd, Key, Modality, Sigma};
use crate::schema::TableSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (columns…, constraints…)`.
    CreateTable {
        /// The declared schema (columns + NOT NULL set).
        schema: TableSchema,
        /// The declared constraint set.
        sigma: Sigma,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table name.
        table: String,
        /// The tuples to insert.
        rows: Vec<Tuple>,
    },
}

/// Parse errors with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was noticed.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SQL parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    Punct(char),
    Arrow,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<(Tok, usize)>,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut l = Lexer {
        src,
        pos: 0,
        toks: Vec::new(),
    };
    let bytes = src.as_bytes();
    while l.pos < bytes.len() {
        let c = bytes[l.pos] as char;
        let start = l.pos;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                l.pos += 1;
            }
            '-' => {
                if bytes.get(l.pos + 1) == Some(&b'-') {
                    // -- line comment
                    while l.pos < bytes.len() && bytes[l.pos] != b'\n' {
                        l.pos += 1;
                    }
                } else if bytes.get(l.pos + 1) == Some(&b'>') {
                    l.toks.push((Tok::Arrow, start));
                    l.pos += 2;
                } else {
                    // negative number literal
                    l.pos += 1;
                    let ds = l.pos;
                    while l.pos < bytes.len() && bytes[l.pos].is_ascii_digit() {
                        l.pos += 1;
                    }
                    if ds == l.pos {
                        return Err(ParseError {
                            message: "expected digits after '-'".into(),
                            offset: start,
                        });
                    }
                    let n: i64 = l.src[ds..l.pos].parse().map_err(|_| ParseError {
                        message: "integer out of range".into(),
                        offset: start,
                    })?;
                    l.toks.push((Tok::Int(-n), start));
                }
            }
            '(' | ')' | ',' | ';' => {
                l.toks.push((Tok::Punct(c), start));
                l.pos += 1;
            }
            '\'' => {
                l.pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(l.pos) {
                        None => {
                            return Err(ParseError {
                                message: "unterminated string literal".into(),
                                offset: start,
                            })
                        }
                        Some(b'\'') => {
                            if bytes.get(l.pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                l.pos += 2;
                            } else {
                                l.pos += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            l.pos += 1;
                        }
                    }
                }
                l.toks.push((Tok::Str(s), start));
            }
            '0'..='9' => {
                while l.pos < bytes.len() && bytes[l.pos].is_ascii_digit() {
                    l.pos += 1;
                }
                let n: i64 = l.src[start..l.pos].parse().map_err(|_| ParseError {
                    message: "integer out of range".into(),
                    offset: start,
                })?;
                l.toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // quoted identifier
                    l.pos += 1;
                    let ids = l.pos;
                    while l.pos < bytes.len() && bytes[l.pos] != b'"' {
                        l.pos += 1;
                    }
                    if l.pos == bytes.len() {
                        return Err(ParseError {
                            message: "unterminated quoted identifier".into(),
                            offset: start,
                        });
                    }
                    l.toks
                        .push((Tok::Ident(l.src[ids..l.pos].to_owned()), start));
                    l.pos += 1;
                } else {
                    while l.pos < bytes.len()
                        && ((bytes[l.pos] as char).is_ascii_alphanumeric() || bytes[l.pos] == b'_')
                    {
                        l.pos += 1;
                    }
                    l.toks
                        .push((Tok::Ident(l.src[start..l.pos].to_owned()), start));
                }
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    offset: start,
                })
            }
        }
    }
    Ok(l.toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    at: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.at).map_or(self.end, |(_, o)| *o)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            offset: self.offset(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(t, _)| t.clone());
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            _ => {
                self.at = self.at.saturating_sub(1);
                Err(self.err(format!("expected {c:?}")))
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.at += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            _ => {
                self.at = self.at.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn column_list(&mut self, columns: &[String]) -> Result<AttrSet, ParseError> {
        self.expect_punct('(')?;
        let mut set = AttrSet::EMPTY;
        // Empty lists are legal: `FD () -> (a)` declares a constant
        // column, and `KEY ()` forbids a second row outright.
        if let Some(Tok::Punct(')')) = self.peek() {
            self.at += 1;
            return Ok(set);
        }
        loop {
            let name = self.ident()?;
            let ix = columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&name))
                .ok_or_else(|| self.err(format!("unknown column {name:?} in constraint")))?;
            set.insert(ix.into());
            match self.next() {
                Some(Tok::Punct(',')) => continue,
                Some(Tok::Punct(')')) => return Ok(set),
                _ => {
                    self.at = self.at.saturating_sub(1);
                    return Err(self.err("expected ',' or ')' in column list"));
                }
            }
        }
    }

    fn modality(&mut self) -> Result<Modality, ParseError> {
        if self.eat_keyword("POSSIBLE") {
            Ok(Modality::Possible)
        } else if self.eat_keyword("CERTAIN") {
            Ok(Modality::Certain)
        } else {
            Err(self.err("expected POSSIBLE or CERTAIN"))
        }
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_punct('(')?;

        let mut columns: Vec<String> = Vec::new();
        let mut not_null: Vec<String> = Vec::new();
        // Constraints are collected as raw pieces first; column indices
        // resolve once all columns are known (we require constraints to
        // follow all column declarations, as standard SQL does).
        let mut sigma = Sigma::new();
        loop {
            if self.eat_keyword("CONSTRAINT") {
                let _cname = self.ident()?;
                let modality = self.modality()?;
                if self.eat_keyword("KEY") {
                    let attrs = self.column_list(&columns)?;
                    sigma.add(Key { attrs, modality });
                } else if self.eat_keyword("FD") {
                    let lhs = self.column_list(&columns)?;
                    match self.next() {
                        Some(Tok::Arrow) => {}
                        _ => {
                            self.at = self.at.saturating_sub(1);
                            return Err(self.err("expected '->' in FD constraint"));
                        }
                    }
                    let rhs = self.column_list(&columns)?;
                    sigma.add(Fd { lhs, rhs, modality });
                } else {
                    return Err(self.err("expected KEY or FD after modality"));
                }
            } else {
                // Column declaration: name TYPE [NOT NULL]
                let col = self.ident()?;
                let ty = self.ident()?;
                let known = [
                    "INT", "INTEGER", "BIGINT", "TEXT", "VARCHAR", "BOOL", "BOOLEAN",
                ];
                if !known.iter().any(|k| k.eq_ignore_ascii_case(&ty)) {
                    return Err(self.err(format!("unknown type {ty:?}")));
                }
                if self.eat_keyword("NOT") {
                    self.expect_keyword("NULL")?;
                    not_null.push(col.clone());
                }
                if columns.iter().any(|c| c == &col) {
                    return Err(self.err(format!("duplicate column {col:?}")));
                }
                if columns.len() >= crate::attrs::MAX_ATTRS {
                    return Err(self.err("at most 128 columns are supported"));
                }
                columns.push(col);
            }
            match self.next() {
                Some(Tok::Punct(',')) => continue,
                Some(Tok::Punct(')')) => break,
                _ => {
                    self.at = self.at.saturating_sub(1);
                    return Err(self.err("expected ',' or ')' in CREATE TABLE"));
                }
            }
        }
        if columns.is_empty() {
            return Err(self.err("CREATE TABLE needs at least one column"));
        }
        let nn: Vec<&str> = not_null.iter().map(String::as_str).collect();
        let schema = TableSchema::new(name, columns, &nn);
        Ok(Statement::CreateTable { schema, sigma })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct('(')?;
            let mut vals: Vec<Value> = Vec::new();
            loop {
                let v = match self.next() {
                    Some(Tok::Int(i)) => Value::Int(i),
                    Some(Tok::Str(s)) => Value::Str(s),
                    Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("NULL") => Value::Null,
                    Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("TRUE") => Value::Bool(true),
                    Some(Tok::Ident(id)) if id.eq_ignore_ascii_case("FALSE") => Value::Bool(false),
                    _ => {
                        self.at = self.at.saturating_sub(1);
                        return Err(self.err("expected literal in VALUES"));
                    }
                };
                vals.push(v);
                match self.next() {
                    Some(Tok::Punct(',')) => continue,
                    Some(Tok::Punct(')')) => break,
                    _ => {
                        self.at = self.at.saturating_sub(1);
                        return Err(self.err("expected ',' or ')' in VALUES tuple"));
                    }
                }
            }
            rows.push(Tuple::new(vals));
            if let Some(Tok::Punct(',')) = self.peek() {
                self.at += 1;
                continue;
            }
            break;
        }
        Ok(Statement::Insert { table, rows })
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("CREATE") {
            self.create_table()
        } else if self.eat_keyword("INSERT") {
            self.insert()
        } else {
            Err(self.err("expected CREATE or INSERT"))
        }
    }
}

/// Parses a script of `;`-separated statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        at: 0,
        end: src.len(),
    };
    let mut out = Vec::new();
    loop {
        // Skip stray semicolons.
        while let Some(Tok::Punct(';')) = p.peek() {
            p.at += 1;
        }
        if p.peek().is_none() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if p.peek().is_some() {
            p.expect_punct(';')?;
        }
    }
}

/// Parses a single statement.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let stmts = parse_script(src)?;
    match <[Statement; 1]>::try_from(stmts) {
        Ok([s]) => Ok(s),
        Err(v) => Err(ParseError {
            message: format!("expected exactly one statement, found {}", v.len()),
            offset: 0,
        }),
    }
}

fn quote_ident(name: &str) -> String {
    if !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
    {
        name.to_owned()
    } else {
        format!("\"{name}\"")
    }
}

fn column_list_sql(schema: &TableSchema, set: AttrSet) -> String {
    let cols: Vec<String> = set
        .iter()
        .map(|a| quote_ident(schema.column_name(a)))
        .collect();
    format!("({})", cols.join(", "))
}

/// Renders a schema + constraint set back into the DDL dialect parsed
/// by [`parse_script`] (round-trip tested).
pub fn render_create_table(schema: &TableSchema, sigma: &Sigma) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (i, col) in schema.column_names().iter().enumerate() {
        let nn = if schema.nfs().contains(i.into()) {
            " NOT NULL"
        } else {
            ""
        };
        lines.push(format!("    {} TEXT{nn}", quote_ident(col)));
    }
    for (i, fd) in sigma.fds.iter().enumerate() {
        let m = match fd.modality {
            Modality::Possible => "POSSIBLE",
            Modality::Certain => "CERTAIN",
        };
        lines.push(format!(
            "    CONSTRAINT fd{i} {m} FD {} -> {}",
            column_list_sql(schema, fd.lhs),
            column_list_sql(schema, fd.rhs)
        ));
    }
    for (i, key) in sigma.keys.iter().enumerate() {
        let m = match key.modality {
            Modality::Possible => "POSSIBLE",
            Modality::Certain => "CERTAIN",
        };
        lines.push(format!(
            "    CONSTRAINT key{i} {m} KEY {}",
            column_list_sql(schema, key.attrs)
        ));
    }
    format!(
        "CREATE TABLE {} (\n{}\n);",
        quote_ident(schema.name()),
        lines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    const PURCHASE_DDL: &str = "
        CREATE TABLE purchase (
            order_id INT NOT NULL,
            item     TEXT NOT NULL,
            catalog  TEXT,
            price    INT NOT NULL,
            -- the paper's Example 3 rule:
            CONSTRAINT line CERTAIN FD (order_id, item, catalog)
                                      -> (order_id, item, catalog, price),
            CONSTRAINT uniq POSSIBLE KEY (order_id, item, catalog)
        );
    ";

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse_statement(PURCHASE_DDL).unwrap();
        let Statement::CreateTable { schema, sigma } = stmt else {
            panic!("expected CREATE TABLE");
        };
        assert_eq!(schema.name(), "purchase");
        assert_eq!(schema.arity(), 4);
        assert_eq!(schema.nfs(), schema.set(&["order_id", "item", "price"]));
        assert_eq!(sigma.fds.len(), 1);
        assert_eq!(sigma.keys.len(), 1);
        let fd = sigma.fds[0];
        assert_eq!(fd.modality, Modality::Certain);
        assert_eq!(fd.lhs, schema.set(&["order_id", "item", "catalog"]));
        assert!(fd.is_total_form());
        assert_eq!(sigma.keys[0].modality, Modality::Possible);
    }

    #[test]
    fn parses_insert_with_nulls_and_escapes() {
        let stmt = parse_statement(
            "INSERT INTO purchase VALUES \
             (5299401, 'Fitbit Surge', NULL, 240), \
             (-7, 'O''Brien', 'Kingtoys', 25);",
        )
        .unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!("expected INSERT");
        };
        assert_eq!(table, "purchase");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple![5299401i64, "Fitbit Surge", null, 240i64]);
        assert_eq!(rows[1], tuple![(-7i64), "O'Brien", "Kingtoys", 25i64]);
    }

    #[test]
    fn parses_scripts_and_booleans() {
        let script = "
            CREATE TABLE t (a BOOL, b INTEGER NOT NULL);
            INSERT INTO t VALUES (TRUE, 1), (FALSE, 2);
        ";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 2);
        let Statement::Insert { rows, .. } = &stmts[1] else {
            panic!()
        };
        assert_eq!(rows[0], tuple![true, 1i64]);
    }

    #[test]
    fn quoted_identifiers() {
        let stmt = parse_statement(
            "CREATE TABLE \"contact draft\" (\"first name\" TEXT, x INT, \
             CONSTRAINT c CERTAIN KEY (\"first name\"));",
        )
        .unwrap();
        let Statement::CreateTable { schema, sigma } = stmt else {
            panic!()
        };
        assert_eq!(schema.name(), "contact draft");
        assert_eq!(schema.column_name(0.into()), "first name");
        assert_eq!(sigma.keys[0].attrs, AttrSet::from_indices([0]));
    }

    #[test]
    fn error_reporting() {
        let cases: Vec<(&str, &str)> = vec![
            ("CREATE TABLE t ()", "expected identifier"),
            ("CREATE TABLE t (a FLOAT)", "unknown type"),
            (
                "CREATE TABLE t (a INT, CONSTRAINT c CERTAIN FD (b) -> (a))",
                "unknown column",
            ),
            (
                "CREATE TABLE t (a INT, CONSTRAINT c MAYBE KEY (a))",
                "POSSIBLE or CERTAIN",
            ),
            ("INSERT INTO t VALUES (1", "expected ',' or ')'"),
            ("DROP TABLE t", "expected CREATE or INSERT"),
            ("INSERT INTO t VALUES ('oops)", "unterminated string"),
        ];
        for (src, needle) in cases {
            let err = parse_script(src).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src:?} gave {err:?}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn render_round_trips() {
        let Statement::CreateTable { schema, sigma } = parse_statement(PURCHASE_DDL).unwrap()
        else {
            panic!()
        };
        let rendered = render_create_table(&schema, &sigma);
        let Statement::CreateTable {
            schema: schema2,
            sigma: sigma2,
        } = parse_statement(&rendered).unwrap()
        else {
            panic!()
        };
        assert_eq!(schema.column_names(), schema2.column_names());
        assert_eq!(schema.nfs(), schema2.nfs());
        assert_eq!(sigma, sigma2);
    }

    #[test]
    fn render_quotes_weird_names() {
        let schema = TableSchema::new("weird table", ["first name", "ok_col"], &["ok_col"]);
        let sigma = Sigma::new().with(Key::certain(AttrSet::from_indices([0])));
        let ddl = render_create_table(&schema, &sigma);
        assert!(ddl.contains("\"weird table\""));
        assert!(ddl.contains("\"first name\""));
        let reparsed = parse_statement(&ddl).unwrap();
        let Statement::CreateTable { schema: s2, .. } = reparsed else {
            panic!()
        };
        assert_eq!(s2.name(), "weird table");
    }
}
