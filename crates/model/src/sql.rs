//! A small SQL front-end for schema design: `CREATE TABLE` with
//! possible/certain key and FD constraints, and `INSERT INTO … VALUES`.
//!
//! The dialect extends SQL DDL with the paper's constraint language:
//!
//! ```sql
//! CREATE TABLE purchase (
//!     order_id INT NOT NULL,
//!     item     TEXT NOT NULL,
//!     catalog  TEXT,
//!     price    INT NOT NULL,
//!     CONSTRAINT line CERTAIN FD (order_id, item, catalog)
//!                               -> (order_id, item, catalog, price),
//!     CONSTRAINT uniq POSSIBLE KEY (order_id, item, catalog)
//! );
//!
//! INSERT INTO purchase VALUES
//!     (5299401, 'Fitbit Surge', NULL, 240),
//!     (7485113, 'Dora Doll', 'Kingtoys', 25);
//! ```
//!
//! `render_create_table` emits the same dialect, so normalized designs
//! round-trip back into DDL.

use crate::attrs::AttrSet;
use crate::constraint::{Fd, Key, Modality, Sigma};
use crate::schema::TableSchema;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (columns…, constraints…)`.
    CreateTable {
        /// The declared schema (columns + NOT NULL set).
        schema: TableSchema,
        /// The declared constraint set.
        sigma: Sigma,
    },
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert {
        /// Target table name.
        table: String,
        /// The tuples to insert.
        rows: Vec<Tuple>,
    },
}

/// Parse errors with position information: the byte offset, the
/// 1-based line and (byte) column derived from it, and the offending
/// token when one was in hand — enough for a caller (CLI message,
/// server error reply) to point at the exact spot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the error was noticed.
    pub offset: usize,
    /// 1-based line of the offset (0 until located against a source).
    pub line: usize,
    /// 1-based byte column of the offset within its line.
    pub col: usize,
    /// The token at the error position, rendered, if any remained.
    pub token: Option<String>,
}

impl ParseError {
    fn at(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: message.into(),
            offset,
            line: 0,
            col: 0,
            token: None,
        }
    }

    fn with_token(mut self, token: impl Into<String>) -> ParseError {
        self.token = Some(token.into());
        self
    }

    /// Fills `line`/`col` from the source the error's offset refers to.
    fn locate(mut self, src: &str) -> ParseError {
        let at = self.offset.min(src.len());
        let before = &src.as_bytes()[..at];
        self.line = 1 + before.iter().filter(|&&b| b == b'\n').count();
        let line_start = before
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |i| i + 1);
        self.col = at - line_start + 1;
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "SQL parse error at line {}, column {}: {}",
                self.line, self.col, self.message
            )?;
        } else {
            write!(
                f,
                "SQL parse error at byte {}: {}",
                self.offset, self.message
            )?;
        }
        match &self.token {
            Some(tok) => write!(f, " (near {tok:?})"),
            None => Ok(()),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// An identifier; the flag records whether it was `"quoted"`.
    /// Quoted identifiers never match keywords — `"constraint"` is a
    /// legal column name, `CONSTRAINT` starts a constraint clause.
    Ident(String, bool),
    Int(i64),
    Str(String),
    Punct(char),
    Arrow,
}

/// Renders a token the way it appeared in the input, for error messages.
fn render_tok(tok: &Tok) -> String {
    match tok {
        Tok::Ident(s, false) => s.clone(),
        Tok::Ident(s, true) => format!("\"{s}\""),
        Tok::Int(i) => i.to_string(),
        Tok::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Tok::Punct(c) => c.to_string(),
        Tok::Arrow => "->".to_owned(),
    }
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    toks: Vec<(Tok, usize)>,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let mut l = Lexer {
        src,
        pos: 0,
        toks: Vec::new(),
    };
    let bytes = src.as_bytes();
    while l.pos < bytes.len() {
        let c = bytes[l.pos] as char;
        let start = l.pos;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                l.pos += 1;
            }
            '-' => {
                if bytes.get(l.pos + 1) == Some(&b'-') {
                    // -- line comment
                    while l.pos < bytes.len() && bytes[l.pos] != b'\n' {
                        l.pos += 1;
                    }
                } else if bytes.get(l.pos + 1) == Some(&b'>') {
                    l.toks.push((Tok::Arrow, start));
                    l.pos += 2;
                } else {
                    // negative number literal
                    l.pos += 1;
                    let ds = l.pos;
                    while l.pos < bytes.len() && bytes[l.pos].is_ascii_digit() {
                        l.pos += 1;
                    }
                    if ds == l.pos {
                        return Err(
                            ParseError::at("expected digits after '-'", start).with_token("-")
                        );
                    }
                    let n: i64 = l.src[ds..l.pos].parse().map_err(|_| {
                        ParseError::at("integer out of range", start)
                            .with_token(&l.src[start..l.pos])
                    })?;
                    l.toks.push((Tok::Int(-n), start));
                }
            }
            '(' | ')' | ',' | ';' => {
                l.toks.push((Tok::Punct(c), start));
                l.pos += 1;
            }
            '\'' => {
                l.pos += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(l.pos) {
                        None => return Err(ParseError::at("unterminated string literal", start)),
                        Some(b'\'') => {
                            if bytes.get(l.pos + 1) == Some(&b'\'') {
                                s.push('\'');
                                l.pos += 2;
                            } else {
                                l.pos += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            l.pos += 1;
                        }
                    }
                }
                l.toks.push((Tok::Str(s), start));
            }
            '0'..='9' => {
                while l.pos < bytes.len() && bytes[l.pos].is_ascii_digit() {
                    l.pos += 1;
                }
                let n: i64 = l.src[start..l.pos].parse().map_err(|_| {
                    ParseError::at("integer out of range", start).with_token(&l.src[start..l.pos])
                })?;
                l.toks.push((Tok::Int(n), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '"' => {
                if c == '"' {
                    // quoted identifier
                    l.pos += 1;
                    let ids = l.pos;
                    while l.pos < bytes.len() && bytes[l.pos] != b'"' {
                        l.pos += 1;
                    }
                    if l.pos == bytes.len() {
                        return Err(ParseError::at("unterminated quoted identifier", start));
                    }
                    l.toks
                        .push((Tok::Ident(l.src[ids..l.pos].to_owned(), true), start));
                    l.pos += 1;
                } else {
                    while l.pos < bytes.len()
                        && ((bytes[l.pos] as char).is_ascii_alphanumeric() || bytes[l.pos] == b'_')
                    {
                        l.pos += 1;
                    }
                    l.toks
                        .push((Tok::Ident(l.src[start..l.pos].to_owned(), false), start));
                }
            }
            other => {
                return Err(
                    ParseError::at(format!("unexpected character {other:?}"), start)
                        .with_token(other),
                )
            }
        }
    }
    Ok(l.toks)
}

struct Parser {
    toks: Vec<(Tok, usize)>,
    at: usize,
    end: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.at).map(|(t, _)| t)
    }

    fn offset(&self) -> usize {
        self.toks.get(self.at).map_or(self.end, |(_, o)| *o)
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let e = ParseError::at(message, self.offset());
        match self.peek() {
            Some(tok) => e.with_token(render_tok(tok)),
            None => e,
        }
    }

    /// Like [`err`](Self::err), but blames the token just consumed —
    /// for checks that only fail after reading the offender (unknown
    /// type, unknown column).
    fn err_prev(&self, message: impl Into<String>) -> ParseError {
        let at = self.at.saturating_sub(1);
        let offset = self.toks.get(at).map_or(self.end, |(_, o)| *o);
        let e = ParseError::at(message, offset);
        match self.toks.get(at) {
            Some((tok, _)) => e.with_token(render_tok(tok)),
            None => e,
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.at).map(|(t, _)| t.clone());
        if t.is_some() {
            self.at += 1;
        }
        t
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            _ => {
                self.at = self.at.saturating_sub(1);
                Err(self.err(format!("expected {c:?}")))
            }
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s, false)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.at += 1;
                return true;
            }
        }
        false
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s, _)) => Ok(s),
            _ => {
                self.at = self.at.saturating_sub(1);
                Err(self.err("expected identifier"))
            }
        }
    }

    fn column_list(&mut self, columns: &[String]) -> Result<AttrSet, ParseError> {
        self.expect_punct('(')?;
        let mut set = AttrSet::EMPTY;
        // Empty lists are legal: `FD () -> (a)` declares a constant
        // column, and `KEY ()` forbids a second row outright.
        if let Some(Tok::Punct(')')) = self.peek() {
            self.at += 1;
            return Ok(set);
        }
        loop {
            let name = self.ident()?;
            let ix = columns
                .iter()
                .position(|c| c.eq_ignore_ascii_case(&name))
                .ok_or_else(|| self.err_prev(format!("unknown column {name:?} in constraint")))?;
            set.insert(ix.into());
            match self.next() {
                Some(Tok::Punct(',')) => continue,
                Some(Tok::Punct(')')) => return Ok(set),
                _ => {
                    self.at = self.at.saturating_sub(1);
                    return Err(self.err("expected ',' or ')' in column list"));
                }
            }
        }
    }

    fn modality(&mut self) -> Result<Modality, ParseError> {
        if self.eat_keyword("POSSIBLE") {
            Ok(Modality::Possible)
        } else if self.eat_keyword("CERTAIN") {
            Ok(Modality::Certain)
        } else {
            Err(self.err("expected POSSIBLE or CERTAIN"))
        }
    }

    fn create_table(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("TABLE")?;
        let name = self.ident()?;
        self.expect_punct('(')?;

        let mut columns: Vec<String> = Vec::new();
        let mut not_null: Vec<String> = Vec::new();
        // Constraints are collected as raw pieces first; column indices
        // resolve once all columns are known (we require constraints to
        // follow all column declarations, as standard SQL does).
        let mut sigma = Sigma::new();
        loop {
            if self.eat_keyword("CONSTRAINT") {
                let _cname = self.ident()?;
                let modality = self.modality()?;
                if self.eat_keyword("KEY") {
                    let attrs = self.column_list(&columns)?;
                    sigma.add(Key { attrs, modality });
                } else if self.eat_keyword("FD") {
                    let lhs = self.column_list(&columns)?;
                    match self.next() {
                        Some(Tok::Arrow) => {}
                        _ => {
                            self.at = self.at.saturating_sub(1);
                            return Err(self.err("expected '->' in FD constraint"));
                        }
                    }
                    let rhs = self.column_list(&columns)?;
                    sigma.add(Fd { lhs, rhs, modality });
                } else {
                    return Err(self.err("expected KEY or FD after modality"));
                }
            } else {
                // Column declaration: name TYPE [NOT NULL]
                let col = self.ident()?;
                let ty = self.ident()?;
                let known = [
                    "INT", "INTEGER", "BIGINT", "TEXT", "VARCHAR", "BOOL", "BOOLEAN",
                ];
                if !known.iter().any(|k| k.eq_ignore_ascii_case(&ty)) {
                    return Err(self.err_prev(format!("unknown type {ty:?}")));
                }
                if self.eat_keyword("NOT") {
                    self.expect_keyword("NULL")?;
                    not_null.push(col.clone());
                }
                if columns.iter().any(|c| c == &col) {
                    return Err(self.err(format!("duplicate column {col:?}")));
                }
                if columns.len() >= crate::attrs::MAX_ATTRS {
                    return Err(self.err("at most 128 columns are supported"));
                }
                columns.push(col);
            }
            match self.next() {
                Some(Tok::Punct(',')) => continue,
                Some(Tok::Punct(')')) => break,
                _ => {
                    self.at = self.at.saturating_sub(1);
                    return Err(self.err("expected ',' or ')' in CREATE TABLE"));
                }
            }
        }
        if columns.is_empty() {
            return Err(self.err("CREATE TABLE needs at least one column"));
        }
        let nn: Vec<&str> = not_null.iter().map(String::as_str).collect();
        let schema = TableSchema::new(name, columns, &nn);
        Ok(Statement::CreateTable { schema, sigma })
    }

    fn insert(&mut self) -> Result<Statement, ParseError> {
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_punct('(')?;
            let mut vals: Vec<Value> = Vec::new();
            loop {
                let v = match self.next() {
                    Some(Tok::Int(i)) => Value::Int(i),
                    Some(Tok::Str(s)) => Value::Str(s),
                    Some(Tok::Ident(id, false)) if id.eq_ignore_ascii_case("NULL") => Value::Null,
                    Some(Tok::Ident(id, false)) if id.eq_ignore_ascii_case("TRUE") => {
                        Value::Bool(true)
                    }
                    Some(Tok::Ident(id, false)) if id.eq_ignore_ascii_case("FALSE") => {
                        Value::Bool(false)
                    }
                    _ => {
                        self.at = self.at.saturating_sub(1);
                        return Err(self.err("expected literal in VALUES"));
                    }
                };
                vals.push(v);
                match self.next() {
                    Some(Tok::Punct(',')) => continue,
                    Some(Tok::Punct(')')) => break,
                    _ => {
                        self.at = self.at.saturating_sub(1);
                        return Err(self.err("expected ',' or ')' in VALUES tuple"));
                    }
                }
            }
            rows.push(Tuple::new(vals));
            if let Some(Tok::Punct(',')) = self.peek() {
                self.at += 1;
                continue;
            }
            break;
        }
        Ok(Statement::Insert { table, rows })
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("CREATE") {
            self.create_table()
        } else if self.eat_keyword("INSERT") {
            self.insert()
        } else {
            Err(self.err("expected CREATE or INSERT"))
        }
    }
}

/// Parses a script of `;`-separated statements.
pub fn parse_script(src: &str) -> Result<Vec<Statement>, ParseError> {
    parse_script_inner(src).map_err(|e| e.locate(src))
}

fn parse_script_inner(src: &str) -> Result<Vec<Statement>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        at: 0,
        end: src.len(),
    };
    let mut out = Vec::new();
    loop {
        // Skip stray semicolons.
        while let Some(Tok::Punct(';')) = p.peek() {
            p.at += 1;
        }
        if p.peek().is_none() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if p.peek().is_some() {
            p.expect_punct(';')?;
        }
    }
}

/// Parses a single statement.
pub fn parse_statement(src: &str) -> Result<Statement, ParseError> {
    let stmts = parse_script(src)?;
    match <[Statement; 1]>::try_from(stmts) {
        Ok([s]) => Ok(s),
        Err(v) => Err(ParseError::at(
            format!("expected exactly one statement, found {}", v.len()),
            0,
        )
        .locate(src)),
    }
}

/// Words the parser treats as keywords in some position; rendered
/// identifiers that collide must be quoted or they won't re-parse.
const RESERVED: &[&str] = &[
    "CREATE",
    "TABLE",
    "INSERT",
    "INTO",
    "VALUES",
    "CONSTRAINT",
    "POSSIBLE",
    "CERTAIN",
    "KEY",
    "FD",
    "NOT",
    "NULL",
    "INT",
    "INTEGER",
    "BIGINT",
    "TEXT",
    "VARCHAR",
    "BOOL",
    "BOOLEAN",
    "TRUE",
    "FALSE",
];

fn quote_ident(name: &str) -> String {
    if !name.is_empty()
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && !RESERVED.iter().any(|k| k.eq_ignore_ascii_case(name))
    {
        name.to_owned()
    } else {
        format!("\"{name}\"")
    }
}

fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_owned(),
        Value::Int(i) => i.to_string(),
        Value::Bool(true) => "TRUE".to_owned(),
        Value::Bool(false) => "FALSE".to_owned(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Renders rows as an `INSERT INTO … VALUES …;` statement in the
/// dialect parsed by [`parse_script`] — the WAL and snapshot format
/// of the server is exactly this round-trip.
pub fn render_insert(table: &str, rows: &[Tuple]) -> String {
    let tuples: Vec<String> = rows
        .iter()
        .map(|row| {
            let vals: Vec<String> = row.values().iter().map(sql_literal).collect();
            format!("({})", vals.join(", "))
        })
        .collect();
    format!(
        "INSERT INTO {} VALUES {};",
        quote_ident(table),
        tuples.join(", ")
    )
}

fn column_list_sql(schema: &TableSchema, set: AttrSet) -> String {
    let cols: Vec<String> = set
        .iter()
        .map(|a| quote_ident(schema.column_name(a)))
        .collect();
    format!("({})", cols.join(", "))
}

/// Renders a schema + constraint set back into the DDL dialect parsed
/// by [`parse_script`] (round-trip tested).
pub fn render_create_table(schema: &TableSchema, sigma: &Sigma) -> String {
    let mut lines: Vec<String> = Vec::new();
    for (i, col) in schema.column_names().iter().enumerate() {
        let nn = if schema.nfs().contains(i.into()) {
            " NOT NULL"
        } else {
            ""
        };
        lines.push(format!("    {} TEXT{nn}", quote_ident(col)));
    }
    for (i, fd) in sigma.fds.iter().enumerate() {
        let m = match fd.modality {
            Modality::Possible => "POSSIBLE",
            Modality::Certain => "CERTAIN",
        };
        lines.push(format!(
            "    CONSTRAINT fd{i} {m} FD {} -> {}",
            column_list_sql(schema, fd.lhs),
            column_list_sql(schema, fd.rhs)
        ));
    }
    for (i, key) in sigma.keys.iter().enumerate() {
        let m = match key.modality {
            Modality::Possible => "POSSIBLE",
            Modality::Certain => "CERTAIN",
        };
        lines.push(format!(
            "    CONSTRAINT key{i} {m} KEY {}",
            column_list_sql(schema, key.attrs)
        ));
    }
    format!(
        "CREATE TABLE {} (\n{}\n);",
        quote_ident(schema.name()),
        lines.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    const PURCHASE_DDL: &str = "
        CREATE TABLE purchase (
            order_id INT NOT NULL,
            item     TEXT NOT NULL,
            catalog  TEXT,
            price    INT NOT NULL,
            -- the paper's Example 3 rule:
            CONSTRAINT line CERTAIN FD (order_id, item, catalog)
                                      -> (order_id, item, catalog, price),
            CONSTRAINT uniq POSSIBLE KEY (order_id, item, catalog)
        );
    ";

    #[test]
    fn parses_create_table_with_constraints() {
        let stmt = parse_statement(PURCHASE_DDL).unwrap();
        let Statement::CreateTable { schema, sigma } = stmt else {
            panic!("expected CREATE TABLE");
        };
        assert_eq!(schema.name(), "purchase");
        assert_eq!(schema.arity(), 4);
        assert_eq!(schema.nfs(), schema.set(&["order_id", "item", "price"]));
        assert_eq!(sigma.fds.len(), 1);
        assert_eq!(sigma.keys.len(), 1);
        let fd = sigma.fds[0];
        assert_eq!(fd.modality, Modality::Certain);
        assert_eq!(fd.lhs, schema.set(&["order_id", "item", "catalog"]));
        assert!(fd.is_total_form());
        assert_eq!(sigma.keys[0].modality, Modality::Possible);
    }

    #[test]
    fn parses_insert_with_nulls_and_escapes() {
        let stmt = parse_statement(
            "INSERT INTO purchase VALUES \
             (5299401, 'Fitbit Surge', NULL, 240), \
             (-7, 'O''Brien', 'Kingtoys', 25);",
        )
        .unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!("expected INSERT");
        };
        assert_eq!(table, "purchase");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0], tuple![5299401i64, "Fitbit Surge", null, 240i64]);
        assert_eq!(rows[1], tuple![(-7i64), "O'Brien", "Kingtoys", 25i64]);
    }

    #[test]
    fn parses_scripts_and_booleans() {
        let script = "
            CREATE TABLE t (a BOOL, b INTEGER NOT NULL);
            INSERT INTO t VALUES (TRUE, 1), (FALSE, 2);
        ";
        let stmts = parse_script(script).unwrap();
        assert_eq!(stmts.len(), 2);
        let Statement::Insert { rows, .. } = &stmts[1] else {
            panic!()
        };
        assert_eq!(rows[0], tuple![true, 1i64]);
    }

    #[test]
    fn quoted_identifiers() {
        let stmt = parse_statement(
            "CREATE TABLE \"contact draft\" (\"first name\" TEXT, x INT, \
             CONSTRAINT c CERTAIN KEY (\"first name\"));",
        )
        .unwrap();
        let Statement::CreateTable { schema, sigma } = stmt else {
            panic!()
        };
        assert_eq!(schema.name(), "contact draft");
        assert_eq!(schema.column_name(0.into()), "first name");
        assert_eq!(sigma.keys[0].attrs, AttrSet::from_indices([0]));
    }

    #[test]
    fn error_reporting() {
        let cases: Vec<(&str, &str)> = vec![
            ("CREATE TABLE t ()", "expected identifier"),
            ("CREATE TABLE t (a FLOAT)", "unknown type"),
            (
                "CREATE TABLE t (a INT, CONSTRAINT c CERTAIN FD (b) -> (a))",
                "unknown column",
            ),
            (
                "CREATE TABLE t (a INT, CONSTRAINT c MAYBE KEY (a))",
                "POSSIBLE or CERTAIN",
            ),
            ("INSERT INTO t VALUES (1", "expected ',' or ')'"),
            ("DROP TABLE t", "expected CREATE or INSERT"),
            ("INSERT INTO t VALUES ('oops)", "unterminated string"),
        ];
        for (src, needle) in cases {
            let err = parse_script(src).unwrap_err();
            assert!(
                err.message.contains(needle),
                "{src:?} gave {err:?}, wanted {needle:?}"
            );
            // Every error from parse_script is located against the source.
            assert!(err.line >= 1, "{src:?} gave unlocated {err:?}");
            assert!(err.col >= 1, "{src:?} gave unlocated {err:?}");
        }
    }

    #[test]
    fn errors_carry_line_column_and_token() {
        let src = "CREATE TABLE t (\n    a INT,\n    b FLOAT\n);";
        let err = parse_script(src).unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.col, 7);
        assert_eq!(err.token.as_deref(), Some("FLOAT"));
        let shown = err.to_string();
        assert!(shown.contains("line 3, column 7"), "{shown}");
        assert!(shown.contains("FLOAT"), "{shown}");

        // Offending token also surfaces for stray punctuation.
        let err = parse_script("DROP TABLE t").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("DROP"));
        assert_eq!((err.line, err.col), (1, 1));

        // Lexer errors locate too.
        let err = parse_script("INSERT INTO t VALUES\n(1, ?)").unwrap_err();
        assert_eq!((err.line, err.col), (2, 5));
        assert_eq!(err.token.as_deref(), Some("?"));
    }

    #[test]
    fn quoted_identifiers_are_never_keywords() {
        // A column may be named after any keyword as long as it is
        // quoted; the parser must not mistake it for the start of a
        // constraint clause (or a NULL/TRUE/FALSE literal).
        let ddl = "CREATE TABLE \"table\" (
            \"constraint\" TEXT,
            \"certain\" TEXT NOT NULL,
            \"null\" INT,
            CONSTRAINT c CERTAIN FD (\"constraint\") -> (\"certain\")
        );";
        let Statement::CreateTable { schema, sigma } = parse_statement(ddl).unwrap() else {
            panic!("expected CREATE TABLE");
        };
        assert_eq!(schema.name(), "table");
        assert_eq!(schema.column_names(), ["constraint", "certain", "null"]);
        assert_eq!(sigma.fds.len(), 1);
        // And the round trip re-quotes them.
        let back = render_create_table(&schema, &sigma);
        let reparsed = parse_statement(&back).unwrap();
        let Statement::CreateTable { schema: s2, .. } = reparsed else {
            panic!("expected CREATE TABLE");
        };
        assert_eq!(schema.column_names(), s2.column_names());

        // In a VALUES list a quoted "NULL" is an identifier, not the
        // null marker: rejected, with the quoting visible in the error.
        let err =
            parse_script("CREATE TABLE t (a INT);\nINSERT INTO t VALUES (\"NULL\");").unwrap_err();
        assert_eq!(err.token.as_deref(), Some("\"NULL\""));
    }

    #[test]
    fn render_insert_round_trips() {
        let rows = vec![
            tuple![5299401i64, "Fitbit ''Surge'", null, true],
            tuple![(-7i64), "O'Brien", "King\ntoys", false],
        ];
        let sql = render_insert("values", &rows);
        assert!(sql.starts_with("INSERT INTO \"values\" VALUES"), "{sql}");
        let Statement::Insert { table, rows: back } = parse_statement(&sql).unwrap() else {
            panic!("expected INSERT");
        };
        assert_eq!(table, "values");
        assert_eq!(back, rows);
    }

    #[test]
    fn render_round_trips() {
        let Statement::CreateTable { schema, sigma } = parse_statement(PURCHASE_DDL).unwrap()
        else {
            panic!()
        };
        let rendered = render_create_table(&schema, &sigma);
        let Statement::CreateTable {
            schema: schema2,
            sigma: sigma2,
        } = parse_statement(&rendered).unwrap()
        else {
            panic!()
        };
        assert_eq!(schema.column_names(), schema2.column_names());
        assert_eq!(schema.nfs(), schema2.nfs());
        assert_eq!(sigma, sigma2);
    }

    #[test]
    fn render_quotes_weird_names() {
        let schema = TableSchema::new("weird table", ["first name", "ok_col"], &["ok_col"]);
        let sigma = Sigma::new().with(Key::certain(AttrSet::from_indices([0])));
        let ddl = render_create_table(&schema, &sigma);
        assert!(ddl.contains("\"weird table\""));
        assert!(ddl.contains("\"first name\""));
        let reparsed = parse_statement(&ddl).unwrap();
        let Statement::CreateTable { schema: s2, .. } = reparsed else {
            panic!()
        };
        assert_eq!(s2.name(), "weird table");
    }
}
