//! Instance profiling: per-column and whole-table statistics of the
//! kind the paper's Section 7 reports (null frequencies, distinct
//! counts, duplicate rows), used by the experiments and the schema
//! advisor example.

use crate::attrs::Attr;
use crate::table::Table;
use sqlnf_obs::json::JsonValue;
use std::collections::HashSet;

/// Statistics of one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnProfile {
    /// Column name.
    pub name: String,
    /// Number of `⊥` cells.
    pub nulls: usize,
    /// Fraction of `⊥` cells (0 for an empty table).
    pub null_rate: f64,
    /// Number of distinct non-null values.
    pub distinct: usize,
    /// Whether the column is unique over non-null values (a candidate
    /// p-key on its own when `nulls + distinct == rows`).
    pub unique_non_null: bool,
}

/// Statistics of a whole instance.
#[derive(Debug, Clone, PartialEq)]
pub struct TableProfile {
    /// Table name.
    pub name: String,
    /// Rows (with multiplicity).
    pub rows: usize,
    /// Columns.
    pub columns: usize,
    /// Distinct rows.
    pub distinct_rows: usize,
    /// Rows minus distinct rows.
    pub duplicate_rows: usize,
    /// Total `⊥` cells.
    pub total_nulls: usize,
    /// Per-column details, in column order.
    pub column_profiles: Vec<ColumnProfile>,
}

impl TableProfile {
    /// Whether the instance is an idealized relation: total and
    /// duplicate-free.
    pub fn is_idealized(&self) -> bool {
        self.total_nulls == 0 && self.duplicate_rows == 0
    }
}

/// Profiles an instance.
pub fn profile(table: &Table) -> TableProfile {
    let _span = sqlnf_obs::span!("profile");
    let rows = table.len();
    let mut column_profiles = Vec::with_capacity(table.schema().arity());
    let mut total_nulls = 0usize;
    for i in 0..table.schema().arity() {
        let a = Attr::from(i);
        let nulls = table.null_count(a);
        total_nulls += nulls;
        let mut distinct: HashSet<&crate::value::Value> = HashSet::new();
        for t in table.rows() {
            let v = t.get(a);
            if v.is_total() {
                distinct.insert(v);
            }
        }
        column_profiles.push(ColumnProfile {
            name: table.schema().column_name(a).to_owned(),
            nulls,
            null_rate: if rows == 0 {
                0.0
            } else {
                nulls as f64 / rows as f64
            },
            distinct: distinct.len(),
            unique_non_null: distinct.len() + nulls == rows,
        });
    }
    let distinct_rows = table.distinct_count();
    TableProfile {
        name: table.schema().name().to_owned(),
        rows,
        columns: table.schema().arity(),
        distinct_rows,
        duplicate_rows: rows - distinct_rows,
        total_nulls,
        column_profiles,
    }
}

/// The profile as a JSON document — the machine-readable counterpart of
/// [`render_profile`], embedded by the CLI under `--stats-json`.
pub fn profile_to_json(p: &TableProfile) -> JsonValue {
    let columns = JsonValue::Array(
        p.column_profiles
            .iter()
            .map(|c| {
                JsonValue::Object(vec![
                    ("name".to_string(), JsonValue::Str(c.name.clone())),
                    ("nulls".to_string(), JsonValue::Int(c.nulls as i128)),
                    ("null_rate".to_string(), JsonValue::Float(c.null_rate)),
                    ("distinct".to_string(), JsonValue::Int(c.distinct as i128)),
                    (
                        "unique_non_null".to_string(),
                        JsonValue::Bool(c.unique_non_null),
                    ),
                ])
            })
            .collect(),
    );
    JsonValue::Object(vec![
        ("name".to_string(), JsonValue::Str(p.name.clone())),
        ("rows".to_string(), JsonValue::Int(p.rows as i128)),
        ("columns".to_string(), JsonValue::Int(p.columns as i128)),
        (
            "distinct_rows".to_string(),
            JsonValue::Int(p.distinct_rows as i128),
        ),
        (
            "duplicate_rows".to_string(),
            JsonValue::Int(p.duplicate_rows as i128),
        ),
        (
            "total_nulls".to_string(),
            JsonValue::Int(p.total_nulls as i128),
        ),
        ("column_profiles".to_string(), columns),
    ])
}

/// Renders a profile as an aligned text block.
pub fn render_profile(p: &TableProfile) -> String {
    let mut out = format!(
        "{}: {} rows × {} columns, {} duplicate rows, {} nulls\n",
        p.name, p.rows, p.columns, p.duplicate_rows, p.total_nulls
    );
    for c in &p.column_profiles {
        out.push_str(&format!(
            "  {:<24} distinct {:>6}  nulls {:>6} ({:>5.1}%){}\n",
            c.name,
            c.distinct,
            c.nulls,
            c.null_rate * 100.0,
            if c.unique_non_null { "  [unique]" } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;
    use crate::tuple;

    fn sample() -> Table {
        TableBuilder::new("s", ["id", "city", "note"], &[])
            .row(tuple![1i64, "Columbia", null])
            .row(tuple![2i64, "Columbia", "x"])
            .row(tuple![3i64, null, null])
            .row(tuple![3i64, null, null])
            .build()
    }

    #[test]
    fn profile_counts() {
        let p = profile(&sample());
        assert_eq!(p.rows, 4);
        assert_eq!(p.columns, 3);
        assert_eq!(p.distinct_rows, 3);
        assert_eq!(p.duplicate_rows, 1);
        assert_eq!(p.total_nulls, 5);
        assert!(!p.is_idealized());

        let id = &p.column_profiles[0];
        assert_eq!(id.distinct, 3);
        assert_eq!(id.nulls, 0);
        assert!(!id.unique_non_null); // the duplicated 3

        let city = &p.column_profiles[1];
        assert_eq!(city.distinct, 1);
        assert_eq!(city.nulls, 2);
        assert!((city.null_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn idealized_relation() {
        let t = TableBuilder::new("r", ["a"], &["a"])
            .row(tuple![1i64])
            .row(tuple![2i64])
            .build();
        let p = profile(&t);
        assert!(p.is_idealized());
        assert!(p.column_profiles[0].unique_non_null);
    }

    #[test]
    fn empty_table_profile() {
        let t = Table::new(crate::schema::TableSchema::new("e", ["a"], &[]));
        let p = profile(&t);
        assert_eq!(p.rows, 0);
        assert_eq!(p.column_profiles[0].null_rate, 0.0);
        assert!(p.column_profiles[0].unique_non_null);
    }

    #[test]
    fn profile_json_parses_back() {
        let p = profile(&sample());
        let text = profile_to_json(&p).to_json();
        let doc = sqlnf_obs::json::parse(&text).unwrap();
        assert_eq!(doc.get("rows").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(doc.get("total_nulls").and_then(|v| v.as_u64()), Some(5));
        let cols = doc
            .get("column_profiles")
            .and_then(|v| v.as_array())
            .unwrap();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols[1].get("name").and_then(|v| v.as_str()), Some("city"));
        assert_eq!(cols[1].get("nulls").and_then(|v| v.as_u64()), Some(2));
    }

    #[test]
    fn rendering_mentions_columns() {
        let r = render_profile(&profile(&sample()));
        assert!(r.contains("city"));
        assert!(r.contains("50.0%"));
    }
}
