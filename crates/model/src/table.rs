//! Tables: finite multisets of tuples over a table schema.
//!
//! SQL permits duplicate tuples, so a table is a *multiset* (Section 2).
//! Set and multiset projection (Definition 6) live in
//! [`crate::project`]; the equality join of Definition 8 in
//! [`crate::join`].

use crate::attrs::{Attr, AttrSet};
use crate::column::{ColumnSnapshot, ColumnStore};
use crate::schema::{SchemaRef, TableSchema};
use crate::tuple::Tuple;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

/// A table over a schema `(T, T_S)`: a finite multiset of tuples.
///
/// Insertion enforces arity; `T_S`-totality (satisfaction of the NFS) is
/// checked by [`Table::satisfies_nfs`] rather than on insertion, because
/// the paper's definitions distinguish "table over `T`" from "table over
/// `(T, T_S)`" and several constructions (e.g. witnesses for violated
/// constraints) need the former.
///
/// Storage is dual: the row view (`Vec<Tuple>`, serving projection,
/// join, satisfaction, SQL and CSV) and the dictionary-coded
/// [`ColumnStore`] (serving discovery), kept in lockstep by every
/// mutation. [`Table::snapshot`] hands discovery the columnar side in
/// `O(arity)` — no per-mine re-encode.
#[derive(Debug, Clone)]
pub struct Table {
    schema: SchemaRef,
    rows: Vec<Tuple>,
    cols: ColumnStore,
}

/// Equality is schema + row multiset-in-order; the columnar codes are
/// derived state (and may legitimately differ between two equal tables
/// with different mutation histories).
impl PartialEq for Table {
    fn eq(&self, other: &Table) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Eq for Table {}

impl Table {
    /// Creates an empty table over the given schema.
    pub fn new(schema: TableSchema) -> Self {
        let arity = schema.arity();
        Table {
            schema: Arc::new(schema),
            rows: Vec::new(),
            cols: ColumnStore::new(arity),
        }
    }

    /// Creates an empty table over a shared schema handle.
    pub fn with_schema(schema: SchemaRef) -> Self {
        let arity = schema.arity();
        Table {
            schema,
            rows: Vec::new(),
            cols: ColumnStore::new(arity),
        }
    }

    /// Creates a table from rows.
    pub fn from_rows(schema: TableSchema, rows: impl IntoIterator<Item = Tuple>) -> Self {
        let mut t = Table::new(schema);
        for r in rows {
            t.push(r);
        }
        t
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Shared handle to the schema.
    pub fn schema_ref(&self) -> SchemaRef {
        Arc::clone(&self.schema)
    }

    /// Number of rows (with multiplicity).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows, in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Point-updates one cell, keeping the row view and the columnar
    /// codes in lockstep (the replacement for direct row mutation).
    pub fn set_value(&mut self, row: usize, a: Attr, v: Value) {
        self.cols.set_value(row, a.index(), &v);
        *self.rows[row].get_mut(a) = v;
    }

    /// Removes one row (later rows shift down by one) and returns it.
    pub fn remove_row(&mut self, row: usize) -> Tuple {
        self.cols.remove_row(row);
        self.rows.remove(row)
    }

    /// An `O(arity)` frozen view of the dictionary-coded columns — what
    /// discovery wraps as its `Encoded` input.
    pub fn snapshot(&self) -> ColumnSnapshot {
        self.cols.snapshot()
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the tuple arity does not match the schema.
    pub fn push(&mut self, t: Tuple) {
        assert_eq!(
            t.arity(),
            self.schema.arity(),
            "tuple arity {} does not match schema {} of arity {}",
            t.arity(),
            self.schema.name(),
            self.schema.arity()
        );
        self.cols.push(&t);
        self.rows.push(t);
    }

    /// Whether the table satisfies its NFS, i.e. is `T_S`-total.
    pub fn satisfies_nfs(&self) -> bool {
        let nfs = self.schema.nfs();
        self.rows.iter().all(|t| t.is_total_on(nfs))
    }

    /// Whether every tuple is total (the idealized relational case,
    /// ignoring duplicates).
    pub fn is_total(&self) -> bool {
        self.rows.iter().all(Tuple::is_total)
    }

    /// Whether the table contains duplicate tuples. Compares rows by
    /// their dictionary codes (one `u64` hash + `u32` comparisons per
    /// row) instead of hashing `Value`s.
    pub fn has_duplicates(&self) -> bool {
        let mut seen: HashMap<u64, Vec<u32>> = HashMap::with_capacity(self.rows.len());
        for r in 0..self.rows.len() {
            let bucket = seen.entry(self.cols.row_code_hash(r)).or_default();
            if bucket
                .iter()
                .any(|&s| self.cols.code_rows_equal(s as usize, r))
            {
                return true;
            }
            bucket.push(r as u32);
        }
        false
    }

    /// Number of distinct tuples, by code-row comparison.
    pub fn distinct_count(&self) -> usize {
        let mut seen: HashMap<u64, Vec<u32>> = HashMap::with_capacity(self.rows.len());
        let mut distinct = 0usize;
        for r in 0..self.rows.len() {
            let bucket = seen.entry(self.cols.row_code_hash(r)).or_default();
            if !bucket
                .iter()
                .any(|&s| self.cols.code_rows_equal(s as usize, r))
            {
                bucket.push(r as u32);
                distinct += 1;
            }
        }
        distinct
    }

    /// Total number of cells (`rows × columns`), the measure used in the
    /// paper's storage comparison for the contractor experiment.
    pub fn cell_count(&self) -> usize {
        self.rows.len() * self.schema.arity()
    }

    /// Number of null markers in column `a`.
    pub fn null_count(&self, a: Attr) -> usize {
        self.rows.iter().filter(|t| t.get(a).is_null()).count()
    }

    /// The attributes whose column contains no null marker in this
    /// instance (used by the discovery experiments to classify nn-FDs).
    pub fn null_free_columns(&self) -> AttrSet {
        self.schema
            .attrs()
            .iter()
            .filter(|&a| self.null_count(a) == 0)
            .collect()
    }

    /// The distinct non-null values occurring in column `a` (the active
    /// domain), in deterministic order.
    pub fn active_domain(&self, a: Attr) -> Vec<Value> {
        let mut dom: BTreeMap<&Value, ()> = BTreeMap::new();
        for t in &self.rows {
            let v = t.get(a);
            if v.is_total() {
                dom.insert(v, ());
            }
        }
        dom.into_keys().cloned().collect()
    }

    /// Multiset equality with another table: same schema columns and the
    /// same tuples with the same multiplicities, regardless of row order.
    /// This is the equality used to check losslessness (Definition 8).
    pub fn multiset_eq(&self, other: &Table) -> bool {
        if self.schema.column_names() != other.schema.column_names() {
            return false;
        }
        if self.rows.len() != other.rows.len() {
            return false;
        }
        let mut counts: HashMap<&Tuple, i64> = HashMap::with_capacity(self.rows.len());
        for t in &self.rows {
            *counts.entry(t).or_insert(0) += 1;
        }
        for t in &other.rows {
            match counts.get_mut(t) {
                Some(c) => *c -= 1,
                None => return false,
            }
        }
        counts.values().all(|&c| c == 0)
    }

    /// Renders the table in a compact aligned text format (examples and
    /// experiment output).
    pub fn render(&self) -> String {
        let names = self.schema.column_names();
        let mut widths: Vec<usize> = names.iter().map(String::len).collect();
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|t| t.values().iter().map(Value::to_string).collect())
            .collect();
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        for (i, n) in names.iter().enumerate() {
            out.push_str(&format!("{:width$}  ", n, width = widths[i]));
        }
        out.push('\n');
        for (i, _) in names.iter().enumerate() {
            out.push_str(&"-".repeat(widths[i]));
            out.push_str("  ");
        }
        out.push('\n');
        for row in &cells {
            for (i, c) in row.iter().enumerate() {
                out.push_str(&format!("{:width$}  ", c, width = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Fluent builder for tables in tests, examples and generators.
///
/// ```
/// use sqlnf_model::prelude::*;
///
/// let t = TableBuilder::new(
///     "purchase",
///     ["order_id", "item", "catalog", "price"],
///     &["order_id", "catalog", "price"],
/// )
/// .row(tuple![5299401i64, "Fitbit Surge", "Amazon", 240i64])
/// .row(tuple![5299401i64, "Fitbit Surge", "Brookstone", 240i64])
/// .build();
/// assert_eq!(t.len(), 2);
/// ```
pub struct TableBuilder {
    table: Table,
}

impl TableBuilder {
    /// Starts a builder with the schema's name, columns, and NOT NULL
    /// columns.
    pub fn new<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
        not_null: &[&str],
    ) -> Self {
        TableBuilder {
            table: Table::new(TableSchema::new(name, columns, not_null)),
        }
    }

    /// Starts a builder from an existing schema.
    pub fn from_schema(schema: TableSchema) -> Self {
        TableBuilder {
            table: Table::new(schema),
        }
    }

    /// Appends a row.
    pub fn row(mut self, t: Tuple) -> Self {
        self.table.push(t);
        self
    }

    /// Appends many rows.
    pub fn rows(mut self, rows: impl IntoIterator<Item = Tuple>) -> Self {
        for r in rows {
            self.table.push(r);
        }
        self
    }

    /// Finishes the table.
    pub fn build(self) -> Table {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn fig3() -> Table {
        // Figure 3: satisfies every FD, violates every key.
        TableBuilder::new("fig3", ["item", "catalog", "price"], &[])
            .row(tuple!["Fitbit Surge", "Amazon", 240i64])
            .row(tuple!["Fitbit Surge", "Amazon", 240i64])
            .build()
    }

    #[test]
    fn push_and_len() {
        let t = fig3();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell_count(), 6);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = fig3();
        t.push(tuple![1i64]);
    }

    #[test]
    fn duplicates_and_distinct() {
        let t = fig3();
        assert!(t.has_duplicates());
        assert_eq!(t.distinct_count(), 1);
    }

    #[test]
    fn nfs_satisfaction() {
        let mut t = Table::new(TableSchema::new("r", ["a", "b"], &["a"]));
        t.push(tuple![1i64, null]);
        assert!(t.satisfies_nfs());
        t.push(tuple![null, 2i64]);
        assert!(!t.satisfies_nfs());
        assert!(!t.is_total());
    }

    #[test]
    fn null_accounting() {
        let mut t = Table::new(TableSchema::new("r", ["a", "b"], &[]));
        t.push(tuple![1i64, null]);
        t.push(tuple![null, null]);
        assert_eq!(t.null_count(Attr(0)), 1);
        assert_eq!(t.null_count(Attr(1)), 2);
        assert_eq!(t.null_free_columns(), AttrSet::EMPTY);
        t.push(tuple![3i64, 4i64]);
        assert_eq!(t.null_free_columns(), AttrSet::EMPTY);
    }

    #[test]
    fn active_domain_sorted_distinct() {
        let mut t = Table::new(TableSchema::new("r", ["a"], &[]));
        t.push(tuple![3i64]);
        t.push(tuple![1i64]);
        t.push(tuple![3i64]);
        t.push(tuple![null]);
        assert_eq!(t.active_domain(Attr(0)), vec![Value::Int(1), Value::Int(3)]);
    }

    #[test]
    fn multiset_equality_ignores_order() {
        let s = TableSchema::new("r", ["a"], &[]);
        let t1 = Table::from_rows(s.clone(), [tuple![1i64], tuple![2i64], tuple![1i64]]);
        let t2 = Table::from_rows(s.clone(), [tuple![2i64], tuple![1i64], tuple![1i64]]);
        let t3 = Table::from_rows(s.clone(), [tuple![2i64], tuple![2i64], tuple![1i64]]);
        let t4 = Table::from_rows(s, [tuple![1i64], tuple![2i64]]);
        assert!(t1.multiset_eq(&t2));
        assert!(!t1.multiset_eq(&t3));
        assert!(!t1.multiset_eq(&t4));
    }

    #[test]
    fn render_contains_all_cells() {
        let t = fig3();
        let s = t.render();
        assert!(s.contains("item"));
        assert!(s.contains("Fitbit Surge"));
        assert!(s.contains("240"));
    }
}
