//! Tuples over a table schema.

use crate::attrs::{Attr, AttrSet};
use crate::value::Value;
use std::fmt;

/// A tuple over a table schema: one [`Value`] per column.
///
/// Tuples do not carry their schema; a [`crate::table::Table`] pairs a
/// schema with a multiset of tuples and validates arity on insertion.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Creates a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// Number of columns.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The value in column `a` (the paper's `t[A]` / `t(A)`).
    #[inline]
    pub fn get(&self, a: Attr) -> &Value {
        &self.0[a.index()]
    }

    /// Mutable access to the value in column `a`.
    #[inline]
    pub fn get_mut(&mut self, a: Attr) -> &mut Value {
        &mut self.0[a.index()]
    }

    /// All values in column order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Whether the tuple is `X`-total, i.e. `t[A] ≠ ⊥` for all `A ∈ X`.
    pub fn is_total_on(&self, x: AttrSet) -> bool {
        x.iter().all(|a| self.get(a).is_total())
    }

    /// Whether the tuple is total (no nulls at all).
    pub fn is_total(&self) -> bool {
        self.0.iter().all(Value::is_total)
    }

    /// The attributes on which the tuple carries the null marker.
    pub fn null_attrs(&self) -> AttrSet {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_null())
            .map(|(i, _)| Attr::from(i))
            .collect()
    }

    /// The restriction `t[X]` as a fresh tuple over the projected schema
    /// (columns of `x` in ascending order).
    pub fn project(&self, x: AttrSet) -> Tuple {
        Tuple(x.iter().map(|a| self.get(a).clone()).collect())
    }

    /// Syntactic equality on `X`: `t[X] = t'[X]`, where `⊥ = ⊥`.
    pub fn eq_on(&self, other: &Tuple, x: AttrSet) -> bool {
        x.iter().all(|a| self.get(a) == other.get(a))
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

impl std::ops::Index<Attr> for Tuple {
    type Output = Value;
    fn index(&self, a: Attr) -> &Value {
        self.get(a)
    }
}

/// Builds a tuple from heterogeneous literals: `tuple![1, "x", null]`.
///
/// `null` (the bare identifier) denotes the null marker.
#[macro_export]
macro_rules! tuple {
    (@val null) => { $crate::value::Value::Null };
    (@val $v:expr) => { $crate::value::Value::from($v) };
    ($($v:tt),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$( $crate::tuple!(@val $v) ),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrSet;

    fn t() -> Tuple {
        tuple![5299401i64, "Fitbit Surge", null, 240i64]
    }

    #[test]
    fn macro_and_accessors() {
        let t = t();
        assert_eq!(t.arity(), 4);
        assert_eq!(t.get(Attr(0)), &Value::Int(5299401));
        assert_eq!(t.get(Attr(2)), &Value::Null);
        assert_eq!(t[Attr(1)], Value::str("Fitbit Surge"));
    }

    #[test]
    fn totality() {
        let t = t();
        assert!(!t.is_total());
        assert!(t.is_total_on(AttrSet::from_indices([0, 1, 3])));
        assert!(!t.is_total_on(AttrSet::from_indices([2])));
        assert_eq!(t.null_attrs(), AttrSet::from_indices([2]));
        assert!(tuple![1i64, 2i64].is_total());
    }

    #[test]
    fn projection_keeps_order() {
        let t = t();
        let p = t.project(AttrSet::from_indices([3, 0]));
        assert_eq!(p, tuple![5299401i64, 240i64]);
    }

    #[test]
    fn eq_on_with_nulls() {
        let a = tuple![1i64, null, 3i64];
        let b = tuple![1i64, null, 4i64];
        assert!(a.eq_on(&b, AttrSet::from_indices([0, 1])));
        assert!(!a.eq_on(&b, AttrSet::from_indices([0, 2])));
        // ⊥ = ⊥ counts as equality (Example 2 of the paper).
        assert!(a.eq_on(&b, AttrSet::from_indices([1])));
    }

    #[test]
    fn display() {
        assert_eq!(tuple![1i64, null].to_string(), "(1, NULL)");
    }
}
