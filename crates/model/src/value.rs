//! Domain values and the null marker.
//!
//! Following the paper's "no information" interpretation (Section 2), the
//! null marker `⊥` is *not* a domain value; it is carried as a
//! distinguished variant for syntactic convenience, exactly as the paper
//! includes it in each attribute domain as a distinguished element.
//!
//! Equality `t[Y] = t'[Y]` throughout the paper is syntactic identity in
//! which `⊥ = ⊥` holds (Example 2 relies on this: the p-FD `e → s` is
//! satisfied with both salaries `⊥`). `Value` therefore derives `Eq` with
//! `Null == Null`, and the similarity relations of Section 2 live in
//! [`crate::similarity`].

use std::fmt;

/// A cell value: a domain value or the null marker `⊥`.
///
/// Domains are infinite in the paper; we provide integers, strings and
/// booleans, which is enough for every dataset in the evaluation. Floats
/// are deliberately absent: constraint semantics need a total `Eq`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The SQL null marker, interpreted as "no information".
    Null,
    /// A boolean domain value.
    Bool(bool),
    /// An integer domain value.
    Int(i64),
    /// A string domain value.
    Str(String),
}

impl Value {
    /// Whether this cell holds the null marker.
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this cell holds an actual domain value.
    #[inline]
    pub fn is_total(&self) -> bool {
        !self.is_null()
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Parses a CSV field: empty or `NULL` become the null marker,
    /// integers become [`Value::Int`], everything else a string.
    pub fn parse_field(field: &str) -> Value {
        if field.is_empty() || field.eq_ignore_ascii_case("null") {
            Value::Null
        } else if let Ok(i) = field.parse::<i64>() {
            Value::Int(i)
        } else {
            Value::Str(field.to_owned())
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_null_syntactically() {
        // Example 2 of the paper: equality on the RHS treats ⊥ = ⊥.
        assert_eq!(Value::Null, Value::Null);
        assert_ne!(Value::Null, Value::Int(0));
        assert_ne!(Value::Int(0), Value::Null);
    }

    #[test]
    fn is_null_and_total() {
        assert!(Value::Null.is_null());
        assert!(!Value::Null.is_total());
        assert!(Value::Int(5).is_total());
        assert!(Value::str("x").is_total());
    }

    #[test]
    fn parse_field_variants() {
        assert_eq!(Value::parse_field(""), Value::Null);
        assert_eq!(Value::parse_field("NULL"), Value::Null);
        assert_eq!(Value::parse_field("null"), Value::Null);
        assert_eq!(Value::parse_field("42"), Value::Int(42));
        assert_eq!(Value::parse_field("-7"), Value::Int(-7));
        assert_eq!(
            Value::parse_field("Fitbit Surge"),
            Value::str("Fitbit Surge")
        );
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(240).to_string(), "240");
        assert_eq!(Value::str("Amazon").to_string(), "Amazon");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::str("a"));
        assert_eq!(Value::from(String::from("b")), Value::str("b"));
        assert_eq!(Value::from(false), Value::Bool(false));
    }
}
