//! Property test for the columnar primary storage: under arbitrary
//! engine DML sequences the incrementally-maintained dictionary codes
//! must stay a faithful view of the row data — same shape, nulls
//! exactly at code 0, and per-column code equality coinciding with
//! value equality across every row pair. That last clause is the whole
//! contract discovery builds on: partitions read codes, never values.

use proptest::prelude::*;
use sqlnf_model::attrs::Attr;
use sqlnf_model::engine::StoredTable;
use sqlnf_model::prelude::*;

const COLS: usize = 3;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<Value>),
    Update {
        row: usize,
        col: usize,
        value: Value,
    },
    Delete {
        row: usize,
    },
}

fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0i64..4).prop_map(Value::Int),
        2 => "[ab]{1,2}".prop_map(Value::str),
        1 => Just(Value::Null),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(small_value(), COLS).prop_map(Op::Insert),
        3 => (0usize..8, 0usize..COLS, small_value())
            .prop_map(|(row, col, value)| Op::Update { row, col, value }),
        2 => (0usize..8).prop_map(|row| Op::Delete { row }),
    ]
}

/// The agreement invariant between the two representations held by one
/// [`Table`]: codes are an exact quotient of the values, column by
/// column.
fn assert_columnar_faithful(t: &Table) {
    let snap = t.snapshot();
    assert_eq!(snap.rows, t.len(), "row count out of sync");
    assert_eq!(snap.cols.len(), t.schema().arity(), "arity out of sync");
    for c in 0..t.schema().arity() {
        let col = &snap.cols[c];
        assert_eq!(col.codes.len(), t.len(), "column {c} length out of sync");
        let a = Attr::from(c);
        for r in 0..t.len() {
            let code = col.codes[r];
            let is_null = t.rows()[r].get(a) == &Value::Null;
            assert_eq!(code == 0, is_null, "null/code-0 mismatch at ({r}, {c})");
            assert!((code as usize) < snap.dict_sizes[c] as usize + 1);
            assert_eq!(
                col.null_rows.binary_search(&(r as u32)).is_ok(),
                is_null,
                "null_rows index wrong at ({r}, {c})"
            );
        }
        for r in 0..t.len() {
            for s in (r + 1)..t.len() {
                assert_eq!(
                    col.codes[r] == col.codes[s],
                    t.rows()[r].get(a) == t.rows()[s].get(a),
                    "code equality diverges from value equality at rows ({r}, {s}), column {c}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn columnar_codes_track_row_values_under_dml(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let names: Vec<String> = (0..COLS).map(|i| format!("a{i}")).collect();
        let schema = TableSchema::new("t", names, &[]);
        let mut stored = StoredTable::new(schema, Sigma::default());
        for op in ops {
            // With an empty Σ the engine accepts everything in range;
            // out-of-range rows are rejected and must leave no trace.
            match op {
                Op::Insert(values) => {
                    stored.insert(Tuple::new(values)).expect("no constraints");
                }
                Op::Update { row, col, value } => {
                    let _ = stored.update(row, &format!("a{col}"), value);
                }
                Op::Delete { row } => {
                    let _ = stored.delete(row);
                }
            }
            assert_columnar_faithful(stored.data());
        }
    }
}
