//! The flight recorder: a lock-free ring buffer of structured trace
//! events, process-wide, drained snapshot-style.
//!
//! # Layout
//!
//! Each thread owns a fixed-capacity ring of [`RING_SLOTS`] slots
//! (leaked on first use and registered in a global ring list), with a
//! **per-thread write cursor** — so the hot path never contends on a
//! shared cursor. A global atomic sequence number stamps every event,
//! which is what lets a drain merge the per-thread rings back into one
//! chronological stream.
//!
//! Each slot is a tiny seqlock: the writer stores `2·seq+1` (odd =
//! in-flight) into the slot's state word, writes the payload fields,
//! then stores `2·seq+2` (even = ready). A drain reads the state,
//! the fields, and the state again, and discards the slot unless both
//! state reads agree on the same even value — a torn read is dropped,
//! never surfaced. Sequence numbers are globally unique and monotone,
//! so the even states never repeat (no ABA).
//!
//! Event names are interned `&'static str`s: call sites cache an id
//! once (one lock acquisition per call site per process), and the hot
//! path stores the id — no pointers cross the seqlock, so a torn read
//! can at worst mislabel an event that is then discarded anyway.
//!
//! Recording is off until [`set_flight`]`(true)`; while off, every
//! emission point costs one relaxed load. The server turns it on at
//! startup. Draining ([`flight_snapshot`]) is read-only and
//! non-destructive; [`flight_reset`] logically clears the recorder by
//! raising the floor sequence number instead of touching slots, so it
//! is safe against concurrent writers.

/// What an event marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FlightKind {
    /// A span was entered.
    Enter = 0,
    /// A span ended; the event value is its duration in nanoseconds.
    Exit = 1,
    /// A point event (the [`event!`](crate::event!) macro); the value
    /// is caller-defined.
    Instant = 2,
}

impl FlightKind {
    /// Wire/rendering label.
    pub fn as_str(self) -> &'static str {
        match self {
            FlightKind::Enter => "enter",
            FlightKind::Exit => "exit",
            FlightKind::Instant => "instant",
        }
    }
}

/// One drained trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (total order across threads).
    pub seq: u64,
    /// Nanoseconds since the recorder's first event.
    pub t_ns: u64,
    /// Index of the originating thread's ring.
    pub thread: usize,
    /// Enter / exit / instant.
    pub kind: FlightKind,
    /// Interned event name.
    pub name: &'static str,
    /// Exit duration, `event!` payload, or 0.
    pub value: u64,
}

impl FlightEvent {
    /// One-line rendering, the payload format of the `TRACE` verb:
    /// `<seq> <t_ns> <thread> <kind> <name> <value>`.
    pub fn line(&self) -> String {
        format!(
            "{} {} {} {} {} {}",
            self.seq,
            self.t_ns,
            self.thread,
            self.kind.as_str(),
            self.name,
            self.value
        )
    }
}

/// Per-thread ring capacity, in events.
pub const RING_SLOTS: usize = 1024;

#[cfg(feature = "obs")]
mod imp {
    use super::{FlightEvent, FlightKind, RING_SLOTS};
    use std::cell::Cell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed, Ordering::SeqCst};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    struct Slot {
        /// 0 = never written; `2·seq+1` = write in flight; `2·seq+2` =
        /// ready. Monotone per slot, so readers can't be fooled.
        state: AtomicU64,
        t_ns: AtomicU64,
        /// `(name_id << 8) | kind` — one word so the pair can't tear
        /// against each other.
        id_kind: AtomicU64,
        value: AtomicU64,
    }

    struct Ring {
        cursor: AtomicU64,
        slots: Vec<Slot>,
    }

    impl Ring {
        fn new() -> Ring {
            Ring {
                cursor: AtomicU64::new(0),
                slots: (0..RING_SLOTS)
                    .map(|_| Slot {
                        state: AtomicU64::new(0),
                        t_ns: AtomicU64::new(0),
                        id_kind: AtomicU64::new(0),
                        value: AtomicU64::new(0),
                    })
                    .collect(),
            }
        }
    }

    static FLIGHT: AtomicBool = AtomicBool::new(false);
    static SEQ: AtomicU64 = AtomicU64::new(0);
    /// Events with `seq < FLOOR` are logically cleared.
    static FLOOR: AtomicU64 = AtomicU64::new(0);

    fn rings() -> &'static Mutex<Vec<&'static Ring>> {
        static RINGS: OnceLock<Mutex<Vec<&'static Ring>>> = OnceLock::new();
        RINGS.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn names() -> &'static Mutex<Vec<&'static str>> {
        static NAMES: OnceLock<Mutex<Vec<&'static str>>> = OnceLock::new();
        NAMES.get_or_init(|| Mutex::new(Vec::new()))
    }

    fn now_ns() -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH
            .get_or_init(Instant::now)
            .elapsed()
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    thread_local! {
        static RING: Cell<Option<&'static Ring>> = const { Cell::new(None) };
    }

    fn current_ring() -> &'static Ring {
        RING.with(|cell| match cell.get() {
            Some(ring) => ring,
            None => {
                // One leak per thread, bounded by thread count; the
                // ring must outlive the thread so drains stay safe.
                let ring: &'static Ring = Box::leak(Box::new(Ring::new()));
                rings().lock().expect("flight rings").push(ring);
                cell.set(Some(ring));
                ring
            }
        })
    }

    /// Turns flight recording on or off process-wide.
    pub fn set_flight(on: bool) {
        FLIGHT.store(on, Relaxed);
    }

    /// Whether events are being recorded. Checked before any other
    /// work, so a disabled recorder costs one relaxed load per
    /// emission point.
    #[inline]
    pub fn flight_enabled() -> bool {
        FLIGHT.load(Relaxed)
    }

    /// Interns an event name, returning its stable id. Call sites
    /// cache the id (the [`event!`](crate::event!) macro does), so the
    /// lock here is taken once per call site per process.
    pub fn flight_intern(name: &'static str) -> u32 {
        let mut table = names().lock().expect("flight names");
        match table.iter().position(|n| *n == name) {
            Some(i) => i as u32,
            None => {
                table.push(name);
                (table.len() - 1) as u32
            }
        }
    }

    /// Records one event under an interned name id. The hot path: one
    /// global fetch-add for the sequence number, one per-thread cursor
    /// bump, four slot stores. No locks, no allocation.
    pub fn flight_record_id(id: u32, kind: FlightKind, value: u64) {
        if !flight_enabled() {
            return;
        }
        let ring = current_ring();
        let seq = SEQ.fetch_add(1, SeqCst);
        let idx = (ring.cursor.fetch_add(1, Relaxed) as usize) % RING_SLOTS;
        let slot = &ring.slots[idx];
        slot.state.store(seq * 2 + 1, SeqCst);
        slot.t_ns.store(now_ns(), SeqCst);
        slot.id_kind.store(((id as u64) << 8) | kind as u64, SeqCst);
        slot.value.store(value, SeqCst);
        slot.state.store(seq * 2 + 2, SeqCst);
    }

    /// Drains a snapshot of the recorder: the last `last` events (by
    /// global sequence) still resident in the per-thread rings, sorted
    /// chronologically. Non-destructive; concurrent writers at worst
    /// cause individual torn slots to be skipped.
    pub fn flight_snapshot(last: usize) -> Vec<FlightEvent> {
        let floor = FLOOR.load(SeqCst);
        let names: Vec<&'static str> = names().lock().expect("flight names").clone();
        let rings: Vec<&'static Ring> = rings().lock().expect("flight rings").clone();
        let mut out = Vec::new();
        for (thread, ring) in rings.iter().enumerate() {
            for slot in &ring.slots {
                let s1 = slot.state.load(SeqCst);
                if s1 < 2 || s1 % 2 == 1 {
                    continue; // empty or mid-write
                }
                let t_ns = slot.t_ns.load(SeqCst);
                let id_kind = slot.id_kind.load(SeqCst);
                let value = slot.value.load(SeqCst);
                if slot.state.load(SeqCst) != s1 {
                    continue; // overwritten while reading
                }
                let seq = s1 / 2 - 1;
                if seq < floor {
                    continue; // logically cleared
                }
                let kind = match id_kind & 0xff {
                    0 => FlightKind::Enter,
                    1 => FlightKind::Exit,
                    _ => FlightKind::Instant,
                };
                let name = names
                    .get((id_kind >> 8) as usize)
                    .copied()
                    .unwrap_or("<unknown>");
                out.push(FlightEvent {
                    seq,
                    t_ns,
                    thread,
                    kind,
                    name,
                    value,
                });
            }
        }
        out.sort_by_key(|e| e.seq);
        if out.len() > last {
            out.drain(..out.len() - last);
        }
        out
    }

    /// Logically clears the recorder: every event recorded so far
    /// disappears from future snapshots. Safe against concurrent
    /// writers (it only raises the floor sequence number).
    pub fn flight_reset() {
        FLOOR.store(SEQ.load(SeqCst), SeqCst);
    }
}

#[cfg(feature = "obs")]
pub use imp::{
    flight_enabled, flight_intern, flight_record_id, flight_reset, flight_snapshot, set_flight,
};

#[cfg(not(feature = "obs"))]
mod stubs {
    use super::{FlightEvent, FlightKind};

    /// No-op without the `obs` feature.
    pub fn set_flight(_on: bool) {}

    /// Always `false` without the `obs` feature.
    #[inline]
    pub fn flight_enabled() -> bool {
        false
    }

    /// Always 0 without the `obs` feature.
    pub fn flight_intern(_name: &'static str) -> u32 {
        0
    }

    /// No-op without the `obs` feature.
    pub fn flight_record_id(_id: u32, _kind: FlightKind, _value: u64) {}

    /// Always empty without the `obs` feature.
    pub fn flight_snapshot(_last: usize) -> Vec<FlightEvent> {
        Vec::new()
    }

    /// No-op without the `obs` feature.
    pub fn flight_reset() {}
}

#[cfg(not(feature = "obs"))]
pub use stubs::{
    flight_enabled, flight_intern, flight_record_id, flight_reset, flight_snapshot, set_flight,
};
