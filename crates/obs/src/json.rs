//! Minimal JSON reading and writing for [`ObsReport`] export.
//!
//! The workspace builds without registry access, so instead of
//! `serde_json` this module carries the ~200 lines of JSON machinery
//! the instrumentation layer needs: a value tree, a strict
//! recursive-descent parser, and an escaping writer. Object member
//! order is preserved, which makes report round-trips byte-stable.
//!
//! [`ObsReport`]: crate::ObsReport

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number without fractional part or exponent.
    Int(i128),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; member order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value as a `u64`, if it is a non-negative integer in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object members, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Looks up an object member by key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v))
    }

    /// Serializes the value as compact JSON.
    pub fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                out.push_str(&i.to_string());
            }
            JsonValue::Float(f) => {
                if f.is_finite() {
                    out.push_str(&format!("{f}"));
                } else {
                    out.push_str("null"); // JSON has no NaN/Inf
                }
            }
            JsonValue::Str(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes the value as a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with its byte offset in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset at which the error was detected.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not paired up; reports never
                            // emit them, so map them to the replacement
                            // character rather than failing the parse.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !fractional {
            if let Ok(i) = text.parse::<i128>() {
                return Ok(JsonValue::Int(i));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-42").unwrap(), JsonValue::Int(-42));
        assert_eq!(parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(
            parse("\"a\\n\\\"b\\u00e9\"").unwrap(),
            JsonValue::Str("a\n\"bé".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"xs":[1,2,{"k":null}],"flag":false}"#).unwrap();
        assert_eq!(v.get("flag"), Some(&JsonValue::Bool(false)));
        let xs = v.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs[1].as_u64(), Some(2));
        assert_eq!(xs[2].get("k"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips() {
        let src = r#"{"name":"p_closure","count":3,"total_ns":123456789012345,"buckets":[0,1,2],"note":"tab\there"}"#;
        let v = parse(src).unwrap();
        assert_eq!(parse(&v.to_json()).unwrap(), v);
        assert_eq!(
            v.get("total_ns").unwrap().as_u64(),
            Some(123_456_789_012_345)
        );
    }
}
